//! `cras-repro` — a from-scratch reproduction of *Simple Continuous Media
//! Storage Server on Real-Time Mach* (Tezuka & Nakajima, USENIX 1996).
//!
//! This facade re-exports the workspace crates so the repository-level
//! examples and integration tests build against one coherent API:
//!
//! * [`sim`] — deterministic discrete-event engine.
//! * [`disk`] — the calibrated ST32550N disk model with the dual C-SCAN
//!   driver queues.
//! * [`rtmach`] — the Real-Time Mach scheduling substrate.
//! * [`ufs`] — the FFS-like Unix file system baseline.
//! * [`media`] — chunk tables, stream profiles, movie recording.
//! * [`core`] — CRAS itself: admission control, interval scheduler,
//!   time-driven shared buffers, the `crs_*` API.
//! * [`net`] — the NPS-style delivery subsystem (paced links, playout
//!   sessions, multicast fan-out, loss/retransmit).
//! * [`sys`] — the orchestrated system (disk + CPU + UFS + CRAS +
//!   applications).
//! * [`cluster`] — the sharded multi-system gateway (consistent-hash
//!   placement, replica routing, whole-shard failover).
//! * [`workload`] — the per-figure experiment suite.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results.

#![forbid(unsafe_code)]

pub use cras_cluster as cluster;
pub use cras_core as core;
pub use cras_disk as disk;
pub use cras_media as media;
pub use cras_net as net;
pub use cras_rtmach as rtmach;
pub use cras_sim as sim;
pub use cras_sys as sys;
pub use cras_ufs as ufs;
pub use cras_workload as workload;
