//! `crs` — command-line front end to the CRAS reproduction.
//!
//! ```text
//! crs calibrate                         # Appendix A disk calibration
//! crs admission [--interval 0.5] [--rate-mbps 1.5] [--chunk 6250]
//! crs play [--streams N] [--system cras|ufs] [--load N] [--secs S]
//! crs delay [--system cras|ufs] [--load N] [--secs S]
//! ```
//!
//! Every run is deterministic; pass `--seed X` to vary placement and VBR
//! draws.

use cras_repro::core::{Admission, AdmissionModel, StreamParams};
use cras_repro::disk::calibrate::calibrate;
use cras_repro::disk::DiskDevice;
use cras_repro::media::StreamProfile;
use cras_repro::sim::Duration;
use cras_repro::sys::SchedMode;
use cras_repro::workload::runner::{run_scenario, Scenario, Storage};

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(args: &[String]) -> Args {
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            if let Some(name) = args[i].strip_prefix("--") {
                let value = args.get(i + 1).cloned().unwrap_or_default();
                flags.push((name.to_string(), value));
                i += 2;
            } else {
                i += 1;
            }
        }
        Args { flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn f64(&self, name: &str, default: f64) -> f64 {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn usize(&self, name: &str, default: usize) -> usize {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn u64(&self, name: &str, default: u64) -> u64 {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: crs <calibrate|admission|play|delay> [flags]\n\
         \n\
         crs calibrate\n\
         crs admission [--interval S] [--rate-mbps M] [--chunk B] [--budget-mb M]\n\
         crs play   [--streams N] [--system cras|ufs] [--load N] [--secs S] [--seed X]\n\
         crs delay  [--system cras|ufs] [--load N] [--secs S] [--seed X]"
    );
    std::process::exit(2);
}

fn storage(args: &Args) -> Storage {
    match args.get("system").unwrap_or("cras") {
        "cras" => Storage::Cras,
        "ufs" => Storage::Ufs,
        other => {
            eprintln!("unknown system {other:?} (cras|ufs)");
            std::process::exit(2);
        }
    }
}

fn cmd_calibrate() {
    let mut dev: DiskDevice<u8> = DiskDevice::st32550n();
    let cal = calibrate(&mut dev, 64 * 1024);
    let p = cal.params;
    println!("calibrated ST32550N model (Appendix A):");
    println!("  D          = {:.2} MB/s", p.transfer_rate / 1e6);
    println!("  T_seek_max = {:.2} ms", p.t_seek_max.as_millis_f64());
    println!("  T_seek_min = {:.2} ms", p.t_seek_min.as_millis_f64());
    println!("  T_rot      = {:.2} ms", p.t_rot.as_millis_f64());
    println!("  T_cmd      = {:.2} ms", p.t_cmd.as_millis_f64());
    println!(
        "  fit: t(x) = {:.3} us/cyl * x + {:.3} ms",
        cal.fit.0 * 1e6,
        cal.fit.1 * 1e3
    );
}

fn cmd_admission(args: &Args) {
    let interval = args.f64("interval", 0.5);
    let rate = args.f64("rate-mbps", 1.5) * 1e6 / 8.0;
    let chunk = args.f64("chunk", 6_250.0);
    let budget = (args.f64("budget-mb", 8.0) * 1048576.0) as u64;
    let mut dev: DiskDevice<u8> = DiskDevice::st32550n();
    let cal = calibrate(&mut dev, 64 * 1024);
    let adm = Admission::new(cal.params, AdmissionModel::Paper);
    let proto = StreamParams::new(rate, chunk);
    let cap = adm.capacity(interval, proto, budget, 500);
    println!(
        "interval {interval}s, stream rate {:.0} B/s, chunk {chunk:.0} B, buffer budget {} MB:",
        rate,
        budget / 1048576
    );
    println!("  admitted streams: {cap}");
    let streams = vec![proto; cap.max(1)];
    println!(
        "  calculated I/O time at {} streams: {:.1} ms of {:.0} ms",
        streams.len(),
        adm.calculated_io_time(interval, &streams) * 1e3,
        interval * 1e3
    );
    println!(
        "  buffer needed: {:.2} MB (initial delay {:.1} s)",
        adm.buffer_total(interval, &streams) as f64 / 1048576.0,
        2.0 * interval
    );
}

fn scenario_from(args: &Args) -> Scenario {
    Scenario {
        storage: storage(args),
        streams: args.usize("streams", 1),
        profile: StreamProfile::mpeg1(),
        bg_readers: args.usize("load", 0),
        bg_pause: Duration::ZERO,
        hogs: 0,
        sched: SchedMode::FixedPriority,
        measure: Duration::from_secs_f64(args.f64("secs", 15.0)),
        seed: args.u64("seed", 42),
        enforce_admission: false,
    }
}

fn cmd_play(args: &Args) {
    let sc = scenario_from(args);
    let out = run_scenario(sc);
    println!(
        "{} with {} stream(s), {} background reader(s), {:.0} s window:",
        sc.storage.label(),
        sc.streams,
        sc.bg_readers,
        sc.measure.as_secs_f64()
    );
    println!(
        "  throughput: {:.2} MB/s ({:.0}% of demand)",
        out.throughput / 1e6,
        100.0 * out.throughput / (sc.streams as f64 * 187_500.0)
    );
    println!("  frames shown/dropped: {}/{}", out.frames.0, out.frames.1);
    println!("  deadline warnings: {}", out.overruns);
}

fn cmd_delay(args: &Args) {
    let mut sc = scenario_from(args);
    sc.streams = 1;
    let out = run_scenario(sc);
    let (mean, max) = out.delays[0];
    println!(
        "{} per-frame delay over {:.0} s with {} background reader(s):",
        sc.storage.label(),
        sc.measure.as_secs_f64(),
        sc.bg_readers
    );
    println!(
        "  mean {:.2} ms   p99 {:.2} ms   max {:.2} ms",
        mean * 1e3,
        out.delay_p99 * 1e3,
        max * 1e3
    );
    println!("  frames shown/dropped: {}/{}", out.frames.0, out.frames.1);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    let args = Args::parse(&argv[1..]);
    match cmd.as_str() {
        "calibrate" => cmd_calibrate(),
        "admission" => cmd_admission(&args),
        "play" => cmd_play(&args),
        "delay" => cmd_delay(&args),
        _ => usage(),
    }
}
