//! Deployment configurations — the paper's Figure 5.
//!
//! "User-level implementation of a continuous media storage system allows
//! us to customize the system easily": CRAS may run beside the full Unix
//! server, beside RTS (the embedded-systems server), or linked directly
//! into the application. What changes between them, for the quantities
//! this reproduction measures, is the cost of a client↔server interaction:
//! a full Mach IPC round trip, a lightweight RTS IPC, or a function call.
//! `crs_get` costs nothing extra in all modes — it reads the shared
//! buffer.

use cras_sim::Duration;

/// How CRAS is deployed relative to its client (Figure 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DeployMode {
    /// Standalone server next to the Unix server (the typical layout).
    #[default]
    UnixServer,
    /// Standalone server next to RTS, the small embedded-systems server.
    Rts,
    /// Linked into the application's address space.
    Linked,
}

impl DeployMode {
    /// Cost of a control call (`crs_open`, `crs_start`, ...) from the
    /// client to CRAS.
    ///
    /// Constants are representative mid-90s numbers: a Mach IPC round
    /// trip on a P5-100 cost on the order of 100 µs; RTS IPC about a
    /// third of that; a function call effectively nothing at the
    /// simulation's resolution.
    pub fn control_call_cost(&self) -> Duration {
        match self {
            DeployMode::UnixServer => Duration::from_micros(100),
            DeployMode::Rts => Duration::from_micros(35),
            DeployMode::Linked => Duration::from_micros(2),
        }
    }

    /// Cost of `crs_get`: shared-memory access, identical in every mode.
    pub fn get_cost(&self) -> Duration {
        Duration::from_micros(2)
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            DeployMode::UnixServer => "unix-server",
            DeployMode::Rts => "rts",
            DeployMode::Linked => "linked",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_costs_ordered() {
        assert!(DeployMode::UnixServer.control_call_cost() > DeployMode::Rts.control_call_cost());
        assert!(DeployMode::Rts.control_call_cost() > DeployMode::Linked.control_call_cost());
    }

    #[test]
    fn get_is_mode_independent() {
        assert_eq!(
            DeployMode::UnixServer.get_cost(),
            DeployMode::Linked.get_cost()
        );
    }

    #[test]
    fn labels_distinct() {
        let labels = [
            DeployMode::UnixServer.label(),
            DeployMode::Rts.label(),
            DeployMode::Linked.label(),
        ];
        let set: std::collections::BTreeSet<_> = labels.iter().collect();
        assert_eq!(set.len(), 3);
    }
}
