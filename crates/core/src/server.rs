//! The CRAS server: open/close, the periodic request scheduler, and the
//! I/O-done path.
//!
//! The paper's five threads map onto this state machine as follows; the
//! orchestrator (`cras-sys`) gives each its CPU time and routes events:
//!
//! * **request manager** — [`CrasServer::open`] / [`CrasServer::close`]
//!   (admission test, buffer sizing);
//! * **request scheduler** — [`CrasServer::interval_tick`]: posts the
//!   previous interval's data from the I/O-done queue into the
//!   time-driven buffers, then issues the next interval's reads in
//!   cylinder order;
//! * **I/O done manager** — [`CrasServer::io_done`]: accepts completion
//!   notifications into the I/O-done queue;
//! * **deadline manager** — overrun detection in `interval_tick` (a
//!   warning counter, like the paper's);
//! * **signal handler** — administrative stop/seek paths
//!   ([`CrasServer::stop`], [`CrasServer::seek`]).
//!
//! The server schedules across a set of volumes (§4's "several disk
//! devices" variation). Admission runs *per volume*: each spindle must
//! fit the weighted share of every stream stored on it (the bottleneck
//! disk bounds the system), while buffer memory — a host resource — is
//! checked globally. With one volume this reduces exactly to the
//! paper's single-disk test. Volumes may be heterogeneous: each holds
//! its own calibrated [`DiskParams`], so a faster spindle admits more
//! of the streams placed on it.
//!
//! When a cache budget is configured, the server also owns an
//! [`IntervalCache`]: every disk-fed stream's posted intervals are
//! retained as a sliding window behind its read frontier, a stream
//! opened within the configured gap of an active stream on the same
//! movie is fed from that window (zero disk commands), and — when the
//! disk-time bound is exhausted — such a trailing stream can be
//! *admitted* against the cache memory budget instead.

use std::collections::{BTreeMap, HashMap};

use cras_disk::calibrate::DiskParams;
use cras_disk::geometry::BlockNo;
use cras_disk::{SweepCursor, VolumeId};
use cras_media::ChunkTable;
use cras_sim::{Duration, Instant};
use cras_ufs::Extent;

use crate::admission::{Admission, AdmissionError, AdmissionModel, StreamParams, MAX_READ_BYTES};
use crate::cache::{EvictPolicy, IntervalCache};
use crate::cachepolicy::CacheManager;
use crate::clock::LogicalClock;
use crate::placement::{on_volume, volume_shares, PlacementPolicy, VolumeExtent};
use crate::stream::{CacheState, ParityState, Stream, StreamId};
use crate::tdbuffer::{BufferedChunk, TimeDrivenBuffer};

/// Fixed (non-buffer) server footprint: "CRAS consumes about (250KB +
/// total buffer space) of physical memory."
pub const SERVER_FIXED_BYTES: u64 = 250 * 1024;

/// Server configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// The interval time `T`.
    pub interval: Duration,
    /// Memory budget for stream buffers (the admission test's limit).
    pub buffer_budget: u64,
    /// The time-driven buffer's jitter allowance `J`.
    pub jitter: Duration,
    /// Maximum bytes per disk command.
    pub max_read_bytes: u64,
    /// Overhead model for admission.
    pub model: AdmissionModel,
    /// Initial delay in intervals before a started stream's clock runs
    /// (2 = classic double buffering; the paper's 1 s at `T` = 0.5 s).
    pub initial_delay_intervals: u32,
    /// Per-stream cap on outstanding pre-fetch batches. When a stream
    /// already has this many batches in flight (the disk is behind), the
    /// scheduler skips issuing more for it this interval — bounding the
    /// backlog when the server is run past its admitted load, as the
    /// Figure 6 sweep deliberately does.
    pub max_outstanding_batches: usize,
    /// Number of disk volumes the server schedules across (1 = the
    /// paper's configuration).
    pub volumes: usize,
    /// How new movies are assigned to volumes.
    pub placement: PlacementPolicy,
    /// Interval-cache memory budget in bytes. `0` disables the cache
    /// entirely and reproduces the pre-cache server bit for bit.
    pub cache_budget: u64,
    /// Maximum media-time gap at which a trailing stream may attach to
    /// a leading stream's cached window.
    pub max_cache_gap: Duration,
    /// Prefix-residency window (DESIGN §16): the first `prefix_secs` of
    /// each hot title stay pinned in the interval cache across
    /// sessions, and a new viewer of a hot title is admitted *deferred*
    /// — zero disk shares until its prefix drains. `ZERO` disables.
    pub prefix_secs: Duration,
    /// Number of titles in the hot set (ranked by observed opens) whose
    /// prefixes stay resident. `0` disables prefix residency.
    pub hot_set: usize,
    /// Batched-join window: a starting stream whose natural playback
    /// begin lands within this window of a fresh same-title stream's
    /// begin coalesces onto that leader's reads (multicast-style,
    /// zero disk shares). `ZERO` disables joins.
    pub join_window: Duration,
    /// Which victim the interval cache evicts when the budget is tight.
    pub cache_evict: EvictPolicy,
    /// Coded-read steering (DESIGN §17): when a parity stream's direct
    /// data read lands on a live but *loaded* spindle, the planner may
    /// serve the range as the `g−1` reconstruction fan-out across the
    /// band's other members instead — any `g−1` of `g` suffice — so a
    /// transiently hot spindle is bypassed rather than bottlenecking
    /// the interval. The per-spindle parity admission charge (two
    /// commands, `2/g` shares) already covers the fan-out, so steering
    /// can never oversubscribe a volume.
    pub steer_reads: bool,
    /// Hysteresis margin for the steering decision, bytes: the fan-out
    /// is chosen only when its projected bottleneck undercuts the
    /// direct read's by more than this. Keeps an evenly loaded system
    /// on the cheap direct path (reconstruction is strictly more total
    /// work) and stops flapping near the break-even point.
    pub steer_margin_bytes: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            interval: Duration::from_millis(500),
            buffer_budget: 8 << 20,
            jitter: Duration::from_millis(100),
            max_read_bytes: MAX_READ_BYTES,
            model: AdmissionModel::Paper,
            initial_delay_intervals: 2,
            max_outstanding_batches: 2,
            volumes: 1,
            placement: PlacementPolicy::RoundRobin,
            cache_budget: 0,
            max_cache_gap: Duration::from_secs(10),
            prefix_secs: Duration::ZERO,
            hot_set: 0,
            join_window: Duration::ZERO,
            cache_evict: EvictPolicy::OldestFirst,
            steer_reads: true,
            steer_margin_bytes: 64 * 1024,
        }
    }
}

/// Externally observed load of one spindle, fed by the orchestrator
/// just before each tick ([`CrasServer::set_volume_loads`]): the part
/// of the steering signal the planner cannot see from its own
/// bookkeeping — the device's outstanding queue (rebuild traffic,
/// Unix-server background I/O) and how far the spindle's recent
/// intervals ran behind their calculated I/O time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct VolumeLoad {
    /// Commands outstanding on the device: queued in either class plus
    /// any in-flight operation.
    pub queued: usize,
    /// Recent mean completion lag of this volume's intervals (actual
    /// span minus calculated I/O time, clamped at zero), seconds.
    pub lag: f64,
}

/// Identifies one disk read issued by the server.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ReadId(pub u64);

/// One disk read request for the orchestrator to submit (real-time class).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadReq {
    /// Read id (returned in [`CrasServer::io_done`]).
    pub id: ReadId,
    /// Owning stream.
    pub stream: StreamId,
    /// The volume to submit this read to.
    pub volume: VolumeId,
    /// First 512-byte disk block on that volume.
    pub block: BlockNo,
    /// Length in 512-byte blocks.
    pub nblocks: u32,
}

/// What one `interval_tick` did.
#[derive(Clone, Debug)]
pub struct IntervalReport {
    /// Interval number (0-based).
    pub index: u64,
    /// Reads to submit, grouped by volume; each volume's slice is in
    /// that spindle's sweep order (C-SCAN continuing from the head
    /// position the previous interval left behind, wrapped blocks
    /// last). Use [`IntervalReport::volume_batches`] to walk the
    /// per-volume batches.
    pub reqs: Vec<ReadReq>,
    /// Chunks posted into client buffers at the start of this interval.
    pub posted_chunks: usize,
    /// Whether the previous interval's I/O had not all completed — a
    /// deadline miss (the paper logs a warning).
    pub overran: bool,
    /// The admission test's calculated I/O time of the *bottleneck*
    /// volume for the streams active in this interval, seconds (Figure
    /// 8/9 denominator). Zero when no reads were issued.
    pub calculated_io_time: f64,
    /// Per-volume calculated I/O time, seconds (index = volume id).
    pub per_volume_calculated: Vec<f64>,
    /// Mirrored streams forced onto their mirror replica this interval
    /// because the primary's volume is failed (degraded mode).
    pub degraded_streams: usize,
    /// Parity streams that had at least one direct read steered to a
    /// `g−1` reconstruction fan-out this interval because the home
    /// spindle was loaded (coded-read steering, DESIGN §17).
    pub steered_streams: usize,
    /// Streams whose batch was dropped at plan time this interval
    /// because no live replica could serve it (every copy's volume is
    /// failed). Counted in [`ServerStats::lost_reads`] too; surfaced
    /// here so the orchestrator can trace the drop.
    pub lost_streams: usize,
    /// Streams whose interval was served entirely from the interval
    /// cache (they issued zero disk commands this tick).
    pub cache_served_streams: usize,
    /// Deferred-admission streams whose prefix drained this tick and
    /// whose disk share was reserved now (reserve-at-drain). The
    /// orchestrator journals these so crash recovery re-admits them as
    /// ordinary disk streams.
    pub deferred_reserved: Vec<u32>,
    /// Titles whose streams were parked (clock stopped) by a failed
    /// cache/deferred re-admission since the previous tick — the
    /// per-title cost of the eviction policy, for metrics.
    pub cache_rejected_titles: Vec<String>,
    /// Stream ids parked since the previous tick. The layer driving
    /// viewers should pause them (rebuffer) rather than let their
    /// players burn the poll budget, and may retry admission via
    /// [`CrasServer::resume`] once capacity frees.
    pub parked_streams: Vec<u32>,
}

impl IntervalReport {
    /// The interval's reads partitioned into per-volume batches: each
    /// item is one volume and its consecutive slice of [`reqs`]
    /// (already in that spindle's sweep order). This is the unit of the
    /// pipelined issue path — the orchestrator hands every volume its
    /// batch at tick time and the spindles drain their chains
    /// concurrently, so the interval's I/O ends with the slowest
    /// spindle rather than the sum of all of them.
    ///
    /// [`reqs`]: IntervalReport::reqs
    pub fn volume_batches(&self) -> impl Iterator<Item = (VolumeId, &[ReadReq])> {
        let mut start = 0usize;
        std::iter::from_fn(move || {
            if start >= self.reqs.len() {
                return None;
            }
            let vol = self.reqs[start].volume;
            let mut end = start;
            while end < self.reqs.len() && self.reqs[end].volume == vol {
                end += 1;
            }
            let batch = &self.reqs[start..end];
            start = end;
            Some((vol, batch))
        })
    }
}

/// Total-order maximum of the per-volume calculated I/O times — the
/// bottleneck spindle's bound. `iter().fold(0.0, f64::max)` would
/// silently swallow a NaN (because `f64::max` prefers the non-NaN
/// operand), turning a poisoned admission computation into a plausible
/// looking bound; this asserts instead. An empty slice (a server with
/// no active volumes this interval) is legitimately 0.0.
fn bottleneck_time(per_volume: &[f64]) -> f64 {
    per_volume.iter().fold(0.0f64, |acc, &c| {
        assert!(!c.is_nan(), "per-volume calculated I/O time is NaN");
        if c.total_cmp(&acc).is_gt() {
            c
        } else {
            acc
        }
    })
}

/// A point-in-time report on one stream (diagnostics / experiments).
#[derive(Clone, Copy, Debug)]
pub struct StreamReport {
    /// Whether the logical clock is running.
    pub running: bool,
    /// Clock rate multiplier.
    pub rate: f64,
    /// Media time up to which pre-fetches have been issued.
    pub prefetch_cursor: Duration,
    /// Buffer capacity in bytes.
    pub buffer_capacity: u64,
    /// Current buffer occupancy in bytes.
    pub buffer_bytes: u64,
    /// Buffer counters (puts/hits/misses/discards/max occupancy).
    pub buffer: crate::tdbuffer::BufferStats,
}

/// Aggregate server statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Interval ticks executed.
    pub intervals: u64,
    /// Disk reads issued.
    pub reads_issued: u64,
    /// Bytes requested from disk.
    pub bytes_requested: u64,
    /// Chunks posted to buffers.
    pub chunks_posted: u64,
    /// Deadline (interval overrun) warnings.
    pub deadline_misses: u64,
    /// Reads re-issued against a surviving replica after a failure.
    pub degraded_reads: u64,
    /// Failed reads with no surviving replica (data lost; the batch is
    /// dropped rather than posted). Includes batches dropped at plan
    /// time because every replica's volume was down.
    pub lost_reads: u64,
    /// Direct parity reads replaced by a `g−1` reconstruction fan-out
    /// because the home spindle was loaded (coded-read steering; counts
    /// the *direct reads bypassed*, not the fan-out commands).
    pub steered_reads: u64,
}

struct PendingBatch {
    stream: StreamId,
    chunk_lo: u32,
    chunk_hi: u32,
    remaining: usize,
    issued_at: Instant,
}

struct FetchedBatch {
    stream: StreamId,
    chunk_lo: u32,
    chunk_hi: u32,
    completed_at: Instant,
    /// Whether this batch was served from the interval cache rather
    /// than a disk read (cache batches are not re-inserted).
    from_cache: bool,
}

/// Per-read bookkeeping: the owning batch, plus the logical byte range
/// and volume so a failed read can be re-mapped through another replica.
struct ReadInfo {
    batch: u64,
    byte_lo: u64,
    byte_hi: u64,
    volume: VolumeId,
    /// A parity-reconstruction read of surviving data/parity units. Its
    /// byte range addresses a *survivor's* stripe unit, not the lost
    /// logical bytes, so it cannot be re-mapped again: a failure here is
    /// a second failure in the band and the range is lost.
    recon: bool,
}

/// One stream's admission charge: parameters, per-volume rate shares,
/// and the worst-case read commands it issues on a spindle per interval
/// (two for parity streams — the own-unit slice plus one reconstruction
/// read; see [`Stream::spindle_reads`]).
type AdmitEntry = (StreamParams, Vec<f64>, u32);

/// The CRAS server.
pub struct CrasServer {
    cfg: ServerConfig,
    /// One admission evaluator per volume, each over that spindle's own
    /// calibrated parameters (identical entries for a homogeneous set).
    admissions: Vec<Admission>,
    /// The interval cache (inert when `cfg.cache_budget == 0`).
    cache: IntervalCache,
    /// The popularity-aware cache manager (DESIGN §16): ranks titles by
    /// observed opens and keeps the hot set's prefixes pinned.
    manager: CacheManager,
    /// Batched joins: leader stream id → ids of the streams riding its
    /// reads. An entry disappears when the leader stops matching its
    /// followers (stop/seek/rate change/close); orphaned followers
    /// dissolve at the next tick.
    joins: BTreeMap<u32, Vec<u32>>,
    /// Titles parked by a failed cache/deferred re-admission since the
    /// last tick, drained into [`IntervalReport::cache_rejected_titles`].
    pending_rejects: Vec<String>,
    /// Stream ids parked since the last tick, drained into
    /// [`IntervalReport::parked_streams`] so the layer driving viewers
    /// can pause them (rebuffer) instead of letting them starve.
    pending_parks: Vec<u32>,
    /// Followers orphaned by a leader that parked; they dissolve in the
    /// *same* tick the park happened (a parked leader fetches nothing,
    /// so waiting a tick would open a one-interval delivery gap).
    parked_orphans: Vec<u32>,
    streams: BTreeMap<u32, Stream>,
    next_stream: u32,
    next_place: u32,
    pending: HashMap<u64, PendingBatch>,
    /// Per-stream count of batches in `pending` (stream id → batches in
    /// flight), maintained on submit/complete/discard so the per-stream
    /// backlog cap is O(1) per stream instead of a rescan of every
    /// pending batch per stream per interval. Entries vanish at zero.
    outstanding: HashMap<u32, usize>,
    /// External per-volume load (device queue depth, completion lag)
    /// fed by the orchestrator before each tick; all-idle when nothing
    /// feeds it, which reduces steering to the planned-bytes signal.
    ext_load: Vec<VolumeLoad>,
    read_info: HashMap<u64, ReadInfo>,
    done: Vec<FetchedBatch>,
    next_read: u64,
    next_batch: u64,
    stats: ServerStats,
    /// Per-volume failed flags (index = volume id). A failed volume is
    /// skipped by read steering, placement, and the per-volume rate
    /// test, until a rebuild restores it.
    failed: Vec<bool>,
    /// Per-volume C-SCAN sweep cursors (index = volume id): where each
    /// spindle's previous interval left its head, so the next
    /// interval's issue order continues the sweep instead of
    /// restarting at block 0 and paying a full-stroke seek back.
    sweep: Vec<SweepCursor>,
}

impl CrasServer {
    /// Creates a server over measured disk parameters, identical for
    /// every volume.
    ///
    /// # Panics
    ///
    /// Panics if the configuration names zero volumes.
    pub fn new(disk: DiskParams, cfg: ServerConfig) -> CrasServer {
        CrasServer::new_per_volume(vec![disk; cfg.volumes.max(1)], cfg)
    }

    /// Creates a server over per-volume measured disk parameters
    /// (heterogeneous spindles): volume `v`'s admission test runs
    /// against `disks[v]`, so a faster spindle admits more of the
    /// streams placed on it.
    ///
    /// # Panics
    ///
    /// Panics if the configuration names zero volumes or `disks` does
    /// not hold exactly one entry per volume.
    pub fn new_per_volume(disks: Vec<DiskParams>, cfg: ServerConfig) -> CrasServer {
        assert!(cfg.volumes >= 1, "server needs at least one volume");
        assert_eq!(disks.len(), cfg.volumes, "need one DiskParams per volume");
        let mut cache = IntervalCache::new(cfg.cache_budget, cfg.max_cache_gap);
        cache.set_policy(cfg.cache_evict);
        CrasServer {
            admissions: disks
                .into_iter()
                .map(|d| Admission::new(d, cfg.model))
                .collect(),
            cache,
            manager: CacheManager::new(cfg.hot_set, cfg.prefix_secs),
            joins: BTreeMap::new(),
            pending_rejects: Vec::new(),
            pending_parks: Vec::new(),
            parked_orphans: Vec::new(),
            cfg,
            streams: BTreeMap::new(),
            next_stream: 0,
            next_place: 0,
            pending: HashMap::new(),
            outstanding: HashMap::new(),
            ext_load: vec![VolumeLoad::default(); cfg.volumes],
            read_info: HashMap::new(),
            done: Vec::new(),
            next_read: 0,
            next_batch: 0,
            stats: ServerStats::default(),
            failed: vec![false; cfg.volumes],
            sweep: vec![SweepCursor::new(); cfg.volumes],
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Number of volumes the server schedules across.
    pub fn volumes(&self) -> usize {
        self.cfg.volumes
    }

    /// The admission evaluator of volume 0 (the only one for a
    /// homogeneous or single-disk server).
    pub fn admission(&self) -> &Admission {
        &self.admissions[0]
    }

    /// The admission evaluator of one volume.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    pub fn admission_for(&self, vol: VolumeId) -> &Admission {
        &self.admissions[vol.index()]
    }

    /// The interval cache.
    pub fn cache(&self) -> &IntervalCache {
        &self.cache
    }

    /// The popularity-aware cache manager.
    pub fn cache_manager(&self) -> &CacheManager {
        &self.manager
    }

    /// The cache relationship of one stream.
    ///
    /// # Panics
    ///
    /// Panics if the stream does not exist.
    pub fn cache_state_of(&self, id: StreamId) -> CacheState {
        self.stream(id).cache_state
    }

    /// Open streams currently holding a disk reservation (the admission
    /// test charges their spindles): plain disk streams plus
    /// cache-*served* ones. Cache-admitted, prefix-deferred and joined
    /// streams charge nothing.
    pub fn disk_charged_streams(&self) -> usize {
        self.streams
            .values()
            .filter(|s| matches!(s.cache_state, CacheState::Disk | CacheState::Served { .. }))
            .count()
    }

    /// Statistics so far.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Feeds the external half of the per-spindle load signal used by
    /// read steering (DESIGN §17), normally once per interval just
    /// before [`CrasServer::interval_tick`]. Entries beyond the volume
    /// count are ignored; volumes without an entry are treated as idle.
    pub fn set_volume_loads(&mut self, loads: &[VolumeLoad]) {
        for (v, l) in self.ext_load.iter_mut().enumerate() {
            *l = loads.get(v).copied().unwrap_or_default();
        }
    }

    /// Drops one outstanding-batch count for a stream (its batch
    /// completed or was discarded). The entry vanishes at zero so the
    /// map stays bounded by the number of backlogged streams.
    fn dec_outstanding(&mut self, sid: u32) {
        if let Some(n) = self.outstanding.get_mut(&sid) {
            *n -= 1;
            if *n == 0 {
                self.outstanding.remove(&sid);
            }
        }
    }

    /// Number of open streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Read access to a stream.
    ///
    /// # Panics
    ///
    /// Panics if the stream does not exist.
    pub fn stream(&self, id: StreamId) -> &Stream {
        self.streams.get(&id.0).expect("no such stream")
    }

    /// Admission parameters of every open stream.
    pub fn active_params(&self) -> Vec<StreamParams> {
        self.streams.values().map(|s| s.params).collect()
    }

    /// Wired memory consumed: fixed footprint plus all buffer capacity.
    pub fn memory_bytes(&self) -> u64 {
        SERVER_FIXED_BYTES
            + self
                .streams
                .values()
                .map(|s| s.buffer.capacity())
                .sum::<u64>()
    }

    /// The volume a new whole movie should be recorded on under the
    /// round-robin placement policy; each call advances the cursor.
    pub fn place_next(&mut self) -> VolumeId {
        let v = VolumeId(self.next_place % self.cfg.volumes as u32);
        self.next_place += 1;
        v
    }

    /// Primary and mirror volumes for a new mirrored movie: the rotation
    /// cursor picks the primary among live volumes, the mirror is the
    /// next live volume after it — never the same spindle.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two live volumes (mirroring is impossible).
    pub fn place_next_pair(&mut self) -> (VolumeId, VolumeId) {
        let live: Vec<u32> = (0..self.cfg.volumes as u32)
            .filter(|&v| !self.failed[v as usize])
            .collect();
        assert!(
            live.len() >= 2,
            "mirrored placement needs at least two live volumes"
        );
        let i = self.next_place as usize % live.len();
        self.next_place += 1;
        (VolumeId(live[i]), VolumeId(live[(i + 1) % live.len()]))
    }

    /// First volume of the band a new parity-placed movie should use:
    /// the rotation cursor deals movies to bands of `group` contiguous
    /// volumes cyclically.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ group ≤ volumes` and the volume count is a
    /// multiple of `group` (bands must tile the set exactly).
    pub fn place_next_band(&mut self, group: usize) -> VolumeId {
        assert!(
            group >= 2 && group <= self.cfg.volumes && self.cfg.volumes.is_multiple_of(group),
            "parity group {group} must tile {} volumes",
            self.cfg.volumes
        );
        let bands = self.cfg.volumes / group;
        let b = self.next_place as usize % bands;
        self.next_place += 1;
        VolumeId((b * group) as u32)
    }

    /// Marks a volume failed (or restored after rebuild). While failed,
    /// the volume is skipped by read steering and mirrored placement,
    /// its per-volume rate test is waived (a dead spindle serves no
    /// load), and streams whose data lives only there are rejected at
    /// open.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    pub fn set_volume_failed(&mut self, vol: VolumeId, failed: bool) {
        self.failed[vol.index()] = failed;
    }

    /// Whether a volume is currently marked failed.
    pub fn volume_failed(&self, vol: VolumeId) -> bool {
        self.failed[vol.index()]
    }

    /// Builds the admission charge of every open stream: parameters,
    /// per-volume rate shares, and worst-case per-spindle read commands
    /// (see [`Stream::spindle_reads`]).
    fn admit_entries(&self) -> Vec<AdmitEntry> {
        self.streams
            .values()
            .map(|s| (s.params, s.admission_shares(), s.spindle_reads()))
            .collect()
    }

    /// The admission decision for a prospective stream set, with each
    /// stream's per-volume byte shares.
    ///
    /// Rate and interval feasibility are checked per volume against
    /// that spindle's weighted load (the bottleneck disk bounds the
    /// system); buffer memory is a shared host resource and is checked
    /// globally, exactly as the single-disk test does. With one volume
    /// every share is 1.0 and this reduces to [`Admission::admit`].
    fn admit_set(&self, entries: &[AdmitEntry]) -> Result<(), AdmissionError> {
        let t = self.cfg.interval.as_secs_f64();
        for v in 0..self.cfg.volumes {
            if self.failed[v] {
                // A dead spindle serves no load; mirrored streams'
                // full-rate charge on the surviving replica keeps the
                // guarantee, and restoring the volume restores exactly
                // the pre-failure test.
                continue;
            }
            let mut scaled: Vec<StreamParams> = Vec::new();
            for (p, shares, reads) in entries {
                if shares[v] <= 0.0 {
                    continue;
                }
                // One evaluator entry per worst-case read command: the
                // per-stream command/rotation/seek overheads then count
                // `reads` times, while the byte charge (the rate split
                // across the commands) stays the stream's share.
                let per = shares[v] / *reads as f64;
                for _ in 0..*reads {
                    scaled.push(StreamParams::new(p.rate * per, p.chunk));
                }
            }
            if scaled.is_empty() {
                continue;
            }
            self.admissions[v].admit(t, &scaled, u64::MAX)?;
        }
        let all: Vec<StreamParams> = entries.iter().map(|(p, _, _)| *p).collect();
        let needed = self.admissions[0].buffer_total(t, &all);
        if needed > self.cfg.buffer_budget {
            return Err(AdmissionError::OutOfMemory {
                needed,
                budget: self.cfg.buffer_budget,
            });
        }
        Ok(())
    }

    /// `crs_open`: admission-test a new stream and allocate its buffer.
    ///
    /// The extent map addresses volume 0 — the single-disk case. Use
    /// [`CrasServer::open_placed`] for movies placed across volumes.
    pub fn open(
        &mut self,
        name: &str,
        table: ChunkTable,
        extents: Vec<Extent>,
    ) -> Result<StreamId, AdmissionError> {
        self.open_placed(name, table, on_volume(VolumeId(0), extents))
    }

    /// `crs_open` with a volume-aware extent map.
    ///
    /// The caller supplies the control-file chunk table and the extent
    /// map resolved through UFS; worst-case rate and max chunk size
    /// drive the admission test, weighted per volume by where the bytes
    /// live.
    pub fn open_placed(
        &mut self,
        name: &str,
        table: ChunkTable,
        extents: Vec<VolumeExtent>,
    ) -> Result<StreamId, AdmissionError> {
        self.open_replicated(name, table, extents, None)
    }

    /// `crs_open` for a (possibly mirrored) movie: the primary extent
    /// map plus an optional mirror replica map. Admission charges each
    /// replica volume the full rate — the worst case where the other
    /// replica is gone — so the guarantee survives either spindle
    /// failing.
    pub fn open_replicated(
        &mut self,
        name: &str,
        table: ChunkTable,
        extents: Vec<VolumeExtent>,
        mirror: Option<Vec<VolumeExtent>>,
    ) -> Result<StreamId, AdmissionError> {
        self.open_inner(name, table, extents, mirror, None)
    }

    /// `crs_open` for a parity-placed movie: the logical data extent map
    /// plus the rotating-parity state. Admission charges every band
    /// volume the worst-case degraded load — `2/group` of the rate (its
    /// own `1/group` of the data plus one same-sized reconstruction read
    /// per stripe the dead spindle owes) as *two* read commands per
    /// spindle, so the per-command seek/rotation overheads of the
    /// degraded fan-out are paid up front and streams admitted healthy
    /// still meet deadlines degraded.
    pub fn open_parity(
        &mut self,
        name: &str,
        table: ChunkTable,
        extents: Vec<VolumeExtent>,
        parity: ParityState,
    ) -> Result<StreamId, AdmissionError> {
        self.open_inner(name, table, extents, None, Some(parity))
    }

    fn open_inner(
        &mut self,
        name: &str,
        table: ChunkTable,
        extents: Vec<VolumeExtent>,
        mirror: Option<Vec<VolumeExtent>>,
        parity: Option<ParityState>,
    ) -> Result<StreamId, AdmissionError> {
        let params = StreamParams::new(table.worst_rate(), table.max_chunk_size() as f64);
        let shares = match &parity {
            Some(p) => p.geom.admission_shares(self.cfg.volumes),
            None => self.shares_of(&extents, mirror.as_deref()),
        };
        if !shares
            .iter()
            .enumerate()
            .any(|(v, sh)| *sh > 0.0 && !self.failed[v])
        {
            return Err(AdmissionError::VolumeFailed);
        }
        if let Some(p) = &parity {
            // Degraded reads need all but one band volume alive.
            let g = p.geom;
            let down = (g.base..g.base + g.group)
                .filter(|&v| self.failed[v as usize])
                .count();
            if down > 1 {
                return Err(AdmissionError::VolumeFailed);
            }
        }
        let mut entries = self.admit_entries();
        entries.push((params, shares, if parity.is_some() { 2 } else { 1 }));
        // Every checked open feeds the popularity estimator; when the
        // hot set changes, the manager re-pins prefixes in the cache.
        self.manager.observe_open(name, &mut self.cache);
        // Deferred admission (DESIGN §16): a hot title whose whole
        // prefix is memory-resident starts from memory and reserves a
        // disk share only when its prefix drains (reserve-at-drain), so
        // only buffer memory is checked at open.
        if self.prefix_resident_for(name, &table) {
            let mut deferred = entries.clone();
            deferred.last_mut().expect("pushed above").1 = vec![0.0; self.cfg.volumes];
            if self.admit_set(&deferred).is_ok() {
                let id = self.install_stream(name, table, extents, mirror, parity, params);
                self.streams
                    .get_mut(&id.0)
                    .expect("installed above")
                    .cache_state = CacheState::Prefix;
                self.cache.stats_mut().prefix_admitted_streams += 1;
                return Ok(id);
            }
        }
        // Does the new stream trail an active stream on the same movie
        // closely enough to be fed from the interval cache? (None when
        // the cache is disabled or the window does not cover the gap.)
        let cached_need = self.cache_candidate(name, &table, params, Duration::ZERO, None);
        match self.admit_set(&entries) {
            Ok(()) => {
                let id = self.install_stream(name, table, extents, mirror, parity, params);
                // Disk-admitted, but opportunistically cache-served:
                // the spindle keeps the reservation, the cache saves
                // the bandwidth while the interval holds.
                if let Some(need) = cached_need {
                    self.attach_cached(id, need, false);
                }
                Ok(id)
            }
            Err(e) => {
                // Cache-aware admission: a trailing stream holds zero
                // disk shares, so re-test the set with the newcomer's
                // disk load removed (its buffer demand still counts).
                let Some(need) = cached_need else {
                    return Err(e);
                };
                let last = entries.last_mut().expect("pushed above");
                last.1 = vec![0.0; self.cfg.volumes];
                if self.admit_set(&entries).is_err() {
                    return Err(e);
                }
                let id = self.install_stream(name, table, extents, mirror, parity, params);
                self.attach_cached(id, need, true);
                self.cache.stats_mut().cache_admitted_streams += 1;
                Ok(id)
            }
        }
    }

    /// Whether a stream of `name` starting at media time `from` can be
    /// fed from the interval cache, and — if so — the cache bytes to
    /// reserve for it: the gap to its nearest cache-dependent
    /// predecessor (whose pins already cover the rest of the window),
    /// plus a double-buffer-safe margin of three intervals and two
    /// chunks, all at the stream's worst-case rate.
    fn cache_candidate(
        &self,
        name: &str,
        table: &ChunkTable,
        params: StreamParams,
        from: Duration,
        exclude: Option<StreamId>,
    ) -> Option<u64> {
        if !self.cache.enabled() {
            return None;
        }
        let frontier = self.cache.frontier(name)?;
        let gap = frontier.saturating_sub(from);
        // Two intervals behind the frontier is the minimum for the
        // double-buffered fetch horizon to stay inside the window.
        if gap < self.cfg.interval * 2 {
            return None;
        }
        // The window only keeps filling while a disk-fed stream of the
        // movie is running ahead of us.
        let leader = self
            .streams
            .values()
            .any(|s| s.name == name && s.clock.is_running() && !s.cache_state.is_cached());
        if !leader {
            return None;
        }
        if !self.cache.covers(name, table, from) {
            return None;
        }
        let pred = self
            .streams
            .values()
            .filter(|s| {
                Some(s.id) != exclude
                    && s.name == name
                    && s.cache_state.is_cached()
                    && s.prefetch_cursor >= from
            })
            .map(|s| s.prefetch_cursor)
            .min();
        let span = pred.unwrap_or(frontier).saturating_sub(from);
        // The configured gap bounds the distance to the nearest stream
        // ahead — chained trailing streams each ride the window of the
        // one before them.
        if span > self.cfg.max_cache_gap {
            return None;
        }
        let t = self.cfg.interval.as_secs_f64();
        let need =
            ((span.as_secs_f64() + 3.0 * t) * params.rate + 2.0 * params.chunk).ceil() as u64;
        if self.cache.reserved() + need > self.cache.budget() {
            return None;
        }
        Some(need)
    }

    /// Whether `name` qualifies for deferred (prefix) admission: it is
    /// in the hot set and its whole prefix is memory-resident.
    fn prefix_resident_for(&self, name: &str, table: &ChunkTable) -> bool {
        if !self.manager.enabled() || !self.cache.enabled() || !self.manager.is_hot(name) {
            return false;
        }
        let end = self.cfg.prefix_secs.min(table.total_duration());
        self.cache.prefix_resident(name, table, Duration::ZERO, end)
    }

    /// Re-installs a deferred-admission stream during crash recovery.
    /// The cache is empty after a restart, so the prefix-residency test
    /// cannot re-pass; the stream is installed with zero disk shares
    /// (buffer memory still checked) in state
    /// [`CacheState::Prefix`], and its first serve miss walks the
    /// ordinary drain path — a disk re-admission at that tick.
    pub fn open_deferred_replicated(
        &mut self,
        name: &str,
        table: ChunkTable,
        extents: Vec<VolumeExtent>,
        mirror: Option<Vec<VolumeExtent>>,
    ) -> Result<StreamId, AdmissionError> {
        let params = StreamParams::new(table.worst_rate(), table.max_chunk_size() as f64);
        let mut entries = self.admit_entries();
        entries.push((params, vec![0.0; self.cfg.volumes], 1));
        self.admit_set(&entries)?;
        self.manager.observe_open(name, &mut self.cache);
        let id = self.install_stream(name, table, extents, mirror, None, params);
        self.streams
            .get_mut(&id.0)
            .expect("installed above")
            .cache_state = CacheState::Prefix;
        self.cache.stats_mut().prefix_admitted_streams += 1;
        Ok(id)
    }

    /// Marks an installed stream cache-fed and registers it as a
    /// follower of its movie's window.
    fn attach_cached(&mut self, id: StreamId, need: u64, admitted: bool) {
        let s = self.streams.get_mut(&id.0).expect("stream installed");
        s.cache_state = if admitted {
            CacheState::Admitted { reserved: need }
        } else {
            CacheState::Served { reserved: need }
        };
        let name = s.name.clone();
        let from = s.prefetch_cursor;
        self.cache.reserve(need);
        self.cache.add_follower(&name, id.0, from);
    }

    /// Detaches a stream from the cache: strips its pins and releases
    /// its reservation in the same call (no leaked pins).
    fn detach_cached(&mut self, id: StreamId) {
        let s = self.streams.get_mut(&id.0).expect("no such stream");
        let reserved = s.cache_state.reserved();
        if !s.cache_state.is_cached() {
            return;
        }
        let name = s.name.clone();
        self.cache.remove_follower(&name, id.0);
        self.cache.unreserve(reserved);
    }

    /// Handles a broken interval (serve miss) for a cache-fed stream:
    /// detach, then either revert silently to the still-charged disk
    /// path (cache-*served*) or re-run disk admission (cache-*admitted*)
    /// — stopping the stream if the disk cannot take it.
    fn break_cached(&mut self, sid: u32, now: Instant) {
        self.cache.stats_mut().interval_breaks += 1;
        let id = StreamId(sid);
        self.detach_cached(id);
        let state = self.stream(id).cache_state;
        self.streams
            .get_mut(&sid)
            .expect("no such stream")
            .cache_state = CacheState::Disk;
        if let CacheState::Admitted { .. } = state {
            let entries = self.admit_entries();
            if self.admit_set(&entries).is_err() {
                // No disk headroom for the orphaned follower: it stops
                // where it is (the client may retry later, when other
                // streams have closed).
                self.park_stream(sid, now);
            }
        }
    }

    fn shares_of(&self, extents: &[VolumeExtent], mirror: Option<&[VolumeExtent]>) -> Vec<f64> {
        match mirror {
            None => volume_shares(extents, self.cfg.volumes),
            Some(m) => {
                let mut all = extents.to_vec();
                all.extend(m.iter().cloned());
                volume_shares(&all, self.cfg.volumes)
            }
        }
    }

    /// Opens a stream *without* the admission test — the Figure 6 sweep
    /// measures achieved throughput past the admitted load. Real
    /// deployments use [`CrasServer::open`].
    pub fn open_unchecked(
        &mut self,
        name: &str,
        table: ChunkTable,
        extents: Vec<Extent>,
    ) -> StreamId {
        self.open_placed_unchecked(name, table, on_volume(VolumeId(0), extents))
    }

    /// [`CrasServer::open_unchecked`] with a volume-aware extent map.
    pub fn open_placed_unchecked(
        &mut self,
        name: &str,
        table: ChunkTable,
        extents: Vec<VolumeExtent>,
    ) -> StreamId {
        self.open_replicated_unchecked(name, table, extents, None)
    }

    /// [`CrasServer::open_replicated`] without the admission test.
    pub fn open_replicated_unchecked(
        &mut self,
        name: &str,
        table: ChunkTable,
        extents: Vec<VolumeExtent>,
        mirror: Option<Vec<VolumeExtent>>,
    ) -> StreamId {
        let params = StreamParams::new(table.worst_rate(), table.max_chunk_size() as f64);
        self.install_stream(name, table, extents, mirror, None, params)
    }

    /// [`CrasServer::open_parity`] without the admission test.
    pub fn open_parity_unchecked(
        &mut self,
        name: &str,
        table: ChunkTable,
        extents: Vec<VolumeExtent>,
        parity: ParityState,
    ) -> StreamId {
        let params = StreamParams::new(table.worst_rate(), table.max_chunk_size() as f64);
        self.install_stream(name, table, extents, None, Some(parity), params)
    }

    fn install_stream(
        &mut self,
        name: &str,
        table: ChunkTable,
        extents: Vec<VolumeExtent>,
        mirror: Option<Vec<VolumeExtent>>,
        parity: Option<ParityState>,
        params: StreamParams,
    ) -> StreamId {
        let t = self.cfg.interval.as_secs_f64();
        let id = StreamId(self.next_stream);
        self.next_stream += 1;
        // Buffer sizing is 2·(T·R + C) — disk-parameter-independent, so
        // any volume's evaluator gives the same answer.
        let buffer_bytes = self.admissions[0].buffer_for(t, &params);
        let shares = match &parity {
            Some(p) => p.geom.admission_shares(self.cfg.volumes),
            None => self.shares_of(&extents, mirror.as_deref()),
        };
        self.streams.insert(
            id.0,
            Stream {
                id,
                name: name.to_string(),
                table,
                extents,
                mirror,
                parity,
                params,
                shares,
                clock: LogicalClock::new(),
                buffer: TimeDrivenBuffer::new(buffer_bytes, self.cfg.jitter),
                prefetch_cursor: Duration::ZERO,
                cache_state: CacheState::Disk,
            },
        );
        id
    }

    /// `crs_close`: releases the stream and its buffer.
    ///
    /// # Panics
    ///
    /// Panics if the stream does not exist.
    pub fn close(&mut self, id: StreamId) {
        let s = self.streams.remove(&id.0).expect("no such stream");
        // A closing leader orphans its followers (they dissolve at the
        // next tick); a closing follower leaves its join.
        self.joins.remove(&id.0);
        if let CacheState::Joined { leader } = s.cache_state {
            self.leave_join(leader, id.0);
        }
        // Orphan any in-flight batches; their completions become no-ops.
        self.pending.retain(|_, b| b.stream != id);
        self.outstanding.remove(&id.0);
        self.done.retain(|b| b.stream != id);
        if self.cache.enabled() {
            // Release this stream's pins and reservation now, and drop
            // the movie's window when its last stream leaves.
            self.cache.remove_follower(&s.name, id.0);
            self.cache.unreserve(s.cache_state.reserved());
            if !self.streams.values().any(|o| o.name == s.name) {
                self.cache.drop_movie(&s.name);
            }
        }
    }

    /// `crs_start`: starts pre-fetching; the logical clock begins after
    /// the configured initial delay. Returns the playback start time.
    ///
    /// With a nonzero join window, a fresh stream starting within the
    /// window of a same-title stream whose playback has not yet begun
    /// coalesces onto that leader's reads instead (batched join): its
    /// clock anchors on the leader's begin, the leader's already-posted
    /// chunks are backfilled, and later batches are multicast as they
    /// post — zero disk commands of its own.
    pub fn start(&mut self, id: StreamId, now: Instant) -> Instant {
        let delay = self.cfg.interval * self.cfg.initial_delay_intervals as u64;
        let begin = now + delay;
        if let Some(leader) = self.join_candidate(id, now) {
            return self.join_stream(id, leader, now);
        }
        let s = self.streams.get_mut(&id.0).expect("no such stream");
        s.clock.start(begin);
        // A cache-admitted stream holds no disk reservation: it must
        // re-attach to its movie's window at the frozen cursor. If the
        // window has moved on, the first tick's serve miss breaks the
        // interval and re-runs disk admission.
        if matches!(s.cache_state, CacheState::Admitted { .. }) {
            let (name, from, params) = (s.name.clone(), s.prefetch_cursor, s.params);
            let table = s.table.clone();
            // Drop any reservation held from open (or a prior attach)
            // before re-sizing it for the current window position.
            self.detach_cached(id);
            let state = match self.cache_candidate(&name, &table, params, from, Some(id)) {
                Some(need) => {
                    self.cache.reserve(need);
                    self.cache.add_follower(&name, id.0, from);
                    CacheState::Admitted { reserved: need }
                }
                None => CacheState::Admitted { reserved: 0 },
            };
            self.streams
                .get_mut(&id.0)
                .expect("checked above")
                .cache_state = state;
        }
        begin
    }

    /// The stream a starting stream should join, if any: a same-title,
    /// normal-rate leader whose playback begin is still in the future
    /// (nothing consumed — the follower misses no frames) and within
    /// the join window of the follower's natural begin. Ties go to the
    /// lowest stream id so coalescing is order-independent.
    fn join_candidate(&self, id: StreamId, now: Instant) -> Option<u32> {
        if self.cfg.join_window == Duration::ZERO {
            return None;
        }
        let s = self.stream(id);
        // Only a fresh stream (position zero, nothing fetched) can ride
        // a leader's reads frame for frame.
        if s.prefetch_cursor > Duration::ZERO || s.clock.media_time(now) > Duration::ZERO {
            return None;
        }
        let delay = self.cfg.interval * self.cfg.initial_delay_intervals as u64;
        let natural = now + delay;
        self.streams
            .values()
            .filter(|l| {
                l.id != id
                    && l.name == s.name
                    && l.clock.is_running()
                    && l.clock.rate() >= 1.0
                    && l.clock.rate() <= 1.0
                    && !matches!(l.cache_state, CacheState::Joined { .. })
            })
            .filter(|l| {
                // The leader must be playing from the top and its begin
                // must still be ahead, within the join window of ours.
                l.clock.media_time(now) == Duration::ZERO
                    && l.clock.anchor().is_some_and(|b| {
                        b > now && natural.saturating_since(b) <= self.cfg.join_window
                    })
            })
            .map(|l| l.id.0)
            .min()
    }

    /// Coalesces a starting stream onto `leader`'s read stream: anchors
    /// its clock on the leader's begin, backfills the chunks the leader
    /// has already posted, and registers it for multicast of the rest.
    fn join_stream(&mut self, id: StreamId, leader: u32, now: Instant) -> Instant {
        // Any reservation held from the open path is superseded.
        self.detach_cached(id);
        let (begin, fetched_to) = {
            let l = self.streams.get(&leader).expect("candidate exists");
            (
                l.clock.anchor().expect("candidate is running"),
                l.prefetch_cursor,
            )
        };
        // The leader's fetched range splits into posted chunks (already
        // in its buffer — backfill them) and in-flight/unposted batches
        // (they multicast at their own post time). The boundary is the
        // lowest chunk index among its outstanding batches.
        let unposted_lo = self
            .pending
            .values()
            .filter(|b| b.stream.0 == leader)
            .map(|b| b.chunk_lo)
            .chain(
                self.done
                    .iter()
                    .filter(|b| b.stream.0 == leader)
                    .map(|b| b.chunk_lo),
            )
            .min();
        let s = self.streams.get_mut(&id.0).expect("no such stream");
        s.cache_state = CacheState::Joined { leader };
        s.clock.start(begin);
        let media_now = s.clock.media_time(now);
        let mut cursor = Duration::ZERO;
        if fetched_to > Duration::ZERO {
            for c in s.table.chunks_in(Duration::ZERO, fetched_to) {
                if unposted_lo.is_some_and(|lim| c.index >= lim) {
                    break;
                }
                s.buffer.put(
                    BufferedChunk {
                        index: c.index,
                        timestamp: c.timestamp,
                        duration: c.duration,
                        size: c.size,
                        posted_at: now,
                    },
                    media_now,
                );
                cursor = c.timestamp + c.duration;
            }
        }
        s.prefetch_cursor = cursor;
        self.joins.entry(leader).or_default().push(id.0);
        self.cache.stats_mut().joined_streams += 1;
        begin
    }

    /// Removes `follower` from `leader`'s multicast list.
    fn leave_join(&mut self, leader: u32, follower: u32) {
        if let Some(v) = self.joins.get_mut(&leader) {
            v.retain(|&f| f != follower);
            if v.is_empty() {
                self.joins.remove(&leader);
            }
        }
    }

    /// Dissolves a joined stream whose leader no longer multicasts to
    /// it (stopped, sought, changed rate, parked, or closed). A fully-
    /// delivered follower needs nothing; otherwise it must reserve a
    /// disk share. Idempotent: a stream that already dissolved (or
    /// closed) this tick is left alone.
    fn dissolve_joined(&mut self, sid: u32, now: Instant) {
        let Some(s) = self.streams.get_mut(&sid) else {
            return;
        };
        if !matches!(s.cache_state, CacheState::Joined { .. }) {
            return;
        }
        if s.prefetch_cursor >= s.table.total_duration() {
            // Everything was delivered before the leader left: nothing
            // left to read, no reservation needed.
            s.cache_state = CacheState::Admitted { reserved: 0 };
            return;
        }
        self.reserve_disk_share(sid, now);
    }

    /// Tries to secure a feed for a stream holding no reservation: disk
    /// admission first, then the interval-cache window. Returns
    /// `Some(true)` for a disk share, `Some(false)` for a cache window,
    /// `None` when neither can take it (state restored to the zero-
    /// share marker).
    fn try_reserve_feed(&mut self, sid: u32) -> Option<bool> {
        let id = StreamId(sid);
        self.streams
            .get_mut(&sid)
            .expect("no such stream")
            .cache_state = CacheState::Disk;
        let entries = self.admit_entries();
        if self.admit_set(&entries).is_ok() {
            return Some(true);
        }
        let (name, params, table, from) = {
            let s = self.stream(id);
            (s.name.clone(), s.params, s.table.clone(), s.prefetch_cursor)
        };
        if let Some(need) = self.cache_candidate(&name, &table, params, from, Some(id)) {
            self.attach_cached(id, need, true);
            self.cache.stats_mut().cache_admitted_streams += 1;
            return Some(false);
        }
        self.streams
            .get_mut(&sid)
            .expect("no such stream")
            .cache_state = CacheState::Admitted { reserved: 0 };
        None
    }

    /// Parks a stream that found no feed: the clock stops where it is
    /// (the viewer rebuffers; [`CrasServer::resume`] retries later) and
    /// any joined followers are orphaned — a parked leader fetches
    /// nothing, so they must find feeds of their own, in this same tick.
    fn park_stream(&mut self, sid: u32, now: Instant) {
        if let Some(fs) = self.joins.remove(&sid) {
            self.parked_orphans.extend(fs);
        }
        let s = self.streams.get_mut(&sid).expect("no such stream");
        s.clock.stop(now);
        s.cache_state = CacheState::Admitted { reserved: 0 };
        let name = s.name.clone();
        self.cache.stats_mut().cache_rejected_streams += 1;
        self.pending_rejects.push(name);
        self.pending_parks.push(sid);
    }

    /// Reserves a disk share for a stream that lost its zero-share feed
    /// (drained prefix or dissolved join): disk admission first, then
    /// the interval-cache window, else the stream is parked (clock
    /// stopped) for the client to retry. Returns whether a *disk* share
    /// was reserved.
    fn reserve_disk_share(&mut self, sid: u32, now: Instant) -> bool {
        match self.try_reserve_feed(sid) {
            Some(disk) => disk,
            None => {
                // Parked: neither the spindles nor the cache can take
                // it now.
                self.park_stream(sid, now);
                false
            }
        }
    }

    /// Parks a *running* stream on the caller's initiative (delivery
    /// backpressure, DESIGN §18): the clock freezes where it is and the
    /// stream sheds whatever feed it held — cache pins and reservation,
    /// join membership (followers of a parked leader are orphaned into
    /// this tick's re-feed pass), and its disk share, which the
    /// recomputed admission set releases because a parked stream scores
    /// zero shares. [`CrasServer::resume`] restarts it later through
    /// the ordinary feed ladder. Returns false (leaving the stream
    /// untouched) when the stream does not exist or its clock is
    /// already stopped — an already-parked or never-started stream has
    /// nothing to shed.
    pub fn park(&mut self, id: StreamId, now: Instant) -> bool {
        match self.streams.get(&id.0) {
            Some(s) if s.clock.is_running() => {}
            _ => return false,
        }
        self.detach_cached(id);
        if let CacheState::Joined { leader } = self.stream(id).cache_state {
            self.leave_join(leader, id.0);
        }
        self.park_stream(id.0, now);
        true
    }

    /// Retries admission for a parked stream (the client's `crs_start`
    /// after a rebuffer): if the spindles or the cache can feed it now,
    /// the clock restarts from the frozen position after the standard
    /// initial delay. Returns `(begin, disk)` on success — `disk` is
    /// true when a real disk share was reserved (the caller should
    /// journal the promotion like any reserve-at-drain) — and `None`
    /// when the stream is still unservable or was not parked.
    pub fn resume(&mut self, id: StreamId, now: Instant) -> Option<(Instant, bool)> {
        let s = self.streams.get(&id.0)?;
        if s.clock.is_running() || !matches!(s.cache_state, CacheState::Admitted { reserved: 0 }) {
            return None;
        }
        let disk = self.try_reserve_feed(id.0)?;
        let delay = self.cfg.interval * self.cfg.initial_delay_intervals as u64;
        let begin = now + delay;
        self.streams
            .get_mut(&id.0)
            .expect("checked above")
            .clock
            .start(begin);
        Some((begin, disk))
    }

    /// `crs_stop`: stops the logical clock; pre-fetching ceases at the
    /// frozen position. A cache-fed stream's pins and reservation are
    /// released in this same call — a stopped client must not hold
    /// frames in memory indefinitely.
    pub fn stop(&mut self, id: StreamId, now: Instant) {
        self.detach_cached(id);
        // A stopping leader orphans its followers (they dissolve at the
        // next tick); a stopping follower leaves its join.
        self.joins.remove(&id.0);
        if let CacheState::Joined { leader } = self.stream(id).cache_state {
            self.leave_join(leader, id.0);
        }
        let s = self.streams.get_mut(&id.0).expect("no such stream");
        s.clock.stop(now);
        match s.cache_state {
            // The disk reservation is still held: plain disk stream.
            CacheState::Served { .. } => s.cache_state = CacheState::Disk,
            // No disk reservation: remember that a restart must either
            // re-attach to the window or pass disk admission.
            CacheState::Admitted { .. } | CacheState::Joined { .. } => {
                s.cache_state = CacheState::Admitted { reserved: 0 }
            }
            // Still feeding from its resident prefix; a restart resumes
            // it and the drain path reserves a share when it runs out.
            CacheState::Prefix => {}
            CacheState::Disk => {}
        }
    }

    /// `crs_seek`: repositions the logical clock; buffered data is stale
    /// and dropped, in-flight pre-fetches are orphaned, and pre-fetching
    /// resumes from the new position. A cache-fed stream's pins are
    /// released here (not at the next eviction sweep); it re-attaches
    /// at the new position when the window covers it, otherwise it
    /// falls back to the disk path (with a re-admission test if it was
    /// cache-admitted).
    pub fn seek(&mut self, id: StreamId, now: Instant, to: Duration) {
        self.detach_cached(id);
        // A seeking leader's reads no longer match its followers; a
        // seeking follower leaves its join (the new position needs its
        // own feed).
        self.joins.remove(&id.0);
        if let CacheState::Joined { leader } = self.stream(id).cache_state {
            self.leave_join(leader, id.0);
        }
        let s = self.streams.get_mut(&id.0).expect("no such stream");
        s.clock.seek(now, to);
        s.buffer.clear();
        s.prefetch_cursor = to;
        let state = s.cache_state;
        // Pre-seek fetches would post chunks the clock has abandoned
        // (possibly colliding with the refetched range): drop them.
        self.pending.retain(|_, b| b.stream != id);
        self.outstanding.remove(&id.0);
        self.done.retain(|b| b.stream != id);
        if !state.is_cached() {
            return;
        }
        let (name, params, table) = {
            let s = self.stream(id);
            (s.name.clone(), s.params, s.table.clone())
        };
        if let Some(need) = self.cache_candidate(&name, &table, params, to, Some(id)) {
            // The window covers the new position: stay cache-fed. Any
            // zero-disk-share state (cache-admitted, prefix-deferred, or
            // joined) must hold a cache reservation from here on.
            self.attach_cached(
                id,
                need,
                matches!(
                    state,
                    CacheState::Admitted { .. } | CacheState::Prefix | CacheState::Joined { .. }
                ),
            );
            return;
        }
        match state {
            CacheState::Served { .. } => {
                // Disk capacity was never released; just read from disk.
                self.streams.get_mut(&id.0).expect("checked").cache_state = CacheState::Disk;
            }
            CacheState::Admitted { .. } | CacheState::Prefix | CacheState::Joined { .. } => {
                // Needs a disk reservation now: re-run the admission
                // test with this stream's real shares.
                self.streams.get_mut(&id.0).expect("checked").cache_state = CacheState::Disk;
                let entries = self.admit_entries();
                if self.admit_set(&entries).is_err() {
                    self.park_stream(id.0, now);
                }
            }
            CacheState::Disk => {}
        }
    }

    /// Changes a stream's retrieval rate (fast forward: "CRAS needs to
    /// retrieve all the video frames at twice the normal speed"),
    /// re-running the admission test at the scaled rate.
    pub fn set_rate(
        &mut self,
        id: StreamId,
        now: Instant,
        rate: f64,
    ) -> Result<(), AdmissionError> {
        assert!(rate > 0.0 && rate.is_finite(), "bad rate");
        let t = self.cfg.interval.as_secs_f64();
        let base = {
            let s = self.streams.get(&id.0).expect("no such stream");
            StreamParams::new(s.table.worst_rate() * rate, s.params.chunk)
        };
        let entries: Vec<AdmitEntry> = self
            .streams
            .values()
            .map(|s| {
                if s.id == id {
                    // A rate change ends any cache dependence (the gap
                    // to the leader would drift), so the stream needs a
                    // full disk reservation at the new rate.
                    (base, s.shares.clone(), s.spindle_reads())
                } else {
                    (s.params, s.admission_shares(), s.spindle_reads())
                }
            })
            .collect();
        self.admit_set(&entries)?;
        self.detach_cached(id);
        // A rate change also ends any join in either role: a leader's
        // reads no longer match its followers, and a follower can no
        // longer ride its leader's normal-rate reads.
        self.joins.remove(&id.0);
        if let CacheState::Joined { leader } = self.stream(id).cache_state {
            self.leave_join(leader, id.0);
        }
        let need = self.admissions[0].buffer_for(t, &base);
        let s = self.streams.get_mut(&id.0).expect("no such stream");
        s.cache_state = CacheState::Disk;
        s.params = base;
        s.clock.set_rate(now, rate);
        // Resize in both directions: growing keeps the guarantee at the
        // higher rate, shrinking keeps the wired memory equal to what the
        // admission test accounted for.
        if need != s.buffer.capacity() {
            s.buffer = TimeDrivenBuffer::new(need, self.cfg.jitter);
        }
        Ok(())
    }

    /// `crs_get` (client side): the chunk at `media_time` from the
    /// stream's time-driven buffer. No server communication happens in the
    /// real system; here it is a read-mostly buffer probe.
    pub fn get(&mut self, id: StreamId, media_time: Duration) -> Option<BufferedChunk> {
        let s = self.streams.get_mut(&id.0).expect("no such stream");
        s.buffer.get(media_time)
    }

    /// A diagnostic report for one stream.
    ///
    /// # Panics
    ///
    /// Panics if the stream does not exist.
    pub fn stream_report(&self, id: StreamId) -> StreamReport {
        let s = self.stream(id);
        StreamReport {
            running: s.clock.is_running(),
            rate: s.clock.rate(),
            prefetch_cursor: s.prefetch_cursor,
            buffer_capacity: s.buffer.capacity(),
            buffer_bytes: s.buffer.bytes(),
            buffer: s.buffer.stats(),
        }
    }

    /// Media time of the stream's *server* clock at `now`.
    pub fn media_time(&self, id: StreamId, now: Instant) -> Duration {
        self.stream(id).clock.media_time(now)
    }

    /// The periodic request-scheduler pass at the start of interval
    /// `index` (real time `now`): posts completed data, detects overruns,
    /// and plans the next interval's reads.
    pub fn interval_tick(&mut self, now: Instant) -> IntervalReport {
        let index = self.stats.intervals;
        self.stats.intervals += 1;

        // Deadline manager: anything still pending from the last interval
        // missed its deadline.
        let overran = !self.pending.is_empty();
        if overran {
            self.stats.deadline_misses += 1;
        }

        // Phase 1: post the previous interval's data into the buffers.
        let mut posted = 0usize;
        for batch in std::mem::take(&mut self.done) {
            let Some(s) = self.streams.get_mut(&batch.stream.0) else {
                continue; // Closed while in flight.
            };
            let media_now = s.clock.media_time(now);
            for i in batch.chunk_lo..=batch.chunk_hi {
                let c = *s.table.get(i).expect("batch chunk in table");
                s.buffer.put(
                    BufferedChunk {
                        index: c.index,
                        timestamp: c.timestamp,
                        duration: c.duration,
                        size: c.size,
                        posted_at: now,
                    },
                    media_now,
                );
                posted += 1;
            }
            // Every disk batch a stream posts also lands in the
            // interval cache (no-op when the cache is disabled), so a
            // trailing stream of the same movie finds it in memory.
            if self.cache.enabled() && !batch.from_cache {
                let chunks = &s.table.chunks()[batch.chunk_lo as usize..=batch.chunk_hi as usize];
                self.cache.insert_posted(&s.name, chunks);
            }
            // Multicast: every follower joined to this stream receives
            // the same chunks in its own buffer, at its own (identical)
            // clock — one disk read feeds the whole batch of viewers.
            let cast: Vec<u32> = self.joins.get(&batch.stream.0).cloned().unwrap_or_default();
            for fid in cast {
                let Some(f) = self.streams.get_mut(&fid) else {
                    continue;
                };
                if !matches!(f.cache_state,
                    CacheState::Joined { leader } if leader == batch.stream.0)
                {
                    continue;
                }
                let media_now = f.clock.media_time(now);
                for i in batch.chunk_lo..=batch.chunk_hi {
                    let c = *f.table.get(i).expect("batch chunk in table");
                    f.buffer.put(
                        BufferedChunk {
                            index: c.index,
                            timestamp: c.timestamp,
                            duration: c.duration,
                            size: c.size,
                            posted_at: now,
                        },
                        media_now,
                    );
                    posted += 1;
                }
                if let Some(c) = f.table.get(batch.chunk_hi) {
                    f.prefetch_cursor = f.prefetch_cursor.max(c.timestamp + c.duration);
                }
            }
        }
        self.stats.chunks_posted += posted as u64;

        // Phase 2: plan reads for data needed by the end of the *next*
        // interval (fetched this interval, posted at the next tick).
        let horizon = now + self.cfg.interval * 2;

        // Phase 1.5: cache-fed streams first. Their interval is pushed
        // straight into the done queue (posting at the next tick, the
        // same timing a disk fetch would have) and they issue zero disk
        // commands. A serve miss breaks the interval: the stream falls
        // back to the disk path below, re-running admission if it was
        // cache-admitted.
        let mut cache_served = 0usize;
        let mut broken: Vec<u32> = Vec::new();
        let mut orphaned: Vec<u32> = Vec::new();
        let mut drained: Vec<u32> = Vec::new();
        if self.cache.enabled() || self.cfg.join_window > Duration::ZERO {
            let stream_ids: Vec<u32> = self.streams.keys().copied().collect();
            for sid in stream_ids {
                let s = self.streams.get_mut(&sid).expect("iterating keys");
                if !s.cache_state.is_cached() || !s.clock.is_running() {
                    continue;
                }
                if let CacheState::Joined { leader } = s.cache_state {
                    // A live join is fed by phase-1 multicast. An
                    // orphaned follower (its leader stopped matching)
                    // must reserve a feed of its own.
                    if !self.joins.get(&leader).is_some_and(|v| v.contains(&sid)) {
                        orphaned.push(sid);
                    }
                    continue;
                }
                let target = s.clock.media_time(horizon).min(s.table.total_duration());
                if target <= s.prefetch_cursor {
                    continue;
                }
                let chunks = s.table.chunks_in(s.prefetch_cursor, target);
                if chunks.is_empty() {
                    s.prefetch_cursor = target;
                    continue;
                }
                let lo = chunks.first().expect("non-empty").index;
                let hi = chunks.last().expect("non-empty").index;
                let served = match s.cache_state {
                    // A deferred stream reads its movie's resident
                    // prefix; no follower registration, no window pins.
                    CacheState::Prefix => self.cache.serve_resident(&s.name, chunks),
                    _ => self.cache.serve(&s.name, sid, chunks),
                };
                if served {
                    s.prefetch_cursor = target;
                    self.done.push(FetchedBatch {
                        stream: StreamId(sid),
                        chunk_lo: lo,
                        chunk_hi: hi,
                        completed_at: now,
                        from_cache: true,
                    });
                    cache_served += 1;
                } else if matches!(s.cache_state, CacheState::Prefix) {
                    // The prefix has drained (or was evicted out from
                    // under the stream): reserve-at-drain happens now.
                    drained.push(sid);
                } else {
                    // Leader stopped, sought away, or the frame was
                    // evicted: the interval is broken. The cursor did
                    // not advance, so the disk path below can pick the
                    // stream up in this same tick.
                    broken.push(sid);
                }
            }
            for sid in &broken {
                self.break_cached(*sid, now);
            }
            for sid in &orphaned {
                self.dissolve_joined(*sid, now);
            }
        }
        // Reserve-at-drain: each drained deferred stream claims its disk
        // share now. Falling back to the cache window (or parking) keeps
        // it off the spindles; only real disk reservations are journaled.
        let mut deferred_reserved: Vec<u32> = Vec::new();
        for sid in &drained {
            self.cache.stats_mut().deferred_drained_streams += 1;
            if self.reserve_disk_share(*sid, now) {
                deferred_reserved.push(*sid);
            }
        }
        // A leader that parked above (broken window, failed drain)
        // orphaned its followers into `parked_orphans`; dissolve them
        // in this same tick — the parked leader fetches nothing, so
        // waiting for the next tick's orphan scan would open a one-
        // interval delivery gap for every follower.
        let mut cascade = std::mem::take(&mut self.parked_orphans);
        while !cascade.is_empty() {
            for sid in &cascade {
                self.dissolve_joined(*sid, now);
            }
            orphaned.extend(cascade);
            cascade = std::mem::take(&mut self.parked_orphans);
        }
        // A stream that fell back to the cache *window* mid-tick (its
        // prefix drained or its join dissolved) was already passed over
        // by the phase-1.5 serve loop. Feed it now: skipping this tick
        // would post its next interval one full period late — a visible
        // frame gap right at the prefix boundary. (The disk-reserving
        // outcomes need nothing here; the plan loop below runs after
        // this point and picks them up in this same tick.)
        for sid in drained.iter().chain(orphaned.iter()).copied() {
            let Some(s) = self.streams.get_mut(&sid) else {
                continue;
            };
            if !s.cache_state.is_cached() || !s.clock.is_running() {
                continue;
            }
            let target = s.clock.media_time(horizon).min(s.table.total_duration());
            if target <= s.prefetch_cursor {
                continue;
            }
            let chunks = s.table.chunks_in(s.prefetch_cursor, target);
            if chunks.is_empty() {
                s.prefetch_cursor = target;
                continue;
            }
            let lo = chunks.first().expect("non-empty").index;
            let hi = chunks.last().expect("non-empty").index;
            if self.cache.serve(&s.name, sid, chunks) {
                s.prefetch_cursor = target;
                self.done.push(FetchedBatch {
                    stream: StreamId(sid),
                    chunk_lo: lo,
                    chunk_hi: hi,
                    completed_at: now,
                    from_cache: true,
                });
                cache_served += 1;
            } else {
                self.break_cached(sid, now);
            }
        }
        let mut reqs: Vec<ReadReq> = Vec::new();
        let mut active: Vec<Vec<StreamParams>> = vec![Vec::new(); self.cfg.volumes];
        // Bytes planned per volume so far this interval — the planner's
        // own half of the unified read-steering signal.
        let mut planned = vec![0u64; self.cfg.volumes];
        // The external half, converted to bytes once per tick: each
        // outstanding device command is charged at one full read, and
        // recent completion lag at the spindle's transfer rate.
        let ext_bytes: Vec<f64> = (0..self.cfg.volumes)
            .map(|v| {
                let ext = self.ext_load[v];
                ext.queued as f64 * self.cfg.max_read_bytes as f64
                    + ext.lag.max(0.0) * self.admissions[v].disk_params().transfer_rate
            })
            .collect();
        let mut degraded_streams = 0usize;
        let mut steered_streams = 0usize;
        let mut lost_streams = 0usize;
        let stream_ids: Vec<u32> = self.streams.keys().copied().collect();
        for sid in stream_ids {
            if self.outstanding.get(&sid).copied().unwrap_or(0) >= self.cfg.max_outstanding_batches
            {
                // The disk is behind for this stream; do not pile on.
                continue;
            }
            let (runs, recon, lo, hi, params, active_shares, degraded, steered) = {
                let s = self.streams.get_mut(&sid).expect("iterating keys");
                if !s.clock.is_running() {
                    continue;
                }
                if s.cache_state.is_cached() {
                    // Fed from the interval cache in phase 1.5: zero
                    // disk commands for this stream.
                    continue;
                }
                let target = s.clock.media_time(horizon).min(s.table.total_duration());
                if target <= s.prefetch_cursor {
                    continue;
                }
                let chunks = s.table.chunks_in(s.prefetch_cursor, target);
                s.prefetch_cursor = target;
                if chunks.is_empty() {
                    continue;
                }
                let lo = chunks.first().expect("non-empty").index;
                let hi = chunks.last().expect("non-empty").index;
                let byte_lo = chunks.first().expect("non-empty").file_offset;
                let last = chunks.last().expect("non-empty");
                let byte_hi = last.file_offset + last.size as u64;
                // The unified per-spindle load signal, bytes: what this
                // tick has already planned on the volume plus the
                // externally observed device queue and completion lag.
                let load = |v: usize| planned[v] as f64 + ext_bytes[v];
                // Pick the replica to read from. Without a mirror this
                // is the primary map, exactly the pre-redundancy path.
                let mut map_idx = 0usize;
                let mut degraded = false;
                if let Some(m) = &s.mirror {
                    let hp = Stream::home_volume(&s.extents);
                    let hm = Stream::home_volume(m);
                    let p_ok = !self.failed[hp.index()];
                    let m_ok = !self.failed[hm.index()];
                    map_idx = match (p_ok, m_ok) {
                        (true, false) => 0,
                        (false, true) => 1,
                        // Both live: steer to the spindle the unified
                        // load signal says is cheaper (ties favor the
                        // primary).
                        (true, true) => usize::from(load(hm.index()) < load(hp.index())),
                        (false, false) => {
                            // Both replicas dead: nothing can serve the
                            // batch. Drop it at plan time as a lost
                            // read — issuing to the dead primary would
                            // just let the error path eat the batch one
                            // read at a time, invisibly.
                            self.stats.lost_reads += 1;
                            lost_streams += 1;
                            continue;
                        }
                    };
                    degraded = map_idx == 1 && !p_ok;
                }
                let map: &[VolumeExtent] = match map_idx {
                    0 => &s.extents,
                    _ => s.mirror.as_ref().expect("mirror chosen above"),
                };
                let mut runs = Stream::split_runs_tagged(
                    Stream::runs_in(map, byte_lo, byte_hi),
                    self.cfg.max_read_bytes,
                );
                // Parity degraded mode: a run landing on a failed band
                // volume is replaced *at plan time* by the g-1 surviving
                // data+parity reads of its stripes, which join this
                // interval's per-spindle batches below (and are swept in
                // cylinder order with everything else). A range whose
                // band has lost a second volume is unreconstructible and
                // is dropped here.
                let mut recon: Vec<crate::stream::VolumeRun> = Vec::new();
                let mut steered = false;
                if let Some(ps) = &s.parity {
                    if runs.iter().any(|(_, r)| self.failed[r.volume.index()]) {
                        degraded = true;
                        let mut kept = Vec::with_capacity(runs.len());
                        for (logical, r) in runs {
                            if !self.failed[r.volume.index()] {
                                kept.push((logical, r));
                                continue;
                            }
                            let r_hi = logical + r.nblocks as u64 * 512;
                            match Stream::parity_recon_runs(
                                &s.extents,
                                ps,
                                logical,
                                r_hi,
                                r.volume,
                                &self.failed,
                            ) {
                                Some(rs) => {
                                    self.stats.degraded_reads += rs.len() as u64;
                                    recon.extend(rs);
                                }
                                None => self.stats.lost_reads += 1,
                            }
                        }
                        runs = kept;
                    }
                    // Coded-read steering (DESIGN §17): a run whose home
                    // spindle is live but *loaded* may instead be served
                    // as the g-1 reconstruction fan-out over the band's
                    // other members — any g-1 of g suffice — when the
                    // fan-out's projected bottleneck undercuts the
                    // direct read's by more than the hysteresis margin.
                    // Fan-out bytes join `planned` below, so later
                    // streams in this tick see their cost.
                    if self.cfg.steer_reads {
                        let margin = self.cfg.steer_margin_bytes.max(1) as f64;
                        let mut kept = Vec::with_capacity(runs.len());
                        for (logical, r) in runs {
                            let bytes = r.nblocks as u64 * 512;
                            let direct_peak = load(r.volume.index()) + bytes as f64;
                            let fanout = Stream::steer_recon_runs(
                                &s.extents,
                                ps,
                                logical,
                                logical + bytes,
                                r.volume,
                                &self.failed,
                            )
                            .and_then(|rs| {
                                let mut fan = vec![0u64; self.cfg.volumes];
                                for fr in &rs {
                                    fan[fr.volume.index()] += fr.nblocks as u64 * 512;
                                }
                                let peak = fan
                                    .iter()
                                    .enumerate()
                                    .filter(|(_, b)| **b > 0)
                                    .map(|(v, b)| load(v) + *b as f64)
                                    .fold(0.0f64, f64::max);
                                (peak + margin < direct_peak).then_some(rs)
                            });
                            match fanout {
                                Some(rs) => {
                                    self.stats.steered_reads += 1;
                                    steered = true;
                                    recon.extend(rs);
                                }
                                None => kept.push((logical, r)),
                            }
                        }
                        runs = kept;
                    }
                    recon = Stream::split_runs(recon, self.cfg.max_read_bytes);
                }
                // A mirrored stream's whole load lands on the chosen
                // replica's volume this interval; non-mirrored streams
                // keep their static per-volume shares.
                let active_shares = if s.mirror.is_some() {
                    let mut v = vec![0.0; self.cfg.volumes];
                    v[Stream::home_volume(map).index()] = 1.0;
                    v
                } else {
                    s.shares.clone()
                };
                (
                    runs,
                    recon,
                    lo,
                    hi,
                    s.params,
                    active_shares,
                    degraded,
                    steered,
                )
            };
            if degraded {
                degraded_streams += 1;
            }
            if steered {
                steered_streams += 1;
            }
            for (_, r) in &runs {
                planned[r.volume.index()] += r.nblocks as u64 * 512;
            }
            for r in &recon {
                planned[r.volume.index()] += r.nblocks as u64 * 512;
            }
            for (v, share) in active_shares.iter().enumerate() {
                if *share > 0.0 {
                    active[v].push(StreamParams::new(params.rate * share, params.chunk));
                }
            }
            if runs.is_empty() && recon.is_empty() {
                // Every run was dropped as unreconstructible: no batch to
                // wait on (the frames are simply never posted).
                continue;
            }
            let batch_id = self.next_batch;
            self.next_batch += 1;
            *self.outstanding.entry(sid).or_insert(0) += 1;
            self.pending.insert(
                batch_id,
                PendingBatch {
                    stream: StreamId(sid),
                    chunk_lo: lo,
                    chunk_hi: hi,
                    remaining: runs.len() + recon.len(),
                    issued_at: now,
                },
            );
            for (logical, r) in runs {
                let id = ReadId(self.next_read);
                self.next_read += 1;
                self.read_info.insert(
                    id.0,
                    ReadInfo {
                        batch: batch_id,
                        byte_lo: logical,
                        byte_hi: logical + r.nblocks as u64 * 512,
                        volume: r.volume,
                        recon: false,
                    },
                );
                self.stats.reads_issued += 1;
                self.stats.bytes_requested += r.nblocks as u64 * 512;
                reqs.push(ReadReq {
                    id,
                    stream: StreamId(sid),
                    volume: r.volume,
                    block: r.block,
                    nblocks: r.nblocks,
                });
            }
            for r in recon {
                let id = ReadId(self.next_read);
                self.next_read += 1;
                self.read_info.insert(
                    id.0,
                    ReadInfo {
                        batch: batch_id,
                        byte_lo: 0,
                        byte_hi: 0,
                        volume: r.volume,
                        recon: true,
                    },
                );
                self.stats.reads_issued += 1;
                self.stats.bytes_requested += r.nblocks as u64 * 512;
                reqs.push(ReadReq {
                    id,
                    stream: StreamId(sid),
                    volume: r.volume,
                    block: r.block,
                    nblocks: r.nblocks,
                });
            }
        }
        // Per volume, sweep order: C-SCAN continuing from where the
        // spindle's previous interval left its head (ascending from the
        // carried position, wrapped blocks last). A plain ascending sort
        // would restart every interval's sweep at block 0 and pay a
        // full-stroke seek back per spindle per interval.
        reqs.sort_by_key(|r| (r.volume, self.sweep[r.volume.index()].key(r.block)));
        // Carry each spindle's head position: reqs are in issue order,
        // so the last advance per volume wins. Anchor at each request's
        // *start* block — consecutive reads of a stream overlap by one
        // block, so anchoring at the end would mark every follow-on
        // read as wrapped (see [`SweepCursor::advance`]).
        for r in &reqs {
            self.sweep[r.volume.index()].advance(r.block);
        }
        let t = self.cfg.interval.as_secs_f64();
        let per_volume_calculated: Vec<f64> = active
            .iter()
            .enumerate()
            .map(|(v, a)| {
                if a.is_empty() {
                    0.0
                } else {
                    self.admissions[v].calculated_io_time(t, a)
                }
            })
            .collect();
        // The slowest spindle bounds the interval.
        let calculated = bottleneck_time(&per_volume_calculated);
        IntervalReport {
            index,
            reqs,
            posted_chunks: posted,
            overran,
            calculated_io_time: calculated,
            per_volume_calculated,
            degraded_streams,
            steered_streams,
            lost_streams,
            cache_served_streams: cache_served,
            deferred_reserved,
            cache_rejected_titles: std::mem::take(&mut self.pending_rejects),
            parked_streams: std::mem::take(&mut self.pending_parks),
        }
    }

    /// I/O-done manager: records a completed read. When a stream's whole
    /// batch is in, it is queued for posting at the next tick; returns
    /// `Some((stream, issued_at))` at that moment.
    pub fn io_done(&mut self, read: ReadId, now: Instant) -> Option<(StreamId, Instant)> {
        let Some(info) = self.read_info.remove(&read.0) else {
            return None; // Stream closed while in flight.
        };
        let batch = self.pending.get_mut(&info.batch)?;
        batch.remaining -= 1;
        if batch.remaining > 0 {
            return None;
        }
        let batch = self.pending.remove(&info.batch).expect("present above");
        self.dec_outstanding(batch.stream.0);
        let result = (batch.stream, batch.issued_at);
        self.done.push(FetchedBatch {
            stream: batch.stream,
            chunk_lo: batch.chunk_lo,
            chunk_hi: batch.chunk_hi,
            completed_at: now,
            from_cache: false,
        });
        let _ = self.done.last().map(|b| b.completed_at); // Recorded for future use.
        Some(result)
    }

    /// Degraded-read fallback: a read came back failed (media error or
    /// volume down). A mirrored stream re-maps the same logical bytes
    /// through a surviving replica; a parity stream replaces the read
    /// with the `g-1` surviving data+parity reads of the stripes it
    /// covered (the XOR of those buffers reconstructs the lost bytes).
    /// The replacement reads are returned for the orchestrator to submit
    /// (real-time class, same batch — the interval deadline still
    /// holds). With no surviving replica — or when the failed read was
    /// itself a reconstruction read, a second failure in the band — the
    /// read is dropped and, once its batch drains, the batch is
    /// discarded unposted: the frames are lost but the stream does not
    /// overrun forever.
    pub fn io_failed(&mut self, read: ReadId) -> Vec<ReadReq> {
        let Some(info) = self.read_info.remove(&read.0) else {
            return Vec::new(); // Stream closed while in flight.
        };
        let Some(sid) = self.pending.get(&info.batch).map(|b| b.stream) else {
            return Vec::new();
        };
        // Each replacement is (logical tag, run, recon?): mirror remaps
        // stay re-mappable (accurate logical tags), parity
        // reconstructions do not (their bytes address survivors' units).
        let runs: Option<Vec<(u64, crate::stream::VolumeRun, bool)>> =
            self.streams.get(&sid.0).and_then(|s| {
                if info.recon {
                    // A reconstruction read has no further fallback.
                    return None;
                }
                if let Some(ps) = &s.parity {
                    return Stream::parity_recon_runs(
                        &s.extents,
                        ps,
                        info.byte_lo,
                        info.byte_hi,
                        info.volume,
                        &self.failed,
                    )
                    .map(|rs| {
                        Stream::split_runs(rs, self.cfg.max_read_bytes)
                            .into_iter()
                            .map(|r| (0, r, true))
                            .collect()
                    });
                }
                s.replica_maps()
                    .find(|m| {
                        let home = Stream::home_volume(m);
                        home != info.volume && !self.failed[home.index()]
                    })
                    .map(|m| {
                        Stream::split_runs_tagged(
                            Stream::runs_in(m, info.byte_lo, info.byte_hi),
                            self.cfg.max_read_bytes,
                        )
                        .into_iter()
                        .map(|(logical, r)| (logical, r, false))
                        .collect()
                    })
            });
        match runs {
            Some(runs) if !runs.is_empty() => {
                let batch_id = info.batch;
                self.pending
                    .get_mut(&batch_id)
                    .expect("checked above")
                    .remaining += runs.len() - 1;
                let mut reqs = Vec::with_capacity(runs.len());
                for (logical, r, recon) in runs {
                    let id = ReadId(self.next_read);
                    self.next_read += 1;
                    self.read_info.insert(
                        id.0,
                        ReadInfo {
                            batch: batch_id,
                            byte_lo: if recon { 0 } else { logical },
                            byte_hi: if recon {
                                0
                            } else {
                                logical + r.nblocks as u64 * 512
                            },
                            volume: r.volume,
                            recon,
                        },
                    );
                    self.stats.reads_issued += 1;
                    self.stats.bytes_requested += r.nblocks as u64 * 512;
                    self.stats.degraded_reads += 1;
                    reqs.push(ReadReq {
                        id,
                        stream: sid,
                        volume: r.volume,
                        block: r.block,
                        nblocks: r.nblocks,
                    });
                }
                reqs
            }
            _ => {
                self.stats.lost_reads += 1;
                let batch = self.pending.get_mut(&info.batch).expect("checked above");
                batch.remaining -= 1;
                if batch.remaining == 0 {
                    self.pending.remove(&info.batch);
                    self.dec_outstanding(sid.0);
                }
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::cache::CacheStats;
    use cras_media::StreamProfile;
    use cras_sim::Rng;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }
    fn at(v: u64) -> Instant {
        Instant::ZERO + ms(v)
    }

    /// A 10-second MPEG1-like movie mapped to one contiguous extent.
    fn movie_table(secs: f64) -> (ChunkTable, Vec<Extent>) {
        let mut rng = Rng::new(9);
        let table = cras_media::generate_chunks(&StreamProfile::mpeg1(), secs, &mut rng);
        let nblocks = table.total_bytes().div_ceil(512) as u32;
        let extents = vec![Extent {
            file_offset: 0,
            disk_block: 10_000,
            nblocks,
        }];
        (table, extents)
    }

    fn server() -> CrasServer {
        CrasServer::new(DiskParams::paper_table4(), ServerConfig::default())
    }

    fn multi_server(volumes: usize, buffer_budget: u64) -> CrasServer {
        let mut cfg = ServerConfig::default();
        cfg.volumes = volumes;
        cfg.buffer_budget = buffer_budget;
        CrasServer::new(DiskParams::paper_table4(), cfg)
    }

    #[test]
    fn open_admits_and_allocates_buffer() {
        let mut srv = server();
        let (t, e) = movie_table(10.0);
        let id = srv.open("m", t, e).unwrap();
        // B_i = 2*(0.5*187500 + 6250) = 200 000 (+- f64 rounding of the
        // generated table's worst rate).
        let cap = srv.stream(id).buffer.capacity();
        assert!((199_999..=200_002).contains(&cap), "B_i = {cap}");
        assert_eq!(srv.memory_bytes(), SERVER_FIXED_BYTES + cap);
    }

    #[test]
    fn open_rejects_on_memory() {
        let mut cfg = ServerConfig::default();
        cfg.buffer_budget = 300_000;
        let mut srv = CrasServer::new(DiskParams::paper_table4(), cfg);
        let (t, e) = movie_table(10.0);
        srv.open("a", t.clone(), e.clone()).unwrap();
        let err = srv.open("b", t, e);
        assert!(matches!(err, Err(AdmissionError::OutOfMemory { .. })));
    }

    #[test]
    fn idle_tick_issues_nothing() {
        let mut srv = server();
        let (t, e) = movie_table(10.0);
        let _id = srv.open("m", t, e).unwrap();
        let rep = srv.interval_tick(at(0));
        assert!(rep.reqs.is_empty());
        assert_eq!(rep.posted_chunks, 0);
        assert!(!rep.overran);
    }

    #[test]
    fn start_then_prefetch_pipeline() {
        let mut srv = server();
        let (t, e) = movie_table(10.0);
        let id = srv.open("m", t, e).unwrap();
        let begin = srv.start(id, at(0));
        assert_eq!(begin, at(1000)); // 2 intervals of 0.5 s.

        // Tick 0 at t=0: clock starts at 1.0 s; horizon = 1.0 s => media 0.
        let rep0 = srv.interval_tick(at(0));
        assert!(rep0.reqs.is_empty(), "nothing needed yet");

        // Tick 1 at t=0.5: horizon = 1.5 s => media [0, 0.5).
        let rep1 = srv.interval_tick(at(500));
        assert!(!rep1.reqs.is_empty());
        let bytes: u64 = rep1.reqs.iter().map(|r| r.nblocks as u64 * 512).sum();
        // ~0.5 s of 187.5 KB/s, block-rounded.
        assert!((90_000..110_000).contains(&bytes), "bytes = {bytes}");
        // All reads <= 256 KB and sorted by block.
        assert!(rep1
            .reqs
            .iter()
            .all(|r| r.nblocks as u64 * 512 <= 256 * 1024));
        assert!(rep1.reqs.windows(2).all(|w| w[0].block <= w[1].block));
        assert!(rep1.reqs.iter().all(|r| r.volume == VolumeId(0)));

        // Complete them; chunks post at tick 2 and frame 0 is gettable at
        // media time 0 (real time 1.0 s).
        for r in &rep1.reqs {
            srv.io_done(r.id, at(700));
        }
        let rep2 = srv.interval_tick(at(1000));
        assert!(rep2.posted_chunks > 0);
        assert!(!rep2.overran);
        let got = srv.get(id, Duration::ZERO).expect("first frame buffered");
        assert_eq!(got.index, 0);
    }

    #[test]
    fn overrun_detected_when_io_lags() {
        let mut srv = server();
        let (t, e) = movie_table(10.0);
        let id = srv.open("m", t, e).unwrap();
        srv.start(id, at(0));
        srv.interval_tick(at(0));
        let rep1 = srv.interval_tick(at(500));
        assert!(!rep1.reqs.is_empty());
        // Do NOT complete the reads: next tick must flag an overrun.
        let rep2 = srv.interval_tick(at(1000));
        assert!(rep2.overran);
        assert_eq!(srv.stats().deadline_misses, 1);
    }

    #[test]
    fn stop_freezes_prefetch() {
        let mut srv = server();
        let (t, e) = movie_table(10.0);
        let id = srv.open("m", t, e).unwrap();
        srv.start(id, at(0));
        srv.interval_tick(at(0));
        let r1 = srv.interval_tick(at(500));
        for r in &r1.reqs {
            srv.io_done(r.id, at(600));
        }
        srv.stop(id, at(700));
        // Further ticks do not fetch beyond the frozen clock.
        let r2 = srv.interval_tick(at(1000));
        let r3 = srv.interval_tick(at(1500));
        // Clock froze at media 0 (it had not started); horizon stays 0.
        assert!(r2.reqs.is_empty() && r3.reqs.is_empty());
    }

    #[test]
    fn stop_then_restart_resumes_where_it_left_off() {
        let mut srv = server();
        let (t, e) = movie_table(10.0);
        let id = srv.open("m", t, e).unwrap();
        srv.start(id, at(0));
        srv.interval_tick(at(0));
        let r1 = srv.interval_tick(at(500));
        for r in &r1.reqs {
            srv.io_done(r.id, at(600));
        }
        srv.interval_tick(at(1000));
        let r2 = srv.interval_tick(at(1000));
        for r in &r2.reqs {
            srv.io_done(r.id, at(1100));
        }
        let cursor_before = srv.stream(id).prefetch_cursor;
        srv.stop(id, at(1100));
        // Paused: no new fetches over several intervals.
        let paused: usize = (3..6)
            .map(|k| srv.interval_tick(at(k * 500)).reqs.len())
            .sum();
        assert_eq!(paused, 0);
        assert_eq!(srv.stream(id).prefetch_cursor, cursor_before);
        // Restart: the clock re-arms (media resumes at its frozen
        // position after the initial delay). Already-prefetched data is
        // reused — no refetch until the horizon passes the cursor...
        srv.start(id, at(3000));
        let resumed_early = srv.interval_tick(at(3500));
        assert!(resumed_early.reqs.is_empty(), "buffered data is reused");
        // ...then fetching continues from the frozen cursor, not zero.
        let resumed = srv.interval_tick(at(4500));
        assert!(!resumed.reqs.is_empty());
        assert!(srv.stream(id).prefetch_cursor > cursor_before);
    }

    #[test]
    fn seek_clears_buffer_and_refetches() {
        let mut srv = server();
        let (t, e) = movie_table(10.0);
        let id = srv.open("m", t, e).unwrap();
        srv.start(id, at(0));
        srv.interval_tick(at(0));
        let r1 = srv.interval_tick(at(500));
        for r in &r1.reqs {
            srv.io_done(r.id, at(600));
        }
        srv.interval_tick(at(1000)); // Posts media [0, 0.5).
        assert!(srv.get(id, Duration::ZERO).is_some());
        srv.seek(id, at(1100), Duration::from_secs(5));
        assert!(srv.stream(id).buffer.is_empty());
        // Next tick prefetches from 5 s.
        let r = srv.interval_tick(at(1500));
        assert!(!r.reqs.is_empty());
        // The refetched range starts at ~5 s into the file:
        // 5 s * 187 500 B/s / 512 B ≈ block 1831 after the extent start.
        let min_block = r.reqs.iter().map(|q| q.block).min().unwrap();
        assert!(min_block >= 10_000 + 1700, "min block = {min_block}");
    }

    #[test]
    fn seek_orphans_inflight_batches() {
        let mut srv = server();
        let (t, e) = movie_table(10.0);
        let id = srv.open("m", t, e).unwrap();
        srv.start(id, at(0));
        srv.interval_tick(at(0));
        let r1 = srv.interval_tick(at(500));
        assert!(!r1.reqs.is_empty());
        // Seek while the interval's reads are still in flight.
        srv.seek(id, at(600), Duration::from_secs(5));
        for r in &r1.reqs {
            assert!(
                srv.io_done(r.id, at(700)).is_none(),
                "stale read must be orphaned"
            );
        }
        // The next tick posts nothing stale and refetches from 5 s.
        let r2 = srv.interval_tick(at(1000));
        assert_eq!(r2.posted_chunks, 0);
        assert!(!r2.overran, "orphaned batches are not overruns");
        assert!(!r2.reqs.is_empty());
    }

    #[test]
    fn prefetch_stops_at_end_of_movie() {
        let mut srv = server();
        let (t, e) = movie_table(1.0); // 1-second movie.
        let id = srv.open("m", t, e).unwrap();
        srv.start(id, at(0));
        let mut total_bytes = 0u64;
        for k in 0..10u64 {
            let rep = srv.interval_tick(at(k * 500));
            for r in &rep.reqs {
                total_bytes += r.nblocks as u64 * 512;
                srv.io_done(r.id, at(k * 500 + 100));
            }
        }
        // Only ~1 s of data (187.5 KB) ever fetched, rounded to blocks.
        assert!(total_bytes < 200_000, "fetched {total_bytes}");
        let s = srv.stream(id);
        assert_eq!(s.prefetch_cursor, s.table.total_duration());
    }

    #[test]
    fn close_orphans_inflight_io() {
        let mut srv = server();
        let (t, e) = movie_table(10.0);
        let id = srv.open("m", t, e).unwrap();
        srv.start(id, at(0));
        srv.interval_tick(at(0));
        let r1 = srv.interval_tick(at(500));
        assert!(!r1.reqs.is_empty());
        srv.close(id);
        // Completions for the closed stream are ignored.
        for r in &r1.reqs {
            assert!(srv.io_done(r.id, at(600)).is_none());
        }
        assert_eq!(srv.stream_count(), 0);
        let rep = srv.interval_tick(at(1000));
        assert_eq!(rep.posted_chunks, 0);
        assert!(!rep.overran);
    }

    #[test]
    fn set_rate_readmits() {
        let mut srv = server();
        let (t, e) = movie_table(10.0);
        let id = srv.open("m", t, e).unwrap();
        srv.set_rate(id, at(0), 2.0).unwrap();
        assert!((srv.stream(id).params.rate - 375_000.0).abs() < 1.0);
        // Buffer regrown for the doubled rate.
        assert!(srv.stream(id).buffer.capacity() > 200_000);
        // Returning to normal speed shrinks it back to the admitted size.
        srv.set_rate(id, at(0), 1.0).unwrap();
        assert!(
            (199_999..=200_002).contains(&srv.stream(id).buffer.capacity()),
            "capacity {}",
            srv.stream(id).buffer.capacity()
        );
        srv.set_rate(id, at(0), 2.0).unwrap();
        // An absurd rate is rejected and leaves state intact.
        let err = srv.set_rate(id, at(0), 100.0);
        assert!(err.is_err());
        assert!((srv.stream(id).params.rate - 375_000.0).abs() < 1.0);
    }

    #[test]
    fn stream_report_reflects_state() {
        let mut srv = server();
        let (t, e) = movie_table(10.0);
        let id = srv.open("m", t, e).unwrap();
        let r0 = srv.stream_report(id);
        assert!(!r0.running);
        assert_eq!(r0.buffer_bytes, 0);
        srv.start(id, at(0));
        srv.interval_tick(at(0));
        let rep = srv.interval_tick(at(500));
        for r in &rep.reqs {
            srv.io_done(r.id, at(700));
        }
        srv.interval_tick(at(1000));
        let r1 = srv.stream_report(id);
        assert!(r1.running);
        assert!(r1.buffer_bytes > 0);
        assert!(r1.prefetch_cursor > Duration::ZERO);
        assert!(r1.buffer.puts > 0);
    }

    #[test]
    fn calculated_io_time_reported_when_active() {
        let mut srv = server();
        let (t, e) = movie_table(10.0);
        let id = srv.open("m", t, e).unwrap();
        srv.start(id, at(0));
        srv.interval_tick(at(0));
        let rep = srv.interval_tick(at(500));
        assert!(rep.calculated_io_time > 0.0);
        assert!(rep.calculated_io_time < 0.5);
        assert_eq!(rep.per_volume_calculated.len(), 1);
        assert_eq!(rep.per_volume_calculated[0], rep.calculated_io_time);
        let _ = id;
    }

    /// The movie-table extents wrapped onto one chosen volume.
    fn movie_on(volume: u32, secs: f64) -> (ChunkTable, Vec<VolumeExtent>) {
        let (t, e) = movie_table(secs);
        (t, on_volume(VolumeId(volume), e))
    }

    #[test]
    fn place_next_round_robins() {
        let mut srv = multi_server(3, 8 << 20);
        let picks: Vec<u32> = (0..7).map(|_| srv.place_next().0).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn two_volumes_admit_at_least_double() {
        // Disk-bound capacity (ample memory): each spindle admits its
        // own full complement, so two volumes fit >= 2x the streams.
        let count = |volumes: usize| {
            let mut srv = multi_server(volumes, 1 << 40);
            let mut n = 0u32;
            loop {
                let (t, e) = movie_on(n % volumes as u32, 10.0);
                if srv.open_placed(&format!("m{n}"), t, e).is_err() {
                    return n;
                }
                n += 1;
            }
        };
        let one = count(1);
        let two = count(2);
        assert!(one > 0);
        assert!(two >= 2 * one, "N=1 admits {one}, N=2 admits {two}");
    }

    #[test]
    fn admission_tests_bottleneck_volume() {
        // Pile every movie on volume 0 of a 2-volume server: capacity
        // must equal the single-disk capacity — the idle spindle buys
        // nothing for streams that do not live on it.
        let mut single = multi_server(1, 1 << 40);
        let mut lopsided = multi_server(2, 1 << 40);
        let mut n_single = 0u32;
        loop {
            let (t, e) = movie_on(0, 10.0);
            if single.open_placed(&format!("s{n_single}"), t, e).is_err() {
                break;
            }
            n_single += 1;
        }
        let mut n_lop = 0u32;
        loop {
            let (t, e) = movie_on(0, 10.0);
            if lopsided.open_placed(&format!("l{n_lop}"), t, e).is_err() {
                break;
            }
            n_lop += 1;
        }
        assert_eq!(n_single, n_lop);
    }

    #[test]
    fn close_frees_capacity_on_its_volume() {
        let mut srv = multi_server(2, 1 << 40);
        // Fill volume 0 to its brim.
        let mut ids = Vec::new();
        loop {
            let (t, e) = movie_on(0, 10.0);
            match srv.open_placed("v0", t, e) {
                Ok(id) => ids.push(id),
                Err(_) => break,
            }
        }
        // Volume 0 is full; volume 1 still admits...
        let (t, e) = movie_on(0, 10.0);
        assert!(srv.open_placed("extra0", t, e).is_err());
        let (t, e) = movie_on(1, 10.0);
        let on1 = srv.open_placed("extra1", t, e).unwrap();
        // ...and closing a volume-0 stream reopens volume-0 capacity.
        srv.close(*ids.first().expect("admitted at least one"));
        let (t, e) = movie_on(0, 10.0);
        assert!(srv.open_placed("refill0", t, e).is_ok());
        srv.close(on1);
    }

    #[test]
    fn striped_stream_spreads_admission_load() {
        // One movie split evenly across both volumes charges each
        // spindle half its rate, so a 2-volume server fits more striped
        // streams than one disk fits whole ones — but fewer than 2x,
        // because every striped stream pays seek/command overhead on
        // BOTH spindles (the real cost of striping).
        let striped = |srv: &mut CrasServer, n: u32| {
            let (t, e) = movie_table(10.0);
            let half = e[0].nblocks / 2;
            let extents = vec![
                VolumeExtent {
                    volume: VolumeId(0),
                    extent: Extent {
                        file_offset: 0,
                        disk_block: 10_000,
                        nblocks: half,
                    },
                },
                VolumeExtent {
                    volume: VolumeId(1),
                    extent: Extent {
                        file_offset: half as u64 * 512,
                        disk_block: 10_000,
                        nblocks: e[0].nblocks - half,
                    },
                },
            ];
            srv.open_placed(&format!("st{n}"), t, extents)
        };
        let mut whole = multi_server(1, 1 << 40);
        let mut n_whole = 0u32;
        loop {
            let (t, e) = movie_on(0, 10.0);
            if whole.open_placed(&format!("w{n_whole}"), t, e).is_err() {
                break;
            }
            n_whole += 1;
        }
        let mut srv = multi_server(2, 1 << 40);
        let mut n_striped = 0u32;
        while striped(&mut srv, n_striped).is_ok() {
            n_striped += 1;
        }
        assert!(
            n_striped > n_whole && n_striped <= 2 * n_whole,
            "whole {n_whole}, striped {n_striped}"
        );
    }

    /// The movie-table extents as a mirrored pair: primary on `p`,
    /// mirror (different disk blocks) on `m`.
    fn mirrored_movie(
        p: u32,
        m: u32,
        secs: f64,
    ) -> (ChunkTable, Vec<VolumeExtent>, Vec<VolumeExtent>) {
        let (t, e) = movie_table(secs);
        let primary = on_volume(VolumeId(p), e.clone());
        let mirror = on_volume(
            VolumeId(m),
            e.into_iter()
                .map(|mut x| {
                    x.disk_block += 50_000;
                    x
                })
                .collect(),
        );
        (t, primary, mirror)
    }

    #[test]
    fn place_next_pair_never_colocates_and_skips_failed() {
        let mut srv = multi_server(4, 8 << 20);
        for _ in 0..16 {
            let (p, m) = srv.place_next_pair();
            assert_ne!(p, m);
        }
        srv.set_volume_failed(VolumeId(2), true);
        for _ in 0..16 {
            let (p, m) = srv.place_next_pair();
            assert_ne!(p, m);
            assert_ne!(p, VolumeId(2));
            assert_ne!(m, VolumeId(2));
        }
    }

    #[test]
    fn mirrored_admission_charges_both_replicas_in_full() {
        // A 2-volume mirrored server admits exactly what one disk does:
        // every stream charges the full rate to both spindles.
        let single = {
            let mut srv = multi_server(1, 1 << 40);
            let mut n = 0u32;
            loop {
                let (t, e) = movie_on(0, 10.0);
                if srv.open_placed(&format!("s{n}"), t, e).is_err() {
                    break;
                }
                n += 1;
            }
            n
        };
        let mut srv = multi_server(2, 1 << 40);
        let mut n = 0u32;
        loop {
            let (p, m) = srv.place_next_pair();
            let (t, pri, mir) = mirrored_movie(p.0, m.0, 10.0);
            if srv
                .open_replicated(&format!("m{n}"), t, pri, Some(mir))
                .is_err()
            {
                break;
            }
            n += 1;
        }
        assert_eq!(n, single, "mirrored N=2 capacity = single-disk capacity");
    }

    #[test]
    fn steering_balances_replicas_when_both_live() {
        let mut srv = multi_server(2, 8 << 20);
        let (t, pri, mir) = mirrored_movie(0, 1, 10.0);
        let id = srv.open_replicated("m", t, pri, Some(mir)).unwrap();
        srv.start(id, at(0));
        srv.interval_tick(at(0));
        let rep = srv.interval_tick(at(500));
        assert!(!rep.reqs.is_empty());
        // With nothing else planned, the tie goes to the primary.
        assert!(rep.reqs.iter().all(|r| r.volume == VolumeId(0)));
        assert_eq!(rep.degraded_streams, 0);
        // A second mirrored stream opened the other way round lands on
        // its primary too; steering splits load when volumes are uneven.
        let (t2, pri2, mir2) = mirrored_movie(1, 0, 10.0);
        let id2 = srv.open_replicated("m2", t2, pri2, Some(mir2)).unwrap();
        srv.start(id2, at(500));
        let _ = id2;
    }

    #[test]
    fn degraded_read_remaps_to_mirror_and_still_posts() {
        let mut srv = multi_server(2, 8 << 20);
        let (t, pri, mir) = mirrored_movie(0, 1, 10.0);
        let id = srv.open_replicated("m", t, pri, Some(mir)).unwrap();
        srv.start(id, at(0));
        srv.interval_tick(at(0));
        let rep = srv.interval_tick(at(500));
        assert!(rep.reqs.iter().all(|r| r.volume == VolumeId(0)));
        // Volume 0 dies with the interval's reads in flight: each read
        // fails and is re-mapped to the same logical bytes on volume 1.
        srv.set_volume_failed(VolumeId(0), true);
        let mut remapped = Vec::new();
        for r in &rep.reqs {
            remapped.extend(srv.io_failed(r.id));
        }
        assert!(!remapped.is_empty());
        assert!(remapped.iter().all(|r| r.volume == VolumeId(1)));
        // The mirror copy lives 50 000 blocks up: same data, other disk.
        let total_pri: u64 = rep.reqs.iter().map(|r| r.nblocks as u64).sum();
        let total_mir: u64 = remapped.iter().map(|r| r.nblocks as u64).sum();
        assert_eq!(total_pri, total_mir);
        assert_eq!(srv.stats().degraded_reads, remapped.len() as u64);
        // Completing the remapped reads posts the batch: no overrun.
        for r in &remapped {
            srv.io_done(r.id, at(700));
        }
        let rep2 = srv.interval_tick(at(1000));
        assert!(!rep2.overran, "remapped batch met its deadline");
        assert!(rep2.posted_chunks > 0);
        // Subsequent intervals read from the mirror directly (degraded).
        let rep3 = srv.interval_tick(at(1500));
        assert!(rep3.reqs.iter().all(|r| r.volume == VolumeId(1)));
        assert_eq!(rep3.degraded_streams, 1);
    }

    #[test]
    fn hot_primary_steers_mirrored_reads_to_the_mirror() {
        // Mirrored steering rides the same unified load signal as the
        // parity path: a deep reported queue on the primary flips the
        // whole interval's reads onto the replica.
        let mut srv = multi_server(2, 8 << 20);
        let (t, pri, mir) = mirrored_movie(0, 1, 10.0);
        let id = srv.open_replicated("m", t, pri, Some(mir)).unwrap();
        srv.start(id, at(0));
        let mut loads = vec![VolumeLoad::default(); 2];
        loads[0] = VolumeLoad {
            queued: 50,
            lag: 0.0,
        };
        srv.set_volume_loads(&loads);
        srv.interval_tick(at(0));
        let rep = srv.interval_tick(at(500));
        assert!(!rep.reqs.is_empty());
        assert!(rep.reqs.iter().all(|r| r.volume == VolumeId(1)));
        assert_eq!(rep.degraded_streams, 0);
    }

    #[test]
    fn mirrored_stream_with_both_replicas_dead_drops_at_plan_time() {
        // Before the fix this planned reads against the dead primary
        // and the batch silently rotted in `pending`. Now the plan
        // pass drops it, counts it, and reports it.
        let mut srv = multi_server(2, 8 << 20);
        let (t, pri, mir) = mirrored_movie(0, 1, 10.0);
        let id = srv.open_replicated("m", t, pri, Some(mir)).unwrap();
        srv.start(id, at(0));
        srv.set_volume_failed(VolumeId(0), true);
        srv.set_volume_failed(VolumeId(1), true);
        srv.interval_tick(at(0));
        let rep = srv.interval_tick(at(500));
        assert!(rep.reqs.is_empty(), "no read may be issued to dead volumes");
        assert_eq!(rep.lost_streams, 1);
        assert_eq!(srv.stats().lost_reads, 1);
        // Nothing is stuck: the next tick drops again instead of
        // tripping the outstanding-batch cap.
        let rep2 = srv.interval_tick(at(1000));
        assert!(rep2.reqs.is_empty());
        assert_eq!(rep2.lost_streams, 1);
        assert!(!rep2.overran);
    }

    #[test]
    fn outstanding_batch_cap_pauses_and_resumes_planning() {
        // The per-stream counter must mirror `pending` exactly: two
        // unfinished batches stall the stream, one completion revives
        // it, and close clears the count.
        let mut srv = server();
        let (t, e) = movie_table(10.0);
        let id = srv.open("m", t, e).unwrap();
        srv.start(id, at(0));
        srv.interval_tick(at(0));
        let rep1 = srv.interval_tick(at(500));
        assert!(!rep1.reqs.is_empty());
        let rep2 = srv.interval_tick(at(1000));
        assert!(!rep2.reqs.is_empty());
        // Two batches outstanding (cap): the stream is skipped.
        let rep3 = srv.interval_tick(at(1500));
        assert!(rep3.reqs.is_empty(), "stream at cap must not plan");
        // Completing the first batch frees a slot.
        for r in &rep1.reqs {
            srv.io_done(r.id, at(1600));
        }
        let rep4 = srv.interval_tick(at(2000));
        assert!(!rep4.reqs.is_empty(), "completion must resume planning");
        srv.close(id);
        assert!(srv.interval_tick(at(2500)).reqs.is_empty());
    }

    #[test]
    fn failed_read_without_replica_drops_batch() {
        let mut srv = server();
        let (t, e) = movie_table(10.0);
        let id = srv.open("m", t, e).unwrap();
        srv.start(id, at(0));
        srv.interval_tick(at(0));
        let rep = srv.interval_tick(at(500));
        assert!(!rep.reqs.is_empty());
        srv.set_volume_failed(VolumeId(0), true);
        for r in &rep.reqs {
            assert!(srv.io_failed(r.id).is_empty(), "no replica to remap to");
        }
        assert_eq!(srv.stats().lost_reads, rep.reqs.len() as u64);
        // The batch is dropped, not stuck: no overrun, nothing posted.
        let rep2 = srv.interval_tick(at(1000));
        assert!(!rep2.overran);
        assert_eq!(rep2.posted_chunks, 0);
    }

    #[test]
    fn degraded_capacity_recovers_after_volume_restore() {
        // Capacity drops (or holds) when a volume fails and returns to
        // exactly the pre-failure count when rebuild restores it.
        let count = |srv: &mut CrasServer| {
            let mut ids = Vec::new();
            loop {
                let (p, m) = srv.place_next_pair();
                let (t, pri, mir) = mirrored_movie(p.0, m.0, 10.0);
                match srv.open_replicated("c", t, pri, Some(mir)) {
                    Ok(id) => ids.push(id),
                    Err(_) => break,
                }
            }
            for id in &ids {
                srv.close(*id);
            }
            ids.len()
        };
        let mut srv = multi_server(4, 1 << 40);
        let before = count(&mut srv);
        srv.set_volume_failed(VolumeId(1), true);
        let during = count(&mut srv);
        assert!(during <= before, "degraded capacity must not grow");
        srv.set_volume_failed(VolumeId(1), false);
        let after = count(&mut srv);
        assert_eq!(after, before, "restore must return exact capacity");
    }

    #[test]
    fn open_rejects_when_all_replicas_are_failed() {
        let mut srv = multi_server(2, 1 << 40);
        srv.set_volume_failed(VolumeId(0), true);
        let (t, e) = movie_on(0, 10.0);
        let err = srv.open_placed("dead", t, e);
        assert!(matches!(err, Err(AdmissionError::VolumeFailed)));
        // A mirrored stream with one live replica is still admitted.
        let (t, pri, mir) = mirrored_movie(0, 1, 10.0);
        assert!(srv.open_replicated("half", t, pri, Some(mir)).is_ok());
    }

    #[test]
    fn reads_sort_by_volume_then_block() {
        let mut srv = multi_server(2, 8 << 20);
        let (t0, e0) = movie_on(1, 10.0); // Volume 1 first by open order...
        let (t1, e1) = movie_on(0, 10.0);
        let a = srv.open_placed("on1", t0, e0).unwrap();
        let b = srv.open_placed("on0", t1, e1).unwrap();
        srv.start(a, at(0));
        srv.start(b, at(0));
        srv.interval_tick(at(0));
        let rep = srv.interval_tick(at(500));
        assert!(rep.reqs.len() >= 2);
        // ...but requests come back grouped volume 0 before volume 1.
        assert!(rep
            .reqs
            .windows(2)
            .all(|w| (w[0].volume, w[0].block) <= (w[1].volume, w[1].block)));
        assert_eq!(rep.reqs.first().unwrap().volume, VolumeId(0));
        assert_eq!(rep.reqs.last().unwrap().volume, VolumeId(1));
        // Both volumes were active, and the bottleneck is their max.
        assert_eq!(rep.per_volume_calculated.len(), 2);
        assert!(rep.per_volume_calculated.iter().all(|&c| c > 0.0));
        let max = rep
            .per_volume_calculated
            .iter()
            .copied()
            .fold(0.0, f64::max);
        assert_eq!(rep.calculated_io_time, max);
        // volume_batches partitions the same reads per volume, in order.
        let batches: Vec<(VolumeId, Vec<ReadReq>)> =
            rep.volume_batches().map(|(v, b)| (v, b.to_vec())).collect();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].0, VolumeId(0));
        assert_eq!(batches[1].0, VolumeId(1));
        let concat: Vec<ReadReq> = batches.into_iter().flat_map(|(_, b)| b).collect();
        assert_eq!(concat, rep.reqs, "batches cover the reads exactly once");
    }

    #[test]
    fn bottleneck_time_is_a_total_order_max() {
        assert_eq!(bottleneck_time(&[]), 0.0, "no active volumes");
        assert_eq!(bottleneck_time(&[0.0, 0.0]), 0.0);
        assert_eq!(bottleneck_time(&[0.1, 0.35, 0.2]), 0.35);
        // Negative zero must not beat positive values (total order).
        assert_eq!(bottleneck_time(&[-0.0, 0.25]), 0.25);
    }

    #[test]
    #[should_panic(expected = "calculated I/O time is NaN")]
    fn bottleneck_time_rejects_nan() {
        // The old `fold(0.0, f64::max)` silently returned 0.1 here,
        // hiding a poisoned admission computation.
        bottleneck_time(&[0.1, f64::NAN]);
    }

    #[test]
    fn sweep_order_carries_head_position_across_intervals() {
        // Two streams far apart on one spindle. Restarting the C-SCAN
        // sweep at block 0 every interval pays two full strokes per
        // interval (out to the far stream and back); carrying the head
        // position turns that into about one stroke per interval,
        // alternating direction of entry.
        let mut srv = server();
        let (ta, ea) = movie_table(10.0); // Extent at block 10_000.
        let tb = ta.clone();
        let eb = vec![Extent {
            file_offset: 0,
            disk_block: 400_000,
            nblocks: ea[0].nblocks,
        }];
        let a = srv.open("near", ta, ea).unwrap();
        let b = srv.open("far", tb, eb).unwrap();
        srv.start(a, at(0));
        srv.start(b, at(0));
        srv.interval_tick(at(0));
        let (mut head, mut naive_head) = (0u64, 0u64);
        let (mut swept, mut naive) = (0u64, 0u64);
        for k in 1..8u64 {
            let rep = srv.interval_tick(at(k * 500));
            for r in &rep.reqs {
                srv.io_done(r.id, at(k * 500 + 100));
            }
            if rep.reqs.is_empty() {
                continue;
            }
            let blocks: Vec<u64> = rep.reqs.iter().map(|r| r.block).collect();
            swept += cras_disk::modeled_travel(head, &blocks);
            let last = rep.reqs.last().unwrap();
            head = last.block + last.nblocks as u64;
            // Baseline: the old `(volume, block)` ascending sort.
            let mut sorted = blocks.clone();
            sorted.sort_unstable();
            naive += cras_disk::modeled_travel(naive_head, &sorted);
            naive_head = *sorted.last().unwrap();
        }
        assert!(swept > 0 && naive > 0, "streams issued reads");
        assert!(
            (swept as f64) < 0.75 * naive as f64,
            "sweep travel {swept} should clearly beat ascending-from-0 {naive}"
        );
    }

    fn cache_server(cache_budget: u64, buffer_budget: u64) -> CrasServer {
        let mut cfg = ServerConfig::default();
        cfg.cache_budget = cache_budget;
        cfg.buffer_budget = buffer_budget;
        CrasServer::new(DiskParams::paper_table4(), cfg)
    }

    /// Opens and starts a leader of `name` at t=0, then drives `ticks`
    /// intervals completing every read — the cache ends up holding the
    /// leader's posted window.
    fn warm_leader(srv: &mut CrasServer, name: &str, ticks: u64) -> StreamId {
        let (t, e) = movie_table(30.0);
        let id = srv.open(name, t, e).unwrap();
        srv.start(id, at(0));
        for k in 0..ticks {
            let rep = srv.interval_tick(at(k * 500));
            for r in &rep.reqs {
                srv.io_done(r.id, at(k * 500 + 100));
            }
        }
        id
    }

    #[test]
    fn trailing_stream_is_served_from_cache_with_zero_disk_reads() {
        let mut srv = cache_server(8 << 20, 8 << 20);
        let _leader = warm_leader(&mut srv, "pop", 6);
        // The leader's posted window spans media [0, ~2 s): a second
        // client of the same title attaches to the cache at open.
        let (t, e) = movie_table(30.0);
        let follower = srv.open("pop", t, e).unwrap();
        assert!(srv.stream(follower).cache_state.is_cached());
        srv.start(follower, at(2600));
        let mut follower_reqs = 0usize;
        let mut cache_served = 0usize;
        for k in 6..16u64 {
            let rep = srv.interval_tick(at(k * 500));
            follower_reqs += rep.reqs.iter().filter(|r| r.stream == follower).count();
            cache_served += rep.cache_served_streams;
            for r in &rep.reqs {
                srv.io_done(r.id, at(k * 500 + 100));
            }
            assert!(!rep.overran);
        }
        assert_eq!(follower_reqs, 0, "cached follower never touches the disk");
        assert!(cache_served > 0);
        assert!(srv.cache().stats().hit_bytes > 0);
        // The cache path really feeds the follower's ring.
        assert!(srv.stream_report(follower).buffer.puts > 0);
    }

    #[test]
    fn cache_admits_trailing_stream_past_disk_bound() {
        let mut srv = cache_server(64 << 20, 1 << 40);
        let _leader = warm_leader(&mut srv, "pop", 6);
        // Exhaust the disk-time bound with cold titles.
        let mut fillers = 0u32;
        loop {
            let (t, e) = movie_table(30.0);
            if srv.open(&format!("f{fillers}"), t, e).is_err() {
                break;
            }
            fillers += 1;
        }
        assert!(fillers > 0);
        // A trailing stream of the hot title still gets in — admitted
        // against the cache budget, charging the spindle nothing.
        let (t, e) = movie_table(30.0);
        let follower = srv.open("pop", t, e).expect("cache-admitted");
        assert!(matches!(
            srv.stream(follower).cache_state,
            CacheState::Admitted { .. }
        ));
        assert!(srv.cache().reserved() > 0);
        assert_eq!(srv.cache().stats().cache_admitted_streams, 1);
        // The disk bound is genuinely still exhausted for cold titles.
        let (t, e) = movie_table(30.0);
        assert!(srv.open("cold", t, e).is_err());
    }

    #[test]
    fn leader_stop_breaks_interval_and_falls_back_to_disk() {
        let mut srv = cache_server(8 << 20, 8 << 20);
        let leader = warm_leader(&mut srv, "pop", 6);
        let (t, e) = movie_table(30.0);
        let follower = srv.open("pop", t, e).unwrap();
        assert!(srv.stream(follower).cache_state.is_cached());
        srv.start(follower, at(2600));
        for k in 6..8u64 {
            let rep = srv.interval_tick(at(k * 500));
            for r in &rep.reqs {
                srv.io_done(r.id, at(k * 500 + 100));
            }
        }
        // The leader stops: the frontier freezes, the follower drains
        // what is pinned, then the interval breaks.
        srv.stop(leader, at(4000));
        let mut follower_reqs = 0usize;
        for k in 8..20u64 {
            let rep = srv.interval_tick(at(k * 500));
            follower_reqs += rep.reqs.iter().filter(|r| r.stream == follower).count();
            for r in &rep.reqs {
                srv.io_done(r.id, at(k * 500 + 100));
            }
            assert!(!rep.overran, "fallback to disk must not miss deadlines");
        }
        assert!(srv.cache().stats().interval_breaks >= 1);
        assert!(matches!(srv.stream(follower).cache_state, CacheState::Disk));
        assert!(follower_reqs > 0, "broken follower reads from disk again");
        assert_eq!(srv.cache().pinned_frames(), 0);
    }

    #[test]
    fn broken_cache_admission_is_rejected_when_disk_is_full() {
        let mut srv = cache_server(64 << 20, 1 << 40);
        let leader = warm_leader(&mut srv, "pop", 6);
        let mut fillers = 0u32;
        loop {
            let (t, e) = movie_table(30.0);
            if srv.open(&format!("f{fillers}"), t, e).is_err() {
                break;
            }
            fillers += 1;
        }
        let (t, e) = movie_table(30.0);
        let follower = srv.open("pop", t, e).expect("cache-admitted");
        srv.start(follower, at(2600));
        for k in 6..8u64 {
            let rep = srv.interval_tick(at(k * 500));
            for r in &rep.reqs {
                srv.io_done(r.id, at(k * 500 + 100));
            }
        }
        srv.stop(leader, at(4000));
        for k in 8..24u64 {
            let rep = srv.interval_tick(at(k * 500));
            for r in &rep.reqs {
                srv.io_done(r.id, at(k * 500 + 100));
            }
        }
        // The interval broke with no spindle time left: the follower is
        // parked (clock stopped) rather than silently starved.
        assert!(srv.cache().stats().interval_breaks >= 1);
        assert_eq!(srv.cache().stats().cache_rejected_streams, 1);
        let s = srv.stream(follower);
        assert!(matches!(
            s.cache_state,
            CacheState::Admitted { reserved: 0 }
        ));
        assert!(!s.clock.is_running());
        assert_eq!(srv.cache().pinned_frames(), 0);
        assert_eq!(srv.cache().reserved(), 0);
    }

    #[test]
    fn follower_stop_and_seek_release_pins_immediately() {
        let mut srv = cache_server(8 << 20, 8 << 20);
        let _leader = warm_leader(&mut srv, "pop", 6);
        let (t, e) = movie_table(30.0);
        let follower = srv.open("pop", t, e).unwrap();
        assert!(srv.stream(follower).cache_state.is_cached());
        assert!(srv.cache().pinned_frames() > 0);
        assert!(srv.cache().reserved() > 0);
        // Stop drops every pin the follower held in the same call...
        srv.stop(follower, at(2600));
        assert_eq!(srv.cache().pinned_frames(), 0);
        assert_eq!(srv.cache().reserved(), 0);
        srv.close(follower);
        // ...and a far seek past the cached window detaches likewise.
        let (t, e) = movie_table(30.0);
        let f2 = srv.open("pop", t, e).unwrap();
        assert!(srv.cache().pinned_frames() > 0);
        srv.seek(f2, at(2700), Duration::from_secs(20));
        assert_eq!(srv.cache().pinned_frames(), 0);
        assert_eq!(srv.cache().reserved(), 0);
        assert!(matches!(srv.stream(f2).cache_state, CacheState::Disk));
    }

    #[test]
    fn zero_budget_cache_changes_nothing() {
        // cache_budget = 0 must reproduce the uncached server exactly.
        let drive = |srv: &mut CrasServer| {
            let a = warm_leader(srv, "pop", 6);
            let (t, e) = movie_table(30.0);
            let b = srv.open("pop", t, e).unwrap();
            srv.start(b, at(2600));
            let mut log = Vec::new();
            for k in 6..14u64 {
                let rep = srv.interval_tick(at(k * 500));
                for r in &rep.reqs {
                    log.push((r.stream, r.volume, r.block, r.nblocks));
                    srv.io_done(r.id, at(k * 500 + 100));
                }
                log.push((a, VolumeId(u32::MAX), rep.posted_chunks as u64, 0));
            }
            log
        };
        let mut plain = server();
        let mut zeroed = cache_server(0, 8 << 20);
        assert_eq!(drive(&mut plain), drive(&mut zeroed));
        assert_eq!(*zeroed.cache().stats(), CacheStats::default());
    }

    fn prefix_server(prefix_ms: u64, hot_set: usize, buffer_budget: u64) -> CrasServer {
        let mut cfg = ServerConfig::default();
        cfg.cache_budget = 64 << 20;
        cfg.buffer_budget = buffer_budget;
        cfg.prefix_secs = ms(prefix_ms);
        cfg.hot_set = hot_set;
        CrasServer::new(DiskParams::paper_table4(), cfg)
    }

    /// One extra open/close of `name` so its open count outranks the
    /// single-open filler titles in the hot-set ordering.
    fn bump_popularity(srv: &mut CrasServer, name: &str) {
        let (t, e) = movie_table(30.0);
        let id = srv.open(name, t, e).unwrap();
        srv.close(id);
    }

    #[test]
    fn hot_prefix_open_defers_disk_share() {
        let mut srv = prefix_server(1000, 1, 1 << 40);
        bump_popularity(&mut srv, "pop");
        let _leader = warm_leader(&mut srv, "pop", 6);
        assert!(srv.cache_manager().is_hot("pop"));
        // Exhaust the disk-time bound with cold titles.
        let mut fillers = 0u32;
        loop {
            let (t, e) = movie_table(30.0);
            if srv.open(&format!("f{fillers}"), t, e).is_err() {
                break;
            }
            fillers += 1;
        }
        assert!(fillers > 0);
        let charged = srv.disk_charged_streams();
        // A new viewer of the hot title still gets in: its whole prefix
        // is resident, so admission is deferred — zero disk shares.
        let (t, e) = movie_table(30.0);
        let viewer = srv.open("pop", t, e).expect("deferred admission");
        assert!(matches!(srv.cache_state_of(viewer), CacheState::Prefix));
        assert_eq!(srv.cache().stats().prefix_admitted_streams, 1);
        assert_eq!(srv.disk_charged_streams(), charged);
    }

    #[test]
    fn deferred_stream_reserves_disk_share_at_prefix_drain() {
        let mut srv = prefix_server(1000, 1, 8 << 20);
        bump_popularity(&mut srv, "pop");
        let _leader = warm_leader(&mut srv, "pop", 6);
        let (t, e) = movie_table(30.0);
        let viewer = srv.open("pop", t, e).expect("deferred admission");
        assert!(matches!(srv.cache_state_of(viewer), CacheState::Prefix));
        srv.start(viewer, at(3100));
        let mut reserved_tick = None;
        for k in 6..20u64 {
            let rep = srv.interval_tick(at(k * 500));
            if rep.deferred_reserved.contains(&viewer.0) {
                reserved_tick = Some(k);
            }
            for r in &rep.reqs {
                srv.io_done(r.id, at(k * 500 + 100));
            }
            assert!(!rep.overran);
        }
        // The prefix drained into a real disk reservation, journaled via
        // the report, and the viewer kept playing from disk.
        assert!(reserved_tick.is_some());
        assert!(matches!(srv.cache_state_of(viewer), CacheState::Disk));
        assert_eq!(srv.cache().stats().deferred_drained_streams, 1);
        assert!(srv.cache().stats().prefix_hit_bytes > 0);
        assert!(srv.stream_report(viewer).buffer.puts > 0);
    }

    fn join_server(window_ms: u64) -> CrasServer {
        let mut cfg = ServerConfig::default();
        cfg.join_window = ms(window_ms);
        CrasServer::new(DiskParams::paper_table4(), cfg)
    }

    #[test]
    fn batched_join_multicasts_one_read_stream() {
        let mut srv = join_server(600);
        let (t, e) = movie_table(10.0);
        let a = srv.open("pop", t.clone(), e.clone()).unwrap();
        let b = srv.open("pop", t, e).unwrap();
        let begin_a = srv.start(a, at(0));
        let begin_b = srv.start(b, at(100));
        assert_eq!(begin_b, begin_a, "follower anchors on the leader's begin");
        assert!(matches!(srv.cache_state_of(b), CacheState::Joined { leader } if leader == a.0));
        assert_eq!(srv.cache().stats().joined_streams, 1);
        let mut b_reqs = 0usize;
        for k in 0..3u64 {
            let rep = srv.interval_tick(at(k * 500));
            b_reqs += rep.reqs.iter().filter(|r| r.stream == b).count();
            for r in &rep.reqs {
                srv.io_done(r.id, at(k * 500 + 100));
            }
        }
        // Both viewers hold frame 0, fed by one read stream.
        assert_eq!(srv.get(a, Duration::ZERO).expect("leader frame").index, 0);
        assert_eq!(srv.get(b, Duration::ZERO).expect("follower frame").index, 0);
        for k in 3..12u64 {
            let rep = srv.interval_tick(at(k * 500));
            b_reqs += rep.reqs.iter().filter(|r| r.stream == b).count();
            for r in &rep.reqs {
                srv.io_done(r.id, at(k * 500 + 100));
            }
            assert!(!rep.overran);
        }
        assert_eq!(b_reqs, 0, "the follower rides the leader's reads");
        let (ra, rb) = (srv.stream_report(a), srv.stream_report(b));
        assert!(rb.buffer.puts > 0 && rb.buffer.puts == ra.buffer.puts);
    }

    #[test]
    fn leader_close_dissolves_join_to_disk() {
        let mut srv = join_server(600);
        let (t, e) = movie_table(10.0);
        let a = srv.open("pop", t.clone(), e.clone()).unwrap();
        let b = srv.open("pop", t, e).unwrap();
        srv.start(a, at(0));
        srv.start(b, at(100));
        for k in 0..4u64 {
            let rep = srv.interval_tick(at(k * 500));
            for r in &rep.reqs {
                srv.io_done(r.id, at(k * 500 + 100));
            }
        }
        srv.close(a);
        let mut b_reqs = 0usize;
        for k in 4..12u64 {
            let rep = srv.interval_tick(at(k * 500));
            b_reqs += rep.reqs.iter().filter(|r| r.stream == b).count();
            for r in &rep.reqs {
                srv.io_done(r.id, at(k * 500 + 100));
            }
            assert!(!rep.overran);
        }
        // The orphaned follower reserved its own disk share and kept
        // reading where the multicast left off.
        assert!(matches!(srv.cache_state_of(b), CacheState::Disk));
        assert!(b_reqs > 0, "dissolved follower reads from disk");
        assert!(srv.stream_report(b).buffer.puts > 0);
    }

    #[test]
    fn join_window_zero_never_joins() {
        let mut srv = join_server(0);
        let (t, e) = movie_table(10.0);
        let a = srv.open("pop", t.clone(), e.clone()).unwrap();
        let b = srv.open("pop", t, e).unwrap();
        srv.start(a, at(0));
        srv.start(b, at(100));
        assert!(matches!(srv.cache_state_of(a), CacheState::Disk));
        assert!(matches!(srv.cache_state_of(b), CacheState::Disk));
        assert_eq!(srv.cache().stats().joined_streams, 0);
    }

    #[test]
    fn faster_volume_admits_more_streams() {
        // Heterogeneous spindles: each volume is tested against its own
        // calibrated parameters, so the fast disk admits more streams.
        let slow_disk = DiskParams::paper_table4();
        let fast_disk = DiskParams {
            transfer_rate: 2.0 * slow_disk.transfer_rate,
            ..slow_disk
        };
        let mut cfg = ServerConfig::default();
        cfg.volumes = 2;
        cfg.buffer_budget = 1 << 40;
        let mut srv = CrasServer::new_per_volume(vec![slow_disk, fast_disk], cfg);
        let fill = |srv: &mut CrasServer, v: u32| {
            let mut ids = Vec::new();
            loop {
                let (t, e) = movie_on(v, 10.0);
                match srv.open_placed("h", t, e) {
                    Ok(id) => ids.push(id),
                    Err(_) => break,
                }
            }
            let n = ids.len();
            for id in ids {
                srv.close(id);
            }
            n
        };
        let slow = fill(&mut srv, 0);
        let fast = fill(&mut srv, 1);
        assert!(slow > 0);
        assert!(fast > slow, "slow disk {slow}, fast disk {fast}");
    }

    /// A movie laid out in rotating-parity groups on the band starting
    /// at `base`: synthetic but geometry-faithful extent maps (data file
    /// then parity file per volume, contiguous on disk).
    fn parity_movie(
        group: u32,
        base: u32,
        secs: f64,
        seed: u64,
    ) -> (ChunkTable, Vec<VolumeExtent>, ParityState) {
        use crate::placement::{ParityGeometry, PARITY_STRIPE_BYTES};
        let mut rng = Rng::new(seed);
        let table = cras_media::generate_chunks(&StreamProfile::mpeg1(), secs, &mut rng);
        let geom = ParityGeometry::new(base, group, PARITY_STRIPE_BYTES, table.total_bytes());
        let sb = geom.stripe_bytes;
        let mut extents = Vec::new();
        for k in 0..geom.data_units() {
            extents.push(VolumeExtent {
                volume: geom.data_volume(k),
                extent: Extent {
                    file_offset: k * sb,
                    disk_block: 20_000 + geom.data_file_index(k) * (sb / 512),
                    nblocks: geom.unit_len(k).div_ceil(512) as u32,
                },
            });
        }
        let parity_maps = (0..group)
            .map(|v| {
                let bytes = geom.parity_bytes_on(v);
                if bytes == 0 {
                    return Vec::new();
                }
                vec![VolumeExtent {
                    volume: VolumeId(base + v),
                    extent: Extent {
                        file_offset: 0,
                        disk_block: 800_000,
                        nblocks: (bytes / 512) as u32,
                    },
                }]
            })
            .collect();
        (table, extents, ParityState { geom, parity_maps })
    }

    #[test]
    fn parity_admission_monotone_in_group_and_under_healthy_baseline() {
        // One band of g volumes, g rising: admission charges 2/g per
        // spindle, so the admitted count must never decrease with g —
        // and must never exceed the healthy (striped, 1/g per spindle)
        // baseline on the same spindles.
        let mut last = 0usize;
        for group in [2u32, 3, 4, 6] {
            let fill_parity = {
                let mut srv = multi_server(group as usize, 1 << 40);
                let mut n = 0usize;
                loop {
                    let (t, e, ps) = parity_movie(group, 0, 20.0, 7);
                    if srv.open_parity("p", t, e, ps).is_err() {
                        break;
                    }
                    n += 1;
                }
                n
            };
            let fill_striped = {
                let mut srv = multi_server(group as usize, 1 << 40);
                let mut n = 0usize;
                loop {
                    // Same movie, same spindles, no parity charge: units
                    // dealt round-robin (share 1/g per volume).
                    let (t, e, _) = parity_movie(group, 0, 20.0, 7);
                    let striped: Vec<VolumeExtent> = e
                        .iter()
                        .enumerate()
                        .map(|(k, ve)| VolumeExtent {
                            volume: VolumeId(k as u32 % group),
                            extent: ve.extent,
                        })
                        .collect();
                    if srv.open_placed("s", t, striped).is_err() {
                        break;
                    }
                    n += 1;
                }
                n
            };
            assert!(fill_parity > 0, "g={group} admitted nothing");
            assert!(
                fill_parity >= last,
                "g={group}: {fill_parity} < previous {last} — not monotone"
            );
            assert!(
                fill_parity <= fill_striped,
                "g={group}: parity {fill_parity} exceeds healthy baseline {fill_striped}"
            );
            last = fill_parity;
        }
    }

    #[test]
    fn degraded_parity_plan_fans_out_into_surviving_spindle_batches() {
        let mut srv = multi_server(4, 1 << 30);
        let (t, e, ps) = parity_movie(4, 0, 10.0, 9);
        let id = srv.open_parity("p", t, e, ps).unwrap();
        srv.start(id, at(0));
        // Kill a volume that holds data of the first stripes: row 0's
        // parity is on volume 0, so its data units live on 1, 2, 3.
        srv.set_volume_failed(VolumeId(1), true);
        srv.interval_tick(at(0));
        let rep = srv.interval_tick(at(500));
        assert!(!rep.reqs.is_empty());
        assert_eq!(rep.degraded_streams, 1);
        assert!(
            rep.reqs.iter().all(|r| r.volume != VolumeId(1)),
            "no read may target the failed volume"
        );
        // The reconstruction touched every surviving spindle, including
        // the parity volume.
        for v in [0u32, 2, 3] {
            assert!(
                rep.reqs.iter().any(|r| r.volume == VolumeId(v)),
                "expected a read on surviving volume {v}"
            );
        }
        // Batches are per spindle and sweep-ordered within each.
        for (_, batch) in rep.volume_batches() {
            assert!(batch.windows(2).all(|w| w[0].volume == w[1].volume));
        }
        assert!(srv.stats().degraded_reads > 0);
        assert_eq!(srv.stats().lost_reads, 0);
        // Completing every surviving read posts the batch (frames are
        // reconstructed, not lost).
        let mut posted = false;
        for r in &rep.reqs {
            posted |= srv.io_done(r.id, at(700)).is_some();
        }
        assert!(posted, "batch must complete from surviving reads");
    }

    #[test]
    fn unloaded_parity_server_never_steers() {
        // With no external load and balanced plans, the margin keeps
        // every read on its home spindle: a fan-out costs ~the same
        // bytes on g−1 volumes, so it can never beat direct + margin.
        let mut srv = multi_server(4, 1 << 30);
        let (t, e, ps) = parity_movie(4, 0, 10.0, 9);
        let id = srv.open_parity("p", t, e, ps).unwrap();
        srv.start(id, at(0));
        srv.interval_tick(at(0));
        for i in 1..6u64 {
            let rep = srv.interval_tick(at(500 * i));
            assert_eq!(rep.steered_streams, 0, "tick {i} steered");
            for r in &rep.reqs {
                srv.io_done(r.id, at(500 * i + 100));
            }
        }
        assert_eq!(srv.stats().steered_reads, 0);
    }

    #[test]
    fn hot_spindle_steers_parity_reads_around_it() {
        let mut srv = multi_server(4, 1 << 30);
        let (t, e, ps) = parity_movie(4, 0, 10.0, 9);
        let id = srv.open_parity("p", t, e, ps).unwrap();
        srv.start(id, at(0));
        // Volume 1 holds data of the first stripe rows (row 0's parity
        // sits on volume 0). Report a deep queue on it: every direct
        // read homed there must be bypassed via the g−1 fan-out, and
        // no fan-out may route *into* the hot spindle either.
        let mut loads = vec![VolumeLoad::default(); 4];
        loads[1] = VolumeLoad {
            queued: 1000,
            lag: 0.0,
        };
        srv.set_volume_loads(&loads);
        srv.interval_tick(at(0));
        let rep = srv.interval_tick(at(500));
        assert!(!rep.reqs.is_empty());
        assert_eq!(rep.steered_streams, 1);
        assert!(srv.stats().steered_reads > 0);
        assert!(
            rep.reqs.iter().all(|r| r.volume != VolumeId(1)),
            "no read may land on the hot volume"
        );
        assert_eq!(rep.degraded_streams, 0, "steering is not a failure path");
        assert_eq!(srv.stats().lost_reads, 0);
        // The batch still posts once every read (direct + fan-out)
        // completes: steering never changes what gets delivered.
        let mut posted = false;
        for r in &rep.reqs {
            posted |= srv.io_done(r.id, at(700)).is_some();
        }
        assert!(posted, "steered batch must complete");
        // Clearing the load stops further steering.
        srv.set_volume_loads(&[VolumeLoad::default(); 4]);
        let before = srv.stats().steered_reads;
        let rep = srv.interval_tick(at(1000));
        assert_eq!(rep.steered_streams, 0);
        assert_eq!(srv.stats().steered_reads, before);
    }

    #[test]
    fn steering_disabled_keeps_reads_on_the_hot_home_spindle() {
        let mut cfg = ServerConfig::default();
        cfg.volumes = 4;
        cfg.buffer_budget = 1 << 30;
        cfg.steer_reads = false;
        let mut srv = CrasServer::new(DiskParams::paper_table4(), cfg);
        let (t, e, ps) = parity_movie(4, 0, 10.0, 9);
        let id = srv.open_parity("p", t, e, ps).unwrap();
        srv.start(id, at(0));
        let mut loads = vec![VolumeLoad::default(); 4];
        loads[1] = VolumeLoad {
            queued: 1000,
            lag: 0.0,
        };
        srv.set_volume_loads(&loads);
        srv.interval_tick(at(0));
        let rep = srv.interval_tick(at(500));
        assert!(rep.reqs.iter().any(|r| r.volume == VolumeId(1)));
        assert_eq!(rep.steered_streams, 0);
        assert_eq!(srv.stats().steered_reads, 0);
    }

    #[test]
    fn completion_lag_alone_can_steer() {
        // The unified signal folds per-volume completion lag in at the
        // spindle's transfer rate: a spindle that has been finishing
        // its batches late gets bypassed even with an empty queue.
        let mut srv = multi_server(4, 1 << 30);
        let (t, e, ps) = parity_movie(4, 0, 10.0, 9);
        let id = srv.open_parity("p", t, e, ps).unwrap();
        srv.start(id, at(0));
        let mut loads = vec![VolumeLoad::default(); 4];
        loads[1] = VolumeLoad {
            queued: 0,
            lag: 2.0,
        };
        srv.set_volume_loads(&loads);
        srv.interval_tick(at(0));
        let rep = srv.interval_tick(at(500));
        assert_eq!(rep.steered_streams, 1);
        assert!(rep.reqs.iter().all(|r| r.volume != VolumeId(1)));
    }

    #[test]
    fn parity_io_failed_replaces_read_with_survivors_and_loses_on_second_failure() {
        let mut srv = multi_server(4, 1 << 30);
        let (t, e, ps) = parity_movie(4, 0, 10.0, 9);
        let id = srv.open_parity("p", t, e, ps).unwrap();
        srv.start(id, at(0));
        srv.interval_tick(at(0));
        let rep = srv.interval_tick(at(500));
        let victim = rep.reqs[0];
        let replacements = srv.io_failed(victim.id);
        assert!(
            !replacements.is_empty(),
            "pre-detection failure must fan out"
        );
        assert!(replacements.iter().all(|r| r.volume != victim.volume));
        let survivors: std::collections::BTreeSet<u32> =
            replacements.iter().map(|r| r.volume.0).collect();
        assert_eq!(survivors.len(), 3, "reads on all three survivors");
        // A failed *reconstruction* read is a second failure: lost.
        let lost_before = srv.stats().lost_reads;
        assert!(srv.io_failed(replacements[0].id).is_empty());
        assert_eq!(srv.stats().lost_reads, lost_before + 1);
    }

    #[test]
    fn parity_open_rejects_with_two_band_volumes_down() {
        let mut srv = multi_server(4, 1 << 30);
        srv.set_volume_failed(VolumeId(1), true);
        let (t, e, ps) = parity_movie(4, 0, 10.0, 9);
        assert!(srv.open_parity("one-down", t, e, ps).is_ok());
        srv.set_volume_failed(VolumeId(2), true);
        let (t, e, ps) = parity_movie(4, 0, 10.0, 9);
        assert!(matches!(
            srv.open_parity("two-down", t, e, ps),
            Err(AdmissionError::VolumeFailed)
        ));
    }
}
