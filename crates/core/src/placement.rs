//! Movie-to-volume placement: which disk(s) a stream's data lives on.
//!
//! With one disk the question never arises; with a [`VolumeSet`] the
//! server must decide where new movies go and how much of each admitted
//! stream's bandwidth lands on each spindle. Two policies are modeled:
//!
//! * **Round-robin** (default) — each whole movie lives on one volume,
//!   chosen cyclically. Streams never span disks, so per-volume load is
//!   simply the sum of the rates of the streams placed there. This is
//!   the conservative policy: a single stream can never exceed one
//!   disk's bandwidth, but N volumes admit ~N× the streams.
//! * **Striped** — a movie's data is split into fixed-size stripe
//!   chunks dealt across all volumes, so even a single stream's load
//!   spreads evenly. Stripe chunks must be a multiple of the 8 KB file
//!   system block so stripe boundaries never split an FFS block.
//! * **Mirrored** — each movie is written in full to a primary volume
//!   *and* to a mirror volume. Admission charges the worst case — the
//!   full rate on *both* replicas — so the guarantee survives either
//!   spindle failing; in exchange the interval scheduler may steer each
//!   interval's reads to whichever replica is lighter, and a stream
//!   keeps its deadline through the loss of one volume.
//! * **Parity** — RAID-5-style rotating parity: a movie is dealt across
//!   a *group* of `g` volumes in fixed stripe units; every row of `g-1`
//!   data units gets one XOR parity unit, and the parity volume rotates
//!   row by row so no single spindle becomes the parity hot spot. A
//!   chunk on a failed volume is reconstructed by reading the same
//!   stripe-relative range of the `g-1` surviving data+parity units and
//!   XORing, so one spindle loss is survived at `g/(g-1)`× capacity
//!   instead of Mirrored's 2×. The geometry lives in
//!   [`ParityGeometry`].
//!
//! [`VolumeSet`]: cras_disk::VolumeSet

use cras_disk::VolumeId;
use cras_ufs::Extent;

/// How new movies are assigned to volumes.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum PlacementPolicy {
    /// Whole movies on one volume each, chosen cyclically.
    #[default]
    RoundRobin,
    /// Movies dealt across all volumes in `stripe_bytes` chunks.
    Striped {
        /// Stripe chunk size in bytes (multiple of the 8 KB FS block).
        stripe_bytes: u64,
    },
    /// Whole movies written twice: to a primary volume and to a mirror
    /// volume (never the same spindle). Needs at least two volumes.
    Mirrored,
    /// Rotating-parity stripe groups of `group` volumes each. The
    /// volume count must be a multiple of `group`; movies are dealt to
    /// bands of `group` contiguous volumes cyclically, laid out per
    /// [`ParityGeometry`]. Survives one spindle loss per band at
    /// `group/(group-1)`× capacity.
    Parity {
        /// Volumes per parity group (≥ 2; 2 degenerates to mirroring).
        group: usize,
    },
}

/// Stripe unit of the parity layout: 64 KB, a multiple of the 8 KB FS
/// block so a stripe unit never splits an FFS block, and small enough
/// that a degraded read of one unit fans out well under the 256 KB
/// transfer cap on each survivor.
pub const PARITY_STRIPE_BYTES: u64 = 64 * 1024;

/// Rotating-parity layout of one movie over a band of `group` volumes.
///
/// Logical data is cut into `stripe_bytes` units; each *row* holds
/// `group - 1` consecutive data units plus one parity unit (the XOR of
/// the row's data units). Row `r`'s parity lives on band volume
/// `r % group`, and the row's data units fill the remaining volumes in
/// ascending order — the classic left-asymmetric RAID-5 rotation, so
/// sequential playback load and parity load both spread evenly.
///
/// Each band volume stores two files per movie: a *data file* holding
/// that volume's data units in row order, and a *parity file* holding
/// its parity units in row order. All the index math here is pure, so
/// the deploy path, the degraded-read planner and the reconstruction
/// rebuild agree on the layout by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParityGeometry {
    /// First volume of the band.
    pub base: u32,
    /// Volumes in the band (≥ 2).
    pub group: u32,
    /// Stripe unit size in bytes.
    pub stripe_bytes: u64,
    /// Logical movie length in bytes.
    pub total_bytes: u64,
}

impl ParityGeometry {
    /// Layout for a `total_bytes` movie on the band starting at `base`.
    pub fn new(base: u32, group: u32, stripe_bytes: u64, total_bytes: u64) -> Self {
        assert!(group >= 2, "parity group needs at least 2 volumes");
        assert!(
            stripe_bytes > 0 && stripe_bytes.is_multiple_of(8192),
            "stripe unit must be a positive multiple of the 8 KB FS block"
        );
        Self {
            base,
            group,
            stripe_bytes,
            total_bytes,
        }
    }

    /// Number of data units (`ceil(total / stripe)`).
    pub fn data_units(&self) -> u64 {
        self.total_bytes.div_ceil(self.stripe_bytes)
    }

    /// Number of stripe rows (`ceil(units / (group-1))`).
    pub fn rows(&self) -> u64 {
        self.data_units().div_ceil(self.group as u64 - 1)
    }

    /// Length in bytes of data unit `k` (short for the movie tail).
    pub fn unit_len(&self, k: u64) -> u64 {
        debug_assert!(k < self.data_units());
        self.stripe_bytes
            .min(self.total_bytes - k * self.stripe_bytes)
    }

    /// Stripe row containing data unit `k`.
    pub fn row_of_unit(&self, k: u64) -> u64 {
        k / (self.group as u64 - 1)
    }

    /// Band volume holding row `r`'s parity unit.
    pub fn parity_volume(&self, r: u64) -> VolumeId {
        VolumeId(self.base + (r % self.group as u64) as u32)
    }

    /// Band volume holding data unit `k`: the `k % (g-1)`-th non-parity
    /// volume of its row, in ascending volume order.
    pub fn data_volume(&self, k: u64) -> VolumeId {
        let g = self.group as u64;
        let j = k % (g - 1);
        let p = self.row_of_unit(k) % g;
        VolumeId(self.base + (if j < p { j } else { j + 1 }) as u32)
    }

    /// Rows before `r` whose parity lands on band-relative volume `v`
    /// (`(r + g - 1 - v) / g` — one every `g` rows, phase `v`).
    fn parity_rows_before(&self, v: u32, r: u64) -> u64 {
        let g = self.group as u64;
        (r + g - 1 - v as u64) / g
    }

    /// Index of data unit `k` within its volume's data file (the unit
    /// starts at `data_file_index(k) * stripe_bytes` in that file).
    pub fn data_file_index(&self, k: u64) -> u64 {
        let r = self.row_of_unit(k);
        let v = self.data_volume(k).0 - self.base;
        // One data unit per row on every non-parity volume: count the
        // earlier rows in which `v` was not the parity volume.
        r - self.parity_rows_before(v, r)
    }

    /// Index of row `r`'s parity unit within its volume's parity file.
    pub fn parity_file_index(&self, r: u64) -> u64 {
        r / self.group as u64
    }

    /// Data bytes stored on band-relative volume `v` (sum of its units'
    /// true lengths — the size of the volume's data file).
    pub fn data_bytes_on(&self, v: u32) -> u64 {
        (0..self.data_units())
            .filter(|&k| self.data_volume(k).0 - self.base == v)
            .map(|k| self.unit_len(k))
            .sum()
    }

    /// Parity bytes stored on band-relative volume `v` (full stripe
    /// units — the size of the volume's parity file).
    pub fn parity_bytes_on(&self, v: u32) -> u64 {
        self.parity_rows_before(v, self.rows()) * self.stripe_bytes
    }

    /// Worst-case per-volume rate shares for admission over `volumes`
    /// total disks. Healthy, a parity stream loads each band spindle
    /// `1/g` of its rate; degraded, every read of a unit on the dead
    /// spindle adds one same-sized read on *each* survivor, doubling
    /// their load. Admission therefore charges `2/g` on every band
    /// volume so streams admitted healthy still meet deadlines
    /// degraded. At `g = 2` this is 1.0 per volume — exactly the
    /// Mirrored worst case, as it must be (2-volume parity *is*
    /// mirroring).
    pub fn admission_shares(&self, volumes: usize) -> Vec<f64> {
        let mut shares = vec![0.0; volumes];
        let worst = 2.0 / self.group as f64;
        for v in self.base..self.base + self.group {
            shares[v as usize] = worst.min(1.0);
        }
        shares
    }
}

/// A contiguous on-disk extent on a specific volume.
///
/// The volume-aware analogue of [`Extent`]: `extent.file_offset` is the
/// offset within the *logical movie file*, while `extent.disk_block`
/// addresses blocks on `volume` only.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VolumeExtent {
    /// The disk holding this extent.
    pub volume: VolumeId,
    /// The extent itself (file offset, disk block, length).
    pub extent: Extent,
}

/// Wraps a single-volume extent map onto `volume` (the N=1 case and the
/// round-robin case, where a whole movie lives on one disk).
pub fn on_volume(volume: VolumeId, extents: Vec<Extent>) -> Vec<VolumeExtent> {
    extents
        .into_iter()
        .map(|extent| VolumeExtent { volume, extent })
        .collect()
}

/// Fraction of a movie's *logical* bytes on each of `volumes` disks.
///
/// This is the weight vector the per-volume admission test scales each
/// stream's rate by: a whole-volume movie contributes `1.0` to its home
/// disk, a striped movie close to `1/N` everywhere, and a mirrored
/// movie `1.0` to *each* replica volume (shares sum to the replication
/// factor, not to one — admission must charge the worst-case copy on
/// every spindle that may have to serve the stream alone).
///
/// The denominator is the union of the extents' logical file ranges,
/// not the sum of their on-disk bytes: replica extents cover the same
/// logical bytes twice, and dividing by the summed footprint would
/// undercount each replica's load by the replication factor. For
/// non-replicated maps (disjoint logical ranges) the union equals the
/// sum, so round-robin and striped shares are bitwise unchanged.
pub fn volume_shares(extents: &[VolumeExtent], volumes: usize) -> Vec<f64> {
    let mut bytes = vec![0u64; volumes];
    let mut ranges: Vec<(u64, u64)> = Vec::with_capacity(extents.len());
    for ve in extents {
        let len = ve.extent.nblocks as u64 * 512;
        bytes[ve.volume.index()] += len;
        ranges.push((ve.extent.file_offset, ve.extent.file_offset + len));
    }
    ranges.sort_unstable();
    let mut total = 0u64;
    let mut end = 0u64;
    let mut start_new = true;
    for (lo, hi) in ranges {
        if start_new || lo > end {
            total += hi - lo;
            end = hi;
            start_new = false;
        } else if hi > end {
            total += hi - end;
            end = hi;
        }
    }
    if total == 0 {
        // An empty extent map is charged wholly to volume 0 so its rate
        // is never dropped from the admission test.
        let mut shares = vec![0.0; volumes];
        shares[0] = 1.0;
        return shares;
    }
    bytes
        .into_iter()
        .map(|b| {
            if b == total {
                1.0
            } else {
                b as f64 / total as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ext(file_offset: u64, disk_block: u64, nblocks: u32) -> Extent {
        Extent {
            file_offset,
            disk_block,
            nblocks,
        }
    }

    #[test]
    fn on_volume_preserves_extents() {
        let ves = on_volume(VolumeId(2), vec![ext(0, 100, 16), ext(8192, 900, 16)]);
        assert_eq!(ves.len(), 2);
        assert!(ves.iter().all(|v| v.volume == VolumeId(2)));
        assert_eq!(ves[1].extent.disk_block, 900);
    }

    #[test]
    fn shares_of_whole_volume_movie_are_exactly_one() {
        let ves = on_volume(VolumeId(1), vec![ext(0, 0, 1000)]);
        let shares = volume_shares(&ves, 3);
        // Bitwise 1.0 matters: it keeps N=1 admission identical to the
        // single-disk test (rate * 1.0 == rate).
        assert_eq!(shares, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn shares_of_even_stripe_are_half_each() {
        let mut ves = on_volume(VolumeId(0), vec![ext(0, 0, 128)]);
        ves.extend(on_volume(VolumeId(1), vec![ext(65536, 0, 128)]));
        assert_eq!(volume_shares(&ves, 2), vec![0.5, 0.5]);
    }

    #[test]
    fn mirrored_shares_charge_each_replica_in_full() {
        // The same logical bytes live on volume 0 and volume 2: each
        // replica volume must be charged the full rate (worst case: the
        // other replica is gone), so shares are exactly 1.0 twice.
        let mut ves = on_volume(VolumeId(0), vec![ext(0, 0, 1000)]);
        ves.extend(on_volume(VolumeId(2), vec![ext(0, 5000, 1000)]));
        let shares = volume_shares(&ves, 3);
        assert_eq!(shares, vec![1.0, 0.0, 1.0]);
    }

    #[test]
    fn mirrored_shares_with_fragmented_replicas() {
        // Replicas may fragment differently; each still covers the
        // whole file, so each volume's share is still exactly 1.0.
        let mut ves = on_volume(VolumeId(1), vec![ext(0, 0, 128), ext(65536, 900, 128)]);
        ves.extend(on_volume(VolumeId(3), vec![ext(0, 77, 256)]));
        let shares = volume_shares(&ves, 4);
        assert_eq!(shares, vec![0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn parity_rotation_is_a_permutation_per_row() {
        // Every row must use each band volume exactly once: g-1 data
        // units on distinct volumes, none of them the parity volume.
        for group in [2u32, 3, 4, 5] {
            let g = group as u64;
            let geom = ParityGeometry::new(4, group, PARITY_STRIPE_BYTES, 50 * PARITY_STRIPE_BYTES);
            for r in 0..geom.rows() {
                let p = geom.parity_volume(r);
                assert!(p.0 >= 4 && p.0 < 4 + group);
                let mut seen = vec![false; group as usize];
                seen[(p.0 - 4) as usize] = true;
                for j in 0..g - 1 {
                    let k = r * (g - 1) + j;
                    if k >= geom.data_units() {
                        break;
                    }
                    let v = (geom.data_volume(k).0 - 4) as usize;
                    assert!(!seen[v], "g={group} row {r}: volume reused");
                    seen[v] = true;
                }
            }
        }
    }

    #[test]
    fn parity_file_indices_are_dense_per_volume() {
        // Walking units in logical order, each volume's data-file index
        // sequence must be 0, 1, 2, ... with no gaps, and likewise each
        // volume's parity-file indices — the deploy path sizes the files
        // from exactly these counts.
        for group in [2u32, 3, 4] {
            let geom =
                ParityGeometry::new(0, group, PARITY_STRIPE_BYTES, 41 * PARITY_STRIPE_BYTES + 7);
            let mut next_data = vec![0u64; group as usize];
            for k in 0..geom.data_units() {
                let v = geom.data_volume(k).0 as usize;
                assert_eq!(geom.data_file_index(k), next_data[v], "g={group} unit {k}");
                next_data[v] += 1;
            }
            let mut next_parity = vec![0u64; group as usize];
            for r in 0..geom.rows() {
                let v = geom.parity_volume(r).0 as usize;
                assert_eq!(
                    geom.parity_file_index(r),
                    next_parity[v],
                    "g={group} row {r}"
                );
                next_parity[v] += 1;
            }
            for v in 0..group {
                assert_eq!(
                    next_data[v as usize] * PARITY_STRIPE_BYTES
                        - if geom.data_volume(geom.data_units() - 1).0 == v {
                            PARITY_STRIPE_BYTES - geom.unit_len(geom.data_units() - 1)
                        } else {
                            0
                        },
                    geom.data_bytes_on(v)
                );
                assert_eq!(
                    next_parity[v as usize] * PARITY_STRIPE_BYTES,
                    geom.parity_bytes_on(v)
                );
            }
        }
    }

    #[test]
    fn parity_capacity_overhead_is_g_over_g_minus_one() {
        for group in [2u32, 3, 4, 8] {
            // 420 units divides evenly by every g-1 here, so no partial
            // last row inflates the parity count.
            let geom =
                ParityGeometry::new(0, group, PARITY_STRIPE_BYTES, 420 * PARITY_STRIPE_BYTES);
            let data: u64 = (0..group).map(|v| geom.data_bytes_on(v)).sum();
            let parity: u64 = (0..group).map(|v| geom.parity_bytes_on(v)).sum();
            assert_eq!(data, geom.total_bytes);
            let overhead = (data + parity) as f64 / data as f64;
            let expect = group as f64 / (group - 1) as f64;
            assert!(
                (overhead - expect).abs() < 1e-9,
                "g={group}: overhead {overhead} != {expect}"
            );
        }
    }

    #[test]
    fn parity_admission_shares_are_two_over_g_and_match_mirrored_at_two() {
        let geom = ParityGeometry::new(2, 4, PARITY_STRIPE_BYTES, 1 << 20);
        assert_eq!(
            geom.admission_shares(8),
            vec![0.0, 0.0, 0.5, 0.5, 0.5, 0.5, 0.0, 0.0]
        );
        // g = 2 parity is mirroring: worst case charges the full rate on
        // both volumes, exactly like `volume_shares` on a mirrored map.
        let two = ParityGeometry::new(0, 2, PARITY_STRIPE_BYTES, 1 << 20);
        assert_eq!(two.admission_shares(2), vec![1.0, 1.0]);
    }

    #[test]
    fn shares_sum_to_one() {
        let mut ves = on_volume(VolumeId(0), vec![ext(0, 0, 48)]);
        ves.extend(on_volume(VolumeId(1), vec![ext(48 * 512, 0, 112)]));
        ves.extend(on_volume(VolumeId(2), vec![ext(160 * 512, 0, 96)]));
        let shares = volume_shares(&ves, 3);
        let sum: f64 = shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(shares[1] > shares[2] && shares[2] > shares[0]);
    }
}
