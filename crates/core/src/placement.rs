//! Movie-to-volume placement: which disk(s) a stream's data lives on.
//!
//! With one disk the question never arises; with a [`VolumeSet`] the
//! server must decide where new movies go and how much of each admitted
//! stream's bandwidth lands on each spindle. Two policies are modeled:
//!
//! * **Round-robin** (default) — each whole movie lives on one volume,
//!   chosen cyclically. Streams never span disks, so per-volume load is
//!   simply the sum of the rates of the streams placed there. This is
//!   the conservative policy: a single stream can never exceed one
//!   disk's bandwidth, but N volumes admit ~N× the streams.
//! * **Striped** — a movie's data is split into fixed-size stripe
//!   chunks dealt across all volumes, so even a single stream's load
//!   spreads evenly. Stripe chunks must be a multiple of the 8 KB file
//!   system block so stripe boundaries never split an FFS block.
//! * **Mirrored** — each movie is written in full to a primary volume
//!   *and* to a mirror volume. Admission charges the worst case — the
//!   full rate on *both* replicas — so the guarantee survives either
//!   spindle failing; in exchange the interval scheduler may steer each
//!   interval's reads to whichever replica is lighter, and a stream
//!   keeps its deadline through the loss of one volume.
//!
//! [`VolumeSet`]: cras_disk::VolumeSet

use cras_disk::VolumeId;
use cras_ufs::Extent;

/// How new movies are assigned to volumes.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum PlacementPolicy {
    /// Whole movies on one volume each, chosen cyclically.
    #[default]
    RoundRobin,
    /// Movies dealt across all volumes in `stripe_bytes` chunks.
    Striped {
        /// Stripe chunk size in bytes (multiple of the 8 KB FS block).
        stripe_bytes: u64,
    },
    /// Whole movies written twice: to a primary volume and to a mirror
    /// volume (never the same spindle). Needs at least two volumes.
    Mirrored,
}

/// A contiguous on-disk extent on a specific volume.
///
/// The volume-aware analogue of [`Extent`]: `extent.file_offset` is the
/// offset within the *logical movie file*, while `extent.disk_block`
/// addresses blocks on `volume` only.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VolumeExtent {
    /// The disk holding this extent.
    pub volume: VolumeId,
    /// The extent itself (file offset, disk block, length).
    pub extent: Extent,
}

/// Wraps a single-volume extent map onto `volume` (the N=1 case and the
/// round-robin case, where a whole movie lives on one disk).
pub fn on_volume(volume: VolumeId, extents: Vec<Extent>) -> Vec<VolumeExtent> {
    extents
        .into_iter()
        .map(|extent| VolumeExtent { volume, extent })
        .collect()
}

/// Fraction of a movie's *logical* bytes on each of `volumes` disks.
///
/// This is the weight vector the per-volume admission test scales each
/// stream's rate by: a whole-volume movie contributes `1.0` to its home
/// disk, a striped movie close to `1/N` everywhere, and a mirrored
/// movie `1.0` to *each* replica volume (shares sum to the replication
/// factor, not to one — admission must charge the worst-case copy on
/// every spindle that may have to serve the stream alone).
///
/// The denominator is the union of the extents' logical file ranges,
/// not the sum of their on-disk bytes: replica extents cover the same
/// logical bytes twice, and dividing by the summed footprint would
/// undercount each replica's load by the replication factor. For
/// non-replicated maps (disjoint logical ranges) the union equals the
/// sum, so round-robin and striped shares are bitwise unchanged.
pub fn volume_shares(extents: &[VolumeExtent], volumes: usize) -> Vec<f64> {
    let mut bytes = vec![0u64; volumes];
    let mut ranges: Vec<(u64, u64)> = Vec::with_capacity(extents.len());
    for ve in extents {
        let len = ve.extent.nblocks as u64 * 512;
        bytes[ve.volume.index()] += len;
        ranges.push((ve.extent.file_offset, ve.extent.file_offset + len));
    }
    ranges.sort_unstable();
    let mut total = 0u64;
    let mut end = 0u64;
    let mut start_new = true;
    for (lo, hi) in ranges {
        if start_new || lo > end {
            total += hi - lo;
            end = hi;
            start_new = false;
        } else if hi > end {
            total += hi - end;
            end = hi;
        }
    }
    if total == 0 {
        // An empty extent map is charged wholly to volume 0 so its rate
        // is never dropped from the admission test.
        let mut shares = vec![0.0; volumes];
        shares[0] = 1.0;
        return shares;
    }
    bytes
        .into_iter()
        .map(|b| {
            if b == total {
                1.0
            } else {
                b as f64 / total as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ext(file_offset: u64, disk_block: u64, nblocks: u32) -> Extent {
        Extent {
            file_offset,
            disk_block,
            nblocks,
        }
    }

    #[test]
    fn on_volume_preserves_extents() {
        let ves = on_volume(VolumeId(2), vec![ext(0, 100, 16), ext(8192, 900, 16)]);
        assert_eq!(ves.len(), 2);
        assert!(ves.iter().all(|v| v.volume == VolumeId(2)));
        assert_eq!(ves[1].extent.disk_block, 900);
    }

    #[test]
    fn shares_of_whole_volume_movie_are_exactly_one() {
        let ves = on_volume(VolumeId(1), vec![ext(0, 0, 1000)]);
        let shares = volume_shares(&ves, 3);
        // Bitwise 1.0 matters: it keeps N=1 admission identical to the
        // single-disk test (rate * 1.0 == rate).
        assert_eq!(shares, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn shares_of_even_stripe_are_half_each() {
        let mut ves = on_volume(VolumeId(0), vec![ext(0, 0, 128)]);
        ves.extend(on_volume(VolumeId(1), vec![ext(65536, 0, 128)]));
        assert_eq!(volume_shares(&ves, 2), vec![0.5, 0.5]);
    }

    #[test]
    fn mirrored_shares_charge_each_replica_in_full() {
        // The same logical bytes live on volume 0 and volume 2: each
        // replica volume must be charged the full rate (worst case: the
        // other replica is gone), so shares are exactly 1.0 twice.
        let mut ves = on_volume(VolumeId(0), vec![ext(0, 0, 1000)]);
        ves.extend(on_volume(VolumeId(2), vec![ext(0, 5000, 1000)]));
        let shares = volume_shares(&ves, 3);
        assert_eq!(shares, vec![1.0, 0.0, 1.0]);
    }

    #[test]
    fn mirrored_shares_with_fragmented_replicas() {
        // Replicas may fragment differently; each still covers the
        // whole file, so each volume's share is still exactly 1.0.
        let mut ves = on_volume(VolumeId(1), vec![ext(0, 0, 128), ext(65536, 900, 128)]);
        ves.extend(on_volume(VolumeId(3), vec![ext(0, 77, 256)]));
        let shares = volume_shares(&ves, 4);
        assert_eq!(shares, vec![0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn shares_sum_to_one() {
        let mut ves = on_volume(VolumeId(0), vec![ext(0, 0, 48)]);
        ves.extend(on_volume(VolumeId(1), vec![ext(48 * 512, 0, 112)]));
        ves.extend(on_volume(VolumeId(2), vec![ext(160 * 512, 0, 96)]));
        let shares = volume_shares(&ves, 3);
        let sum: f64 = shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(shares[1] > shares[2] && shares[2] > shares[0]);
    }
}
