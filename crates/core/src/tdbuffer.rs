//! The time-driven shared memory buffer (paper §2.4, Figure 4).
//!
//! A per-stream buffer keyed by media timestamps instead of FIFO order.
//! CRAS puts chunks in with their timestamps; the client reads "the data
//! at the location pointed to by `T_now`" of its own logical clock; and
//! the buffer "removes the media data automatically when the timestamp
//! becomes greater than the logical clock's current time" — more
//! precisely, everything with `timestamp < T_discard = T_now − J` is
//! discarded, where `J` absorbs small jitters.
//!
//! This is what lets a client change its consumption rate (dynamic QOS)
//! without any feedback protocol: the server keeps filling at the stream
//! rate; obsolete frames age out by timestamp; the client samples whatever
//! media time it wants.

use std::collections::BTreeMap;

use cras_sim::{Duration, Instant};

/// One buffered chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BufferedChunk {
    /// Chunk index within the stream.
    pub index: u32,
    /// Media timestamp.
    pub timestamp: Duration,
    /// Presentation duration.
    pub duration: Duration,
    /// Size in bytes.
    pub size: u32,
    /// Real time at which the chunk became visible to the client.
    pub posted_at: Instant,
}

/// Counters for buffer behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Chunks inserted.
    pub puts: u64,
    /// Successful gets.
    pub hits: u64,
    /// Gets that found no chunk for the requested time.
    pub misses: u64,
    /// Chunks discarded as obsolete.
    pub discarded: u64,
    /// Maximum byte occupancy observed.
    pub max_bytes: u64,
}

/// A time-driven buffer for one stream.
///
/// # Examples
///
/// ```
/// use cras_core::{BufferedChunk, TimeDrivenBuffer};
/// use cras_sim::{Duration, Instant};
///
/// let mut buf = TimeDrivenBuffer::new(64 << 10, Duration::from_millis(100));
/// buf.put(
///     BufferedChunk {
///         index: 0,
///         timestamp: Duration::ZERO,
///         duration: Duration::from_millis(33),
///         size: 6_250,
///         posted_at: Instant::ZERO,
///     },
///     Duration::ZERO,
/// );
/// // crs_get by logical time:
/// assert_eq!(buf.get(Duration::from_millis(10)).unwrap().index, 0);
/// // Once the logical clock passes the jitter window, it ages out:
/// buf.discard_obsolete(Duration::from_millis(200));
/// assert!(buf.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct TimeDrivenBuffer {
    /// Keyed by timestamp nanoseconds.
    entries: BTreeMap<u64, BufferedChunk>,
    capacity_bytes: u64,
    bytes: u64,
    jitter: Duration,
    stats: BufferStats,
}

impl TimeDrivenBuffer {
    /// Creates a buffer with byte capacity `capacity_bytes` (the
    /// admission test's `B_i`) and jitter allowance `J`.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero.
    pub fn new(capacity_bytes: u64, jitter: Duration) -> TimeDrivenBuffer {
        assert!(capacity_bytes > 0, "zero-capacity buffer");
        TimeDrivenBuffer {
            entries: BTreeMap::new(),
            capacity_bytes,
            bytes: 0,
            jitter,
            stats: BufferStats::default(),
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity_bytes
    }

    /// Current occupancy in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of buffered chunks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no chunks are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counters.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Discards everything with `timestamp < media_now − J`.
    pub fn discard_obsolete(&mut self, media_now: Duration) {
        let t_discard = media_now.saturating_sub(self.jitter);
        // Split off the still-valid suffix; what remains is obsolete.
        let keep = self.entries.split_off(&t_discard.as_nanos());
        for (_, e) in std::mem::replace(&mut self.entries, keep) {
            self.bytes -= e.size as u64;
            self.stats.discarded += 1;
        }
    }

    /// Inserts a chunk (server side), discarding obsolete entries first.
    ///
    /// # Panics
    ///
    /// Panics if the chunk does not fit even after discarding — the
    /// admission test's `B_i = 2·A_i` bound makes that a server bug, and
    /// the paper's design guarantees "the buffer always has enough space
    /// for storing media data retrieved from disks".
    pub fn put(&mut self, chunk: BufferedChunk, media_now: Duration) {
        self.discard_obsolete(media_now);
        assert!(
            self.bytes + chunk.size as u64 <= self.capacity_bytes,
            "time-driven buffer overflow: {} + {} > {} (admission bug)",
            self.bytes,
            chunk.size,
            self.capacity_bytes
        );
        let prev = self.entries.insert(chunk.timestamp.as_nanos(), chunk);
        assert!(prev.is_none(), "duplicate chunk timestamp");
        self.bytes += chunk.size as u64;
        self.stats.puts += 1;
        self.stats.max_bytes = self.stats.max_bytes.max(self.bytes);
    }

    /// Client-side `crs_get`: the chunk whose `[timestamp, timestamp +
    /// duration)` interval contains `media_time`, without any
    /// communication with the server.
    pub fn get(&mut self, media_time: Duration) -> Option<BufferedChunk> {
        let found = self
            .entries
            .range(..=media_time.as_nanos())
            .next_back()
            .map(|(_, e)| *e)
            .filter(|e| media_time < e.timestamp + e.duration);
        if found.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        found
    }

    /// Read-only probe used by tests and occupancy metrics.
    pub fn peek(&self, media_time: Duration) -> Option<&BufferedChunk> {
        self.entries
            .range(..=media_time.as_nanos())
            .next_back()
            .map(|(_, e)| e)
            .filter(|e| media_time < e.timestamp + e.duration)
    }

    /// The earliest buffered timestamp.
    pub fn first_timestamp(&self) -> Option<Duration> {
        self.entries
            .keys()
            .next()
            .map(|&ns| Duration::from_nanos(ns))
    }

    /// The latest buffered timestamp (the paper's `T_read_ahead` frontier).
    pub fn last_timestamp(&self) -> Option<Duration> {
        self.entries
            .keys()
            .next_back()
            .map(|&ns| Duration::from_nanos(ns))
    }

    /// Empties the buffer (on `crs_seek`, buffered data is stale).
    pub fn clear(&mut self) {
        self.stats.discarded += self.entries.len() as u64;
        self.entries.clear();
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn chunk(i: u32, ts_ms: u64, dur_ms: u64, size: u32) -> BufferedChunk {
        BufferedChunk {
            index: i,
            timestamp: ms(ts_ms),
            duration: ms(dur_ms),
            size,
            posted_at: Instant::ZERO,
        }
    }

    fn buf() -> TimeDrivenBuffer {
        TimeDrivenBuffer::new(100_000, ms(100))
    }

    #[test]
    fn put_get_same_time() {
        let mut b = buf();
        b.put(chunk(0, 0, 33, 6250), Duration::ZERO);
        let got = b.get(ms(0)).unwrap();
        assert_eq!(got.index, 0);
        // Mid-frame also resolves to frame 0.
        assert_eq!(b.get(ms(32)).unwrap().index, 0);
        // Past the frame: miss.
        assert!(b.get(ms(33)).is_none());
        assert_eq!(b.stats().hits, 2);
        assert_eq!(b.stats().misses, 1);
    }

    #[test]
    fn client_can_skip_frames() {
        // The dynamic-QOS case: 30 fps in the buffer, client samples at
        // 10 fps and uses one of every three frames.
        let mut b = buf();
        for i in 0..30 {
            b.put(chunk(i, i as u64 * 33, 33, 1000), Duration::ZERO);
        }
        let got: Vec<u32> = (0..10)
            .filter_map(|k| b.get(ms(k * 99)).map(|c| c.index))
            .collect();
        assert_eq!(got, vec![0, 3, 6, 9, 12, 15, 18, 21, 24, 27]);
    }

    #[test]
    fn obsolete_discarded_by_media_clock() {
        let mut b = buf();
        for i in 0..10 {
            b.put(chunk(i, i as u64 * 100, 100, 1000), Duration::ZERO);
        }
        assert_eq!(b.len(), 10);
        // Clock at 500 ms, J = 100 ms: discard ts < 400 ms.
        b.discard_obsolete(ms(500));
        assert_eq!(b.len(), 6);
        assert_eq!(b.first_timestamp(), Some(ms(400)));
        assert_eq!(b.stats().discarded, 4);
        assert_eq!(b.bytes(), 6000);
    }

    #[test]
    fn put_reclaims_before_inserting() {
        let mut b = TimeDrivenBuffer::new(3000, Duration::ZERO);
        b.put(chunk(0, 0, 100, 1000), Duration::ZERO);
        b.put(chunk(1, 100, 100, 1000), Duration::ZERO);
        b.put(chunk(2, 200, 100, 1000), Duration::ZERO);
        // Full. Advancing the clock to 200 ms frees ts<200 (two chunks).
        b.put(chunk(3, 300, 100, 1000), ms(200));
        assert_eq!(b.len(), 2);
        assert!(b.peek(ms(250)).is_some());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_is_a_bug() {
        let mut b = TimeDrivenBuffer::new(1500, Duration::ZERO);
        b.put(chunk(0, 0, 100, 1000), Duration::ZERO);
        b.put(chunk(1, 100, 100, 1000), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_timestamp_panics() {
        let mut b = buf();
        b.put(chunk(0, 0, 100, 10), Duration::ZERO);
        b.put(chunk(1, 0, 100, 10), Duration::ZERO);
    }

    #[test]
    fn jitter_window_keeps_recent_past() {
        let mut b = buf(); // J = 100 ms.
        b.put(chunk(0, 0, 33, 10), Duration::ZERO);
        // Clock at 90 ms: ts 0 is within J, stays.
        b.discard_obsolete(ms(90));
        assert_eq!(b.len(), 1);
        b.discard_obsolete(ms(101));
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn clear_on_seek() {
        let mut b = buf();
        for i in 0..5 {
            b.put(chunk(i, i as u64 * 100, 100, 10), Duration::ZERO);
        }
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.bytes(), 0);
        assert_eq!(b.stats().discarded, 5);
    }

    #[test]
    fn max_occupancy_tracked() {
        let mut b = buf();
        b.put(chunk(0, 0, 100, 40_000), Duration::ZERO);
        b.put(chunk(1, 100, 100, 30_000), Duration::ZERO);
        b.discard_obsolete(ms(1000));
        assert_eq!(b.stats().max_bytes, 70_000);
        assert_eq!(b.bytes(), 0);
    }

    #[test]
    fn last_timestamp_is_read_ahead_frontier() {
        let mut b = buf();
        assert!(b.last_timestamp().is_none());
        b.put(chunk(0, 0, 100, 10), Duration::ZERO);
        b.put(chunk(1, 100, 100, 10), Duration::ZERO);
        assert_eq!(b.last_timestamp(), Some(ms(100)));
    }
}
