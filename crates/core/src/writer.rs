//! Constant-rate *writing* — the paper's §4 extension, implemented.
//!
//! "Although the current version of CRAS has no capability for writing
//! continuous media files at constant rates, it is easy to add it. To
//! limit the size of these modifications, the Unix file system must be
//! modified to allocate data blocks in advance when a file is created or
//! expanded. CRAS can then write continuous media data at constant rates
//! to the allocated blocks via the same algorithm used for retrieving."
//!
//! [`Recorder`] admission-tests write sessions with the same formulas,
//! stages chunks produced by the application, and drains them to
//! pre-allocated extents once per interval as real-time writes.
//!
//! [`ParityEncoder`] is the deploy-time companion for parity-placed
//! movies ([`PlacementPolicy::Parity`](crate::PlacementPolicy::Parity)):
//! fed the movie's bytes in logical order — exactly the order a
//! recording session produces them — it XOR-accumulates each stripe row
//! and emits the row's parity unit, addressed to the rotating parity
//! volume and its offset in that volume's parity file, whenever a row
//! completes. Parity is generated once at mkfs/deploy time; the read
//! path never pays a read-modify-write.

use std::collections::{BTreeMap, HashMap, VecDeque};

use cras_disk::calibrate::DiskParams;
use cras_disk::geometry::BlockNo;
use cras_disk::{xor_into, VolumeId};
use cras_media::ChunkTable;
use cras_sim::{Duration, Instant};
use cras_ufs::Extent;

use crate::admission::{Admission, AdmissionError, AdmissionModel, StreamParams};
use crate::placement::ParityGeometry;
use crate::server::ServerConfig;
use crate::stream::{DiskRun, StreamId};

/// One parity unit produced by [`ParityEncoder`]: the XOR of a stripe
/// row's data units, addressed to its home in the rotating layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParityUnit {
    /// Stripe row this unit protects.
    pub row: u64,
    /// Band volume the unit belongs on.
    pub volume: VolumeId,
    /// Byte offset within that volume's parity file.
    pub file_offset: u64,
    /// The unit's bytes (always a full stripe unit, zero-padded past
    /// the movie tail).
    pub bytes: Vec<u8>,
}

/// Streaming deploy-time parity generator (see the module docs).
#[derive(Clone, Debug)]
pub struct ParityEncoder {
    geom: ParityGeometry,
    /// Logical bytes consumed so far.
    fed: u64,
    /// XOR accumulator of the current row's units.
    acc: Vec<u8>,
}

impl ParityEncoder {
    /// An encoder for one movie's layout.
    pub fn new(geom: ParityGeometry) -> ParityEncoder {
        ParityEncoder {
            geom,
            fed: 0,
            acc: vec![0; geom.stripe_bytes as usize],
        }
    }

    fn emit(&mut self, row: u64) -> ParityUnit {
        ParityUnit {
            row,
            volume: self.geom.parity_volume(row),
            file_offset: self.geom.parity_file_index(row) * self.geom.stripe_bytes,
            bytes: std::mem::replace(&mut self.acc, vec![0; self.geom.stripe_bytes as usize]),
        }
    }

    /// Feeds the next `data` bytes of the movie (any chunking); returns
    /// the parity units of every stripe row that completed.
    ///
    /// # Panics
    ///
    /// Panics if fed past the geometry's `total_bytes`.
    pub fn feed(&mut self, mut data: &[u8]) -> Vec<ParityUnit> {
        let sb = self.geom.stripe_bytes;
        let row_bytes = sb * (self.geom.group as u64 - 1);
        assert!(
            self.fed + data.len() as u64 <= self.geom.total_bytes,
            "fed past the movie length"
        );
        let mut out = Vec::new();
        while !data.is_empty() {
            let in_unit = (self.fed % sb) as usize;
            let take = data.len().min(sb as usize - in_unit);
            xor_into(&mut self.acc[in_unit..in_unit + take], &data[..take]);
            self.fed += take as u64;
            data = &data[take..];
            if self.fed.is_multiple_of(row_bytes) {
                out.push(self.emit(self.fed / row_bytes - 1));
            }
        }
        out
    }

    /// Flushes the final partial row's parity unit, if any. The movie
    /// must have been fed in full.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `total_bytes` bytes were fed.
    pub fn finish(&mut self) -> Option<ParityUnit> {
        assert_eq!(self.fed, self.geom.total_bytes, "movie not fully fed");
        let row_bytes = self.geom.stripe_bytes * (self.geom.group as u64 - 1);
        if self.fed == 0 || self.fed.is_multiple_of(row_bytes) {
            return None;
        }
        Some(self.emit(self.fed / row_bytes))
    }
}

/// Identifies one disk write issued by the recorder.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct WriteId(pub u64);

/// One real-time write for the orchestrator to submit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteReq {
    /// Write id.
    pub id: WriteId,
    /// Owning session.
    pub session: StreamId,
    /// First disk block.
    pub block: BlockNo,
    /// Length in 512-byte blocks.
    pub nblocks: u32,
}

struct WriteSession {
    id: StreamId,
    params: StreamParams,
    extents: Vec<Extent>,
    /// Bytes written (or staged for writing) so far.
    write_cursor: u64,
    /// Chunks staged by the client, not yet drained to disk.
    staged: VecDeque<(Duration, u32)>,
    staged_bytes: u64,
    /// Completed chunk records, for the final control file.
    recorded: Vec<(Duration, u32)>,
    capacity: u64,
}

/// The constant-rate recording server.
pub struct Recorder {
    cfg: ServerConfig,
    admission: Admission,
    sessions: BTreeMap<u32, WriteSession>,
    next_session: u32,
    next_write: u64,
    inflight: HashMap<u64, StreamId>,
    writes_issued: u64,
    bytes_written: u64,
}

impl Recorder {
    /// Creates a recorder.
    pub fn new(disk: DiskParams, cfg: ServerConfig) -> Recorder {
        Recorder {
            admission: Admission::new(disk, AdmissionModel::Paper),
            cfg,
            sessions: BTreeMap::new(),
            next_session: 0,
            next_write: 0,
            inflight: HashMap::new(),
            writes_issued: 0,
            bytes_written: 0,
        }
    }

    /// Writes issued so far.
    pub fn writes_issued(&self) -> u64 {
        self.writes_issued
    }

    /// Bytes drained to disk so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Opens a write session: the caller has pre-allocated `extents`
    /// (via [`cras_ufs::Ufs::preallocate`]) and declares the recording
    /// rate and chunk size; the same admission test applies.
    pub fn open_write(
        &mut self,
        rate: f64,
        chunk: f64,
        extents: Vec<Extent>,
    ) -> Result<StreamId, AdmissionError> {
        let params = StreamParams::new(rate, chunk);
        let mut all: Vec<StreamParams> = self.sessions.values().map(|s| s.params).collect();
        all.push(params);
        let t = self.cfg.interval.as_secs_f64();
        self.admission.admit(t, &all, self.cfg.buffer_budget)?;
        let id = StreamId(self.next_session);
        self.next_session += 1;
        let capacity = extents.iter().map(|e| e.bytes()).sum();
        self.sessions.insert(
            id.0,
            WriteSession {
                id,
                params,
                extents,
                write_cursor: 0,
                staged: VecDeque::new(),
                staged_bytes: 0,
                recorded: Vec::new(),
                capacity,
            },
        );
        Ok(id)
    }

    /// Stages one produced chunk (the application side of the shared
    /// buffer).
    ///
    /// # Panics
    ///
    /// Panics if the pre-allocated space would overflow.
    pub fn stage_chunk(&mut self, id: StreamId, duration: Duration, size: u32) {
        let s = self.sessions.get_mut(&id.0).expect("no such session");
        assert!(
            s.write_cursor + s.staged_bytes + size as u64 <= s.capacity,
            "write session out of pre-allocated space"
        );
        s.staged.push_back((duration, size));
        s.staged_bytes += size as u64;
    }

    /// The per-interval drain: converts staged chunks into real-time
    /// writes against the pre-allocated extents, in cylinder order.
    pub fn interval_tick(&mut self, _now: Instant) -> Vec<WriteReq> {
        let mut reqs = Vec::new();
        let ids: Vec<u32> = self.sessions.keys().copied().collect();
        for sid in ids {
            let (runs, session_id) = {
                let s = self.sessions.get_mut(&sid).expect("iterating keys");
                if s.staged.is_empty() {
                    continue;
                }
                let lo = s.write_cursor;
                let mut hi = lo;
                while let Some((dur, size)) = s.staged.pop_front() {
                    hi += size as u64;
                    s.staged_bytes -= size as u64;
                    s.recorded.push((dur, size));
                }
                s.write_cursor = hi;
                let runs = byte_range_to_runs(&s.extents, lo, hi);
                (split_runs(runs, self.cfg.max_read_bytes), s.id)
            };
            for r in runs {
                let id = WriteId(self.next_write);
                self.next_write += 1;
                self.inflight.insert(id.0, session_id);
                self.writes_issued += 1;
                self.bytes_written += r.nblocks as u64 * 512;
                reqs.push(WriteReq {
                    id,
                    session: session_id,
                    block: r.block,
                    nblocks: r.nblocks,
                });
            }
        }
        reqs.sort_by_key(|r| r.block);
        reqs
    }

    /// Records a write completion.
    pub fn io_done(&mut self, id: WriteId) {
        self.inflight.remove(&id.0);
    }

    /// Whether any writes are still in flight for the session.
    pub fn has_inflight(&self, id: StreamId) -> bool {
        self.inflight.values().any(|s| *s == id)
    }

    /// Closes the session, returning the control-file chunk table of what
    /// was recorded.
    ///
    /// # Panics
    ///
    /// Panics if writes are still in flight.
    pub fn finalize(&mut self, id: StreamId) -> ChunkTable {
        assert!(
            !self.has_inflight(id),
            "finalize with writes still in flight"
        );
        let s = self.sessions.remove(&id.0).expect("no such session");
        ChunkTable::from_durations_sizes(&s.recorded)
    }
}

/// Maps `[lo, hi)` file bytes onto disk runs through an extent list
/// (free-standing twin of [`crate::stream::Stream::byte_range_to_runs`]).
fn byte_range_to_runs(extents: &[Extent], lo: u64, hi: u64) -> Vec<DiskRun> {
    assert!(lo < hi, "empty byte range");
    let mut runs: Vec<DiskRun> = Vec::new();
    for e in extents {
        let e_lo = e.file_offset;
        let e_hi = e.file_offset + e.bytes();
        let a = lo.max(e_lo);
        let b = hi.min(e_hi);
        if a >= b {
            continue;
        }
        let rel_lo = (a - e_lo) / 512;
        let rel_hi = (b - e_lo).div_ceil(512);
        let block = e.disk_block + rel_lo;
        let nblocks = (rel_hi - rel_lo) as u32;
        match runs.last_mut() {
            Some(last) if last.block + last.nblocks as u64 == block => {
                last.nblocks += nblocks;
            }
            _ => runs.push(DiskRun { block, nblocks }),
        }
    }
    runs
}

/// Splits single-volume runs at the per-command byte cap (the write
/// path's analogue of [`crate::stream::Stream::split_runs`]).
fn split_runs(runs: Vec<DiskRun>, max_bytes: u64) -> Vec<DiskRun> {
    let max_blocks = (max_bytes / 512).max(1) as u32;
    let mut out = Vec::with_capacity(runs.len());
    for r in runs {
        let mut block = r.block;
        let mut left = r.nblocks;
        while left > 0 {
            let take = left.min(max_blocks);
            out.push(DiskRun {
                block,
                nblocks: take,
            });
            block += take as u64;
            left -= take;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }
    fn at(v: u64) -> Instant {
        Instant::ZERO + ms(v)
    }

    fn recorder() -> Recorder {
        Recorder::new(DiskParams::paper_table4(), ServerConfig::default())
    }

    fn extents(bytes: u64) -> Vec<Extent> {
        vec![Extent {
            file_offset: 0,
            disk_block: 50_000,
            nblocks: bytes.div_ceil(512) as u32,
        }]
    }

    #[test]
    fn open_admission_applies() {
        let mut r = recorder();
        let id = r.open_write(187_500.0, 6_250.0, extents(1 << 20)).unwrap();
        assert_eq!(id, StreamId(0));
        // A write session beyond disk rate is rejected.
        let err = r.open_write(7.0e6, 6_250.0, extents(1 << 20));
        assert!(err.is_err());
    }

    #[test]
    fn staged_chunks_drain_in_interval_order() {
        let mut r = recorder();
        let id = r.open_write(187_500.0, 6_250.0, extents(1 << 20)).unwrap();
        for _ in 0..15 {
            r.stage_chunk(id, ms(33), 6_250);
        }
        let reqs = r.interval_tick(at(0));
        assert!(!reqs.is_empty());
        let bytes: u64 = reqs.iter().map(|w| w.nblocks as u64 * 512).sum();
        // 15 * 6250 = 93 750, rounded up to blocks.
        assert!((93_750..95_000).contains(&bytes), "bytes = {bytes}");
        // Nothing staged => next tick writes nothing.
        assert!(r.interval_tick(at(500)).is_empty());
    }

    #[test]
    fn sequential_writes_advance_through_extent() {
        let mut r = recorder();
        let id = r.open_write(187_500.0, 6_250.0, extents(1 << 20)).unwrap();
        r.stage_chunk(id, ms(33), 6_250);
        let w1 = r.interval_tick(at(0));
        r.stage_chunk(id, ms(33), 6_250);
        let w2 = r.interval_tick(at(500));
        let end1 = w1.last().unwrap().block + w1.last().unwrap().nblocks as u64;
        // Second batch begins in the block where the first left off
        // (byte 6250 falls inside block 12).
        assert!(w2[0].block >= end1 - 1);
    }

    #[test]
    fn finalize_returns_control_table() {
        let mut r = recorder();
        let id = r.open_write(187_500.0, 6_250.0, extents(1 << 20)).unwrap();
        for _ in 0..30 {
            r.stage_chunk(id, ms(33), 6_250);
        }
        for w in r.interval_tick(at(0)) {
            r.io_done(w.id);
        }
        let table = r.finalize(id);
        assert_eq!(table.len(), 30);
        assert_eq!(table.total_bytes(), 30 * 6_250);
        assert_eq!(table.get(2).unwrap().timestamp, ms(66));
    }

    #[test]
    #[should_panic(expected = "in flight")]
    fn finalize_with_inflight_panics() {
        let mut r = recorder();
        let id = r.open_write(187_500.0, 6_250.0, extents(1 << 20)).unwrap();
        r.stage_chunk(id, ms(33), 6_250);
        let _reqs = r.interval_tick(at(0));
        r.finalize(id);
    }

    #[test]
    #[should_panic(expected = "pre-allocated space")]
    fn overflowing_preallocation_panics() {
        let mut r = recorder();
        let id = r.open_write(187_500.0, 6_250.0, extents(10_000)).unwrap();
        r.stage_chunk(id, ms(33), 6_250);
        r.stage_chunk(id, ms(33), 6_250);
    }

    #[test]
    fn writes_split_at_256k() {
        let mut r = recorder();
        let id = r.open_write(1.0e6, 500_000.0, extents(4 << 20)).unwrap();
        r.stage_chunk(id, ms(500), 1_000_000);
        let reqs = r.interval_tick(at(0));
        assert!(reqs.len() >= 4);
        assert!(reqs.iter().all(|w| w.nblocks as u64 * 512 <= 256 * 1024));
    }

    #[test]
    fn parity_encoder_matches_direct_xor_for_any_feed_chunking() {
        use crate::placement::ParityGeometry;
        let mut rng = cras_sim::Rng::new(0xEC0DE);
        for trial in 0..20 {
            let group = rng.range_inclusive(2, 5) as u32;
            let sb = 8192u64; // Small stripe keeps the test fast.
            let total = rng.range_inclusive(1, 6 * (group as u64 - 1)) * sb
                - if rng.chance(0.5) {
                    rng.below(sb - 1) + 1
                } else {
                    0
                };
            let movie: Vec<u8> = (0..total).map(|_| rng.below(256) as u8).collect();
            let geom = ParityGeometry::new(0, group, sb, total);
            // Feed in random-sized pieces, as a recording session would.
            let mut enc = ParityEncoder::new(geom);
            let mut units = Vec::new();
            let mut off = 0usize;
            while off < movie.len() {
                let take = (rng.below(3 * sb) as usize + 1).min(movie.len() - off);
                units.extend(enc.feed(&movie[off..off + take]));
                off += take;
            }
            units.extend(enc.finish());
            assert_eq!(
                units.len() as u64,
                geom.rows(),
                "trial {trial}: one unit per row"
            );
            for u in &units {
                let refs: Vec<&[u8]> = (0..group as u64 - 1)
                    .filter_map(|j| {
                        let k = u.row * (group as u64 - 1) + j;
                        if k * sb >= total {
                            return None;
                        }
                        Some(&movie[(k * sb) as usize..(k * sb + geom.unit_len(k)) as usize])
                    })
                    .collect();
                assert_eq!(
                    u.bytes,
                    cras_disk::parity_of(&refs, sb as usize),
                    "trial {trial} row {}",
                    u.row
                );
                assert_eq!(u.volume, geom.parity_volume(u.row));
                assert_eq!(u.file_offset, geom.parity_file_index(u.row) * sb);
            }
        }
    }
}
