//! The FIFO buffer CRAS deliberately does *not* use — kept as the §2.4
//! ablation baseline.
//!
//! "There is a problem when using traditional FIFO buffers for
//! communicating between client applications and the continuous media
//! server. Since CRAS delivers data to buffers at a constant rate, when
//! applications cannot fetch data from the buffers at the same rate, the
//! buffers may overflow. For this situation, FIFO buffers have the
//! undesirable logical property of discarding incoming new data before
//! obsolete old data in the buffers."
//!
//! [`FifoBuffer`] implements exactly that behaviour so the
//! buffer-ablation experiment can quantify the staleness it causes.

use std::collections::VecDeque;

use crate::tdbuffer::BufferedChunk;

/// A bounded FIFO chunk buffer (the traditional design).
#[derive(Clone, Debug)]
pub struct FifoBuffer {
    queue: VecDeque<BufferedChunk>,
    capacity_bytes: u64,
    bytes: u64,
    puts: u64,
    drops_new: u64,
}

impl FifoBuffer {
    /// Creates a buffer with the given byte capacity.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero.
    pub fn new(capacity_bytes: u64) -> FifoBuffer {
        assert!(capacity_bytes > 0, "zero-capacity buffer");
        FifoBuffer {
            queue: VecDeque::new(),
            capacity_bytes,
            bytes: 0,
            puts: 0,
            drops_new: 0,
        }
    }

    /// Current occupancy in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of buffered chunks.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Chunks accepted.
    pub fn puts(&self) -> u64 {
        self.puts
    }

    /// *New* chunks dropped because old data occupied the buffer — the
    /// §2.4 failure mode.
    pub fn drops_new(&self) -> u64 {
        self.drops_new
    }

    /// Offers a chunk; a full buffer drops the *newcomer* (old data is
    /// never evicted — that is the point of the ablation).
    pub fn put(&mut self, chunk: BufferedChunk) -> bool {
        if self.bytes + chunk.size as u64 > self.capacity_bytes {
            self.drops_new += 1;
            return false;
        }
        self.bytes += chunk.size as u64;
        self.queue.push_back(chunk);
        self.puts += 1;
        true
    }

    /// Takes the oldest chunk (the only access order a FIFO offers).
    pub fn pop(&mut self) -> Option<BufferedChunk> {
        let c = self.queue.pop_front()?;
        self.bytes -= c.size as u64;
        Some(c)
    }

    /// Peeks the oldest chunk.
    pub fn front(&self) -> Option<&BufferedChunk> {
        self.queue.front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cras_sim::{Duration, Instant};

    fn chunk(i: u32, size: u32) -> BufferedChunk {
        BufferedChunk {
            index: i,
            timestamp: Duration::from_millis(i as u64 * 33),
            duration: Duration::from_millis(33),
            size,
            posted_at: Instant::ZERO,
        }
    }

    #[test]
    fn fifo_order() {
        let mut b = FifoBuffer::new(100_000);
        b.put(chunk(0, 100));
        b.put(chunk(1, 100));
        assert_eq!(b.pop().unwrap().index, 0);
        assert_eq!(b.pop().unwrap().index, 1);
        assert!(b.pop().is_none());
    }

    #[test]
    fn full_buffer_drops_the_newcomer() {
        let mut b = FifoBuffer::new(250);
        assert!(b.put(chunk(0, 100)));
        assert!(b.put(chunk(1, 100)));
        assert!(!b.put(chunk(2, 100)), "new data dropped, old kept");
        assert_eq!(b.drops_new(), 1);
        assert_eq!(b.front().unwrap().index, 0, "stale head survives");
    }

    #[test]
    fn occupancy_accounting() {
        let mut b = FifoBuffer::new(1000);
        b.put(chunk(0, 300));
        b.put(chunk(1, 400));
        assert_eq!(b.bytes(), 700);
        b.pop();
        assert_eq!(b.bytes(), 400);
        assert_eq!(b.len(), 1);
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_panics() {
        FifoBuffer::new(0);
    }
}
