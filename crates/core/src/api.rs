//! The Table 2 client interface, verbatim.
//!
//! | call | paper description |
//! |---|---|
//! | `crs_open` | Open a new continuous media stream |
//! | `crs_close` | Close a continuous media stream |
//! | `crs_start` | Start the logical clock of a continuous media stream |
//! | `crs_stop` | Stop the logical clock of a continuous media stream |
//! | `crs_seek` | Set the logical clock to the specified value |
//! | `crs_get` | Get the address of data chunk in the time-driven shared memory buffer specified by logical time |
//!
//! [`CrsSession`] wraps a [`CrasServer`] in exactly this vocabulary — a
//! thin facade over the server's methods, for code that wants to read
//! like the paper. Note that `crs_get` "does not communicate with CRAS,
//! because an application can get the data from its time-driven shared
//! memory buffer"; in the simulation both go through the same object, and
//! the deployment-cost model ([`crate::deploy`]) accounts for the
//! difference.

use cras_media::ChunkTable;
use cras_sim::{Duration, Instant};
use cras_ufs::Extent;

use crate::admission::AdmissionError;
use crate::server::CrasServer;
use crate::stream::StreamId;
use crate::tdbuffer::BufferedChunk;

/// A client-side handle to one open stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrsSession {
    stream: StreamId,
}

impl CrsSession {
    /// The underlying stream id.
    pub fn stream(&self) -> StreamId {
        self.stream
    }
}

/// `crs_open`: opens a stream (admission test, buffer allocation) and
/// returns a session handle.
pub fn crs_open(
    server: &mut CrasServer,
    name: &str,
    table: ChunkTable,
    extents: Vec<Extent>,
) -> Result<CrsSession, AdmissionError> {
    server
        .open(name, table, extents)
        .map(|stream| CrsSession { stream })
}

/// `crs_close`: closes the stream and releases its buffer.
pub fn crs_close(server: &mut CrasServer, session: CrsSession) {
    server.close(session.stream);
}

/// `crs_start`: starts the stream's logical clock (after the initial
/// delay); pre-fetching begins at the next interval. Returns the real
/// time at which media time zero plays.
pub fn crs_start(server: &mut CrasServer, session: CrsSession, now: Instant) -> Instant {
    server.start(session.stream, now)
}

/// `crs_stop`: stops the logical clock; pre-fetching freezes.
pub fn crs_stop(server: &mut CrasServer, session: CrsSession, now: Instant) {
    server.stop(session.stream, now);
}

/// `crs_seek`: sets the logical clock to `to`; buffered data is dropped
/// and pre-fetching resumes from the new position.
pub fn crs_seek(server: &mut CrasServer, session: CrsSession, now: Instant, to: Duration) {
    server.seek(session.stream, now, to);
}

/// `crs_get`: the chunk at `logical_time` from the time-driven shared
/// memory buffer (no server round trip in the real system).
pub fn crs_get(
    server: &mut CrasServer,
    session: CrsSession,
    logical_time: Duration,
) -> Option<BufferedChunk> {
    server.get(session.stream, logical_time)
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use cras_disk::calibrate::DiskParams;
    use cras_media::StreamProfile;
    use cras_sim::Rng;

    fn setup() -> (CrasServer, ChunkTable, Vec<Extent>) {
        let server = CrasServer::new(DiskParams::paper_table4(), ServerConfig::default());
        let mut rng = Rng::new(2);
        let table = cras_media::generate_chunks(&StreamProfile::mpeg1(), 5.0, &mut rng);
        let nblocks = table.total_bytes().div_ceil(512) as u32;
        let extents = vec![Extent {
            file_offset: 0,
            disk_block: 40_000,
            nblocks,
        }];
        (server, table, extents)
    }

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }
    fn at(v: u64) -> Instant {
        Instant::ZERO + ms(v)
    }

    #[test]
    fn full_session_lifecycle() {
        let (mut srv, table, extents) = setup();
        let s = crs_open(&mut srv, "m", table, extents).expect("admitted");
        let begin = crs_start(&mut srv, s, at(0));
        assert_eq!(begin, at(1000));

        // Drive two intervals by hand so the first chunks post.
        srv.interval_tick(at(0));
        let rep = srv.interval_tick(at(500));
        for r in &rep.reqs {
            srv.io_done(r.id, at(700));
        }
        srv.interval_tick(at(1000));
        let chunk = crs_get(&mut srv, s, Duration::ZERO).expect("first frame");
        assert_eq!(chunk.index, 0);

        crs_stop(&mut srv, s, at(1100));
        crs_seek(&mut srv, s, at(1200), Duration::from_secs(2));
        assert!(crs_get(&mut srv, s, Duration::from_secs(2)).is_none());
        crs_close(&mut srv, s);
        assert_eq!(srv.stream_count(), 0);
    }

    #[test]
    fn open_propagates_admission_error() {
        let (mut srv, table, extents) = setup();
        // Shrink the budget below one stream's buffer.
        let mut cfg = ServerConfig::default();
        cfg.buffer_budget = 1000;
        let mut tiny = CrasServer::new(DiskParams::paper_table4(), cfg);
        let err = crs_open(&mut tiny, "m", table.clone(), extents.clone());
        assert!(err.is_err());
        // The normal server still admits it.
        assert!(crs_open(&mut srv, "m", table, extents).is_ok());
    }
}
