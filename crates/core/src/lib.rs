//! `cras-core` — CRAS, the paper's Constant Rate Access Server.
//!
//! "CRAS provides a single function, a constant rate retrieval for
//! playback. This makes the size of CRAS compact." The pieces, one module
//! each:
//!
//! * [`admission`] — the closed-form admission test (paper §2.3,
//!   Appendices B/C) plus a multi-command ablation model.
//! * [`cache`] — the interval cache: trailing streams of a popular
//!   movie are served from the window the leader just read, and can be
//!   admitted against a memory budget when the disk bound is full.
//! * [`cachepolicy`] — the popularity-aware cache manager (DESIGN §16):
//!   Zipf popularity modelling, prefix residency for the hot set, and
//!   the deferred (reserve-at-drain) admission policy built on it.
//! * [`clock`] — per-stream logical clocks (`crs_start/stop/seek`, rate
//!   changes).
//! * [`tdbuffer`] — the time-driven shared memory buffer (§2.4,
//!   Figure 4): timestamp-keyed, auto-discarding, the mechanism behind
//!   dynamic QOS control.
//! * [`stream`] — per-stream state and the byte-range → disk-extent
//!   mapping resolved at `crs_open`.
//! * [`placement`] — movie-to-volume placement over a multi-disk
//!   [`VolumeSet`](cras_disk::VolumeSet): round-robin whole movies or
//!   striped extents, and the per-volume rate shares admission uses.
//! * [`server`] — the five-thread server state machine: interval
//!   scheduling, ≤256 KB cylinder-ordered reads, the I/O-done queue,
//!   deadline warnings.
//! * [`writer`] — the §4 constant-rate *writing* extension.
//! * [`deploy`] — the Figure 5 deployment configurations.
//! * [`api`] — the Table 2 `crs_*` client interface, verbatim.
//! * [`fifo`] — the traditional FIFO buffer kept as the §2.4 ablation
//!   baseline.
//!
//! The server is deliberately I/O-free: it plans reads and accepts
//! completions; `cras-sys` wires it to the simulated disk, CPU and
//! clients.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod api;
pub mod cache;
pub mod cachepolicy;
pub mod clock;
pub mod deploy;
pub mod fifo;
pub mod placement;
pub mod server;
pub mod stream;
pub mod tdbuffer;
pub mod writer;

pub use admission::{Admission, AdmissionError, AdmissionModel, StreamParams, MAX_READ_BYTES};
pub use api::{crs_close, crs_get, crs_open, crs_seek, crs_start, crs_stop, CrsSession};
pub use cache::{CacheStats, EvictPolicy, IntervalCache};
pub use cachepolicy::{
    head_share, zipf_cdf, zipf_rank, zipf_weight, CacheManager, PopularityEstimator,
};
pub use clock::LogicalClock;
pub use deploy::DeployMode;
pub use fifo::FifoBuffer;
pub use placement::{
    on_volume, volume_shares, ParityGeometry, PlacementPolicy, VolumeExtent, PARITY_STRIPE_BYTES,
};
pub use server::{
    CrasServer, IntervalReport, ReadId, ReadReq, ServerConfig, ServerStats, VolumeLoad,
};
pub use stream::{CacheState, DiskRun, ParityState, Stream, StreamId, VolumeRun};
pub use tdbuffer::{BufferStats, BufferedChunk, TimeDrivenBuffer};
pub use writer::{ParityEncoder, ParityUnit, Recorder, WriteId, WriteReq};
