//! The popularity-aware cache manager: a catalog-wide policy layered
//! over the interval cache (DESIGN §16).
//!
//! DESIGN §11's interval cache pins first-come and sweeps by trailing
//! window — a *per-interval* policy that knows nothing about which
//! titles matter. This module adds the catalog view (grounded in
//! *Multicast Transmission Prefix and Popularity Aware Interval Caching
//! Based Admission Control Policy*, PAPERS.md):
//!
//! * a Zipf popularity model plus an online open-count estimator (moved
//!   here from `cras-cluster`, which re-exports them — placement and
//!   caching rank titles the same way);
//! * a [`CacheManager`] that keeps the hot set's *prefix* frames
//!   memory-resident across sessions, so a new viewer of a popular
//!   title starts from memory and only needs a disk share once its
//!   prefix drains (deferred admission, reserve-at-drain);
//! * hot-set promotion/demotion driven by observed opens, feeding
//!   [`IntervalCache::set_prefix`](crate::IntervalCache::set_prefix)
//!   pins and un-pins deterministically.

use std::collections::BTreeMap;

use cras_sim::Duration;

use crate::cache::IntervalCache;

/// Unnormalized Zipf weight of rank `r` (0-based) with exponent
/// `theta`.
pub fn zipf_weight(rank: usize, theta: f64) -> f64 {
    1.0 / ((rank + 1) as f64).powf(theta)
}

/// Cumulative request share of the `head` hottest titles out of `n`
/// under Zipf(`theta`) — how much traffic replication covers.
pub fn head_share(head: usize, n: usize, theta: f64) -> f64 {
    let total: f64 = (0..n).map(|r| zipf_weight(r, theta)).sum();
    let hot: f64 = (0..head.min(n)).map(|r| zipf_weight(r, theta)).sum();
    if total > 0.0 {
        hot / total
    } else {
        0.0
    }
}

/// Cumulative distribution for drawing Zipf-distributed ranks by
/// inverse-CDF sampling: `cdf[r]` is the probability of rank `<= r`.
pub fn zipf_cdf(n: usize, theta: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for r in 0..n {
        acc += zipf_weight(r, theta);
        cdf.push(acc);
    }
    let total = *cdf.last().unwrap_or(&1.0);
    for c in &mut cdf {
        *c /= total;
    }
    cdf
}

/// Draws a rank from `cdf` (as built by [`zipf_cdf`]) given a uniform
/// sample in `[0, 1)`.
pub fn zipf_rank(cdf: &[f64], u: f64) -> usize {
    cdf.partition_point(|&c| c < u)
        .min(cdf.len().saturating_sub(1))
}

/// Online open-count estimator. Iteration order is `BTreeMap`'s, so
/// every report it produces is deterministic.
#[derive(Clone, Debug, Default)]
pub struct PopularityEstimator {
    counts: BTreeMap<String, u64>,
    total: u64,
}

impl PopularityEstimator {
    /// Creates an empty estimator.
    pub fn new() -> PopularityEstimator {
        PopularityEstimator::default()
    }

    /// Records one open of `title`.
    pub fn observe(&mut self, title: &str) {
        *self.counts.entry(title.to_string()).or_insert(0) += 1;
        self.total += 1;
    }

    /// Opens observed for `title`.
    pub fn count(&self, title: &str) -> u64 {
        self.counts.get(title).copied().unwrap_or(0)
    }

    /// Total opens observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Distinct titles observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The `k` most-opened titles, most popular first; ties broken by
    /// title name so the report is stable across runs.
    pub fn top(&self, k: usize) -> Vec<(&str, u64)> {
        let mut v: Vec<(&str, u64)> = self.counts.iter().map(|(t, &c)| (t.as_str(), c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v.truncate(k);
        v
    }

    /// Observed request share of the `k` most-opened titles.
    pub fn observed_head_share(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let hot: u64 = self.top(k).iter().map(|&(_, c)| c).sum();
        hot as f64 / self.total as f64
    }
}

/// The global cache manager: ranks titles by observed opens and keeps
/// the hot set's prefixes pinned in the interval cache.
///
/// The server owns one manager next to its [`IntervalCache`] and calls
/// [`CacheManager::observe_open`] on every `crs_open`. The manager
/// recomputes the top-`hot_set` titles (ties by name, like
/// [`PopularityEstimator::top`]) and syncs the cache's prefix pins:
/// promoted titles gain a `prefix_secs` pin, demoted titles lose
/// theirs — the "cold prefix" the followers-per-byte policy then
/// reclaims. With `hot_set == 0` or `prefix_secs == 0` the manager
/// only counts and never pins, leaving the cache byte-identical to the
/// unmanaged baseline.
#[derive(Clone, Debug)]
pub struct CacheManager {
    popularity: PopularityEstimator,
    hot_set: usize,
    prefix_secs: Duration,
    hot: Vec<String>,
}

impl CacheManager {
    /// Creates a manager keeping the first `prefix_secs` of the
    /// `hot_set` most-opened titles resident.
    pub fn new(hot_set: usize, prefix_secs: Duration) -> CacheManager {
        CacheManager {
            popularity: PopularityEstimator::new(),
            hot_set,
            prefix_secs,
            hot: Vec::new(),
        }
    }

    /// Whether prefix residency is active at all.
    pub fn enabled(&self) -> bool {
        self.hot_set > 0 && self.prefix_secs > Duration::ZERO
    }

    /// The configured prefix-residency window.
    pub fn prefix_secs(&self) -> Duration {
        self.prefix_secs
    }

    /// The popularity estimator (shared ranking with cluster placement).
    pub fn popularity(&self) -> &PopularityEstimator {
        &self.popularity
    }

    /// The current hot set, most popular first.
    pub fn hot_titles(&self) -> &[String] {
        &self.hot
    }

    /// Whether `title` is currently in the hot set.
    pub fn is_hot(&self, title: &str) -> bool {
        self.hot.iter().any(|t| t == title)
    }

    /// Records one open of `title`, recomputes the hot set, and syncs
    /// the cache's prefix pins (new hot titles pinned, demoted titles
    /// unpinned).
    pub fn observe_open(&mut self, title: &str, cache: &mut IntervalCache) {
        self.popularity.observe(title);
        if !self.enabled() || !cache.enabled() {
            return;
        }
        let next: Vec<String> = self
            .popularity
            .top(self.hot_set)
            .into_iter()
            .map(|(t, _)| t.to_string())
            .collect();
        for old in &self.hot {
            if !next.contains(old) {
                cache.set_prefix(old, Duration::ZERO);
            }
        }
        for new in &next {
            if !cache.has_prefix(new) {
                cache.set_prefix(new, self.prefix_secs);
            }
        }
        self.hot = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_head_concentrates() {
        // Under Zipf(1.0) over 1000 titles, the top 32 carry a large
        // minority of all requests — the premise of hot replication.
        let share = head_share(32, 1000, 1.0);
        assert!((0.40..0.60).contains(&share), "head share {share:.3}");
        assert!(head_share(1000, 1000, 1.0) > 0.999);
    }

    #[test]
    fn cdf_inversion_is_monotone_and_in_range() {
        let cdf = zipf_cdf(100, 1.0);
        assert_eq!(zipf_rank(&cdf, 0.0), 0);
        assert_eq!(zipf_rank(&cdf, 0.999_999), 99);
        let mut last = 0;
        for i in 0..=100 {
            let r = zipf_rank(&cdf, i as f64 / 100.0);
            assert!(r >= last);
            last = r;
        }
    }

    #[test]
    fn estimator_orders_by_count_then_name() {
        let mut e = PopularityEstimator::new();
        for _ in 0..3 {
            e.observe("b");
        }
        for _ in 0..3 {
            e.observe("a");
        }
        e.observe("c");
        assert_eq!(e.top(2), vec![("a", 3), ("b", 3)]);
        assert_eq!(e.total(), 7);
        assert_eq!(e.distinct(), 3);
        assert!((e.observed_head_share(2) - 6.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn manager_promotes_and_demotes_prefix_pins() {
        let mut cache = IntervalCache::new(1 << 20, Duration::from_secs(10));
        let mut mgr = CacheManager::new(1, Duration::from_secs(5));
        mgr.observe_open("a.mov", &mut cache);
        assert!(mgr.is_hot("a.mov"));
        assert!(cache.has_prefix("a.mov"));
        // Two opens of b displace a from the 1-slot hot set.
        mgr.observe_open("b.mov", &mut cache);
        mgr.observe_open("b.mov", &mut cache);
        assert!(mgr.is_hot("b.mov") && !mgr.is_hot("a.mov"));
        assert!(cache.has_prefix("b.mov") && !cache.has_prefix("a.mov"));
    }

    #[test]
    fn disabled_manager_never_pins() {
        let mut cache = IntervalCache::new(1 << 20, Duration::from_secs(10));
        let mut mgr = CacheManager::new(0, Duration::from_secs(5));
        mgr.observe_open("a.mov", &mut cache);
        assert!(!mgr.enabled());
        assert_eq!(mgr.popularity().count("a.mov"), 1);
        assert!(!cache.has_prefix("a.mov"));
    }
}
