//! The interval cache: serve trailing streams of popular movies from
//! memory instead of disk.
//!
//! When two clients watch the same movie a few seconds apart, the data
//! the leader just read from disk is exactly the data the follower is
//! about to need. Interval caching (Jayarekha & Nair; see PAPERS.md)
//! retains only that sliding window — the interval between a leading
//! and a trailing stream — so the trailing stream's disk load drops to
//! zero and admission can accept it against a *memory* budget instead
//! of the disk-time bound.
//!
//! The cache is timestamp-indexed, like the per-stream time-driven
//! buffer (DESIGN §3): each [`Frame`] holds one media chunk keyed by
//! its timestamp. Frames are *pinned* while any registered follower
//! still has to consume them (per-frame waiter lists keyed by the
//! trailing streams' logical clocks) and become evictable once every
//! follower has read past them. Unpinned frames are retained as a
//! trailing window behind the movie's read frontier, so a stream that
//! starts *after* the leader's reads still finds the recent past in
//! memory; they are evicted when they fall more than the configured
//! maximum gap behind the movie's trailing-most consumer, or when the
//! cache exceeds its byte budget (lowest insertion sequence first —
//! deterministic FIFO pressure).
//!
//! The server (`crates/core/src/server.rs`) owns one [`IntervalCache`]
//! and consults it in three places: admission (a trailing stream may be
//! admitted against the cache budget when the disk bound is exhausted),
//! interval planning (cache-served streams issue zero disk commands),
//! and teardown (`crs_stop`/`crs_seek`/close release the departing
//! stream's pins in the same call — no leaked pins).

use std::collections::BTreeMap;

use cras_media::{Chunk, ChunkTable};
use cras_sim::Duration;

/// How the cache picks victims under byte-budget pressure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvictPolicy {
    /// Globally oldest (lowest insertion sequence) unpinned frame first
    /// — deterministic FIFO pressure, the original §11 behavior.
    #[default]
    OldestFirst,
    /// Evict from the movie with the fewest registered followers per
    /// evictable byte: data nobody downstream is waiting on goes first,
    /// so a popular movie's shared window outlives a cold one's.
    FollowersPerByte,
}

/// Counters exported by the cache (mirrored into the system metrics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Bytes served to followers from cache frames.
    pub hit_bytes: u64,
    /// Bytes a cache-dependent stream needed but did not find (each
    /// miss breaks the stream's interval and sends it back to disk
    /// admission).
    pub miss_bytes: u64,
    /// Bytes inserted into cache frames from completed disk reads.
    pub inserted_bytes: u64,
    /// Bytes released by eviction (window expiry or budget pressure).
    pub evicted_bytes: u64,
    /// High-water mark of resident cache bytes.
    pub peak_bytes: u64,
    /// Streams admitted through the cache path (disk bound exhausted,
    /// memory budget covered the gap).
    pub cache_admitted_streams: u64,
    /// Cache-admitted streams whose interval broke and whose disk
    /// re-admission test failed (the stream stops).
    pub cache_rejected_streams: u64,
    /// Intervals broken by a leader stop/seek or an eviction racing a
    /// follower (the follower fell back to the disk path).
    pub interval_breaks: u64,
    /// Bytes served to deferred-admission streams from resident prefix
    /// frames (no follower registration, no pin churn).
    pub prefix_hit_bytes: u64,
    /// Streams admitted deferred against a resident prefix (no disk
    /// share at open; reserve-at-drain).
    pub prefix_admitted_streams: u64,
    /// Deferred-admission streams that obtained their disk share at
    /// prefix-drain time.
    pub deferred_drained_streams: u64,
    /// Opens coalesced onto a concurrent leader's read stream within
    /// the join window (multicast-style batched joins).
    pub joined_streams: u64,
}

/// One cached media chunk.
#[derive(Clone, Debug)]
struct Frame {
    /// Chunk index within the movie's table.
    index: u32,
    /// Chunk size in bytes.
    size: u64,
    /// Global insertion sequence number (eviction order).
    seq: u64,
    /// Streams that still have to consume this frame. A frame with a
    /// non-empty waiter list is *pinned* and never evicted.
    waiters: Vec<u32>,
    /// Prefix-resident frame of a hot title: pinned across sessions by
    /// the cache manager, never evicted until the title is demoted.
    prefix: bool,
}

/// Per-movie cache state: resident frames plus follower bookkeeping.
#[derive(Clone, Debug, Default)]
struct MovieCache {
    /// Resident frames keyed by media timestamp.
    frames: BTreeMap<Duration, Frame>,
    /// Media time up to which disk reads have been inserted (end
    /// timestamp of the furthest inserted chunk).
    frontier: Duration,
    /// Registered cache-dependent streams and their consumption
    /// cursors (media time consumed so far).
    followers: BTreeMap<u32, Duration>,
    /// Media time below which frames are prefix-pinned (zero = the
    /// title is not in the hot set).
    prefix_limit: Duration,
}

/// A global, timestamp-indexed block cache shared by all streams.
///
/// Budget `0` disables the cache entirely: every operation is a no-op
/// and the server behaves bit-for-bit as it did without the subsystem.
#[derive(Clone, Debug)]
pub struct IntervalCache {
    budget: u64,
    max_gap: Duration,
    movies: BTreeMap<String, MovieCache>,
    bytes: u64,
    reserved: u64,
    seq: u64,
    stats: CacheStats,
    policy: EvictPolicy,
    prefix_bytes: u64,
}

impl IntervalCache {
    /// Creates a cache with a byte budget and a maximum leader/follower
    /// gap. Budget `0` disables caching.
    pub fn new(budget: u64, max_gap: Duration) -> IntervalCache {
        IntervalCache {
            budget,
            max_gap,
            movies: BTreeMap::new(),
            bytes: 0,
            reserved: 0,
            seq: 0,
            stats: CacheStats::default(),
            policy: EvictPolicy::OldestFirst,
            prefix_bytes: 0,
        }
    }

    /// Selects the budget-pressure eviction policy.
    pub fn set_policy(&mut self, policy: EvictPolicy) {
        self.policy = policy;
    }

    /// The active eviction policy.
    pub fn policy(&self) -> EvictPolicy {
        self.policy
    }

    /// Whether the cache is enabled (non-zero budget).
    pub fn enabled(&self) -> bool {
        self.budget > 0
    }

    /// The configured byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// The configured maximum leader/follower gap.
    pub fn max_gap(&self) -> Duration {
        self.max_gap
    }

    /// Resident cache bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Bytes reserved by cache-aware admission for gaps in flight.
    pub fn reserved(&self) -> u64 {
        self.reserved
    }

    /// Number of resident frames.
    pub fn frame_count(&self) -> usize {
        self.movies.values().map(|m| m.frames.len()).sum()
    }

    /// Number of pinned frames (non-empty waiter list).
    pub fn pinned_frames(&self) -> usize {
        self.movies
            .values()
            .flat_map(|m| m.frames.values())
            .filter(|f| !f.waiters.is_empty())
            .count()
    }

    /// Counters so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Mutable access to the counters (the server records admission
    /// outcomes and interval breaks here).
    pub fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    /// The read frontier of a movie, if any of its data is tracked.
    pub fn frontier(&self, movie: &str) -> Option<Duration> {
        self.movies.get(movie).map(|m| m.frontier)
    }

    /// Bytes held by prefix-pinned frames across all movies. The pin
    /// guard keeps this at or under the byte budget at all times.
    pub fn prefix_bytes(&self) -> u64 {
        self.prefix_bytes
    }

    /// Whether `movie` currently has a prefix-residency pin.
    pub fn has_prefix(&self, movie: &str) -> bool {
        self.movies
            .get(movie)
            .is_some_and(|m| m.prefix_limit > Duration::ZERO)
    }

    /// Declares (or clears, with `limit == ZERO`) the prefix-residency
    /// window of a movie: frames below `limit` already resident are
    /// promoted to prefix pins and future posted frames below `limit`
    /// are pinned on insert. Promotion is budget-guarded — prefix pins
    /// never take the pinned total past the byte budget.
    pub fn set_prefix(&mut self, movie: &str, limit: Duration) {
        if !self.enabled() {
            return;
        }
        if limit == Duration::ZERO {
            // Demotion: the cold prefix unpins and rejoins the normal
            // window/budget eviction rules.
            if let Some(m) = self.movies.get_mut(movie) {
                m.prefix_limit = Duration::ZERO;
                for f in m.frames.values_mut() {
                    if f.prefix {
                        f.prefix = false;
                        self.prefix_bytes -= f.size;
                    }
                }
                self.evict();
            }
            return;
        }
        let entry = self.movies.entry(movie.to_string()).or_default();
        entry.prefix_limit = limit;
        for (_, f) in entry.frames.range_mut(..limit) {
            if !f.prefix && self.prefix_bytes + f.size <= self.budget {
                f.prefix = true;
                self.prefix_bytes += f.size;
            }
        }
    }

    /// Whether every chunk of `movie` in `[from, to)` is resident as a
    /// prefix-pinned frame — a deferred-admission stream over that span
    /// is guaranteed memory service (prefix pins are never evicted).
    pub fn prefix_resident(
        &self,
        movie: &str,
        table: &ChunkTable,
        from: Duration,
        to: Duration,
    ) -> bool {
        let Some(m) = self.movies.get(movie) else {
            return false;
        };
        if to <= from {
            return false;
        }
        let span = table.chunks_in(from, to);
        !span.is_empty()
            && span
                .iter()
                .all(|c| m.frames.get(&c.timestamp).is_some_and(|f| f.prefix))
    }

    /// Serves one interval's chunks to a deferred-admission stream from
    /// the resident prefix. All-or-nothing like [`IntervalCache::serve`]
    /// but registers no follower and touches no pins: prefix frames are
    /// shared by every prefix stream of the title and stay resident for
    /// the next one.
    pub fn serve_resident(&mut self, movie: &str, chunks: &[Chunk]) -> bool {
        if chunks.is_empty() {
            return true;
        }
        let Some(m) = self.movies.get(movie) else {
            self.stats.miss_bytes += chunks.iter().map(|c| c.size as u64).sum::<u64>();
            return false;
        };
        if !chunks
            .iter()
            .all(|c| m.frames.get(&c.timestamp).is_some_and(|f| f.prefix))
        {
            self.stats.miss_bytes += chunks.iter().map(|c| c.size as u64).sum::<u64>();
            return false;
        }
        let served: u64 = chunks.iter().map(|c| c.size as u64).sum();
        self.stats.hit_bytes += served;
        self.stats.prefix_hit_bytes += served;
        true
    }

    /// Reserves admission budget for a trailing stream's gap.
    pub fn reserve(&mut self, bytes: u64) {
        self.reserved += bytes;
    }

    /// Releases a previous reservation.
    pub fn unreserve(&mut self, bytes: u64) {
        self.reserved = self.reserved.saturating_sub(bytes);
    }

    /// Inserts chunks a leader's disk read just posted. Frames are
    /// pinned for every registered follower that has not consumed past
    /// them yet; the movie frontier advances; expired and over-budget
    /// unpinned frames are evicted.
    pub fn insert_posted(&mut self, movie: &str, chunks: &[Chunk]) {
        if !self.enabled() || chunks.is_empty() {
            return;
        }
        let entry = self.movies.entry(movie.to_string()).or_default();
        for c in chunks {
            let waiters: Vec<u32> = entry
                .followers
                .iter()
                .filter(|&(_, &cursor)| cursor <= c.timestamp)
                .map(|(&id, _)| id)
                .collect();
            match entry.frames.get_mut(&c.timestamp) {
                Some(f) => {
                    // Duplicate insert (e.g. after a seek re-read): keep
                    // the frame, merge waiter lists.
                    for w in waiters {
                        if !f.waiters.contains(&w) {
                            f.waiters.push(w);
                        }
                    }
                }
                None => {
                    // Budget-guarded prefix pin: a posted frame inside a
                    // hot title's prefix window stays resident across
                    // sessions, but only while the pinned total fits.
                    let prefix = c.timestamp < entry.prefix_limit
                        && self.prefix_bytes + c.size as u64 <= self.budget;
                    entry.frames.insert(
                        c.timestamp,
                        Frame {
                            index: c.index,
                            size: c.size as u64,
                            seq: self.seq,
                            waiters,
                            prefix,
                        },
                    );
                    self.seq += 1;
                    self.bytes += c.size as u64;
                    self.stats.inserted_bytes += c.size as u64;
                    if prefix {
                        self.prefix_bytes += c.size as u64;
                    }
                }
            }
            if c.end_timestamp() > entry.frontier {
                entry.frontier = c.end_timestamp();
            }
        }
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.bytes);
        self.evict();
    }

    /// Whether the cache holds every chunk of `movie` between `from`
    /// and the movie's read frontier — i.e. a stream starting at `from`
    /// can be fed entirely from memory until it catches the leader.
    pub fn covers(&self, movie: &str, table: &ChunkTable, from: Duration) -> bool {
        let Some(m) = self.movies.get(movie) else {
            return false;
        };
        if m.frontier <= from {
            return false;
        }
        table
            .chunks_in(from, m.frontier)
            .iter()
            .all(|c| m.frames.contains_key(&c.timestamp))
    }

    /// Registers a cache-dependent stream consuming from `from`: its
    /// cursor is tracked and every already-resident frame at or past
    /// `from` gains it as a waiter.
    pub fn add_follower(&mut self, movie: &str, id: u32, from: Duration) {
        if !self.enabled() {
            return;
        }
        let entry = self.movies.entry(movie.to_string()).or_default();
        entry.followers.insert(id, from);
        for (_, f) in entry.frames.range_mut(from..) {
            if !f.waiters.contains(&id) {
                f.waiters.push(id);
            }
        }
    }

    /// Deregisters a stream and strips its pins from every frame *in
    /// the same call* — a stop or seek must not leak pins until some
    /// later eviction sweep. Newly unpinned frames stay resident as
    /// window frames and are reclaimed by the usual eviction rules.
    pub fn remove_follower(&mut self, movie: &str, id: u32) {
        let Some(m) = self.movies.get_mut(movie) else {
            return;
        };
        m.followers.remove(&id);
        for f in m.frames.values_mut() {
            f.waiters.retain(|&w| w != id);
        }
        self.evict();
    }

    /// Serves one interval's chunks to follower `id` from the cache.
    ///
    /// All-or-nothing: if any chunk is absent the call returns `false`,
    /// counts the miss, and changes nothing — the caller breaks the
    /// interval and falls back to the disk path. On success the
    /// follower's pins on the served frames are released, its cursor
    /// advances past the last chunk, and hit bytes are counted.
    pub fn serve(&mut self, movie: &str, id: u32, chunks: &[Chunk]) -> bool {
        if chunks.is_empty() {
            return true;
        }
        let Some(m) = self.movies.get_mut(movie) else {
            self.stats.miss_bytes += chunks.iter().map(|c| c.size as u64).sum::<u64>();
            return false;
        };
        if !chunks.iter().all(|c| m.frames.contains_key(&c.timestamp)) {
            self.stats.miss_bytes += chunks.iter().map(|c| c.size as u64).sum::<u64>();
            return false;
        }
        let mut served = 0u64;
        for c in chunks {
            let f = m.frames.get_mut(&c.timestamp).expect("checked above");
            debug_assert_eq!(f.index, c.index, "frame/chunk index mismatch");
            f.waiters.retain(|&w| w != id);
            served += c.size as u64;
        }
        let end = chunks.last().expect("non-empty").end_timestamp();
        m.followers.insert(id, end);
        self.stats.hit_bytes += served;
        self.evict();
        true
    }

    /// Drops every frame and follower of a movie (last stream closed).
    pub fn drop_movie(&mut self, movie: &str) {
        if let Some(m) = self.movies.remove(movie) {
            for f in m.frames.values() {
                self.bytes -= f.size;
                self.stats.evicted_bytes += f.size;
                if f.prefix {
                    self.prefix_bytes -= f.size;
                }
            }
        }
    }

    /// Eviction: drop unpinned frames that fell more than `max_gap`
    /// behind the movie's trailing-most consumer (the slowest
    /// registered follower, or the read frontier when no follower is
    /// registered — chained trailing streams each keep a window behind
    /// them), then — while still over budget — drop the globally
    /// oldest (lowest-seq) unpinned frame. Pinned frames are never
    /// evicted, so a burst of pins may keep the cache transiently over
    /// budget (recorded in `peak_bytes`).
    fn evict(&mut self) {
        // Window expiry per movie. Prefix pins are exempt: they expire
        // only by demotion from the hot set.
        for m in self.movies.values_mut() {
            let tail = m
                .followers
                .values()
                .copied()
                .min()
                .unwrap_or(m.frontier)
                .min(m.frontier);
            let cutoff = tail.saturating_sub(self.max_gap);
            let expired: Vec<Duration> = m
                .frames
                .range(..cutoff)
                .filter(|(_, f)| f.waiters.is_empty() && !f.prefix)
                .map(|(&ts, _)| ts)
                .collect();
            for ts in expired {
                let f = m.frames.remove(&ts).expect("listed above");
                self.bytes -= f.size;
                self.stats.evicted_bytes += f.size;
            }
        }
        // Budget pressure on the unpinned remainder.
        while self.bytes > self.budget {
            let victim = match self.policy {
                // Oldest unpinned frame first, globally.
                EvictPolicy::OldestFirst => self
                    .movies
                    .iter()
                    .flat_map(|(name, m)| {
                        m.frames
                            .iter()
                            .filter(|(_, f)| f.waiters.is_empty() && !f.prefix)
                            .map(move |(&ts, f)| (f.seq, name.clone(), ts))
                    })
                    .min()
                    .map(|(_, name, ts)| (name, ts)),
                EvictPolicy::FollowersPerByte => self.followers_per_byte_victim(),
            };
            let Some((name, ts)) = victim else {
                break; // Everything left is pinned.
            };
            let m = self.movies.get_mut(&name).expect("victim movie");
            let f = m.frames.remove(&ts).expect("victim frame");
            self.bytes -= f.size;
            self.stats.evicted_bytes += f.size;
        }
        self.movies.retain(|_, m| {
            !m.frames.is_empty() || !m.followers.is_empty() || m.prefix_limit > Duration::ZERO
        });
    }

    /// Picks the next budget victim under [`EvictPolicy::FollowersPerByte`]:
    /// the movie with the fewest registered followers per evictable byte
    /// loses its oldest evictable frame. Cross-multiplied integer
    /// comparison keeps the order exact and deterministic; ties break by
    /// movie name.
    fn followers_per_byte_victim(&self) -> Option<(String, Duration)> {
        let mut best: Option<(u64, u64, &str, Duration)> = None;
        for (name, m) in &self.movies {
            let mut evictable = 0u64;
            let mut oldest: Option<(u64, Duration)> = None;
            for (&ts, f) in &m.frames {
                if f.waiters.is_empty() && !f.prefix {
                    evictable += f.size;
                    if oldest.is_none_or(|(seq, _)| f.seq < seq) {
                        oldest = Some((f.seq, ts));
                    }
                }
            }
            let Some((_, ts)) = oldest else { continue };
            let followers = m.followers.len() as u64;
            let better = match best {
                None => true,
                Some((bf, be, bn, _)) => {
                    // followers/evictable < bf/be  ⟺  followers·be < bf·evictable
                    let lhs = followers as u128 * be as u128;
                    let rhs = bf as u128 * evictable as u128;
                    lhs < rhs || (lhs == rhs && name.as_str() < bn)
                }
            };
            if better {
                best = Some((followers, evictable, name, ts));
            }
        }
        best.map(|(_, _, name, ts)| (name.to_string(), ts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> Duration {
        Duration::from_secs(s)
    }

    /// 1 chunk per second, 1000 bytes each.
    fn table(n: u64) -> ChunkTable {
        ChunkTable::from_durations_sizes(&vec![(secs(1), 1000); n as usize])
    }

    fn cache(budget: u64) -> IntervalCache {
        IntervalCache::new(budget, secs(10))
    }

    #[test]
    fn zero_budget_is_inert() {
        let mut c = cache(0);
        let t = table(5);
        c.insert_posted("m", t.chunks());
        c.add_follower("m", 1, Duration::ZERO);
        assert!(!c.enabled());
        assert_eq!(c.bytes(), 0);
        assert_eq!(c.frame_count(), 0);
        assert!(!c.covers("m", &t, Duration::ZERO));
    }

    #[test]
    fn insert_then_cover_then_serve() {
        let mut c = cache(1 << 20);
        let t = table(10);
        c.add_follower("m", 7, Duration::ZERO);
        c.insert_posted("m", t.chunks_in(Duration::ZERO, secs(4)));
        assert_eq!(c.frame_count(), 4);
        assert_eq!(c.pinned_frames(), 4);
        assert_eq!(c.frontier("m"), Some(secs(4)));
        assert!(c.covers("m", &t, Duration::ZERO));
        assert!(c.covers("m", &t, secs(2)));
        assert!(!c.covers("m", &t, secs(4)), "empty span is not coverage");
        assert!(c.serve("m", 7, t.chunks_in(Duration::ZERO, secs(2))));
        assert_eq!(c.stats().hit_bytes, 2000);
        // Served frames are unpinned but stay as window frames.
        assert_eq!(c.pinned_frames(), 2);
        assert_eq!(c.frame_count(), 4);
    }

    #[test]
    fn serve_is_all_or_nothing() {
        let mut c = cache(1 << 20);
        let t = table(10);
        c.add_follower("m", 1, Duration::ZERO);
        c.insert_posted("m", t.chunks_in(Duration::ZERO, secs(2)));
        // Asking past the frontier misses and changes nothing.
        assert!(!c.serve("m", 1, t.chunks_in(Duration::ZERO, secs(3))));
        assert_eq!(c.stats().miss_bytes, 3000);
        assert_eq!(c.stats().hit_bytes, 0);
        assert_eq!(c.pinned_frames(), 2);
        // The present prefix still serves.
        assert!(c.serve("m", 1, t.chunks_in(Duration::ZERO, secs(2))));
    }

    #[test]
    fn window_expiry_behind_frontier() {
        let mut c = IntervalCache::new(1 << 20, secs(3));
        let t = table(20);
        c.insert_posted("m", t.chunks_in(Duration::ZERO, secs(10)));
        // No followers: only [frontier-3s, frontier) = [7s, 10s) survives.
        assert_eq!(c.frame_count(), 3);
        assert!(c.covers("m", &t, secs(7)));
        assert!(!c.covers("m", &t, secs(5)));
    }

    #[test]
    fn pinned_frames_survive_window_and_budget() {
        let mut c = IntervalCache::new(2500, secs(2));
        let t = table(20);
        c.add_follower("m", 1, Duration::ZERO);
        c.insert_posted("m", t.chunks_in(Duration::ZERO, secs(10)));
        // All 10 frames pinned by the lagging follower: none evictable,
        // cache transiently over budget.
        assert_eq!(c.frame_count(), 10);
        assert!(c.bytes() > c.budget());
        assert_eq!(c.stats().peak_bytes, 10_000);
        // Follower consumes 8 seconds: frames unpin and budget + window
        // pressure reclaims them.
        assert!(c.serve("m", 1, t.chunks_in(Duration::ZERO, secs(8))));
        assert!(c.bytes() <= 2500, "bytes={}", c.bytes());
    }

    #[test]
    fn remove_follower_releases_pins_immediately() {
        let mut c = IntervalCache::new(1 << 20, secs(2));
        let t = table(10);
        c.add_follower("m", 1, Duration::ZERO);
        c.add_follower("m", 2, Duration::ZERO);
        c.insert_posted("m", t.chunks_in(Duration::ZERO, secs(6)));
        assert_eq!(c.pinned_frames(), 6);
        c.remove_follower("m", 1);
        // Still pinned by follower 2.
        assert_eq!(c.pinned_frames(), 6);
        c.remove_follower("m", 2);
        // No leaked pins, and the same call ran eviction: only the
        // 2-second window behind the 6 s frontier remains.
        assert_eq!(c.pinned_frames(), 0);
        assert_eq!(c.frame_count(), 2);
    }

    #[test]
    fn budget_eviction_is_oldest_first() {
        let mut c = IntervalCache::new(3000, secs(100));
        let t = table(10);
        c.insert_posted("m", t.chunks_in(Duration::ZERO, secs(4)));
        // 4000 bytes > 3000 budget: the oldest frame (t=0) went.
        assert_eq!(c.frame_count(), 3);
        assert!(c.covers("m", &t, secs(1)));
        assert!(!c.covers("m", &t, Duration::ZERO));
        assert_eq!(c.stats().evicted_bytes, 1000);
    }

    #[test]
    fn drop_movie_frees_everything() {
        let mut c = cache(1 << 20);
        let t = table(5);
        c.add_follower("m", 1, Duration::ZERO);
        c.insert_posted("m", t.chunks());
        c.drop_movie("m");
        assert_eq!(c.bytes(), 0);
        assert_eq!(c.frame_count(), 0);
        assert_eq!(c.frontier("m"), None);
    }

    #[test]
    fn duplicate_insert_merges_waiters() {
        let mut c = cache(1 << 20);
        let t = table(5);
        c.insert_posted("m", t.chunks_in(Duration::ZERO, secs(2)));
        c.add_follower("m", 9, Duration::ZERO);
        c.insert_posted("m", t.chunks_in(Duration::ZERO, secs(2)));
        assert_eq!(c.frame_count(), 2);
        assert_eq!(c.stats().inserted_bytes, 2000, "no double count");
        assert_eq!(c.pinned_frames(), 2);
    }

    #[test]
    fn reservations_are_a_separate_ledger() {
        let mut c = cache(10_000);
        c.reserve(4000);
        c.reserve(2000);
        assert_eq!(c.reserved(), 6000);
        c.unreserve(4000);
        assert_eq!(c.reserved(), 2000);
        c.unreserve(9999);
        assert_eq!(c.reserved(), 0, "saturates at zero");
    }

    #[test]
    fn late_follower_only_pins_from_its_cursor() {
        let mut c = cache(1 << 20);
        let t = table(10);
        c.insert_posted("m", t.chunks_in(Duration::ZERO, secs(6)));
        c.add_follower("m", 3, secs(4));
        assert_eq!(c.pinned_frames(), 2, "only t=4,5 pinned");
    }

    #[test]
    fn prefix_frames_survive_window_and_budget_until_demoted() {
        let mut c = IntervalCache::new(4000, secs(2));
        let t = table(20);
        c.set_prefix("m", secs(3));
        c.insert_posted("m", t.chunks_in(Duration::ZERO, secs(10)));
        // Window expiry reclaimed the middle; the 3-second prefix and
        // the trailing window both stayed.
        assert_eq!(c.prefix_bytes(), 3000);
        assert!(c.prefix_resident("m", &t, Duration::ZERO, secs(3)));
        assert!(!c.prefix_resident("m", &t, Duration::ZERO, secs(4)));
        assert!(c.serve_resident("m", t.chunks_in(Duration::ZERO, secs(3))));
        assert_eq!(c.stats().prefix_hit_bytes, 3000);
        // Demotion unpins the prefix and eviction reclaims it.
        c.set_prefix("m", Duration::ZERO);
        assert_eq!(c.prefix_bytes(), 0);
        assert!(!c.prefix_resident("m", &t, Duration::ZERO, secs(3)));
    }

    #[test]
    fn prefix_pins_never_exceed_budget() {
        let mut c = IntervalCache::new(2500, secs(100));
        let t = table(10);
        c.set_prefix("m", secs(10));
        c.insert_posted("m", t.chunks());
        // Only two 1000-byte frames fit under the 2500-byte budget as
        // prefix pins; the rest stayed ordinary window frames.
        assert_eq!(c.prefix_bytes(), 2000);
        assert!(c.prefix_bytes() <= c.budget());
        assert!(c.prefix_resident("m", &t, Duration::ZERO, secs(2)));
        assert!(!c.prefix_resident("m", &t, Duration::ZERO, secs(3)));
    }

    #[test]
    fn followers_per_byte_evicts_the_unwatched_movie_first() {
        let mut c = IntervalCache::new(6000, secs(100));
        c.set_policy(EvictPolicy::FollowersPerByte);
        let t = table(10);
        // "cold" has no followers; "hot" has two. Insert cold first so
        // FIFO order would also pick it — then verify the policy keeps
        // preferring cold even when hot's frames are older.
        c.add_follower("hot", 1, Duration::ZERO);
        c.add_follower("hot", 2, Duration::ZERO);
        c.insert_posted("hot", t.chunks_in(Duration::ZERO, secs(3)));
        c.serve("hot", 1, t.chunks_in(Duration::ZERO, secs(3)));
        c.serve("hot", 2, t.chunks_in(Duration::ZERO, secs(3)));
        // hot's 3 frames are now unpinned but have 2 followers behind
        // them; cold's 4 frames have none.
        c.insert_posted("cold", t.chunks_in(Duration::ZERO, secs(4)));
        // 7000 bytes > 6000: the victim must come from cold despite
        // hot's frames being older.
        assert_eq!(c.frame_count(), 6);
        assert!(c.covers("hot", &t, Duration::ZERO));
        assert!(!c.covers("cold", &t, Duration::ZERO));
    }
}
