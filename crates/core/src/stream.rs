//! Per-stream server state: chunk table, volume-aware extent map,
//! logical clock, time-driven buffer, and the byte-range → disk-extent
//! mapping.

use cras_disk::geometry::BlockNo;
use cras_disk::VolumeId;
use cras_media::ChunkTable;
use cras_sim::Duration;

use crate::admission::StreamParams;
use crate::clock::LogicalClock;
use crate::placement::{volume_shares, ParityGeometry, VolumeExtent};
use crate::tdbuffer::TimeDrivenBuffer;

/// Identifies an open stream within one CRAS server.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StreamId(pub u32);

/// How a stream relates to the interval cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CacheState {
    /// Normal disk-admitted, disk-fed stream.
    #[default]
    Disk,
    /// Disk-admitted, but currently fed from the interval cache — an
    /// opportunistic bandwidth saving. Disk capacity stays charged, so
    /// an interval break silently reverts the stream to disk reads.
    Served {
        /// Cache bytes reserved for this stream's gap.
        reserved: u64,
    },
    /// Admitted through the cache path: the disk bound was exhausted
    /// and the stream holds zero disk shares. An interval break forces
    /// a disk re-admission test (or stops the stream).
    Admitted {
        /// Cache bytes reserved for this stream's gap.
        reserved: u64,
    },
    /// Deferred admission (DESIGN §16): opened against a memory-resident
    /// hot-title prefix with zero disk shares. The disk share is
    /// reserved only when the prefix drains — reserve-at-drain instead
    /// of reject-at-open.
    Prefix,
    /// Coalesced onto another stream's reads (batched join, DESIGN
    /// §16): the leader's fetched batches are multicast into this
    /// stream's buffer, so it holds zero disk shares and plans no reads
    /// of its own until the join dissolves.
    Joined {
        /// The stream whose reads feed this one.
        leader: u32,
    },
}

impl CacheState {
    /// Whether the stream is currently fed from the cache.
    pub fn is_cached(self) -> bool {
        !matches!(self, CacheState::Disk)
    }

    /// The cache reservation held by this stream, if any. Prefix and
    /// joined streams hold none: prefix frames are pinned by the cache
    /// manager, not per-stream, and a joined stream reads nothing.
    pub fn reserved(self) -> u64 {
        match self {
            CacheState::Disk | CacheState::Prefix | CacheState::Joined { .. } => 0,
            CacheState::Served { reserved } | CacheState::Admitted { reserved } => reserved,
        }
    }
}

/// A physically contiguous disk run on an unspecified volume.
///
/// Retained for the single-volume recording path ([`crate::Recorder`]),
/// which always writes to one disk; retrieval uses [`VolumeRun`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiskRun {
    /// First 512-byte disk block.
    pub block: BlockNo,
    /// Length in 512-byte blocks.
    pub nblocks: u32,
}

/// A physically contiguous disk run on a specific volume.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VolumeRun {
    /// The disk this run lives on.
    pub volume: VolumeId,
    /// First 512-byte disk block on that volume.
    pub block: BlockNo,
    /// Length in 512-byte blocks.
    pub nblocks: u32,
}

/// Parity layout state of a stream placed with
/// [`PlacementPolicy::Parity`](crate::PlacementPolicy::Parity): the
/// rotating-parity geometry plus the on-disk extent maps of each band
/// volume's *parity file*. (The data units are mapped by the stream's
/// ordinary [`Stream::extents`], in logical movie order.)
#[derive(Clone, Debug)]
pub struct ParityState {
    /// The rotating-parity layout.
    pub geom: ParityGeometry,
    /// Per band volume (index `v - geom.base`), the extent map of that
    /// volume's parity file. `file_offset` here is the offset within
    /// the *parity file*: row `r`'s unit starts at
    /// `geom.parity_file_index(r) * geom.stripe_bytes`.
    pub parity_maps: Vec<Vec<VolumeExtent>>,
}

/// Server-side state of one open stream.
#[derive(Clone, Debug)]
pub struct Stream {
    /// Stream id.
    pub id: StreamId,
    /// Movie name (diagnostics).
    pub name: String,
    /// The control-file chunk table.
    pub table: ChunkTable,
    /// Extent map resolved at open time — CRAS never touches UFS metadata
    /// during retrieval. Each extent names the volume it lives on.
    pub extents: Vec<VolumeExtent>,
    /// Mirror replica's extent map (same logical bytes on another
    /// volume), when the movie was placed with
    /// [`PlacementPolicy::Mirrored`](crate::PlacementPolicy::Mirrored).
    pub mirror: Option<Vec<VolumeExtent>>,
    /// Rotating-parity layout, when the movie was placed with
    /// [`PlacementPolicy::Parity`](crate::PlacementPolicy::Parity).
    /// Mutually exclusive with `mirror`.
    pub parity: Option<ParityState>,
    /// Admission parameters this stream was admitted with.
    pub params: StreamParams,
    /// Fraction of the stream's bytes on each volume (the admission
    /// test's per-volume rate weights; `[1.0]` for a single-disk movie).
    pub shares: Vec<f64>,
    /// The stream's logical clock.
    pub clock: LogicalClock,
    /// The time-driven shared memory buffer.
    pub buffer: TimeDrivenBuffer,
    /// Media time up to which pre-fetches have been issued
    /// (`T_read_ahead` in Figure 4).
    pub prefetch_cursor: Duration,
    /// Relationship to the interval cache.
    pub cache_state: CacheState,
}

impl Stream {
    /// Recomputes [`Stream::shares`] for a server managing `volumes`
    /// disks. Replica extents are included: a mirrored stream charges
    /// the full rate to each replica volume, and a parity stream
    /// charges the worst-case degraded load (`2/g` per band volume —
    /// see [`ParityGeometry::admission_shares`]).
    pub fn compute_shares(&mut self, volumes: usize) {
        if let Some(p) = &self.parity {
            self.shares = p.geom.admission_shares(volumes);
            return;
        }
        self.shares = match &self.mirror {
            None => volume_shares(&self.extents, volumes),
            Some(m) => {
                let mut all = self.extents.clone();
                all.extend(m.iter().cloned());
                volume_shares(&all, volumes)
            }
        };
    }

    /// The per-volume rate shares the admission test should charge for
    /// this stream: its real shares normally, all-zero while the stream
    /// is cache-*admitted*, prefix-deferred, or joined (it holds no disk
    /// reservation). Cache-*served* streams keep their disk charge —
    /// serving them from memory is an opportunistic saving, not an
    /// admission promise.
    pub fn admission_shares(&self) -> Vec<f64> {
        match self.cache_state {
            CacheState::Admitted { .. } | CacheState::Prefix | CacheState::Joined { .. } => {
                vec![0.0; self.shares.len()]
            }
            _ => self.shares.clone(),
        }
    }

    /// Worst-case read commands this stream issues on one spindle in
    /// one interval: one normally; two for a parity stream, whose
    /// degraded service adds one reconstruction read per surviving
    /// spindle on top of its own unit slice. The admission test charges
    /// command/rotation/seek overheads once per command, not once per
    /// stream, so degraded fan-out cannot overrun an interval that
    /// admitted healthy.
    pub fn spindle_reads(&self) -> u32 {
        if self.parity.is_some() {
            2
        } else {
            1
        }
    }

    /// The stream's replica extent maps: the primary map first, then the
    /// mirror map if the movie is mirrored.
    pub fn replica_maps(&self) -> impl Iterator<Item = &Vec<VolumeExtent>> {
        std::iter::once(&self.extents).chain(self.mirror.iter())
    }

    /// The volume a replica map lives on — the volume of its first
    /// extent. Meaningful for whole-volume maps (round-robin, mirrored);
    /// striped maps span volumes and have no single home.
    pub fn home_volume(map: &[VolumeExtent]) -> VolumeId {
        map.first().map(|ve| ve.volume).unwrap_or(VolumeId(0))
    }

    /// Maps the file byte range `[lo, hi)` through an arbitrary extent
    /// map onto disk-block runs, each tagged with the logical file byte
    /// offset its first block corresponds to (block-aligned). The tags
    /// let a failed read be re-mapped through another replica of the
    /// same logical bytes.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or extends past the mapped file.
    pub fn runs_in(extents: &[VolumeExtent], lo: u64, hi: u64) -> Vec<(u64, VolumeRun)> {
        assert!(lo < hi, "empty byte range");
        let mapped: u64 = extents.iter().map(|e| e.extent.bytes()).sum();
        assert!(
            hi <= mapped,
            "byte range beyond extent map: {hi} > {mapped}"
        );
        let mut runs: Vec<(u64, VolumeRun)> = Vec::new();
        for ve in extents {
            let e = &ve.extent;
            let e_lo = e.file_offset;
            let e_hi = e.file_offset + e.bytes();
            let a = lo.max(e_lo);
            let b = hi.min(e_hi);
            if a >= b {
                continue;
            }
            // Block-align within the extent.
            let rel_lo = (a - e_lo) / 512;
            let rel_hi = (b - e_lo).div_ceil(512);
            let block = e.disk_block + rel_lo;
            let nblocks = (rel_hi - rel_lo) as u32;
            let logical = e_lo + rel_lo * 512;
            match runs.last_mut() {
                Some((_, last))
                    if last.volume == ve.volume && last.block + last.nblocks as u64 == block =>
                {
                    last.nblocks += nblocks;
                }
                _ => runs.push((
                    logical,
                    VolumeRun {
                        volume: ve.volume,
                        block,
                        nblocks,
                    },
                )),
            }
        }
        runs
    }

    /// Maps the file byte range `[lo, hi)` onto disk-block runs through
    /// the primary extent map, merging physically adjacent pieces on the
    /// same volume. Ranges are rounded outward to 512-byte block
    /// boundaries (the device transfers whole blocks).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or extends past the mapped file.
    pub fn byte_range_to_runs(&self, lo: u64, hi: u64) -> Vec<VolumeRun> {
        Stream::runs_in(&self.extents, lo, hi)
            .into_iter()
            .map(|(_, r)| r)
            .collect()
    }

    /// Splits tagged runs so that no single disk command exceeds
    /// `max_bytes`, keeping each piece's logical offset tag accurate.
    pub fn split_runs_tagged(runs: Vec<(u64, VolumeRun)>, max_bytes: u64) -> Vec<(u64, VolumeRun)> {
        let max_blocks = (max_bytes / 512).max(1) as u32;
        let mut out = Vec::with_capacity(runs.len());
        for (logical, r) in runs {
            let mut block = r.block;
            let mut off = logical;
            let mut left = r.nblocks;
            while left > 0 {
                let take = left.min(max_blocks);
                out.push((
                    off,
                    VolumeRun {
                        volume: r.volume,
                        block,
                        nblocks: take,
                    },
                ));
                block += take as u64;
                off += take as u64 * 512;
                left -= take;
            }
        }
        out
    }

    /// Splits runs so that no single disk command exceeds `max_bytes`
    /// ("CRAS optimizes throughput by reading ... up to 256K bytes at a
    /// time ... If the size of contiguous blocks is less ... CRAS reads
    /// the smaller blocks instead").
    pub fn split_runs(runs: Vec<VolumeRun>, max_bytes: u64) -> Vec<VolumeRun> {
        Stream::split_runs_tagged(runs.into_iter().map(|r| (0, r)).collect(), max_bytes)
            .into_iter()
            .map(|(_, r)| r)
            .collect()
    }

    /// Plans the surviving reads that reconstruct the logical byte range
    /// `[lo, hi)` of a parity-placed movie when the volume holding it
    /// (`exclude`) cannot serve: for every data unit the range touches,
    /// the *same stripe-relative range* of each of the row's `g-2` other
    /// data units plus its parity unit. XORing those buffers yields the
    /// lost bytes ([`cras_disk::xor::reconstruct`]); the simulation
    /// tracks the reads and lets tests verify the byte math separately.
    ///
    /// Sibling units wholly or partly absent (the movie tail) contribute
    /// implicit zeros and are simply not read. Returns `None` if any
    /// required read would itself land on `exclude` or a volume flagged
    /// in `failed` — a second failure in the band, the range is lost.
    pub fn parity_recon_runs(
        extents: &[VolumeExtent],
        parity: &ParityState,
        lo: u64,
        hi: u64,
        exclude: VolumeId,
        failed: &[bool],
    ) -> Option<Vec<VolumeRun>> {
        assert!(lo < hi, "empty byte range");
        let geom = &parity.geom;
        let g = geom.group as u64;
        let sb = geom.stripe_bytes;
        let down = |v: VolumeId| v == exclude || failed.get(v.index()).copied().unwrap_or(false);
        let mut out = Vec::new();
        let mut a = lo;
        while a < hi {
            let k = a / sb;
            let unit_lo = k * sb;
            let unit_len = geom.unit_len(k);
            let b = hi.min(unit_lo + unit_len);
            if b <= a {
                // The planner rounds run ends up to a device block, so a
                // range can extend past the tail unit's last data byte.
                // Those bytes are implicit zeros — nothing to read; skip
                // to the next stripe unit.
                a = unit_lo + sb;
                continue;
            }
            let (rel_lo, rel_hi) = (a - unit_lo, b - unit_lo);
            let row = geom.row_of_unit(k);
            // The row's surviving data units, same relative range.
            for j in 0..g - 1 {
                let k2 = row * (g - 1) + j;
                if k2 == k || k2 * sb >= geom.total_bytes {
                    continue;
                }
                let len2 = geom.unit_len(k2);
                let (rl, rh) = (rel_lo.min(len2), rel_hi.min(len2));
                if rl >= rh {
                    continue;
                }
                for (_, r) in Stream::runs_in(extents, k2 * sb + rl, k2 * sb + rh) {
                    if down(r.volume) {
                        return None;
                    }
                    out.push(r);
                }
            }
            // The row's parity unit, same relative range.
            let pv = geom.parity_volume(row);
            if down(pv) {
                return None;
            }
            let p_lo = geom.parity_file_index(row) * sb + rel_lo;
            let pmap = &parity.parity_maps[(pv.0 - geom.base) as usize];
            for (_, r) in Stream::runs_in(pmap, p_lo, p_lo + (rel_hi - rel_lo)) {
                if down(r.volume) {
                    return None;
                }
                out.push(r);
            }
            a = b;
        }
        Some(out)
    }

    /// Coded-read steering variant of [`Stream::parity_recon_runs`]:
    /// plans the `g-1` fan-out that serves `[lo, hi)` *without
    /// touching* `avoid`, a volume that is live but loaded (DESIGN
    /// §17). The maths are identical to the degraded path — any `g-1`
    /// members of a parity band reconstruct the remaining one — only
    /// the reason for the exclusion differs, so this delegates; it
    /// exists to keep call sites honest about whether a bypass is a
    /// failure response or a scheduling choice. Returns `None` when
    /// the fan-out would itself need `avoid` or a failed volume, in
    /// which case the caller must keep the direct read.
    pub fn steer_recon_runs(
        extents: &[VolumeExtent],
        parity: &ParityState,
        lo: u64,
        hi: u64,
        avoid: VolumeId,
        failed: &[bool],
    ) -> Option<Vec<VolumeRun>> {
        Stream::parity_recon_runs(extents, parity, lo, hi, avoid, failed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::on_volume;
    use cras_media::StreamProfile;
    use cras_sim::Rng;
    use cras_ufs::Extent;

    fn stream_with_extents(extents: Vec<VolumeExtent>) -> Stream {
        let mut rng = Rng::new(1);
        let table = cras_media::generate_chunks(&StreamProfile::mpeg1(), 1.0, &mut rng);
        let mut s = Stream {
            id: StreamId(0),
            name: "t".into(),
            table,
            extents,
            mirror: None,
            parity: None,
            params: StreamParams::new(187_500.0, 6_250.0),
            shares: Vec::new(),
            clock: LogicalClock::new(),
            buffer: TimeDrivenBuffer::new(200_000, Duration::from_millis(100)),
            prefetch_cursor: Duration::ZERO,
            cache_state: CacheState::Disk,
        };
        s.compute_shares(
            1.max(
                s.extents
                    .iter()
                    .map(|v| v.volume.index() + 1)
                    .max()
                    .unwrap_or(1),
            ),
        );
        s
    }

    fn ext(file_offset: u64, disk_block: u64, nblocks: u32) -> Extent {
        Extent {
            file_offset,
            disk_block,
            nblocks,
        }
    }

    fn vrun(volume: u32, block: u64, nblocks: u32) -> VolumeRun {
        VolumeRun {
            volume: VolumeId(volume),
            block,
            nblocks,
        }
    }

    #[test]
    fn single_extent_subrange() {
        let s = stream_with_extents(on_volume(VolumeId(0), vec![ext(0, 1000, 100)])); // 51 200 B.
        let runs = s.byte_range_to_runs(1024, 2048);
        assert_eq!(runs, vec![vrun(0, 1002, 2)]);
    }

    #[test]
    fn unaligned_range_rounds_outward() {
        let s = stream_with_extents(on_volume(VolumeId(0), vec![ext(0, 1000, 100)]));
        let runs = s.byte_range_to_runs(100, 700);
        // Bytes 100..700 live in blocks 0 and 1.
        assert_eq!(runs, vec![vrun(0, 1000, 2)]);
    }

    #[test]
    fn range_spanning_discontiguous_extents() {
        let s = stream_with_extents(on_volume(
            VolumeId(0),
            vec![ext(0, 1000, 16), ext(8192, 5000, 16)],
        ));
        let runs = s.byte_range_to_runs(4096, 12288);
        assert_eq!(runs, vec![vrun(0, 1008, 8), vrun(0, 5000, 8)]);
    }

    #[test]
    fn adjacent_extents_merge() {
        // Extents contiguous on disk merge into one run.
        let s = stream_with_extents(on_volume(
            VolumeId(0),
            vec![ext(0, 1000, 16), ext(8192, 1016, 16)],
        ));
        let runs = s.byte_range_to_runs(0, 16384);
        assert_eq!(runs, vec![vrun(0, 1000, 32)]);
    }

    #[test]
    fn adjacent_blocks_on_different_volumes_do_not_merge() {
        // Same block numbers, different spindles: never one command.
        let mut extents = on_volume(VolumeId(0), vec![ext(0, 1000, 16)]);
        extents.push(VolumeExtent {
            volume: VolumeId(1),
            extent: ext(8192, 1016, 16),
        });
        let s = stream_with_extents(extents);
        let runs = s.byte_range_to_runs(0, 16384);
        assert_eq!(runs, vec![vrun(0, 1000, 16), vrun(1, 1016, 16)]);
    }

    #[test]
    fn striped_shares_split_by_bytes() {
        let mut extents = on_volume(VolumeId(0), vec![ext(0, 1000, 48)]);
        extents.push(VolumeExtent {
            volume: VolumeId(1),
            extent: ext(24576, 2000, 16),
        });
        let s = stream_with_extents(extents);
        assert_eq!(s.shares, vec![0.75, 0.25]);
    }

    #[test]
    fn split_respects_256k() {
        let runs = vec![vrun(0, 0, 1200)];
        let split = Stream::split_runs(runs, 256 * 1024); // 512 blocks.
        assert_eq!(split.len(), 3);
        assert_eq!(split[0].nblocks, 512);
        assert_eq!(split[1].nblocks, 512);
        assert_eq!(split[2].nblocks, 176);
        assert_eq!(split[1].block, 512);
        let total: u32 = split.iter().map(|r| r.nblocks).sum();
        assert_eq!(total, 1200);
    }

    #[test]
    fn split_leaves_small_runs_alone() {
        let runs = vec![vrun(0, 0, 10), vrun(1, 100, 512)];
        let split = Stream::split_runs(runs.clone(), 256 * 1024);
        assert_eq!(split, runs);
    }

    #[test]
    fn tagged_runs_carry_logical_offsets() {
        let extents = on_volume(VolumeId(0), vec![ext(0, 1000, 16), ext(8192, 5000, 16)]);
        let runs = Stream::runs_in(&extents, 4096, 12288);
        assert_eq!(
            runs,
            vec![(4096, vrun(0, 1008, 8)), (8192, vrun(0, 5000, 8))]
        );
        // Splitting preserves tag accuracy piece by piece.
        let split = Stream::split_runs_tagged(runs, 2048); // 4 blocks each.
        assert_eq!(split[0], (4096, vrun(0, 1008, 4)));
        assert_eq!(split[1], (6144, vrun(0, 1012, 4)));
        assert_eq!(split[2], (8192, vrun(0, 5000, 4)));
    }

    #[test]
    fn logical_range_remaps_through_a_differently_fragmented_mirror() {
        // The same logical bytes map through either replica; fragment
        // boundaries differ but total coverage is identical.
        let primary = on_volume(VolumeId(0), vec![ext(0, 1000, 32)]);
        let mirror = on_volume(VolumeId(1), vec![ext(0, 70, 16), ext(8192, 300, 16)]);
        let (lo, hi) = (4096, 12288);
        let p_blocks: u32 = Stream::runs_in(&primary, lo, hi)
            .iter()
            .map(|(_, r)| r.nblocks)
            .sum();
        let m_runs = Stream::runs_in(&mirror, lo, hi);
        let m_blocks: u32 = m_runs.iter().map(|(_, r)| r.nblocks).sum();
        assert_eq!(p_blocks, m_blocks);
        assert!(m_runs.iter().all(|(_, r)| r.volume == VolumeId(1)));
    }

    #[test]
    fn mirrored_stream_shares_charge_both_replicas() {
        let mut s = stream_with_extents(on_volume(VolumeId(0), vec![ext(0, 1000, 64)]));
        s.mirror = Some(on_volume(VolumeId(1), vec![ext(0, 4000, 64)]));
        s.compute_shares(2);
        assert_eq!(s.shares, vec![1.0, 1.0]);
    }

    /// Synthetic parity layout: one contiguous extent per data unit
    /// (volume and in-file position from the geometry), one contiguous
    /// parity file per band volume. Returns the logical data map and
    /// the parity state, plus per-volume "disks" as byte arrays when
    /// `movie` is given, with parity computed by the real XOR codec.
    fn synthetic_parity(
        group: u32,
        total: u64,
        movie: Option<&[u8]>,
    ) -> (Vec<VolumeExtent>, ParityState, Vec<Vec<u8>>) {
        use crate::placement::{ParityGeometry, PARITY_STRIPE_BYTES};
        let sb = PARITY_STRIPE_BYTES;
        let geom = ParityGeometry::new(0, group, sb, total);
        // Per-volume layout: data file at block 0, parity file right
        // after the largest possible data file.
        let pbase = geom.rows() * (sb / 512);
        let disk_bytes = (2 * geom.rows() * sb) as usize;
        let mut disks = vec![Vec::new(); group as usize];
        if movie.is_some() {
            disks = vec![vec![0u8; disk_bytes]; group as usize];
        }
        let mut extents = Vec::new();
        for k in 0..geom.data_units() {
            let v = geom.data_volume(k);
            let len = geom.unit_len(k);
            let disk_block = geom.data_file_index(k) * (sb / 512);
            extents.push(VolumeExtent {
                volume: v,
                extent: Extent {
                    file_offset: k * sb,
                    disk_block,
                    nblocks: len.div_ceil(512) as u32,
                },
            });
            if let Some(m) = movie {
                let at = (disk_block * 512) as usize;
                let src = &m[(k * sb) as usize..(k * sb + len) as usize];
                disks[v.index()][at..at + src.len()].copy_from_slice(src);
            }
        }
        let parity_maps: Vec<Vec<VolumeExtent>> = (0..group)
            .map(|v| {
                let bytes = geom.parity_bytes_on(v);
                if bytes == 0 {
                    return Vec::new();
                }
                vec![VolumeExtent {
                    volume: VolumeId(v),
                    extent: Extent {
                        file_offset: 0,
                        disk_block: pbase,
                        nblocks: (bytes / 512) as u32,
                    },
                }]
            })
            .collect();
        if let Some(m) = movie {
            for r in 0..geom.rows() {
                let units: Vec<&[u8]> = (0..group as u64 - 1)
                    .filter_map(|j| {
                        let k = r * (group as u64 - 1) + j;
                        if k * sb >= total {
                            return None;
                        }
                        Some(&m[(k * sb) as usize..(k * sb + geom.unit_len(k)) as usize])
                    })
                    .collect();
                let p = cras_disk::parity_of(&units, sb as usize);
                let pv = geom.parity_volume(r);
                let at = ((pbase + geom.parity_file_index(r) * (sb / 512)) * 512) as usize;
                disks[pv.index()][at..at + p.len()].copy_from_slice(&p);
            }
        }
        (extents, ParityState { geom, parity_maps }, disks)
    }

    #[test]
    fn parity_stream_shares_charge_worst_case_degraded() {
        let (extents, ps, _) = synthetic_parity(4, 1 << 20, None);
        let mut s = stream_with_extents(extents);
        s.parity = Some(ps);
        s.compute_shares(4);
        assert_eq!(s.shares, vec![0.5; 4]);
    }

    #[test]
    fn degraded_parity_reads_are_byte_identical_across_widths_and_fail_points() {
        // Property test: random group sizes, movie lengths, failed
        // volumes and in-unit ranges. Reconstructing from the planned
        // surviving reads with the real XOR codec must reproduce the
        // lost bytes exactly.
        let mut rng = Rng::new(0x9A21);
        for trial in 0..60 {
            let group = rng.range_inclusive(2, 5) as u32;
            let sb = crate::placement::PARITY_STRIPE_BYTES;
            let total = rng.range_inclusive(1, 4 * (group as u64 - 1)) * sb
                - if rng.chance(0.5) {
                    rng.below(sb - 1) + 1
                } else {
                    0
                };
            let movie: Vec<u8> = (0..total).map(|_| rng.below(256) as u8).collect();
            let (extents, ps, disks) = synthetic_parity(group, total, Some(&movie));
            let geom = ps.geom;
            // Pick a random data unit and a random subrange of it.
            let k = rng.below(geom.data_units());
            let fail = geom.data_volume(k);
            let len = geom.unit_len(k);
            let rel_lo = (rng.below(len) / 512) * 512; // block-aligned
            let rel_hi = len.min(rel_lo + 512 + (rng.below(len) / 512) * 512);
            let (lo, hi) = (k * sb + rel_lo, k * sb + rel_hi);
            let failed = vec![false; group as usize];
            let runs = Stream::parity_recon_runs(&extents, &ps, lo, hi, fail, &failed)
                .expect("single failure must be reconstructible");
            assert!(runs.iter().all(|r| r.volume != fail), "trial {trial}");
            // XOR the surviving reads positionally: every read covers
            // the same stripe-relative range (clamped to unit length).
            let span = (rel_hi - rel_lo) as usize;
            let mut acc = vec![0u8; span];
            for r in &runs {
                let at = (r.block * 512) as usize;
                let buf = &disks[r.volume.index()][at..at + r.nblocks as usize * 512];
                cras_disk::xor_into(&mut acc, &buf[..span.min(buf.len())]);
            }
            assert_eq!(
                &acc[..],
                &movie[lo as usize..hi as usize],
                "trial {trial}: g={group} total={total} unit={k} range={rel_lo}..{rel_hi}"
            );
        }
    }

    #[test]
    fn steered_reads_deliver_bytes_identical_to_the_direct_read() {
        // Property test for coded-read steering: with every volume
        // healthy, a fan-out that avoids the home spindle must XOR
        // back to exactly the bytes a direct read would have served.
        let mut rng = Rng::new(0x57EE);
        for trial in 0..60 {
            let group = rng.range_inclusive(2, 5) as u32;
            let sb = crate::placement::PARITY_STRIPE_BYTES;
            let total = rng.range_inclusive(1, 4 * (group as u64 - 1)) * sb
                - if rng.chance(0.5) {
                    rng.below(sb - 1) + 1
                } else {
                    0
                };
            let movie: Vec<u8> = (0..total).map(|_| rng.below(256) as u8).collect();
            let (extents, ps, disks) = synthetic_parity(group, total, Some(&movie));
            let geom = ps.geom;
            let k = rng.below(geom.data_units());
            let home = geom.data_volume(k);
            let len = geom.unit_len(k);
            let rel_lo = (rng.below(len) / 512) * 512; // block-aligned
            let rel_hi = len.min(rel_lo + 512 + (rng.below(len) / 512) * 512);
            let (lo, hi) = (k * sb + rel_lo, k * sb + rel_hi);
            let healthy = vec![false; group as usize];
            let runs = Stream::steer_recon_runs(&extents, &ps, lo, hi, home, &healthy)
                .expect("healthy band must always offer a fan-out");
            assert!(runs.iter().all(|r| r.volume != home), "trial {trial}");
            let span = (rel_hi - rel_lo) as usize;
            let mut acc = vec![0u8; span];
            for r in &runs {
                let at = (r.block * 512) as usize;
                let buf = &disks[r.volume.index()][at..at + r.nblocks as usize * 512];
                cras_disk::xor_into(&mut acc, &buf[..span.min(buf.len())]);
            }
            assert_eq!(
                &acc[..],
                &movie[lo as usize..hi as usize],
                "trial {trial}: g={group} total={total} unit={k} range={rel_lo}..{rel_hi}"
            );
        }
    }

    #[test]
    fn steering_declines_when_the_fanout_would_hit_a_failed_volume() {
        // A dead sibling makes the g−1 fan-out unreconstructible; the
        // planner must keep the direct read instead.
        let (extents, ps, _) = synthetic_parity(4, 20 * 64 * 1024, None);
        let k = 0u64;
        let home = ps.geom.data_volume(k);
        let mut failed = vec![false; 4];
        let other = (0..4).find(|&v| VolumeId(v) != home).unwrap();
        failed[other as usize] = true;
        assert!(Stream::steer_recon_runs(&extents, &ps, 0, 4096, home, &failed).is_none());
    }

    #[test]
    fn two_volume_parity_degrades_to_a_mirror_read() {
        // g = 2: no sibling data units; the "reconstruction" is a single
        // read of the parity unit, which is a byte copy of the data.
        let (extents, ps, _) = synthetic_parity(2, 10 * 64 * 1024, None);
        let runs =
            Stream::parity_recon_runs(&extents, &ps, 0, 64 * 1024, VolumeId(1), &[false, false])
                .unwrap();
        assert_eq!(runs.len(), 1);
        let blocks: u64 = runs.iter().map(|r| r.nblocks as u64).sum();
        assert_eq!(blocks, 64 * 1024 / 512);
    }

    #[test]
    fn second_failure_in_band_is_unreconstructible() {
        let (extents, ps, _) = synthetic_parity(4, 20 * 64 * 1024, None);
        let k = 0u64;
        let fail = ps.geom.data_volume(k);
        let mut failed = vec![false; 4];
        // Fail some *other* volume in the band too.
        let other = (0..4).find(|&v| VolumeId(v) != fail).unwrap();
        failed[other as usize] = true;
        assert!(Stream::parity_recon_runs(&extents, &ps, 0, 4096, fail, &failed).is_none());
    }

    #[test]
    #[should_panic(expected = "beyond extent map")]
    fn out_of_range_panics() {
        let s = stream_with_extents(on_volume(VolumeId(0), vec![ext(0, 1000, 16)]));
        s.byte_range_to_runs(0, 9000);
    }

    #[test]
    #[should_panic(expected = "empty byte range")]
    fn empty_range_panics() {
        let s = stream_with_extents(on_volume(VolumeId(0), vec![ext(0, 1000, 16)]));
        s.byte_range_to_runs(5, 5);
    }
}
