//! Per-stream server state: chunk table, volume-aware extent map,
//! logical clock, time-driven buffer, and the byte-range → disk-extent
//! mapping.

use cras_disk::geometry::BlockNo;
use cras_disk::VolumeId;
use cras_media::ChunkTable;
use cras_sim::Duration;

use crate::admission::StreamParams;
use crate::clock::LogicalClock;
use crate::placement::{volume_shares, VolumeExtent};
use crate::tdbuffer::TimeDrivenBuffer;

/// Identifies an open stream within one CRAS server.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StreamId(pub u32);

/// A physically contiguous disk run on an unspecified volume.
///
/// Retained for the single-volume recording path ([`crate::Recorder`]),
/// which always writes to one disk; retrieval uses [`VolumeRun`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiskRun {
    /// First 512-byte disk block.
    pub block: BlockNo,
    /// Length in 512-byte blocks.
    pub nblocks: u32,
}

/// A physically contiguous disk run on a specific volume.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VolumeRun {
    /// The disk this run lives on.
    pub volume: VolumeId,
    /// First 512-byte disk block on that volume.
    pub block: BlockNo,
    /// Length in 512-byte blocks.
    pub nblocks: u32,
}

/// Server-side state of one open stream.
#[derive(Clone, Debug)]
pub struct Stream {
    /// Stream id.
    pub id: StreamId,
    /// Movie name (diagnostics).
    pub name: String,
    /// The control-file chunk table.
    pub table: ChunkTable,
    /// Extent map resolved at open time — CRAS never touches UFS metadata
    /// during retrieval. Each extent names the volume it lives on.
    pub extents: Vec<VolumeExtent>,
    /// Admission parameters this stream was admitted with.
    pub params: StreamParams,
    /// Fraction of the stream's bytes on each volume (the admission
    /// test's per-volume rate weights; `[1.0]` for a single-disk movie).
    pub shares: Vec<f64>,
    /// The stream's logical clock.
    pub clock: LogicalClock,
    /// The time-driven shared memory buffer.
    pub buffer: TimeDrivenBuffer,
    /// Media time up to which pre-fetches have been issued
    /// (`T_read_ahead` in Figure 4).
    pub prefetch_cursor: Duration,
}

impl Stream {
    /// Recomputes [`Stream::shares`] for a server managing `volumes`
    /// disks.
    pub fn compute_shares(&mut self, volumes: usize) {
        self.shares = volume_shares(&self.extents, volumes);
    }

    /// Maps the file byte range `[lo, hi)` onto disk-block runs, merging
    /// physically adjacent pieces on the same volume. Ranges are rounded
    /// outward to 512-byte block boundaries (the device transfers whole
    /// blocks).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or extends past the mapped file.
    pub fn byte_range_to_runs(&self, lo: u64, hi: u64) -> Vec<VolumeRun> {
        assert!(lo < hi, "empty byte range");
        let mapped: u64 = self.extents.iter().map(|e| e.extent.bytes()).sum();
        assert!(
            hi <= mapped,
            "byte range beyond extent map: {hi} > {mapped}"
        );
        let mut runs: Vec<VolumeRun> = Vec::new();
        for ve in &self.extents {
            let e = &ve.extent;
            let e_lo = e.file_offset;
            let e_hi = e.file_offset + e.bytes();
            let a = lo.max(e_lo);
            let b = hi.min(e_hi);
            if a >= b {
                continue;
            }
            // Block-align within the extent.
            let rel_lo = (a - e_lo) / 512;
            let rel_hi = (b - e_lo).div_ceil(512);
            let block = e.disk_block + rel_lo;
            let nblocks = (rel_hi - rel_lo) as u32;
            match runs.last_mut() {
                Some(last)
                    if last.volume == ve.volume && last.block + last.nblocks as u64 == block =>
                {
                    last.nblocks += nblocks;
                }
                _ => runs.push(VolumeRun {
                    volume: ve.volume,
                    block,
                    nblocks,
                }),
            }
        }
        runs
    }

    /// Splits runs so that no single disk command exceeds `max_bytes`
    /// ("CRAS optimizes throughput by reading ... up to 256K bytes at a
    /// time ... If the size of contiguous blocks is less ... CRAS reads
    /// the smaller blocks instead").
    pub fn split_runs(runs: Vec<VolumeRun>, max_bytes: u64) -> Vec<VolumeRun> {
        let max_blocks = (max_bytes / 512).max(1) as u32;
        let mut out = Vec::with_capacity(runs.len());
        for r in runs {
            let mut block = r.block;
            let mut left = r.nblocks;
            while left > 0 {
                let take = left.min(max_blocks);
                out.push(VolumeRun {
                    volume: r.volume,
                    block,
                    nblocks: take,
                });
                block += take as u64;
                left -= take;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::on_volume;
    use cras_media::StreamProfile;
    use cras_sim::Rng;
    use cras_ufs::Extent;

    fn stream_with_extents(extents: Vec<VolumeExtent>) -> Stream {
        let mut rng = Rng::new(1);
        let table = cras_media::generate_chunks(&StreamProfile::mpeg1(), 1.0, &mut rng);
        let mut s = Stream {
            id: StreamId(0),
            name: "t".into(),
            table,
            extents,
            params: StreamParams::new(187_500.0, 6_250.0),
            shares: Vec::new(),
            clock: LogicalClock::new(),
            buffer: TimeDrivenBuffer::new(200_000, Duration::from_millis(100)),
            prefetch_cursor: Duration::ZERO,
        };
        s.compute_shares(
            1.max(
                s.extents
                    .iter()
                    .map(|v| v.volume.index() + 1)
                    .max()
                    .unwrap_or(1),
            ),
        );
        s
    }

    fn ext(file_offset: u64, disk_block: u64, nblocks: u32) -> Extent {
        Extent {
            file_offset,
            disk_block,
            nblocks,
        }
    }

    fn vrun(volume: u32, block: u64, nblocks: u32) -> VolumeRun {
        VolumeRun {
            volume: VolumeId(volume),
            block,
            nblocks,
        }
    }

    #[test]
    fn single_extent_subrange() {
        let s = stream_with_extents(on_volume(VolumeId(0), vec![ext(0, 1000, 100)])); // 51 200 B.
        let runs = s.byte_range_to_runs(1024, 2048);
        assert_eq!(runs, vec![vrun(0, 1002, 2)]);
    }

    #[test]
    fn unaligned_range_rounds_outward() {
        let s = stream_with_extents(on_volume(VolumeId(0), vec![ext(0, 1000, 100)]));
        let runs = s.byte_range_to_runs(100, 700);
        // Bytes 100..700 live in blocks 0 and 1.
        assert_eq!(runs, vec![vrun(0, 1000, 2)]);
    }

    #[test]
    fn range_spanning_discontiguous_extents() {
        let s = stream_with_extents(on_volume(
            VolumeId(0),
            vec![ext(0, 1000, 16), ext(8192, 5000, 16)],
        ));
        let runs = s.byte_range_to_runs(4096, 12288);
        assert_eq!(runs, vec![vrun(0, 1008, 8), vrun(0, 5000, 8)]);
    }

    #[test]
    fn adjacent_extents_merge() {
        // Extents contiguous on disk merge into one run.
        let s = stream_with_extents(on_volume(
            VolumeId(0),
            vec![ext(0, 1000, 16), ext(8192, 1016, 16)],
        ));
        let runs = s.byte_range_to_runs(0, 16384);
        assert_eq!(runs, vec![vrun(0, 1000, 32)]);
    }

    #[test]
    fn adjacent_blocks_on_different_volumes_do_not_merge() {
        // Same block numbers, different spindles: never one command.
        let mut extents = on_volume(VolumeId(0), vec![ext(0, 1000, 16)]);
        extents.push(VolumeExtent {
            volume: VolumeId(1),
            extent: ext(8192, 1016, 16),
        });
        let s = stream_with_extents(extents);
        let runs = s.byte_range_to_runs(0, 16384);
        assert_eq!(runs, vec![vrun(0, 1000, 16), vrun(1, 1016, 16)]);
    }

    #[test]
    fn striped_shares_split_by_bytes() {
        let mut extents = on_volume(VolumeId(0), vec![ext(0, 1000, 48)]);
        extents.push(VolumeExtent {
            volume: VolumeId(1),
            extent: ext(24576, 2000, 16),
        });
        let s = stream_with_extents(extents);
        assert_eq!(s.shares, vec![0.75, 0.25]);
    }

    #[test]
    fn split_respects_256k() {
        let runs = vec![vrun(0, 0, 1200)];
        let split = Stream::split_runs(runs, 256 * 1024); // 512 blocks.
        assert_eq!(split.len(), 3);
        assert_eq!(split[0].nblocks, 512);
        assert_eq!(split[1].nblocks, 512);
        assert_eq!(split[2].nblocks, 176);
        assert_eq!(split[1].block, 512);
        let total: u32 = split.iter().map(|r| r.nblocks).sum();
        assert_eq!(total, 1200);
    }

    #[test]
    fn split_leaves_small_runs_alone() {
        let runs = vec![vrun(0, 0, 10), vrun(1, 100, 512)];
        let split = Stream::split_runs(runs.clone(), 256 * 1024);
        assert_eq!(split, runs);
    }

    #[test]
    #[should_panic(expected = "beyond extent map")]
    fn out_of_range_panics() {
        let s = stream_with_extents(on_volume(VolumeId(0), vec![ext(0, 1000, 16)]));
        s.byte_range_to_runs(0, 9000);
    }

    #[test]
    #[should_panic(expected = "empty byte range")]
    fn empty_range_panics() {
        let s = stream_with_extents(on_volume(VolumeId(0), vec![ext(0, 1000, 16)]));
        s.byte_range_to_runs(5, 5);
    }
}
