//! Per-stream logical clocks.
//!
//! "Our system uses a logical clock per stream to control retrieval; this
//! clock is distinct from the system clock. The speed of a stream
//! determines the rate of advance of the associated logical clock. At the
//! time when a stream is opened, the logical clock is set to zero, and its
//! rate of advance is set to the original recording data rate of the
//! stream."
//!
//! `crs_start` / `crs_stop` / `crs_seek` manipulate this clock; clients
//! keep their *own* logical clocks at whatever rate they like, which is
//! the decoupling behind dynamic QOS control.

use cras_sim::{Duration, Instant};

/// A pausable, rate-scalable mapping from real time to media time.
///
/// # Examples
///
/// ```
/// use cras_core::LogicalClock;
/// use cras_sim::{Duration, Instant};
///
/// let mut clock = LogicalClock::new();
/// clock.start(Instant::from_secs_f64(10.0));
/// assert_eq!(
///     clock.media_time(Instant::from_secs_f64(12.5)),
///     Duration::from_secs_f64(2.5),
/// );
/// clock.stop(Instant::from_secs_f64(12.5));
/// assert_eq!(
///     clock.media_time(Instant::from_secs_f64(99.0)),
///     Duration::from_secs_f64(2.5),
/// );
/// ```
#[derive(Clone, Copy, Debug)]
pub struct LogicalClock {
    /// Real time at which the current segment began (None = stopped).
    anchor_real: Option<Instant>,
    /// Media time at the anchor.
    anchor_media: Duration,
    /// Media seconds per real second.
    rate: f64,
}

impl LogicalClock {
    /// A stopped clock at media time zero, rate 1.
    pub fn new() -> LogicalClock {
        LogicalClock {
            anchor_real: None,
            anchor_media: Duration::ZERO,
            rate: 1.0,
        }
    }

    /// Whether the clock is advancing.
    pub fn is_running(&self) -> bool {
        self.anchor_real.is_some()
    }

    /// The rate multiplier.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The real-time anchor of the current running segment (`None` when
    /// stopped). For a freshly started stream this is its playback
    /// begin; batched joins use it to anchor a follower's clock on its
    /// leader's.
    pub fn anchor(&self) -> Option<Instant> {
        self.anchor_real
    }

    /// Media time at real time `now` (clamped to the anchor for `now`
    /// before the anchor).
    pub fn media_time(&self, now: Instant) -> Duration {
        match self.anchor_real {
            None => self.anchor_media,
            Some(t0) => {
                let real = now.saturating_since(t0);
                self.anchor_media + real.mul_f64(self.rate)
            }
        }
    }

    /// Starts (or restarts) the clock at real time `start` — `crs_start`.
    /// Starting an already running clock re-anchors it (a no-op for the
    /// media position).
    pub fn start(&mut self, start: Instant) {
        self.anchor_media = self.media_time(start);
        self.anchor_real = Some(start);
    }

    /// Stops the clock at `now`, freezing media time — `crs_stop`.
    pub fn stop(&mut self, now: Instant) {
        self.anchor_media = self.media_time(now);
        self.anchor_real = None;
    }

    /// Sets the media position — `crs_seek`. Keeps the running/stopped
    /// state.
    pub fn seek(&mut self, now: Instant, to: Duration) {
        let running = self.anchor_real.is_some();
        self.anchor_media = to;
        self.anchor_real = if running { Some(now) } else { None };
    }

    /// Changes the rate (fast-forward support) without disturbing the
    /// current media position.
    pub fn set_rate(&mut self, now: Instant, rate: f64) {
        assert!(rate >= 0.0 && rate.is_finite(), "bad clock rate");
        self.anchor_media = self.media_time(now);
        if self.anchor_real.is_some() {
            self.anchor_real = Some(now);
        }
        self.rate = rate;
    }
}

impl Default for LogicalClock {
    fn default() -> Self {
        LogicalClock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: f64) -> Duration {
        Duration::from_secs_f64(v)
    }
    fn at(v: f64) -> Instant {
        Instant::from_secs_f64(v)
    }

    #[test]
    fn stopped_clock_holds() {
        let c = LogicalClock::new();
        assert!(!c.is_running());
        assert_eq!(c.media_time(at(100.0)), Duration::ZERO);
    }

    #[test]
    fn running_clock_advances_at_rate_one() {
        let mut c = LogicalClock::new();
        c.start(at(10.0));
        assert_eq!(c.media_time(at(10.0)), Duration::ZERO);
        assert_eq!(c.media_time(at(12.5)), s(2.5));
    }

    #[test]
    fn media_time_clamps_before_start() {
        let mut c = LogicalClock::new();
        c.start(at(10.0));
        assert_eq!(c.media_time(at(5.0)), Duration::ZERO);
    }

    #[test]
    fn stop_freezes() {
        let mut c = LogicalClock::new();
        c.start(at(0.0));
        c.stop(at(3.0));
        assert_eq!(c.media_time(at(100.0)), s(3.0));
        c.start(at(200.0));
        assert_eq!(c.media_time(at(201.0)), s(4.0));
    }

    #[test]
    fn seek_repositions() {
        let mut c = LogicalClock::new();
        c.start(at(0.0));
        c.seek(at(5.0), s(60.0));
        assert!(c.is_running());
        assert_eq!(c.media_time(at(7.0)), s(62.0));
        c.stop(at(8.0));
        c.seek(at(9.0), s(10.0));
        assert!(!c.is_running());
        assert_eq!(c.media_time(at(20.0)), s(10.0));
    }

    #[test]
    fn rate_change_scales_advance() {
        let mut c = LogicalClock::new();
        c.start(at(0.0));
        c.set_rate(at(10.0), 2.0); // Fast forward after 10 s.
        assert_eq!(c.media_time(at(10.0)), s(10.0));
        assert_eq!(c.media_time(at(13.0)), s(16.0));
        c.set_rate(at(13.0), 0.5);
        assert_eq!(c.media_time(at(15.0)), s(17.0));
    }

    #[test]
    #[should_panic(expected = "bad clock rate")]
    fn negative_rate_panics() {
        let mut c = LogicalClock::new();
        c.set_rate(at(0.0), -1.0);
    }
}
