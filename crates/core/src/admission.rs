//! The admission test — the paper's Section 2.3 and Appendices B/C,
//! implemented formula by formula.
//!
//! For an interval time `T`, disk parameters (Table 4) and a set of
//! streams with worst-case rates `R_i` and chunk sizes `C_i`:
//!
//! * data per interval (B.3): `A_i = T·R_i + C_i`
//! * feasibility (B.5 / paper (1)):
//!   `T ≥ (O_total·D + C_total) / (D − R_total)`
//! * buffer bound (B.8 / paper (2)): `B_total = 2·(T·R_total + C_total)`
//! * overheads (C.9–C.15):
//!   `O_other = T_cmd + T_seek_max + T_rot + B_other/D`,
//!   `O_cmd = N·T_cmd`, `O_rot = N·T_rot`,
//!   `O_seek(1) = T_seek_max`,
//!   `O_seek(N≥2) = 2·T_seek_max + (N−2)·T_seek_min`.
//!
//! Everything is evaluated in f64 seconds/bytes; callers convert at the
//! edges. The [`AdmissionModel::MultiCommand`] variant is an *ablation*
//! (not in the paper): it charges command and rotation overheads per
//! 256 KB read rather than per stream, quantifying how much of the
//! measured pessimism (Figures 8/9) comes from that simplification.

use cras_disk::calibrate::DiskParams;

/// CRAS reads at most this many bytes per disk command.
pub const MAX_READ_BYTES: u64 = 256 * 1024;

/// Per-stream admission parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamParams {
    /// Worst-case data rate `R_i`, bytes/second.
    pub rate: f64,
    /// Chunk size `C_i`, bytes (the largest chunk of the stream).
    pub chunk: f64,
}

impl StreamParams {
    /// Convenience constructor.
    pub fn new(rate: f64, chunk: f64) -> StreamParams {
        assert!(rate > 0.0 && chunk >= 0.0, "bad stream parameters");
        StreamParams { rate, chunk }
    }
}

/// Which overhead model to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AdmissionModel {
    /// The paper's formulas: one command/rotation per stream.
    #[default]
    Paper,
    /// Ablation: one command/rotation per 256 KB read.
    MultiCommand,
}

/// Why admission failed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AdmissionError {
    /// Total stream rate reaches the disk transfer rate.
    RateSaturated {
        /// Σ R_i, bytes/second.
        total_rate: f64,
    },
    /// Calculated I/O time exceeds the interval.
    IntervalTooShort {
        /// The calculated per-interval disk time, seconds.
        needed: f64,
        /// The interval, seconds.
        interval: f64,
    },
    /// Buffer memory demand exceeds the budget.
    OutOfMemory {
        /// Required bytes.
        needed: u64,
        /// Budget bytes.
        budget: u64,
    },
    /// Every volume holding the stream's data is failed — no replica
    /// can serve it.
    VolumeFailed,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::RateSaturated { total_rate } => {
                write!(f, "total rate {total_rate} B/s saturates the disk")
            }
            AdmissionError::IntervalTooShort { needed, interval } => {
                write!(
                    f,
                    "needs {needed:.4}s of disk time per {interval:.4}s interval"
                )
            }
            AdmissionError::OutOfMemory { needed, budget } => {
                write!(f, "needs {needed} B of buffer, budget {budget} B")
            }
            AdmissionError::VolumeFailed => {
                write!(f, "every volume holding the stream's data is failed")
            }
        }
    }
}

/// The admission test evaluator.
///
/// # Examples
///
/// ```
/// use cras_core::{Admission, AdmissionModel, StreamParams};
/// use cras_disk::calibrate::DiskParams;
///
/// let adm = Admission::new(DiskParams::paper_table4(), AdmissionModel::Paper);
/// let mpeg1 = StreamParams::new(187_500.0, 6_250.0);
/// // 5 MPEG-1 streams fit comfortably in a 0.5 s interval...
/// assert!(adm.admit(0.5, &vec![mpeg1; 5], 8 << 20).is_ok());
/// // ...but 20 do not.
/// assert!(adm.admit(0.5, &vec![mpeg1; 20], 8 << 20).is_err());
/// ```
#[derive(Clone, Debug)]
pub struct Admission {
    params: DiskParams,
    model: AdmissionModel,
}

impl Admission {
    /// Creates an evaluator over measured disk parameters.
    pub fn new(params: DiskParams, model: AdmissionModel) -> Admission {
        Admission { params, model }
    }

    /// The disk parameters.
    pub fn disk_params(&self) -> &DiskParams {
        &self.params
    }

    /// `O_other` (C.9): worst-case delay from one in-progress
    /// non-real-time operation.
    pub fn o_other(&self) -> f64 {
        self.params.t_cmd.as_secs_f64()
            + self.params.t_seek_max.as_secs_f64()
            + self.params.t_rot.as_secs_f64()
            + self.params.b_other as f64 / self.params.transfer_rate
    }

    /// Number of disk commands the model charges for.
    fn command_count(&self, interval: f64, streams: &[StreamParams]) -> f64 {
        match self.model {
            AdmissionModel::Paper => streams.len() as f64,
            AdmissionModel::MultiCommand => streams
                .iter()
                .map(|s| (self.data_per_interval(interval, s) / MAX_READ_BYTES as f64).ceil())
                .sum(),
        }
    }

    /// `O_cmd` (C.10).
    pub fn o_cmd(&self, interval: f64, streams: &[StreamParams]) -> f64 {
        self.command_count(interval, streams) * self.params.t_cmd.as_secs_f64()
    }

    /// `O_seek` (C.11/C.12): the C-SCAN sweep bound. Seeks are charged per
    /// *stream* in both models — consecutive reads of one stream are
    /// sequential.
    pub fn o_seek(&self, streams: &[StreamParams]) -> f64 {
        let n = streams.len();
        let t_max = self.params.t_seek_max.as_secs_f64();
        let t_min = self.params.t_seek_min.as_secs_f64();
        match n {
            0 => 0.0,
            1 => t_max,
            n => 2.0 * t_max + (n as f64 - 2.0) * t_min,
        }
    }

    /// `O_rot` (C.13).
    pub fn o_rot(&self, interval: f64, streams: &[StreamParams]) -> f64 {
        self.command_count(interval, streams) * self.params.t_rot.as_secs_f64()
    }

    /// `O_total` (C.14/C.15).
    pub fn o_total(&self, interval: f64, streams: &[StreamParams]) -> f64 {
        if streams.is_empty() {
            return 0.0;
        }
        self.o_other()
            + self.o_seek(streams)
            + self.o_rot(interval, streams)
            + self.o_cmd(interval, streams)
    }

    /// `A_i = T·R_i + C_i` (B.3): bytes to retrieve for one stream per
    /// interval.
    pub fn data_per_interval(&self, interval: f64, s: &StreamParams) -> f64 {
        interval * s.rate + s.chunk
    }

    /// `Σ R_i`.
    pub fn total_rate(streams: &[StreamParams]) -> f64 {
        streams.iter().map(|s| s.rate).sum()
    }

    /// `Σ C_i`.
    pub fn total_chunk(streams: &[StreamParams]) -> f64 {
        streams.iter().map(|s| s.chunk).sum()
    }

    /// The calculated per-interval disk I/O time:
    /// `O_total + A_total / D` — the denominator of the Figure 8/9
    /// accuracy ratio.
    pub fn calculated_io_time(&self, interval: f64, streams: &[StreamParams]) -> f64 {
        if streams.is_empty() {
            return 0.0;
        }
        let a_total = interval * Self::total_rate(streams) + Self::total_chunk(streams);
        self.o_total(interval, streams) + a_total / self.params.transfer_rate
    }

    /// The minimum feasible interval (paper (1)), or an error if the rates
    /// alone saturate the disk.
    ///
    /// Only exact under [`AdmissionModel::Paper`], where `O_total` does
    /// not depend on `T`; under the ablation model use
    /// [`Admission::admit`] with a concrete interval.
    pub fn min_interval(&self, streams: &[StreamParams]) -> Result<f64, AdmissionError> {
        let d = self.params.transfer_rate;
        let r_total = Self::total_rate(streams);
        if r_total >= d {
            return Err(AdmissionError::RateSaturated {
                total_rate: r_total,
            });
        }
        // Paper-model O_total is interval-independent; pass T = 0.
        let o_total = self.o_total(0.0, streams);
        Ok((o_total * d + Self::total_chunk(streams)) / (d - r_total))
    }

    /// `B_i = 2·A_i` (B.7): buffer bytes for one stream.
    pub fn buffer_for(&self, interval: f64, s: &StreamParams) -> u64 {
        (2.0 * self.data_per_interval(interval, s)).ceil() as u64
    }

    /// `B_total = 2·(T·R_total + C_total)` (B.8 / paper (2)).
    pub fn buffer_total(&self, interval: f64, streams: &[StreamParams]) -> u64 {
        streams.iter().map(|s| self.buffer_for(interval, s)).sum()
    }

    /// The full admission decision for a stream set at interval `T` with a
    /// buffer-memory budget.
    pub fn admit(
        &self,
        interval: f64,
        streams: &[StreamParams],
        memory_budget: u64,
    ) -> Result<(), AdmissionError> {
        let d = self.params.transfer_rate;
        let r_total = Self::total_rate(streams);
        if r_total >= d {
            return Err(AdmissionError::RateSaturated {
                total_rate: r_total,
            });
        }
        let needed = self.calculated_io_time(interval, streams);
        if needed > interval {
            return Err(AdmissionError::IntervalTooShort { needed, interval });
        }
        let buf = self.buffer_total(interval, streams);
        if buf > memory_budget {
            return Err(AdmissionError::OutOfMemory {
                needed: buf,
                budget: memory_budget,
            });
        }
        Ok(())
    }

    /// Maximum number of identical streams admitted at interval `T` with
    /// the given budget (used by the capacity experiment).
    pub fn capacity(
        &self,
        interval: f64,
        proto: StreamParams,
        memory_budget: u64,
        limit: usize,
    ) -> usize {
        let mut streams = Vec::new();
        for n in 1..=limit {
            streams.push(proto);
            if self.admit(interval, &streams, memory_budget).is_err() {
                return n - 1;
            }
        }
        limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adm() -> Admission {
        Admission::new(DiskParams::paper_table4(), AdmissionModel::Paper)
    }

    fn mpeg1(n: usize) -> Vec<StreamParams> {
        vec![StreamParams::new(187_500.0, 6_250.0); n]
    }

    const BIG_MEM: u64 = 1 << 30;

    #[test]
    fn o_other_matches_hand_calc() {
        // 2ms + 17ms + 8.33ms + 64KiB/6.5MB/s = 0.02733 + 0.010082 s.
        let o = adm().o_other();
        let expect = 0.002 + 0.017 + 0.00833 + 65_536.0 / 6.5e6;
        assert!((o - expect).abs() < 1e-9, "o_other = {o}");
    }

    #[test]
    fn o_seek_piecewise() {
        let a = adm();
        assert_eq!(a.o_seek(&[]), 0.0);
        assert!((a.o_seek(&mpeg1(1)) - 0.017).abs() < 1e-12);
        assert!((a.o_seek(&mpeg1(2)) - 0.034).abs() < 1e-12);
        // N=5: 2*17 + 3*4 = 46 ms.
        assert!((a.o_seek(&mpeg1(5)) - 0.046).abs() < 1e-12);
    }

    #[test]
    fn o_total_formula_14() {
        // O_total(1) = B_other/D + 2*(Tsm + Trot + Tcmd).
        let a = adm();
        let expect = 65_536.0 / 6.5e6 + 2.0 * (0.017 + 0.00833 + 0.002);
        assert!((a.o_total(0.5, &mpeg1(1)) - expect).abs() < 1e-9);
    }

    #[test]
    fn o_total_formula_15() {
        // O_total(N) = B_other/D + 3*Tsm + (N-2)*Tsmin + (N+1)*(Trot+Tcmd).
        let a = adm();
        let n = 7;
        let expect = 65_536.0 / 6.5e6
            + 3.0 * 0.017
            + (n as f64 - 2.0) * 0.004
            + (n as f64 + 1.0) * (0.00833 + 0.002);
        assert!((a.o_total(0.5, &mpeg1(n)) - expect).abs() < 1e-9);
    }

    #[test]
    fn buffer_is_double_interval_demand() {
        let a = adm();
        // One MPEG1 stream at T = 0.5: A = 93 750 + 6 250 = 100 000;
        // B = 200 000.
        assert_eq!(a.buffer_for(0.5, &mpeg1(1)[0]), 200_000);
        assert_eq!(a.buffer_total(0.5, &mpeg1(4)), 800_000);
    }

    #[test]
    fn paper_capacity_at_half_second_interval() {
        // Hand calculation: O_total(N) + A_total(N)/D <= 0.5 s admits
        // N = 14 MPEG1 streams (the measured Figure 6 throughput goes
        // higher because the test is pessimistic — that is Figure 8).
        let a = adm();
        let cap = a.capacity(0.5, mpeg1(1)[0], BIG_MEM, 50);
        assert!(
            (13..=16).contains(&cap),
            "capacity at 0.5 s = {cap} streams"
        );
        let frac = cap as f64 * 187_500.0 / 6.5e6;
        assert!((0.35..0.50).contains(&frac), "fraction = {frac}");
    }

    #[test]
    fn longer_interval_admits_more_streams() {
        // §3.1: "with 3 seconds initial delay, it can support more than 25
        // MPEG1 streams whose total throughput is 4.6MB/s (70% of disk
        // bandwidth)". 3 s initial delay = 1.5 s interval (double buffer);
        // the formulas admit 24-25 streams at ~70% of the disk rate.
        let a = adm();
        let cap = a.capacity(1.5, mpeg1(1)[0], BIG_MEM, 50);
        assert!((23..=27).contains(&cap), "capacity at 1.5 s = {cap}");
        let frac = cap as f64 * 187_500.0 / 6.5e6;
        assert!(frac > 0.66, "fraction = {frac}");
    }

    #[test]
    fn mpeg2_capacity_is_several() {
        let a = adm();
        let p = StreamParams::new(750_000.0, 25_000.0);
        let cap = a.capacity(0.5, p, BIG_MEM, 20);
        assert!((4..=7).contains(&cap), "MPEG2 capacity = {cap}");
    }

    #[test]
    fn min_interval_matches_admit_boundary() {
        let a = adm();
        let streams = mpeg1(10);
        let t_min = a.min_interval(&streams).unwrap();
        assert!(a.admit(t_min * 1.001, &streams, BIG_MEM).is_ok());
        let err = a.admit(t_min * 0.95, &streams, BIG_MEM);
        assert!(matches!(err, Err(AdmissionError::IntervalTooShort { .. })));
    }

    #[test]
    fn saturation_detected() {
        let a = adm();
        let heavy = vec![StreamParams::new(3.5e6, 25_000.0); 2];
        assert!(matches!(
            a.min_interval(&heavy),
            Err(AdmissionError::RateSaturated { .. })
        ));
    }

    #[test]
    fn memory_budget_enforced() {
        let a = adm();
        // 4 streams need 800 000 B at T = 0.5.
        let err = a.admit(0.5, &mpeg1(4), 700_000);
        assert!(matches!(err, Err(AdmissionError::OutOfMemory { .. })));
        assert!(a.admit(0.5, &mpeg1(4), 800_000).is_ok());
    }

    #[test]
    fn multicommand_model_charges_more_overhead() {
        let paper = adm();
        let multi = Admission::new(DiskParams::paper_table4(), AdmissionModel::MultiCommand);
        // MPEG2 at T = 1.0: A ≈ 775 KB ≈ 3 commands of 256 KB.
        let s = vec![StreamParams::new(750_000.0, 25_000.0); 3];
        let t_paper = paper.calculated_io_time(1.0, &s);
        let t_multi = multi.calculated_io_time(1.0, &s);
        assert!(t_multi > t_paper, "{t_multi} <= {t_paper}");
    }

    #[test]
    fn calculated_io_time_scales_with_interval() {
        let a = adm();
        let s = mpeg1(5);
        let t1 = a.calculated_io_time(0.5, &s);
        let t2 = a.calculated_io_time(1.0, &s);
        // Doubling the interval doubles the transfer term only.
        let transfer_delta = 0.5 * Admission::total_rate(&s) / 6.5e6;
        assert!((t2 - t1 - transfer_delta).abs() < 1e-9);
    }

    #[test]
    fn empty_stream_set_is_free() {
        let a = adm();
        assert_eq!(a.calculated_io_time(0.5, &[]), 0.0);
        assert_eq!(a.buffer_total(0.5, &[]), 0);
        assert!(a.admit(0.5, &[], 0).is_ok());
    }
}
