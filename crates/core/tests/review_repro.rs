use cras_core::{ParityGeometry, ParityState, Stream, VolumeExtent, PARITY_STRIPE_BYTES};
use cras_disk::VolumeId;
use cras_ufs::Extent;

fn ve(vol: u32, file_offset: u64, disk_block: u64, nblocks: u32) -> VolumeExtent {
    VolumeExtent {
        volume: VolumeId(vol),
        extent: Extent {
            file_offset,
            disk_block,
            nblocks,
        },
    }
}

#[test]
fn tail_block_rounded_degraded_read() {
    let group = 4u32;
    let sb = PARITY_STRIPE_BYTES;
    let total = 7 * sb + 1000;
    let geom = ParityGeometry::new(0, group, sb, total);
    let extents: Vec<VolumeExtent> = (0..geom.data_units())
        .map(|k| {
            ve(
                geom.data_volume(k).0,
                k * sb,
                geom.data_file_index(k) * (sb / 512),
                geom.unit_len(k).div_ceil(512) as u32,
            )
        })
        .collect();
    let pbase = geom.rows() * (sb / 512);
    let parity_maps: Vec<Vec<VolumeExtent>> = (0..group)
        .map(|v| {
            let bytes = geom.parity_bytes_on(v);
            if bytes == 0 {
                return Vec::new();
            }
            vec![ve(v, 0, pbase, (bytes / 512) as u32)]
        })
        .collect();
    let ps = ParityState { geom, parity_maps };
    let k = geom.data_units() - 1; // tail unit
    let fail = geom.data_volume(k);
    // What the interval planner passes: run end rounded up to a block.
    let lo = k * sb;
    let hi = k * sb + geom.unit_len(k).div_ceil(512) * 512;
    assert!(hi > total, "precondition: rounded end exceeds total");
    let failed = vec![false; group as usize];
    let runs = Stream::parity_recon_runs(&extents, &ps, lo, hi, fail, &failed);
    assert!(runs.is_some());
}
