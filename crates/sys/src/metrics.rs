//! Measurement collection for the experiments.
//!
//! The admission-accuracy figures (8/9) compare, per interval, the
//! *actual* disk I/O time (first request issued → last request completed,
//! including blocking by an in-progress non-real-time operation — exactly
//! what a timestamping benchmark would see) against the admission test's
//! *calculated* time.

use std::collections::{BTreeMap, HashMap};

use cras_core::{IntervalReport, ReadId};
use cras_disk::Completed;
use cras_sim::{Duration, Instant};

use crate::tags::DiskTag;

// Re-export friendly aliases used throughout the crate.
pub use cras_sim::stats::{OnlineStats, Samples, TimeSeries};

/// Per-interval, per-volume disk I/O accounting. With one volume there is
/// exactly one record per non-empty interval; with several, each volume
/// that received requests gets its own record so its actual I/O time is
/// compared against *its* calculated time (admission is per spindle).
#[derive(Clone, Debug)]
pub struct IntervalIo {
    /// Interval index.
    pub index: u64,
    /// Volume the requests went to.
    pub volume: u32,
    /// When the requests were issued.
    pub issued_at: Instant,
    /// Calculated I/O time from the admission test (seconds).
    pub calculated: f64,
    /// Requests issued.
    pub total_reqs: usize,
    /// Requests not yet completed.
    pub remaining: usize,
    /// Completion time of the last finished request.
    pub last_done: Instant,
    /// Sum of pure service time of this interval's requests (seconds).
    pub service_sum: f64,
}

impl IntervalIo {
    /// Actual disk I/O time consumed by the interval's requests: the sum
    /// of their service times (what a timestamping driver reports).
    /// `None` while requests remain outstanding or if nothing was issued.
    pub fn actual(&self) -> Option<f64> {
        if self.total_reqs == 0 || self.remaining > 0 {
            None
        } else {
            Some(self.service_sum)
        }
    }

    /// Wall-clock span from issue to last completion — includes waiting
    /// behind other traffic and earlier intervals (diagnostic).
    pub fn span(&self) -> Option<f64> {
        if self.total_reqs == 0 || self.remaining > 0 {
            None
        } else {
            Some(self.last_done.since(self.issued_at).as_secs_f64())
        }
    }

    /// Ratio of actual to calculated I/O time (the Figure 8/9 quantity).
    pub fn ratio(&self) -> Option<f64> {
        match (self.actual(), self.calculated) {
            (Some(a), c) if c > 0.0 => Some(a / c),
            _ => None,
        }
    }
}

/// Cross-volume wall-clock accounting for one interval: from the issue
/// of the interval's per-volume batches to the completion of the *last*
/// read on *any* volume. Where [`IntervalIo`] judges each spindle
/// against its own calculated time, this record judges the pipelined
/// issue path: with every spindle draining its batch concurrently the
/// span should track `calc_max` (the admission bound); a serialized
/// path degrades it toward `calc_sum`.
#[derive(Clone, Debug)]
pub struct IntervalWall {
    /// Interval index.
    pub index: u64,
    /// When the batches were issued.
    pub issued_at: Instant,
    /// Requests issued across all volumes.
    pub total_reqs: usize,
    /// Requests not yet completed.
    pub remaining: usize,
    /// Completion time of the last finished request on any volume.
    pub last_done: Instant,
    /// Sum of pure service time across all volumes (seconds).
    pub service_sum: f64,
    /// Max over volumes of the calculated per-volume I/O time (seconds)
    /// — the admission test's bound on the interval.
    pub calc_max: f64,
    /// Sum over volumes of the calculated per-volume I/O time (seconds)
    /// — what a fully serialized issue path would be held to.
    pub calc_sum: f64,
    /// Volumes that received requests this interval.
    pub volumes: usize,
}

impl IntervalWall {
    /// Wall-clock span from issue to the last completion across all
    /// volumes. `None` while requests remain outstanding.
    pub fn span(&self) -> Option<f64> {
        if self.total_reqs == 0 || self.remaining > 0 {
            None
        } else {
            Some(self.last_done.since(self.issued_at).as_secs_f64())
        }
    }

    /// Cross-volume overlap factor: total disk service time over the
    /// wall span. 1.0 means no overlap (one spindle at a time);
    /// `volumes` means every spindle busy the whole span.
    pub fn overlap(&self) -> Option<f64> {
        match self.span() {
            Some(s) if s > 0.0 => Some(self.service_sum / s),
            _ => None,
        }
    }
}

/// System-wide measurement state.
#[derive(Default, Debug)]
pub struct Metrics {
    intervals: Vec<IntervalIo>,
    read_interval: HashMap<u64, usize>,
    walls: Vec<IntervalWall>,
    read_wall: HashMap<u64, usize>,
    /// Bytes completed for CRAS real-time reads.
    pub cras_read_bytes: u64,
    /// Total disk service time consumed by CRAS reads.
    pub cras_read_busy: Duration,
    /// Bytes completed for CRAS real-time writes.
    pub cras_write_bytes: u64,
    /// Deadline overruns reported by the server.
    pub overruns: u64,
    /// CRAS reads that came back failed and were re-issued against a
    /// surviving replica.
    pub degraded_reads: u64,
    /// CRAS reads that came back failed with no surviving replica.
    pub lost_reads: u64,
    /// Intervals in which at least one stream read from its mirror
    /// because the primary volume was down.
    pub degraded_intervals: u64,
    /// Intervals in which at least one parity stream's direct read was
    /// steered to a `g−1` reconstruction fan-out (coded-read steering,
    /// DESIGN §17).
    pub steered_intervals: u64,
    /// Stream-intervals steered (one count per steered stream per
    /// interval tick).
    pub steered_stream_intervals: u64,
    /// Stream batches dropped at plan time because no live replica
    /// could serve them (every copy's volume down).
    pub plan_lost_streams: u64,
    /// When a volume failure was declared (first one, if several).
    pub volume_failed_at: Option<Instant>,
    /// When the rebuild started copying.
    pub rebuild_started_at: Option<Instant>,
    /// When the rebuild finished and capacity was restored.
    pub rebuild_finished_at: Option<Instant>,
    /// Bytes copied by the rebuild manager.
    pub rebuild_bytes: u64,
    /// Stream-intervals fed from the interval cache instead of disk
    /// (one count per cached stream per interval tick).
    pub cache_served_stream_intervals: u64,
    /// Deferred-admission streams whose disk share was reserved at
    /// prefix drain (reserve-at-drain successes).
    pub deferred_reserved_streams: u64,
    /// Streams parked by a failed cache/deferred re-admission, counted
    /// per title — the per-title cost of the eviction policy. A
    /// `BTreeMap` so every report (and the canonical JSON) is
    /// deterministic.
    pub cache_rejects_by_title: BTreeMap<String, u64>,
    /// Streams parked (viewer rebuffering) by a failed cache/deferred
    /// re-admission.
    pub parked_streams: u64,
    /// Parked streams whose retry found a feed and resumed playback.
    pub resumed_streams: u64,
    /// Streams parked by delivery backpressure (DESIGN §18): the
    /// client's playout buffer crossed its high watermark, so the
    /// feeding stream released its feed until the buffer drained.
    pub net_parks: u64,
}

/// A shard's load and health snapshot, exported for cluster-level
/// routing: the gateway compares these across a title's replicas and
/// sends the open to the least-loaded live one.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ShardLoad {
    /// Streams currently admitted (open, reservation held).
    pub streams: usize,
    /// Spare fraction of recent interval walls (1.0 = idle, 0.0 = the
    /// interval time is fully consumed) — [`Metrics::recent_slack`].
    pub recent_slack: f64,
    /// Worst per-volume recent completion lag in seconds
    /// ([`Metrics::recent_volume_lag`], max over volumes): how far
    /// behind its admission bound the shard's busiest spindle has been
    /// finishing. 0.0 when every volume keeps up. A direct measurement
    /// of overload, where the stream count is only a proxy for it.
    pub recent_lag: f64,
    /// Bytes waiting in the shard's delivery link send queues (0
    /// without a delivery subsystem).
    pub uplink_queued_bytes: u64,
    /// Frames that missed their playout deadline across the shard's
    /// delivery sessions (0 without a delivery subsystem).
    pub uplink_late_frames: u64,
    /// Volumes configured in this shard.
    pub volumes: usize,
    /// Volumes currently failed and not yet rebuilt.
    pub volumes_down: usize,
}

impl ShardLoad {
    /// Whether every volume is down — the whole-shard-failure state a
    /// gateway treats as shard death.
    pub fn all_down(&self) -> bool {
        self.volumes > 0 && self.volumes_down == self.volumes
    }
}

/// Per-volume fault/health report assembled from the disk substrate.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct VolumeHealth {
    /// Volume id.
    pub volume: u32,
    /// Operations the fault injector has seen (0 without an injector).
    pub ops_seen: u64,
    /// Transient retry stalls injected.
    pub transient_faults: u64,
    /// Media errors injected (each fails one operation).
    pub media_errors: u64,
    /// Whether the volume is currently down.
    pub down: bool,
}

impl Metrics {
    /// Creates empty metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records an interval tick and indexes its reads: one record per
    /// volume that received requests (the report's requests are sorted by
    /// volume, so volumes form consecutive runs).
    pub fn on_interval(&mut self, rep: &IntervalReport, now: Instant) {
        if rep.overran {
            self.overruns += 1;
        }
        if rep.degraded_streams > 0 {
            self.degraded_intervals += 1;
        }
        if rep.steered_streams > 0 {
            self.steered_intervals += 1;
        }
        self.steered_stream_intervals += rep.steered_streams as u64;
        self.plan_lost_streams += rep.lost_streams as u64;
        self.cache_served_stream_intervals += rep.cache_served_streams as u64;
        // Consumed before the empty-interval early return below: a tick
        // can reserve drained shares or park streams without issuing
        // any reads of its own.
        self.deferred_reserved_streams += rep.deferred_reserved.len() as u64;
        for title in &rep.cache_rejected_titles {
            *self
                .cache_rejects_by_title
                .entry(title.clone())
                .or_insert(0) += 1;
        }
        self.parked_streams += rep.parked_streams.len() as u64;
        if rep.reqs.is_empty() {
            return;
        }
        let wall_idx = self.walls.len();
        self.walls.push(IntervalWall {
            index: rep.index,
            issued_at: now,
            total_reqs: rep.reqs.len(),
            remaining: rep.reqs.len(),
            last_done: now,
            service_sum: 0.0,
            calc_max: rep
                .per_volume_calculated
                .iter()
                .fold(0.0f64, |a, &c| if c > a { c } else { a }),
            calc_sum: rep.per_volume_calculated.iter().sum(),
            volumes: 0,
        });
        for r in &rep.reqs {
            self.read_wall.insert(r.id.0, wall_idx);
        }
        let mut start = 0;
        while start < rep.reqs.len() {
            let vol = rep.reqs[start].volume;
            let mut end = start;
            while end < rep.reqs.len() && rep.reqs[end].volume == vol {
                end += 1;
            }
            let calculated = rep
                .per_volume_calculated
                .get(vol.index())
                .copied()
                .unwrap_or(rep.calculated_io_time);
            let idx = self.intervals.len();
            self.intervals.push(IntervalIo {
                index: rep.index,
                volume: vol.0,
                issued_at: now,
                calculated,
                total_reqs: end - start,
                remaining: end - start,
                last_done: now,
                service_sum: 0.0,
            });
            for r in &rep.reqs[start..end] {
                self.read_interval.insert(r.id.0, idx);
            }
            self.walls[wall_idx].volumes += 1;
            start = end;
        }
    }

    /// Records the completion of a CRAS read.
    pub fn on_cras_read_done(&mut self, rid: ReadId, done: &Completed<DiskTag>) {
        self.cras_read_bytes += done.req.bytes();
        self.cras_read_busy += done.breakdown.total();
        if let Some(&idx) = self.read_interval.get(&rid.0) {
            let rec = &mut self.intervals[idx];
            rec.remaining -= 1;
            if done.finished_at > rec.last_done {
                rec.last_done = done.finished_at;
            }
            rec.service_sum += done.breakdown.total().as_secs_f64();
            if rec.remaining == 0 {
                self.read_interval.retain(|_, v| *v != idx);
            }
        }
        if let Some(&idx) = self.read_wall.get(&rid.0) {
            let w = &mut self.walls[idx];
            w.remaining -= 1;
            if done.finished_at > w.last_done {
                w.last_done = done.finished_at;
            }
            w.service_sum += done.breakdown.total().as_secs_f64();
            if w.remaining == 0 {
                self.read_wall.retain(|_, v| *v != idx);
            }
        }
    }

    /// Records a CRAS read that came back failed and was replaced by
    /// `retries` reads against a surviving replica (empty if the data is
    /// lost). The interval record inherits the retries so its actual I/O
    /// time still converges; the error's service time (the fast-error
    /// command overhead) is charged to the interval like any other
    /// service time.
    pub fn on_cras_read_failed(
        &mut self,
        rid: ReadId,
        done: &Completed<DiskTag>,
        retries: &[ReadId],
    ) {
        if retries.is_empty() {
            self.lost_reads += 1;
        } else {
            self.degraded_reads += 1;
        }
        if let Some(idx) = self.read_interval.remove(&rid.0) {
            let rec = &mut self.intervals[idx];
            rec.service_sum += done.breakdown.total().as_secs_f64();
            if done.finished_at > rec.last_done {
                rec.last_done = done.finished_at;
            }
            rec.remaining -= 1;
            rec.remaining += retries.len();
            rec.total_reqs += retries.len();
            for r in retries {
                self.read_interval.insert(r.0, idx);
            }
            if rec.remaining == 0 {
                self.read_interval.retain(|_, v| *v != idx);
            }
        }
        if let Some(idx) = self.read_wall.remove(&rid.0) {
            let w = &mut self.walls[idx];
            w.service_sum += done.breakdown.total().as_secs_f64();
            if done.finished_at > w.last_done {
                w.last_done = done.finished_at;
            }
            w.remaining -= 1;
            w.remaining += retries.len();
            w.total_reqs += retries.len();
            for r in retries {
                self.read_wall.insert(r.0, idx);
            }
            if w.remaining == 0 {
                self.read_wall.retain(|_, v| *v != idx);
            }
        }
    }

    /// Average spare fraction of the interval over the last `window`
    /// completed interval walls: `1 − span/interval` per wall, clamped
    /// to `[0, 1]`, averaged. 1.0 with no completed walls — an idle
    /// system has all its slack. The load-aware rebuild pacing scales
    /// its rate cap by this.
    pub fn recent_slack(&self, interval: Duration, window: usize) -> f64 {
        let t = interval.as_secs_f64();
        if t <= 0.0 || window == 0 {
            return 1.0;
        }
        let spans: Vec<f64> = self
            .walls
            .iter()
            .rev()
            .filter_map(IntervalWall::span)
            .take(window)
            .collect();
        if spans.is_empty() {
            return 1.0;
        }
        spans
            .iter()
            .map(|s| (1.0 - s / t).clamp(0.0, 1.0))
            .sum::<f64>()
            / spans.len() as f64
    }

    /// Per-volume recent completion lag: for each of `volumes` volumes,
    /// the mean over its last `window` *completed* [`IntervalIo`]
    /// records of `span − calculated`, clamped at zero (seconds). A
    /// volume with no completed records — or one that has been keeping
    /// up — reports 0.0. This is the feedback half of the read-steering
    /// load signal: a spindle whose intervals keep finishing behind
    /// their admission bound is carrying load the planner cannot see
    /// (background I/O, rebuild traffic) and is worth bypassing.
    pub fn recent_volume_lag(&self, volumes: usize, window: usize) -> Vec<f64> {
        let mut sums = vec![0.0f64; volumes];
        let mut counts = vec![0usize; volumes];
        if window == 0 {
            return sums;
        }
        for rec in self.intervals.iter().rev() {
            let v = rec.volume as usize;
            if v >= volumes || counts[v] >= window {
                continue;
            }
            let Some(span) = rec.span() else {
                continue;
            };
            sums[v] += (span - rec.calculated).max(0.0);
            counts[v] += 1;
            if counts.iter().all(|&c| c >= window) {
                break;
            }
        }
        for (s, c) in sums.iter_mut().zip(&counts) {
            if *c > 0 {
                *s /= *c as f64;
            }
        }
        sums
    }

    /// Rebuild copy time, once the rebuild has finished.
    pub fn rebuild_time(&self) -> Option<Duration> {
        match (self.rebuild_started_at, self.rebuild_finished_at) {
            (Some(s), Some(f)) => Some(f.since(s)),
            _ => None,
        }
    }

    /// All completed per-interval records.
    pub fn intervals(&self) -> &[IntervalIo] {
        &self.intervals
    }

    /// Cross-volume wall records, one per non-empty interval.
    pub fn interval_walls(&self) -> &[IntervalWall] {
        &self.walls
    }

    /// Accuracy ratios for completed intervals, skipping the first
    /// `warmup` of them.
    pub fn admission_ratios(&self, warmup: usize) -> Vec<f64> {
        self.intervals
            .iter()
            .skip(warmup)
            .filter_map(IntervalIo::ratio)
            .collect()
    }

    /// Average and maximum accuracy ratio over completed intervals.
    pub fn ratio_summary(&self, warmup: usize) -> (f64, f64) {
        let rs = self.admission_ratios(warmup);
        if rs.is_empty() {
            return (0.0, 0.0);
        }
        let avg = rs.iter().sum::<f64>() / rs.len() as f64;
        let max = rs.iter().copied().fold(0.0, f64::max);
        (avg, max)
    }

    /// Serializes the deterministic portion of the metrics to a canonical
    /// JSON string: fixed key order, instants as integer nanoseconds,
    /// floats via Rust's shortest round-trip formatting (`{:?}`). Two
    /// identically-behaving runs produce byte-identical output, so the
    /// replay-determinism and interleaving-fuzzer tests compare this
    /// string directly. The internal read-id lookup maps (iteration-order
    /// dependent and empty at quiescence anyway) are deliberately
    /// excluded.
    pub fn canonical_json(&self) -> String {
        fn f(x: f64) -> String {
            format!("{x:?}")
        }
        fn opt_instant(t: Option<Instant>) -> String {
            match t {
                Some(t) => t.as_nanos().to_string(),
                None => "null".to_string(),
            }
        }
        let mut out = String::new();
        out.push('{');
        out.push_str("\"intervals\":[");
        for (i, r) in self.intervals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"index\":{},\"volume\":{},\"issued_at\":{},\"calculated\":{},\
                 \"total_reqs\":{},\"remaining\":{},\"last_done\":{},\"service_sum\":{}}}",
                r.index,
                r.volume,
                r.issued_at.as_nanos(),
                f(r.calculated),
                r.total_reqs,
                r.remaining,
                r.last_done.as_nanos(),
                f(r.service_sum),
            ));
        }
        out.push_str("],\"walls\":[");
        for (i, w) in self.walls.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"index\":{},\"issued_at\":{},\"total_reqs\":{},\"remaining\":{},\
                 \"last_done\":{},\"service_sum\":{},\"calc_max\":{},\"calc_sum\":{},\
                 \"volumes\":{}}}",
                w.index,
                w.issued_at.as_nanos(),
                w.total_reqs,
                w.remaining,
                w.last_done.as_nanos(),
                f(w.service_sum),
                f(w.calc_max),
                f(w.calc_sum),
                w.volumes,
            ));
        }
        out.push_str(&format!(
            "],\"cras_read_bytes\":{},\"cras_read_busy_ns\":{},\"cras_write_bytes\":{},\
             \"overruns\":{},\"degraded_reads\":{},\"lost_reads\":{},\
             \"degraded_intervals\":{},\"steered_intervals\":{},\
             \"steered_stream_intervals\":{},\"plan_lost_streams\":{},\
             \"volume_failed_at\":{},\"rebuild_started_at\":{},\
             \"rebuild_finished_at\":{},\"rebuild_bytes\":{},\
             \"cache_served_stream_intervals\":{},\"deferred_reserved_streams\":{},\
             \"parked_streams\":{},\"resumed_streams\":{},\"net_parks\":{}",
            self.cras_read_bytes,
            self.cras_read_busy.as_nanos(),
            self.cras_write_bytes,
            self.overruns,
            self.degraded_reads,
            self.lost_reads,
            self.degraded_intervals,
            self.steered_intervals,
            self.steered_stream_intervals,
            self.plan_lost_streams,
            opt_instant(self.volume_failed_at),
            opt_instant(self.rebuild_started_at),
            opt_instant(self.rebuild_finished_at),
            self.rebuild_bytes,
            self.cache_served_stream_intervals,
            self.deferred_reserved_streams,
            self.parked_streams,
            self.resumed_streams,
            self.net_parks,
        ));
        out.push_str(",\"cache_rejects_by_title\":{");
        for (i, (title, n)) in self.cache_rejects_by_title.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{title:?}:{n}"));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cras_core::{ReadReq, StreamId};
    use cras_disk::{DiskRequest, ServiceBreakdown, VolumeId};

    fn report(reads: &[u64], calc: f64) -> IntervalReport {
        IntervalReport {
            index: 0,
            reqs: reads
                .iter()
                .map(|&i| ReadReq {
                    id: ReadId(i),
                    stream: StreamId(0),
                    volume: VolumeId(0),
                    block: i * 100,
                    nblocks: 8,
                })
                .collect(),
            posted_chunks: 0,
            overran: false,
            calculated_io_time: calc,
            per_volume_calculated: vec![calc],
            degraded_streams: 0,
            steered_streams: 0,
            lost_streams: 0,
            cache_served_streams: 0,
            deferred_reserved: Vec::new(),
            cache_rejected_titles: Vec::new(),
            parked_streams: Vec::new(),
        }
    }

    fn completed(at_ms: u64, service_ms: u64) -> Completed<DiskTag> {
        Completed {
            req: DiskRequest::rt_read(0, 8, DiskTag::Raw(0)),
            submitted_at: Instant::ZERO,
            started_at: Instant::ZERO,
            finished_at: Instant::ZERO + Duration::from_millis(at_ms),
            breakdown: ServiceBreakdown {
                command: Duration::from_millis(service_ms),
                ..ServiceBreakdown::default()
            },
            failed: false,
        }
    }

    #[test]
    fn ratio_computed_when_all_done() {
        let mut m = Metrics::new();
        m.on_interval(&report(&[1, 2], 0.1), Instant::ZERO);
        m.on_cras_read_done(ReadId(1), &completed(20, 10));
        assert!(m.admission_ratios(0).is_empty(), "still outstanding");
        m.on_cras_read_done(ReadId(2), &completed(50, 10));
        let rs = m.admission_ratios(0);
        assert_eq!(rs.len(), 1);
        // Actual = 10 + 10 ms of service, calculated = 100 ms => 0.2.
        assert!((rs[0] - 0.2).abs() < 1e-9);
        // The wall-clock span is 50 ms.
        assert!((m.intervals()[0].span().unwrap() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn empty_interval_not_recorded() {
        let mut m = Metrics::new();
        m.on_interval(&report(&[], 0.1), Instant::ZERO);
        assert!(m.intervals().is_empty());
    }

    #[test]
    fn summary_avg_and_max() {
        let mut m = Metrics::new();
        m.on_interval(&report(&[1], 0.1), Instant::ZERO);
        m.on_cras_read_done(ReadId(1), &completed(20, 5));
        m.on_interval(&report(&[2], 0.1), Instant::ZERO);
        m.on_cras_read_done(ReadId(2), &completed(60, 8));
        let (avg, max) = m.ratio_summary(0);
        assert!((avg - 0.065).abs() < 1e-9, "avg {avg}");
        assert!((max - 0.08).abs() < 1e-9, "max {max}");
        // Warmup skipping.
        let (avg1, _) = m.ratio_summary(1);
        assert!((avg1 - 0.08).abs() < 1e-9);
    }

    #[test]
    fn multi_volume_interval_splits_records() {
        let mut m = Metrics::new();
        let rep = IntervalReport {
            index: 3,
            reqs: vec![
                ReadReq {
                    id: ReadId(1),
                    stream: StreamId(0),
                    volume: VolumeId(0),
                    block: 100,
                    nblocks: 8,
                },
                ReadReq {
                    id: ReadId(2),
                    stream: StreamId(1),
                    volume: VolumeId(1),
                    block: 50,
                    nblocks: 8,
                },
                ReadReq {
                    id: ReadId(3),
                    stream: StreamId(2),
                    volume: VolumeId(1),
                    block: 90,
                    nblocks: 8,
                },
            ],
            posted_chunks: 0,
            overran: false,
            calculated_io_time: 0.2,
            per_volume_calculated: vec![0.1, 0.2],
            degraded_streams: 0,
            steered_streams: 0,
            lost_streams: 0,
            cache_served_streams: 0,
            deferred_reserved: Vec::new(),
            cache_rejected_titles: Vec::new(),
            parked_streams: Vec::new(),
        };
        m.on_interval(&rep, Instant::ZERO);
        assert_eq!(m.intervals().len(), 2, "one record per volume");
        assert_eq!(m.intervals()[0].volume, 0);
        assert_eq!(m.intervals()[0].total_reqs, 1);
        assert!((m.intervals()[0].calculated - 0.1).abs() < 1e-12);
        assert_eq!(m.intervals()[1].volume, 1);
        assert_eq!(m.intervals()[1].total_reqs, 2);
        assert!((m.intervals()[1].calculated - 0.2).abs() < 1e-12);
        // Completions land on their own volume's record.
        m.on_cras_read_done(ReadId(2), &completed(10, 4));
        m.on_cras_read_done(ReadId(3), &completed(30, 4));
        assert_eq!(m.intervals()[1].remaining, 0);
        assert_eq!(m.intervals()[0].remaining, 1);
        let rs = m.admission_ratios(0);
        assert_eq!(rs.len(), 1, "only volume 1 is complete");
        assert!((rs[0] - 0.04).abs() < 1e-9, "ratio {}", rs[0]);
    }

    #[test]
    fn wall_tracks_the_last_completion_across_volumes() {
        let mut m = Metrics::new();
        let rep = IntervalReport {
            index: 3,
            reqs: vec![
                ReadReq {
                    id: ReadId(1),
                    stream: StreamId(0),
                    volume: VolumeId(0),
                    block: 100,
                    nblocks: 8,
                },
                ReadReq {
                    id: ReadId(2),
                    stream: StreamId(1),
                    volume: VolumeId(1),
                    block: 50,
                    nblocks: 8,
                },
            ],
            posted_chunks: 0,
            overran: false,
            calculated_io_time: 0.2,
            per_volume_calculated: vec![0.1, 0.2],
            degraded_streams: 0,
            steered_streams: 0,
            lost_streams: 0,
            cache_served_streams: 0,
            deferred_reserved: Vec::new(),
            cache_rejected_titles: Vec::new(),
            parked_streams: Vec::new(),
        };
        m.on_interval(&rep, Instant::ZERO);
        assert_eq!(m.interval_walls().len(), 1, "one wall per interval");
        let w = &m.interval_walls()[0];
        assert_eq!(w.volumes, 2);
        assert!((w.calc_max - 0.2).abs() < 1e-12);
        assert!((w.calc_sum - 0.3).abs() < 1e-12);
        assert!(w.span().is_none(), "reads outstanding");
        m.on_cras_read_done(ReadId(2), &completed(10, 4));
        assert!(m.interval_walls()[0].span().is_none());
        m.on_cras_read_done(ReadId(1), &completed(40, 4));
        let w = &m.interval_walls()[0];
        // Span runs to the last completion on any volume: 40 ms.
        assert!((w.span().unwrap() - 0.04).abs() < 1e-9);
        // 8 ms of service over a 40 ms span.
        assert!((w.overlap().unwrap() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn wall_inherits_retry_slots_from_failed_reads() {
        let mut m = Metrics::new();
        m.on_interval(&report(&[1], 0.1), Instant::ZERO);
        let mut err = completed(5, 1);
        err.failed = true;
        m.on_cras_read_failed(ReadId(1), &err, &[ReadId(9)]);
        assert!(m.interval_walls()[0].span().is_none(), "retry outstanding");
        m.on_cras_read_done(ReadId(9), &completed(20, 10));
        let w = &m.interval_walls()[0];
        assert_eq!(w.total_reqs, 2);
        assert!((w.span().unwrap() - 0.02).abs() < 1e-9);
    }

    #[test]
    fn failed_read_hands_its_interval_slot_to_the_retries() {
        let mut m = Metrics::new();
        m.on_interval(&report(&[1], 0.1), Instant::ZERO);
        let mut err = completed(5, 1);
        err.failed = true;
        m.on_cras_read_failed(ReadId(1), &err, &[ReadId(9)]);
        assert_eq!(m.degraded_reads, 1);
        assert!(m.admission_ratios(0).is_empty(), "retry still outstanding");
        m.on_cras_read_done(ReadId(9), &completed(20, 10));
        let rs = m.admission_ratios(0);
        assert_eq!(rs.len(), 1);
        // 1 ms fast error + 10 ms retry service over 100 ms calculated.
        assert!((rs[0] - 0.11).abs() < 1e-9, "ratio {}", rs[0]);
    }

    #[test]
    fn lost_read_completes_the_interval_record() {
        let mut m = Metrics::new();
        m.on_interval(&report(&[1], 0.1), Instant::ZERO);
        let mut err = completed(5, 1);
        err.failed = true;
        m.on_cras_read_failed(ReadId(1), &err, &[]);
        assert_eq!(m.lost_reads, 1);
        assert_eq!(m.intervals()[0].remaining, 0);
        assert_eq!(m.admission_ratios(0).len(), 1);
    }

    #[test]
    fn recent_slack_tracks_interval_spans() {
        let mut m = Metrics::new();
        let t = Duration::from_millis(100);
        assert_eq!(m.recent_slack(t, 8), 1.0, "idle system has all its slack");
        // One completed wall spanning 40 ms of a 100 ms interval.
        m.on_interval(&report(&[1], 0.1), Instant::ZERO);
        m.on_cras_read_done(ReadId(1), &completed(40, 10));
        assert!((m.recent_slack(t, 8) - 0.6).abs() < 1e-9);
        // A second wall using the whole interval drags the average down;
        // an over-long span clamps at zero slack rather than going
        // negative.
        m.on_interval(&report(&[2], 0.1), Instant::ZERO);
        m.on_cras_read_done(ReadId(2), &completed(150, 10));
        assert!((m.recent_slack(t, 8) - 0.3).abs() < 1e-9);
        // Window 1 sees only the latest wall.
        assert!(m.recent_slack(t, 1).abs() < 1e-9);
    }

    #[test]
    fn canonical_json_is_stable_and_reflects_state() {
        let mut m = Metrics::new();
        m.on_interval(&report(&[1], 0.1), Instant::ZERO);
        m.on_cras_read_done(ReadId(1), &completed(20, 10));
        m.volume_failed_at = Some(Instant::from_secs_f64(2.5));
        let a = m.canonical_json();
        let b = m.canonical_json();
        assert_eq!(a, b, "serialization is a pure function of state");
        assert!(a.starts_with('{') && a.ends_with('}'));
        assert!(a.contains("\"volume_failed_at\":2500000000"));
        assert!(a.contains("\"rebuild_started_at\":null"));
        assert!(a.contains("\"service_sum\":0.01"));
        // A state change changes the bytes.
        m.overruns += 1;
        assert_ne!(m.canonical_json(), a);
    }

    #[test]
    fn bytes_and_busy_accumulate() {
        let mut m = Metrics::new();
        m.on_interval(&report(&[7], 0.1), Instant::ZERO);
        m.on_cras_read_done(ReadId(7), &completed(10, 3));
        assert_eq!(m.cras_read_bytes, 8 * 512);
        assert_eq!(m.cras_read_busy, Duration::from_millis(3));
    }
}
