//! Background disk load: the `cat` programs.
//!
//! "We executed two `cat` programs which read movie files with the
//! benchmark program. The priority of the benchmark program is higher
//! than the priorities of the `cat` programs." Each reader streams a file
//! through the Unix server in `read_size` chunks as fast as it is served,
//! wrapping at end of file — a continuous source of non-real-time disk
//! traffic whose largest transfer defines the admission test's `B_other`.

use cras_sim::{Duration, Instant};
use cras_ufs::Ino;

use crate::tags::ClientId;

/// One background sequential reader.
#[derive(Clone, Debug)]
pub struct BgReader {
    /// Client id.
    pub id: ClientId,
    /// File being read.
    pub ino: Ino,
    /// Volume the file lives on.
    pub vol: u32,
    /// File size in bytes.
    pub size: u64,
    /// Current read position.
    pub pos: u64,
    /// Bytes per read call (`B_other` is its ceiling).
    pub read_size: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Number of completed read calls.
    pub reads: u64,
    /// Whether a read is in flight (through the Unix server).
    pub in_flight: bool,
    /// Time the load started (for rate accounting).
    pub started_at: Instant,
    /// Pause between read calls (zero = read flat out, like `cat`;
    /// non-zero throttles the load to a target rate).
    pub pause: Duration,
}

impl BgReader {
    /// Creates a reader positioned at the start of the file.
    ///
    /// # Panics
    ///
    /// Panics if the file is empty or the read size is zero.
    pub fn new(id: ClientId, ino: Ino, size: u64, read_size: u64) -> BgReader {
        assert!(size > 0, "empty background file");
        assert!(read_size > 0, "zero read size");
        BgReader {
            id,
            ino,
            vol: 0,
            size,
            pos: 0,
            read_size,
            bytes_read: 0,
            reads: 0,
            in_flight: false,
            started_at: Instant::ZERO,
            pause: Duration::ZERO,
        }
    }

    /// The byte range of the next read call: `(offset, len)`.
    pub fn next_range(&self) -> (u64, u64) {
        let len = self.read_size.min(self.size - self.pos);
        (self.pos, len)
    }

    /// Records a completed read of `len` bytes, advancing (and wrapping)
    /// the position.
    pub fn complete(&mut self, len: u64) {
        self.in_flight = false;
        self.bytes_read += len;
        self.reads += 1;
        self.pos += len;
        if self.pos >= self.size {
            self.pos = 0;
        }
    }

    /// Achieved read rate in bytes/second since `started_at`.
    pub fn rate(&self, now: Instant) -> f64 {
        let w = now.saturating_since(self.started_at).as_secs_f64();
        if w == 0.0 {
            0.0
        } else {
            self.bytes_read as f64 / w
        }
    }
}

/// A background writer: an editor appending to a file at a steady rate
/// through the delayed-write path (allocation + dirty blocks in memory;
/// the syncer flushes to disk).
#[derive(Clone, Debug)]
pub struct BgWriter {
    /// Client id.
    pub id: ClientId,
    /// File being written.
    pub ino: Ino,
    /// Volume the file lives on.
    pub vol: u32,
    /// Bytes per write call.
    pub write_size: u64,
    /// Time between write calls.
    pub period: Duration,
    /// Total bytes written (in memory).
    pub bytes_written: u64,
    /// Write calls completed.
    pub writes: u64,
}

impl BgWriter {
    /// Creates a writer.
    ///
    /// # Panics
    ///
    /// Panics on a zero write size or period.
    pub fn new(id: ClientId, ino: Ino, write_size: u64, period: Duration) -> BgWriter {
        assert!(write_size > 0, "zero write size");
        assert!(!period.is_zero(), "zero write period");
        BgWriter {
            id,
            ino,
            vol: 0,
            write_size,
            period,
            bytes_written: 0,
            writes: 0,
        }
    }

    /// Records one completed write call.
    pub fn complete(&mut self) {
        self.bytes_written += self.write_size;
        self.writes += 1;
    }

    /// The writer's average rate in bytes/second.
    pub fn rate(&self) -> f64 {
        self.write_size as f64 / self.period.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_walk_and_wrap() {
        let mut r = BgReader::new(ClientId(0), 0, 100, 40);
        assert_eq!(r.next_range(), (0, 40));
        r.complete(40);
        assert_eq!(r.next_range(), (40, 40));
        r.complete(40);
        // Tail is short.
        assert_eq!(r.next_range(), (80, 20));
        r.complete(20);
        // Wrapped.
        assert_eq!(r.next_range(), (0, 40));
        assert_eq!(r.bytes_read, 100);
        assert_eq!(r.reads, 3);
    }

    #[test]
    fn rate_accounting() {
        let mut r = BgReader::new(ClientId(0), 0, 1000, 100);
        r.started_at = Instant::ZERO;
        r.complete(100);
        r.complete(100);
        let rate = r.rate(Instant::from_secs_f64(2.0));
        assert!((rate - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty background file")]
    fn empty_file_panics() {
        BgReader::new(ClientId(0), 0, 0, 100);
    }

    #[test]
    fn writer_accounting() {
        let mut w = BgWriter::new(ClientId(1), 3, 64 * 1024, Duration::from_millis(100));
        w.complete();
        w.complete();
        assert_eq!(w.bytes_written, 128 * 1024);
        assert_eq!(w.writes, 2);
        assert!((w.rate() - 655_360.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "zero write period")]
    fn zero_period_panics() {
        BgWriter::new(ClientId(1), 3, 64, Duration::ZERO);
    }
}
