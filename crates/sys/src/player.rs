//! Player applications: the QtPlay-like clients that fetch frames on
//! their own schedule and measure per-frame delay.
//!
//! A player consumes frame `k` at `playback_start + timestamp(k)`; the
//! measured delay of a frame is how long past that point the frame was
//! actually decoded and "displayed" (Figures 7 and 10 plot this over
//! time). A `stride` of 3 consumes every third frame — the paper's
//! dynamic-QOS scenario of playing a 30 fps stream at 10 fps without
//! telling the server.

use cras_core::StreamId;
use cras_media::ChunkTable;
use cras_rtmach::ThreadId;
use cras_sim::stats::TimeSeries;
use cras_sim::{Duration, Instant};
use cras_ufs::Ino;

use crate::tags::ClientId;

/// How the player reaches its media data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlayerMode {
    /// Through CRAS: `crs_get` from the time-driven buffer.
    Cras {
        /// The open CRAS stream.
        stream: StreamId,
    },
    /// Through the Unix file system: a synchronous read per frame.
    Ufs {
        /// The movie file.
        ino: Ino,
        /// Volume the file lives on.
        vol: u32,
    },
}

/// Player measurement counters.
#[derive(Clone, Debug, Default)]
pub struct PlayerStats {
    /// Frames decoded and displayed.
    pub frames_shown: u64,
    /// Frames abandoned because their time had passed before data arrived.
    pub frames_dropped: u64,
    /// Media bytes consumed.
    pub bytes_consumed: u64,
    /// Buffer polls that found no data yet.
    pub polls: u64,
    /// `(time, delay_seconds)` per displayed frame.
    pub delays: TimeSeries,
}

/// One player application.
#[derive(Clone, Debug)]
pub struct Player {
    /// Client id.
    pub id: ClientId,
    /// Data path.
    pub mode: PlayerMode,
    /// The movie's chunk table (frame schedule).
    pub table: ChunkTable,
    /// Real time of media time zero.
    pub playback_start: Instant,
    /// Next frame to consume.
    pub next_frame: u32,
    /// Consume every `stride`-th frame (1 = all frames).
    pub stride: u32,
    /// Real seconds per media second of the presentation schedule
    /// (1.0 = normal speed, 0.5 = fast-forward at 2x).
    pub time_scale: f64,
    /// The player's CPU thread.
    pub tid: ThreadId,
    /// Polls spent on the current frame (drop safeguard).
    pub polls_this_frame: u32,
    /// Whether playback has finished.
    pub done: bool,
    /// Whether the viewer is paused (rebuffering) because its stream
    /// was parked by a failed re-admission. A paused player absorbs
    /// queued frame/poll events without rescheduling; resuming the
    /// stream schedules a fresh frame event.
    pub paused: bool,
    /// Measurements.
    pub stats: PlayerStats,
}

impl Player {
    /// Creates a player; playback does not begin until
    /// [`Player::playback_start`] is set by the system.
    pub fn new(
        id: ClientId,
        mode: PlayerMode,
        table: ChunkTable,
        stride: u32,
        tid: ThreadId,
    ) -> Player {
        assert!(stride >= 1, "zero stride");
        Player {
            id,
            mode,
            table,
            playback_start: Instant::ZERO,
            next_frame: 0,
            stride,
            time_scale: 1.0,
            tid,
            polls_this_frame: 0,
            done: false,
            paused: false,
            stats: PlayerStats::default(),
        }
    }

    /// Absolute due time of frame `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn due(&self, k: u32) -> Instant {
        let ts = self.table.get(k).expect("frame in range").timestamp;
        self.playback_start + ts.mul_f64(self.time_scale)
    }

    /// Records a displayed frame and advances; returns the next frame's
    /// due time, or `None` at end of stream.
    pub fn frame_shown(&mut self, k: u32, now: Instant) -> Option<Instant> {
        let chunk = *self.table.get(k).expect("frame in range");
        let delay = now.saturating_since(self.due(k));
        self.stats.frames_shown += 1;
        self.stats.bytes_consumed += chunk.size as u64;
        self.stats.delays.push(now, delay.as_secs_f64());
        self.advance(now)
    }

    /// Records a dropped frame and advances; returns the next frame's due
    /// time, or `None` at end of stream.
    pub fn frame_dropped(&mut self, now: Instant) -> Option<Instant> {
        self.stats.frames_dropped += 1;
        self.advance(now)
    }

    fn advance(&mut self, _now: Instant) -> Option<Instant> {
        self.polls_this_frame = 0;
        let next = self.next_frame + self.stride;
        if (next as usize) < self.table.len() {
            self.next_frame = next;
            Some(self.due(next))
        } else {
            self.done = true;
            None
        }
    }

    /// Mean and maximum displayed-frame delay (seconds).
    pub fn delay_summary(&self) -> (f64, f64) {
        let s = self.stats.delays.summary();
        (s.mean(), s.max())
    }

    /// Fraction of consumed frame slots that were actually shown.
    pub fn goodput(&self) -> f64 {
        let total = self.stats.frames_shown + self.stats.frames_dropped;
        if total == 0 {
            0.0
        } else {
            self.stats.frames_shown as f64 / total as f64
        }
    }

    /// Average consumption rate over a window (bytes/second).
    pub fn throughput(&self, window: Duration) -> f64 {
        if window.is_zero() {
            0.0
        } else {
            self.stats.bytes_consumed as f64 / window.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cras_media::StreamProfile;
    use cras_sim::Rng;

    fn table() -> ChunkTable {
        let mut rng = Rng::new(5);
        cras_media::generate_chunks(&StreamProfile::mpeg1(), 2.0, &mut rng)
    }

    fn player(stride: u32) -> Player {
        Player::new(
            ClientId(0),
            PlayerMode::Ufs { ino: 0, vol: 0 },
            table(),
            stride,
            ThreadId::from_raw(0),
        )
    }

    #[test]
    fn due_times_follow_schedule() {
        let mut p = player(1);
        p.playback_start = Instant::from_secs_f64(10.0);
        assert_eq!(p.due(0), Instant::from_secs_f64(10.0));
        let d30 = p.due(30); // Frame 30 of a 30 fps stream = +1 s.
        assert!((d30.as_secs_f64() - 11.0).abs() < 1e-6);
    }

    #[test]
    fn frame_shown_records_delay_and_advances() {
        let mut p = player(1);
        p.playback_start = Instant::ZERO;
        let next = p.frame_shown(0, Instant::from_secs_f64(0.010));
        assert!(next.is_some());
        assert_eq!(p.next_frame, 1);
        assert_eq!(p.stats.frames_shown, 1);
        let (mean, max) = p.delay_summary();
        assert!((mean - 0.010).abs() < 1e-9);
        assert_eq!(mean, max);
    }

    #[test]
    fn stride_skips_frames() {
        let mut p = player(3);
        p.playback_start = Instant::ZERO;
        p.frame_shown(0, Instant::ZERO);
        assert_eq!(p.next_frame, 3);
        p.frame_shown(3, Instant::from_secs_f64(0.2));
        assert_eq!(p.next_frame, 6);
    }

    #[test]
    fn end_of_stream_sets_done() {
        let mut p = player(1);
        p.playback_start = Instant::ZERO;
        let last = (p.table.len() - 1) as u32;
        p.next_frame = last;
        let next = p.frame_shown(last, Instant::from_secs_f64(2.0));
        assert!(next.is_none());
        assert!(p.done);
    }

    #[test]
    fn goodput_counts_drops() {
        let mut p = player(1);
        p.playback_start = Instant::ZERO;
        p.frame_shown(0, Instant::ZERO);
        p.frame_dropped(Instant::from_secs_f64(0.1));
        assert!((p.goodput() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn time_scale_compresses_schedule() {
        let mut p = player(1);
        p.playback_start = Instant::ZERO;
        p.time_scale = 0.5;
        // Frame 30 (media 1 s) is due at 0.5 s in fast-forward.
        let d = p.due(30);
        assert!((d.as_secs_f64() - 0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "zero stride")]
    fn zero_stride_panics() {
        player(0);
    }
}
