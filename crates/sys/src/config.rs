//! System-level configuration: scheduling mode, CPU cost model, and the
//! pieces assembled from the component crates.

use cras_core::{DeployMode, ServerConfig};
use cras_sim::Duration;

/// Which CPU scheduling policy the whole workload runs under (Figure 10).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedMode {
    /// Real-Time Mach fixed priorities: CRAS threads above players above
    /// background work above hogs.
    #[default]
    FixedPriority,
    /// Round robin with the given quantum for *every* thread — the
    /// time-sharing baseline of Figure 10.
    RoundRobin {
        /// Time slice.
        quantum: Duration,
    },
}

/// How each interval's reads are issued to the volume set.
///
/// The interval scheduler plans one batch of reads per interval, already
/// partitioned per volume and in each spindle's sweep order. With
/// several spindles the batches can run concurrently — the interval
/// then completes when the *slowest* spindle finishes, so measured
/// interval time tracks `max(per-volume I/O time)`, which is exactly
/// the bound the per-volume admission test enforces. The serial mode
/// chains the volumes one after another (effectively a single logical
/// spindle) and exists as the measured baseline: it makes interval time
/// track the *sum* over volumes instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum IssueMode {
    /// Issue every volume's batch at tick time; each spindle drains its
    /// own real-time queue concurrently (the default, and what the
    /// admission bound assumes).
    #[default]
    Pipelined,
    /// Issue one volume's batch at a time, starting the next volume only
    /// when the previous volume's batch fully completes. Baseline for
    /// measuring cross-volume overlap.
    SerialVolumes,
}

/// CPU cost model for the simulated software (representative P5-100
/// figures; only their order of magnitude matters to the results, and the
/// Figure 10 contrast is robust to them).
#[derive(Clone, Copy, Debug)]
pub struct CpuCosts {
    /// CRAS request-scheduler fixed cost per interval pass.
    pub cras_tick_base: Duration,
    /// CRAS request-scheduler marginal cost per active stream.
    pub cras_tick_per_stream: Duration,
    /// Player per-frame client cost (fetch + consume). The paper's
    /// multi-stream benchmarks are readers, not software decoders — a
    /// P5-100 could not decode 20 MPEG streams; keep this the cost of
    /// consuming a frame from shared memory.
    pub decode: Duration,
    /// Unix-server CPU cost per file-system request.
    pub ufs_serve: Duration,
    /// Length of one CPU-hog busy burst (hogs re-arm forever).
    pub hog_burst: Duration,
    /// Minimum cycle time of a background reader: the syscall + user-copy
    /// cost of one 64 KB `read()` on the simulated hardware. Keeps a
    /// fully-cached `cat` from spinning in zero simulated time.
    pub bg_cycle: Duration,
}

impl Default for CpuCosts {
    fn default() -> Self {
        CpuCosts {
            cras_tick_base: Duration::from_micros(300),
            cras_tick_per_stream: Duration::from_micros(40),
            decode: Duration::from_micros(500),
            ufs_serve: Duration::from_micros(400),
            hog_burst: Duration::from_millis(50),
            bg_cycle: Duration::from_millis(1),
        }
    }
}

/// Full system configuration.
#[derive(Clone, Copy, Debug)]
pub struct SysConfig {
    /// CRAS server configuration.
    pub server: ServerConfig,
    /// CPU scheduling mode.
    pub sched: SchedMode,
    /// CPU cost model.
    pub costs: CpuCosts,
    /// Deployment mode (Figure 5) for control-call overheads.
    pub deploy: DeployMode,
    /// RNG seed for the whole system.
    pub seed: u64,
    /// Number of CPU-hog threads.
    pub hogs: u32,
    /// Poll interval when a player finds its frame unbuffered.
    pub poll: Duration,
    /// If false, `open` failures from the admission test are overridden —
    /// the Figure 6 throughput sweep measures *achieved* throughput past
    /// the admitted load.
    pub enforce_admission: bool,
    /// Probability that a disk operation takes a transient retry stall
    /// (fault injection; 0 disables).
    pub disk_fault_prob: f64,
    /// Stall added to a faulted disk operation.
    pub disk_fault_penalty: Duration,
    /// Rebuild copy rate in bytes per second. The rebuild manager paces
    /// its normal-priority copy chunks so their long-run throughput never
    /// exceeds this; the real-time queue's strict priority already keeps
    /// admitted streams safe, the rate bounds how much *normal-queue*
    /// bandwidth (UFS traffic) the rebuild may take.
    pub rebuild_rate: f64,
    /// Size of one rebuild copy chunk in bytes.
    pub rebuild_chunk: u64,
    /// Number of leading volumes built as faster (denser-platter)
    /// spindles; 0 keeps the homogeneous ST32550N array. Each fast
    /// volume is calibrated separately so per-volume admission weighs
    /// its real bandwidth.
    pub fast_volumes: u32,
    /// Linear-density scale applied to the fast volumes (see
    /// [`cras_disk::DiskGeometry::scaled`]); ignored when
    /// `fast_volumes` is 0.
    pub fast_factor: f64,
}

impl Default for SysConfig {
    fn default() -> Self {
        SysConfig {
            server: ServerConfig::default(),
            sched: SchedMode::FixedPriority,
            costs: CpuCosts::default(),
            deploy: DeployMode::UnixServer,
            seed: 42,
            hogs: 0,
            poll: Duration::from_millis(5),
            enforce_admission: true,
            disk_fault_prob: 0.0,
            disk_fault_penalty: Duration::from_millis(25),
            rebuild_rate: 4.0 * 1024.0 * 1024.0,
            rebuild_chunk: 256 * 1024,
            fast_volumes: 0,
            fast_factor: 1.0,
        }
    }
}

/// Fixed-priority levels used under [`SchedMode::FixedPriority`].
pub mod prio {
    /// CRAS server threads (request scheduler, I/O done manager).
    pub const CRAS: u8 = 30;
    /// Player (benchmark) threads — "the priority of the benchmark
    /// program is higher than the priorities of `cat` programs".
    pub const PLAYER: u8 = 20;
    /// The Unix server thread.
    pub const UFS: u8 = 15;
    /// Background readers.
    pub const BG: u8 = 10;
    /// CPU hogs.
    pub const HOG: u8 = 5;
    /// The single round-robin level.
    pub const RR: u8 = 10;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SysConfig::default();
        assert_eq!(c.sched, SchedMode::FixedPriority);
        assert!(c.enforce_admission);
        assert!(c.costs.decode > Duration::ZERO);
        // Constant by design: the priority ladder is a compile-time
        // contract this test documents.
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(prio::CRAS > prio::PLAYER);
            assert!(prio::PLAYER > prio::HOG);
        }
    }
}
