//! Rate-controlled volume rebuild: restoring a replacement volume's
//! contents from the surviving redundancy — a mirror replica (one source
//! read per chunk) or a rotating-parity band (the row's `g-1` surviving
//! data+parity reads, XORed into the recovered unit).
//!
//! The rebuild runs entirely through the *normal-priority* disk queue —
//! the dual-queue driver's strict real-time priority is what lets a
//! rebuild share spindles with admitted streams without threatening
//! their guarantees. The configured rate additionally bounds how much
//! normal-queue bandwidth (Unix-server traffic) the rebuild may consume:
//! one chunk is outstanding at a time, and each completed chunk earns
//! `bytes / rate` of pacing budget before the next may start. The rate
//! may be retuned between chunks ([`RebuildManager::set_rate`]) — the
//! system scales it by observed interval slack, so an idle array
//! rebuilds at the configured cap while a loaded one backs off below it.

use cras_core::{ParityState, Stream, VolumeExtent};
use cras_disk::VolumeId;
use cras_sim::{Duration, Instant};

/// One source read feeding a rebuild chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SrcRead {
    /// Volume holding this piece of surviving data.
    pub vol: u32,
    /// First 512-byte block of the source run.
    pub block: u64,
    /// Run length in 512-byte blocks.
    pub nblocks: u32,
}

/// One rebuild step: read every source, then write `nblocks` recovered
/// blocks to the replacement volume. A mirror copy has exactly one
/// source; a parity reconstruction has up to `g-1` (XORed on
/// completion); a parity unit of an all-absent tail row has none (the
/// recovered bytes are zeros).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RebuildChunk {
    /// The surviving reads this chunk needs (all issued concurrently —
    /// they target distinct spindles).
    pub srcs: Vec<SrcRead>,
    /// Volume being rebuilt.
    pub dst_vol: u32,
    /// First 512-byte block of the destination run.
    pub dst_block: u64,
    /// Run length in 512-byte blocks written to the destination.
    pub nblocks: u32,
}

impl RebuildChunk {
    /// Bytes this chunk recovers (the write side).
    pub fn bytes(&self) -> u64 {
        self.nblocks as u64 * 512
    }
}

/// Plans the chunks that restore `dst_map` (the lost replica's extents
/// on the replacement volume) from `src_map` (the surviving mirror
/// replica, possibly fragmented differently). Chunks are at most
/// `chunk_bytes` long and follow the destination map's logical order, so
/// both the read and the write side stay close to sequential.
pub fn plan_chunks(
    src_map: &[VolumeExtent],
    dst_map: &[VolumeExtent],
    chunk_bytes: u64,
) -> Vec<RebuildChunk> {
    assert!(chunk_bytes >= 512, "rebuild chunk under one block");
    let mut chunks = Vec::new();
    for e in dst_map {
        let e_lo = e.extent.file_offset;
        let e_hi = e_lo + e.extent.nblocks as u64 * 512;
        let mut lo = e_lo;
        while lo < e_hi {
            let hi = (lo + chunk_bytes).min(e_hi);
            for (off, run) in Stream::runs_in(src_map, lo, hi) {
                chunks.push(RebuildChunk {
                    srcs: vec![SrcRead {
                        vol: run.volume.0,
                        block: run.block,
                        nblocks: run.nblocks,
                    }],
                    dst_vol: e.volume.0,
                    dst_block: e.extent.disk_block + (off - e_lo) / 512,
                    nblocks: run.nblocks,
                });
            }
            lo = hi;
        }
    }
    chunks
}

/// Plans the reconstruction of volume `vol`'s share of one parity-placed
/// movie onto a replacement: every lost *data* unit is recovered from
/// its row's surviving data+parity units
/// ([`Stream::parity_recon_runs`]), and every lost *parity* unit is
/// re-encoded from the row's data units. Destination runs follow the
/// replacement's file maps (`dst_data`/`dst_parity`, whose file offsets
/// address the volume's data and parity files respectively); each chunk
/// covers at most one stripe unit, so no source set mixes rows.
///
/// # Panics
///
/// Panics if a needed source lands on `vol` itself — impossible under
/// the rotating layout (a row never places two units on one volume),
/// so it would mean the maps disagree with the geometry.
pub fn plan_parity_recon(
    extents: &[VolumeExtent],
    parity: &ParityState,
    dst_data: &[VolumeExtent],
    dst_parity: &[VolumeExtent],
    vol: u32,
) -> Vec<RebuildChunk> {
    let geom = parity.geom;
    let g = geom.group as u64;
    let sb = geom.stripe_bytes;
    let mut chunks = Vec::new();
    let src_reads = |runs: Vec<cras_core::VolumeRun>| -> Vec<SrcRead> {
        runs.into_iter()
            .inspect(|r| assert_ne!(r.volume.0, vol, "source on the volume being rebuilt"))
            .map(|r| SrcRead {
                vol: r.volume.0,
                block: r.block,
                nblocks: r.nblocks,
            })
            .collect()
    };
    // Lost data units, in file order (== unit order on this volume).
    for k in 0..geom.data_units() {
        if geom.data_volume(k).0 != vol {
            continue;
        }
        let idx = geom.data_file_index(k);
        let len = geom.unit_len(k);
        for (off, run) in Stream::runs_in(dst_data, idx * sb, idx * sb + len) {
            let rel_a = off - idx * sb;
            let rel_b = len.min(rel_a + run.nblocks as u64 * 512);
            let srcs = Stream::parity_recon_runs(
                extents,
                parity,
                k * sb + rel_a,
                k * sb + rel_b,
                VolumeId(vol),
                &[],
            )
            .expect("rotating layout keeps survivors off the rebuilt volume");
            chunks.push(RebuildChunk {
                srcs: src_reads(srcs),
                dst_vol: vol,
                dst_block: run.block,
                nblocks: run.nblocks,
            });
        }
    }
    // Lost parity units: re-encode from the row's data units.
    for r in 0..geom.rows() {
        if geom.parity_volume(r).0 != vol {
            continue;
        }
        let pidx = geom.parity_file_index(r);
        for (off, run) in Stream::runs_in(dst_parity, pidx * sb, (pidx + 1) * sb) {
            let rel_a = off - pidx * sb;
            let rel_b = rel_a + run.nblocks as u64 * 512;
            let mut srcs = Vec::new();
            for j in 0..g - 1 {
                let k2 = r * (g - 1) + j;
                if k2 * sb >= geom.total_bytes {
                    continue;
                }
                let len2 = geom.unit_len(k2);
                let (a2, b2) = (rel_a.min(len2), rel_b.min(len2));
                if a2 >= b2 {
                    continue;
                }
                for (_, sr) in Stream::runs_in(extents, k2 * sb + a2, k2 * sb + b2) {
                    assert_ne!(sr.volume.0, vol, "source on the volume being rebuilt");
                    srcs.push(SrcRead {
                        vol: sr.volume.0,
                        block: sr.block,
                        nblocks: sr.nblocks,
                    });
                }
            }
            chunks.push(RebuildChunk {
                srcs,
                dst_vol: vol,
                dst_block: run.block,
                nblocks: run.nblocks,
            });
        }
    }
    chunks
}

/// Paced executor over a planned chunk list. The system issues one chunk
/// at a time (all source reads concurrently, then the write); after each
/// completed chunk the manager names the earliest time the next may
/// start.
#[derive(Clone, Debug)]
pub struct RebuildManager {
    vol: u32,
    generation: u64,
    chunks: Vec<RebuildChunk>,
    next: usize,
    rate: f64,
    started_at: Instant,
    /// Pacing frontier: each completed chunk advances it by
    /// `bytes / rate`; a slow copy snaps it to `now` (no catch-up debt
    /// and no catch-up burst).
    budget_until: Instant,
    copied_bytes: u64,
    /// Source reads still outstanding for the in-flight chunk.
    srcs_left: usize,
}

impl RebuildManager {
    /// Creates a manager rebuilding `vol` at `rate` bytes per second.
    /// `generation` tags every disk request and pacing event this
    /// rebuild issues, so completions from an earlier, aborted rebuild
    /// (whose chunk list may differ) can be recognized and dropped.
    pub fn new(
        vol: u32,
        generation: u64,
        chunks: Vec<RebuildChunk>,
        rate: f64,
        now: Instant,
    ) -> RebuildManager {
        assert!(rate > 0.0, "rebuild rate must be positive");
        RebuildManager {
            vol,
            generation,
            chunks,
            next: 0,
            rate,
            started_at: now,
            budget_until: now,
            copied_bytes: 0,
            srcs_left: 0,
        }
    }

    /// The volume being rebuilt.
    pub fn volume(&self) -> u32 {
        self.vol
    }

    /// The generation tag carried by this rebuild's requests.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The current pacing rate in bytes per second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Retunes the pacing rate (load-aware pacing). Applies to chunks
    /// completed from now on; budget already earned is kept.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive or non-finite rate.
    pub fn set_rate(&mut self, rate: f64) {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "rebuild rate must be positive"
        );
        self.rate = rate;
    }

    /// Takes the next chunk to issue, tagged with its index, and arms
    /// the source-read countdown for it.
    pub fn take_next(&mut self) -> Option<(u64, RebuildChunk)> {
        let idx = self.next;
        let c = self.chunks.get(idx).cloned()?;
        self.next += 1;
        self.srcs_left = c.srcs.len();
        Some((idx as u64, c))
    }

    /// The chunk behind a routing-tag index.
    ///
    /// # Panics
    ///
    /// Panics on an index this rebuild never issued. The system only
    /// calls this for completions whose generation tag matches
    /// [`RebuildManager::generation`], and every index issued by
    /// [`RebuildManager::take_next`] within a generation is in range —
    /// an out-of-range index here means a tag-routing bug, not a race.
    pub fn chunk(&self, idx: u64) -> &RebuildChunk {
        self.chunks
            .get(idx as usize)
            .unwrap_or_else(|| panic!("rebuild gen {} has no chunk {idx}", self.generation))
    }

    /// Records one completed source read of the in-flight chunk; `true`
    /// when all sources are in and the recovered bytes may be written.
    ///
    /// # Panics
    ///
    /// Panics if no source read was outstanding.
    pub fn source_done(&mut self) -> bool {
        assert!(self.srcs_left > 0, "no rebuild source read outstanding");
        self.srcs_left -= 1;
        self.srcs_left == 0
    }

    /// Records a completed chunk (write done) and returns when the next
    /// chunk may be issued, or `None` if the rebuild is done.
    pub fn chunk_copied(&mut self, idx: u64, now: Instant) -> Option<Instant> {
        let bytes = self.chunks[idx as usize].bytes();
        self.copied_bytes += bytes;
        // Rate pacing, incremental so the rate may change mid-rebuild:
        // each chunk earns bytes/rate of budget; a slow copy forgives
        // the shortfall rather than banking a catch-up burst.
        self.budget_until += Duration::from_secs_f64(bytes as f64 / self.rate);
        if now > self.budget_until {
            self.budget_until = now;
        }
        if self.next >= self.chunks.len() {
            return None;
        }
        Some(self.budget_until)
    }

    /// Whether every chunk has been copied.
    pub fn done(&self) -> bool {
        self.next >= self.chunks.len() && self.copied_bytes >= self.total_bytes()
    }

    /// Bytes recovered so far.
    pub fn copied_bytes(&self) -> u64 {
        self.copied_bytes
    }

    /// Total bytes the plan writes to the replacement.
    pub fn total_bytes(&self) -> u64 {
        self.chunks.iter().map(RebuildChunk::bytes).sum()
    }

    /// When the rebuild started.
    pub fn started_at(&self) -> Instant {
        self.started_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cras_core::{ParityGeometry, PARITY_STRIPE_BYTES};
    use cras_ufs::Extent;

    fn ve(vol: u32, file_offset: u64, disk_block: u64, nblocks: u32) -> VolumeExtent {
        VolumeExtent {
            volume: VolumeId(vol),
            extent: Extent {
                file_offset,
                disk_block,
                nblocks,
            },
        }
    }

    fn copy_chunk(nblocks: u32) -> RebuildChunk {
        RebuildChunk {
            srcs: vec![SrcRead {
                vol: 0,
                block: 0,
                nblocks,
            }],
            dst_vol: 1,
            dst_block: 0,
            nblocks,
        }
    }

    #[test]
    fn plan_covers_destination_bytes_once() {
        let src = vec![ve(0, 0, 1000, 256)];
        let dst = vec![ve(2, 0, 5000, 128), ve(2, 128 * 512, 9000, 128)];
        let chunks = plan_chunks(&src, &dst, 64 * 512);
        let total: u64 = chunks.iter().map(RebuildChunk::bytes).sum();
        assert_eq!(total, 256 * 512);
        assert!(chunks
            .iter()
            .all(|c| c.srcs.len() == 1 && c.srcs[0].vol == 0 && c.dst_vol == 2));
        assert!(chunks.iter().all(|c| c.nblocks <= 64));
        // First chunk reads the start of the source and writes the start
        // of the destination.
        assert_eq!(chunks[0].srcs[0].block, 1000);
        assert_eq!(chunks[0].dst_block, 5000);
        // The second destination extent is addressed at its own blocks.
        assert!(chunks.iter().any(|c| c.dst_block == 9000));
    }

    #[test]
    fn plan_follows_fragmented_source() {
        // Source split at an odd boundary: a destination chunk spanning
        // it becomes two copies.
        let src = vec![ve(1, 0, 100, 48), ve(1, 48 * 512, 700, 80)];
        let dst = vec![ve(3, 0, 2000, 128)];
        let chunks = plan_chunks(&src, &dst, 128 * 512);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].srcs[0].block, 100);
        assert_eq!(chunks[0].nblocks, 48);
        assert_eq!(chunks[1].srcs[0].block, 700);
        assert_eq!(chunks[1].dst_block, 2000 + 48);
    }

    /// A geometry-faithful synthetic parity layout (data file then
    /// parity file, contiguous per volume).
    fn parity_layout(group: u32, total: u64) -> (Vec<VolumeExtent>, ParityState) {
        let geom = ParityGeometry::new(0, group, PARITY_STRIPE_BYTES, total);
        let sb = geom.stripe_bytes;
        let pbase = geom.rows() * (sb / 512);
        let extents = (0..geom.data_units())
            .map(|k| {
                ve(
                    geom.data_volume(k).0,
                    k * sb,
                    geom.data_file_index(k) * (sb / 512),
                    geom.unit_len(k).div_ceil(512) as u32,
                )
            })
            .collect();
        let parity_maps = (0..group)
            .map(|v| {
                let bytes = geom.parity_bytes_on(v);
                if bytes == 0 {
                    return Vec::new();
                }
                vec![ve(v, 0, pbase, (bytes / 512) as u32)]
            })
            .collect();
        (extents, ParityState { geom, parity_maps })
    }

    #[test]
    fn parity_recon_plan_covers_every_lost_byte_with_cross_volume_sources() {
        for group in [2u32, 3, 4] {
            let sb = PARITY_STRIPE_BYTES;
            let total = 11 * sb + 1234;
            let (extents, ps) = parity_layout(group, total);
            let geom = ps.geom;
            for vol in 0..group {
                // The replacement's file maps equal the originals on
                // this volume (fs metadata survives the disk).
                let dst_data: Vec<VolumeExtent> = (0..geom.data_units())
                    .filter(|&k| geom.data_volume(k).0 == vol)
                    .map(|k| {
                        ve(
                            vol,
                            geom.data_file_index(k) * sb,
                            geom.data_file_index(k) * (sb / 512),
                            geom.unit_len(k).div_ceil(512) as u32,
                        )
                    })
                    .collect();
                let dst_parity = ps.parity_maps[vol as usize].clone();
                let chunks = plan_parity_recon(&extents, &ps, &dst_data, &dst_parity, vol);
                // Every chunk writes to the rebuilt volume, reads only
                // from the others, and total writes equal the volume's
                // data+parity footprint (block-rounded).
                let expect: u64 = (0..geom.data_units())
                    .filter(|&k| geom.data_volume(k).0 == vol)
                    .map(|k| geom.unit_len(k).div_ceil(512) * 512)
                    .sum::<u64>()
                    + geom.parity_bytes_on(vol);
                let written: u64 = chunks.iter().map(RebuildChunk::bytes).sum();
                assert_eq!(written, expect, "g={group} vol={vol}");
                for c in &chunks {
                    assert_eq!(c.dst_vol, vol);
                    assert!(c.srcs.iter().all(|s| s.vol != vol));
                    assert!(c.bytes() <= sb);
                    // A full mid-movie unit needs exactly g-1 sources.
                    if c.bytes() == sb {
                        let vols: std::collections::BTreeSet<u32> =
                            c.srcs.iter().map(|s| s.vol).collect();
                        assert_eq!(vols.len(), group as usize - 1, "g={group} vol={vol}");
                    }
                }
            }
        }
    }

    #[test]
    fn pacing_never_exceeds_the_rate() {
        let chunks = vec![copy_chunk(128); 4];
        let t0 = Instant::ZERO;
        // 64 KB/s: each 64 KB chunk earns exactly one second of budget.
        let mut rb = RebuildManager::new(1, 1, chunks, 64.0 * 1024.0, t0);
        let (i0, _) = rb.take_next().unwrap();
        let due = rb.chunk_copied(i0, t0 + Duration::from_millis(5)).unwrap();
        assert_eq!(due, t0 + Duration::from_secs(1));
        let (i1, _) = rb.take_next().unwrap();
        let due = rb.chunk_copied(i1, due + Duration::from_millis(5)).unwrap();
        assert_eq!(due, t0 + Duration::from_secs(2));
        assert!(!rb.done());
    }

    #[test]
    fn slow_disk_does_not_owe_catchup_bursts() {
        let chunks = vec![copy_chunk(128); 2];
        let t0 = Instant::ZERO;
        let mut rb = RebuildManager::new(1, 1, chunks, 64.0 * 1024.0, t0);
        let (i0, _) = rb.take_next().unwrap();
        // The copy itself took longer than the pacing budget: the next
        // chunk is due immediately, not at a past instant.
        let late = t0 + Duration::from_secs(5);
        assert_eq!(rb.chunk_copied(i0, late), Some(late));
    }

    #[test]
    fn rate_retune_applies_to_later_chunks_only() {
        let chunks = vec![copy_chunk(128); 3];
        let t0 = Instant::ZERO;
        let mut rb = RebuildManager::new(1, 1, chunks, 64.0 * 1024.0, t0);
        let (i0, _) = rb.take_next().unwrap();
        assert_eq!(rb.chunk_copied(i0, t0), Some(t0 + Duration::from_secs(1)));
        // Doubling the rate halves the budget earned by the next chunk;
        // the second's budget starts where the first's ended.
        rb.set_rate(128.0 * 1024.0);
        let (i1, _) = rb.take_next().unwrap();
        assert_eq!(
            rb.chunk_copied(i1, t0 + Duration::from_secs(1)),
            Some(t0 + Duration::from_millis(1500))
        );
    }

    #[test]
    fn source_countdown_gates_the_write() {
        let mut c = copy_chunk(8);
        c.srcs = vec![
            SrcRead {
                vol: 0,
                block: 0,
                nblocks: 8,
            },
            SrcRead {
                vol: 2,
                block: 0,
                nblocks: 8,
            },
            SrcRead {
                vol: 3,
                block: 0,
                nblocks: 8,
            },
        ];
        let mut rb = RebuildManager::new(1, 1, vec![c], 1e6, Instant::ZERO);
        let (_, chunk) = rb.take_next().unwrap();
        assert_eq!(chunk.srcs.len(), 3);
        assert!(!rb.source_done());
        assert!(!rb.source_done());
        assert!(rb.source_done(), "third source completes the set");
    }

    #[test]
    fn done_after_last_chunk() {
        let chunks = vec![copy_chunk(8)];
        let mut rb = RebuildManager::new(1, 1, chunks, 1e6, Instant::ZERO);
        let (i, c) = rb.take_next().unwrap();
        assert_eq!(c.bytes(), 8 * 512);
        assert_eq!(rb.chunk_copied(i, Instant::ZERO), None);
        assert!(rb.done());
        assert_eq!(rb.copied_bytes(), 8 * 512);
    }
}
