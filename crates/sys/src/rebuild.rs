//! Rate-controlled volume rebuild: reconstructing a replacement volume's
//! mirrored extents from the surviving replicas.
//!
//! The rebuild runs entirely through the *normal-priority* disk queue —
//! the dual-queue driver's strict real-time priority is what lets a
//! rebuild share spindles with admitted streams without threatening
//! their guarantees. The configured rate additionally bounds how much
//! normal-queue bandwidth (Unix-server traffic) the rebuild may consume:
//! one copy chunk is outstanding at a time, and the next is not issued
//! before `started_at + copied_bytes / rate`.

use cras_core::{Stream, VolumeExtent};
use cras_sim::{Duration, Instant};

/// One contiguous copy: read `nblocks` from the surviving replica, write
/// them to the replacement volume.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CopyChunk {
    /// Volume holding the surviving replica of these bytes.
    pub src_vol: u32,
    /// First 512-byte block of the source run.
    pub src_block: u64,
    /// Volume being rebuilt.
    pub dst_vol: u32,
    /// First 512-byte block of the destination run.
    pub dst_block: u64,
    /// Run length in 512-byte blocks.
    pub nblocks: u32,
}

impl CopyChunk {
    /// Bytes this chunk copies.
    pub fn bytes(&self) -> u64 {
        self.nblocks as u64 * 512
    }
}

/// Plans the copy chunks that reconstruct `dst_map` (the lost replica's
/// extents on the replacement volume) from `src_map` (the surviving
/// replica, possibly fragmented differently). Chunks are at most
/// `chunk_bytes` long and follow the destination map's logical order, so
/// both the read and the write side stay close to sequential.
pub fn plan_chunks(
    src_map: &[VolumeExtent],
    dst_map: &[VolumeExtent],
    chunk_bytes: u64,
) -> Vec<CopyChunk> {
    assert!(chunk_bytes >= 512, "rebuild chunk under one block");
    let mut chunks = Vec::new();
    for e in dst_map {
        let e_lo = e.extent.file_offset;
        let e_hi = e_lo + e.extent.nblocks as u64 * 512;
        let mut lo = e_lo;
        while lo < e_hi {
            let hi = (lo + chunk_bytes).min(e_hi);
            for (off, run) in Stream::runs_in(src_map, lo, hi) {
                chunks.push(CopyChunk {
                    src_vol: run.volume.0,
                    src_block: run.block,
                    dst_vol: e.volume.0,
                    dst_block: e.extent.disk_block + (off - e_lo) / 512,
                    nblocks: run.nblocks,
                });
            }
            lo = hi;
        }
    }
    chunks
}

/// Paced executor over a planned chunk list. The system issues one chunk
/// at a time (read then write); after each completed copy the manager
/// names the earliest time the next chunk may start.
#[derive(Clone, Debug)]
pub struct RebuildManager {
    vol: u32,
    generation: u64,
    chunks: Vec<CopyChunk>,
    next: usize,
    rate: f64,
    started_at: Instant,
    copied_bytes: u64,
}

impl RebuildManager {
    /// Creates a manager rebuilding `vol` at `rate` bytes per second.
    /// `generation` tags every disk request and pacing event this
    /// rebuild issues, so completions from an earlier, aborted rebuild
    /// (whose chunk list may differ) can be recognized and dropped.
    pub fn new(
        vol: u32,
        generation: u64,
        chunks: Vec<CopyChunk>,
        rate: f64,
        now: Instant,
    ) -> RebuildManager {
        assert!(rate > 0.0, "rebuild rate must be positive");
        RebuildManager {
            vol,
            generation,
            chunks,
            next: 0,
            rate,
            started_at: now,
            copied_bytes: 0,
        }
    }

    /// The volume being rebuilt.
    pub fn volume(&self) -> u32 {
        self.vol
    }

    /// The generation tag carried by this rebuild's requests.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Takes the next chunk to issue, tagged with its index.
    pub fn take_next(&mut self) -> Option<(u64, CopyChunk)> {
        let idx = self.next;
        let c = self.chunks.get(idx).copied()?;
        self.next += 1;
        Some((idx as u64, c))
    }

    /// The chunk behind a routing-tag index.
    ///
    /// # Panics
    ///
    /// Panics on an index this rebuild never issued. The system only
    /// calls this for completions whose generation tag matches
    /// [`RebuildManager::generation`], and every index issued by
    /// [`RebuildManager::take_next`] within a generation is in range —
    /// an out-of-range index here means a tag-routing bug, not a race.
    pub fn chunk(&self, idx: u64) -> CopyChunk {
        *self
            .chunks
            .get(idx as usize)
            .unwrap_or_else(|| panic!("rebuild gen {} has no chunk {idx}", self.generation))
    }

    /// Records a completed copy and returns when the next chunk may be
    /// issued, or `None` if the rebuild is done.
    pub fn chunk_copied(&mut self, idx: u64, now: Instant) -> Option<Instant> {
        self.copied_bytes += self.chunks[idx as usize].bytes();
        if self.next >= self.chunks.len() {
            return None;
        }
        // Rate pacing: B bytes may not be done before started + B/rate.
        let due = self.started_at + Duration::from_secs_f64(self.copied_bytes as f64 / self.rate);
        Some(due.max(now))
    }

    /// Whether every chunk has been copied.
    pub fn done(&self) -> bool {
        self.next >= self.chunks.len() && self.copied_bytes >= self.total_bytes()
    }

    /// Bytes copied so far.
    pub fn copied_bytes(&self) -> u64 {
        self.copied_bytes
    }

    /// Total bytes the plan copies.
    pub fn total_bytes(&self) -> u64 {
        self.chunks.iter().map(CopyChunk::bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cras_disk::VolumeId;
    use cras_ufs::Extent;

    fn ve(vol: u32, file_offset: u64, disk_block: u64, nblocks: u32) -> VolumeExtent {
        VolumeExtent {
            volume: VolumeId(vol),
            extent: Extent {
                file_offset,
                disk_block,
                nblocks,
            },
        }
    }

    #[test]
    fn plan_covers_destination_bytes_once() {
        let src = vec![ve(0, 0, 1000, 256)];
        let dst = vec![ve(2, 0, 5000, 128), ve(2, 128 * 512, 9000, 128)];
        let chunks = plan_chunks(&src, &dst, 64 * 512);
        let total: u64 = chunks.iter().map(CopyChunk::bytes).sum();
        assert_eq!(total, 256 * 512);
        assert!(chunks.iter().all(|c| c.src_vol == 0 && c.dst_vol == 2));
        assert!(chunks.iter().all(|c| c.nblocks <= 64));
        // First chunk reads the start of the source and writes the start
        // of the destination.
        assert_eq!(chunks[0].src_block, 1000);
        assert_eq!(chunks[0].dst_block, 5000);
        // The second destination extent is addressed at its own blocks.
        assert!(chunks.iter().any(|c| c.dst_block == 9000));
    }

    #[test]
    fn plan_follows_fragmented_source() {
        // Source split at an odd boundary: a destination chunk spanning
        // it becomes two copies.
        let src = vec![ve(1, 0, 100, 48), ve(1, 48 * 512, 700, 80)];
        let dst = vec![ve(3, 0, 2000, 128)];
        let chunks = plan_chunks(&src, &dst, 128 * 512);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].src_block, 100);
        assert_eq!(chunks[0].nblocks, 48);
        assert_eq!(chunks[1].src_block, 700);
        assert_eq!(chunks[1].dst_block, 2000 + 48);
    }

    #[test]
    fn pacing_never_exceeds_the_rate() {
        let chunks = vec![
            CopyChunk {
                src_vol: 0,
                src_block: 0,
                dst_vol: 1,
                dst_block: 0,
                nblocks: 128,
            };
            4
        ];
        let t0 = Instant::ZERO;
        // 64 KB/s: each 64 KB chunk earns exactly one second of budget.
        let mut rb = RebuildManager::new(1, 1, chunks, 64.0 * 1024.0, t0);
        let (i0, _) = rb.take_next().unwrap();
        let due = rb.chunk_copied(i0, t0 + Duration::from_millis(5)).unwrap();
        assert_eq!(due, t0 + Duration::from_secs(1));
        let (i1, _) = rb.take_next().unwrap();
        let due = rb.chunk_copied(i1, due + Duration::from_millis(5)).unwrap();
        assert_eq!(due, t0 + Duration::from_secs(2));
        assert!(!rb.done());
    }

    #[test]
    fn slow_disk_does_not_owe_catchup_bursts() {
        let chunks = vec![
            CopyChunk {
                src_vol: 0,
                src_block: 0,
                dst_vol: 1,
                dst_block: 0,
                nblocks: 128,
            };
            2
        ];
        let t0 = Instant::ZERO;
        let mut rb = RebuildManager::new(1, 1, chunks, 64.0 * 1024.0, t0);
        let (i0, _) = rb.take_next().unwrap();
        // The copy itself took longer than the pacing budget: the next
        // chunk is due immediately, not at a past instant.
        let late = t0 + Duration::from_secs(5);
        assert_eq!(rb.chunk_copied(i0, late), Some(late));
    }

    #[test]
    fn done_after_last_chunk() {
        let chunks = vec![CopyChunk {
            src_vol: 0,
            src_block: 0,
            dst_vol: 1,
            dst_block: 0,
            nblocks: 8,
        }];
        let mut rb = RebuildManager::new(1, 1, chunks, 1e6, Instant::ZERO);
        let (i, c) = rb.take_next().unwrap();
        assert_eq!(c.bytes(), 8 * 512);
        assert_eq!(rb.chunk_copied(i, Instant::ZERO), None);
        assert!(rb.done());
        assert_eq!(rb.copied_bytes(), 8 * 512);
    }
}
