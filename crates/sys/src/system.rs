//! The orchestrated system: one event loop binding the disk volumes, the
//! CPU, the Unix server, CRAS and the client applications.
//!
//! The module is split along the PHASM seam
//! `(State, Event) → (State', Actions)`:
//!
//! * [`SysState`] is the pure transition core. Its event handlers mutate
//!   only component state and push the side effects they want — disk
//!   submits, timer arms, CPU wakes, deadline warnings, trace and
//!   journal records — onto an [`Action`] buffer. They never touch the
//!   engine, the disks, the CPU or the ports.
//! * [`System`] is the thin executor: it owns the executable substrates
//!   (engine, volume set, CPU, deadline port), pops events, calls the
//!   matching transition, and applies the emitted actions *in push
//!   order*. Push order equals the old inline call order and every
//!   action lands at the same virtual instant the handler ran, so the
//!   split is behavior-preserving by construction.
//!
//! Every figure in the paper is a run of this system under a different
//! configuration. The storage backend is a [`VolumeSet`]: §4's "several
//! disk devices" variation. With one volume the system is byte-identical
//! to the single-disk original.

use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};

use cras_core::{
    on_volume, AdmissionError, CacheState, CrasServer, ParityGeometry, ParityState,
    PlacementPolicy, ReadId, ReadReq, StreamId, VolumeExtent, VolumeLoad, PARITY_STRIPE_BYTES,
};
use cras_disk::{Completed, DiskDevice, DiskRequest, VolumeId, VolumeSet};
use cras_media::{Movie, StreamProfile};
use cras_net::{LinkParams, NetDelivery, NetEffect, NetFaults, SessionCfg};
use cras_rtmach::port::{FullPolicy, Port};
use cras_rtmach::{Cpu, SchedPolicy, ThreadId};
use cras_sim::trace::Trace;
use cras_sim::{Duration, Engine, Instant, Rng};
use cras_ufs::layout::fsblock_to_disk;
use cras_ufs::{Extent, FsReq, Ino, MkfsParams, Step, Ufs, UnixServer, BSIZE, SECT_PER_FSBLOCK};

use crate::action::Action;
use crate::bgload::{BgReader, BgWriter};
use crate::config::{prio, IssueMode, SchedMode, SysConfig};
use crate::journal::{Journal, JournalRecord};
use crate::metrics::{Metrics, ShardLoad, VolumeHealth};
use crate::player::{Player, PlayerMode};
use crate::rebuild::{plan_chunks, plan_parity_recon, RebuildManager};
use crate::tags::{ClientId, CpuTag, DiskTag, Event, TagArena};

/// Completed interval walls the load-aware rebuild pacing averages its
/// slack estimate over.
const REBUILD_SLACK_WINDOW: usize = 8;

/// Fraction of the configured rebuild rate the load-aware pacing never
/// drops below, so a saturated system still makes rebuild progress.
const REBUILD_RATE_FLOOR: f64 = 0.25;

/// Completed per-volume interval records the read-steering load signal
/// averages its completion-lag estimate over (per volume).
const STEER_LAG_WINDOW: usize = 4;

/// Owner of a Unix-server request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UOwner {
    /// A player reading frame `frame` (`bytes` media bytes).
    Player {
        /// The player.
        client: ClientId,
        /// Frame index.
        frame: u32,
        /// Frame size in bytes.
        bytes: u32,
    },
    /// A background reader finishing a `bytes`-byte read call.
    Bg {
        /// The reader.
        client: ClientId,
        /// Read-call length.
        bytes: u64,
    },
}

/// One Unix-server request: the volume whose file system it reads and the
/// client it serves. The volume routes the request's synchronous fetches
/// and read-ahead to the right spindle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UReq {
    /// Volume holding the file.
    pub vol: u32,
    /// Requesting client.
    pub owner: UOwner,
}

/// Where a recorded movie's data lives across the volume set.
#[derive(Clone, Debug)]
pub enum MoviePlacement {
    /// The whole movie on one volume (round-robin placement).
    Whole {
        /// The volume.
        vol: u32,
        /// The media data file on that volume.
        ino: Ino,
    },
    /// Striped across all volumes in `stripe_bytes` units.
    Striped {
        /// `stripes[v]` is the stripe file on volume `v`.
        stripes: Vec<Ino>,
        /// Stripe unit in bytes (multiple of the fs block size).
        stripe_bytes: u64,
        /// Total media bytes.
        total_bytes: u64,
    },
    /// Written in full to a primary volume and to a mirror volume.
    Mirrored {
        /// Primary volume.
        primary: u32,
        /// Mirror volume (never the primary's spindle).
        mirror: u32,
        /// The media data file on the primary volume.
        ino: Ino,
        /// The replica data file on the mirror volume.
        mirror_ino: Ino,
    },
    /// Laid out in rotating-parity stripe groups across a band of `group`
    /// volumes: each row of `group - 1` data units gets one XOR parity
    /// unit, and the parity volume rotates per row so no spindle is a
    /// dedicated parity disk.
    Parity {
        /// First volume of the band.
        base: u32,
        /// Band width `g` (data units per row is `g - 1`).
        group: u32,
        /// Stripe unit in bytes.
        stripe_bytes: u64,
        /// Total media bytes.
        total_bytes: u64,
        /// `data[v]` is the data-unit file on band volume `base + v`.
        data: Vec<Ino>,
        /// `parity[v]` is the parity-unit file on band volume `base + v`.
        parity: Vec<Ino>,
    },
}

/// Why [`System::try_attach_replacement`] refused to attach a
/// replacement disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttachError {
    /// The volume is not marked failed — there is nothing to replace.
    NotFailed,
    /// A rebuild is already running (the system runs at most one).
    RebuildRunning,
    /// The failed device still has an operation in flight. A down
    /// volume fails its in-flight operation fast, but that completion
    /// still travels through the event queue; retry after letting the
    /// system run briefly.
    DeviceBusy,
    /// Another volume is also failed (e.g. after a whole-shard kill).
    /// A rebuild sources its copy from the surviving spindles, so it
    /// cannot start until this volume is the only one down.
    PeersDown,
}

impl std::fmt::Display for AttachError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttachError::NotFailed => write!(f, "volume is not failed"),
            AttachError::RebuildRunning => write!(f, "a rebuild is already in progress"),
            AttachError::DeviceBusy => write!(f, "failed device has an operation in flight"),
            AttachError::PeersDown => write!(f, "another volume is also failed"),
        }
    }
}

impl std::error::Error for AttachError {}

/// The pure transition core: every component state machine of the
/// server, none of the executable substrates.
///
/// Event handlers on this type implement
/// `(State, Event) → (State', Actions)`: they mutate only this state and
/// push the side effects they want onto an [`Action`] buffer. The
/// [`System`] executor applies those actions against the engine, disks,
/// CPU and ports in push order. [`System`] derefs to this type, so all
/// component state reads (`sys.players`, `sys.metrics`, …) keep working
/// unchanged.
pub struct SysState {
    /// Configuration it was built with.
    pub cfg: SysConfig,
    /// The serialized Unix server.
    pub userver: UnixServer<UReq>,
    /// The CRAS server.
    pub cras: CrasServer,
    /// Players by client id.
    pub players: BTreeMap<u32, Player>,
    /// Background readers by client id.
    pub bgs: BTreeMap<u32, BgReader>,
    /// Background writers by client id.
    pub writers: BTreeMap<u32, BgWriter>,
    /// Measurements.
    pub metrics: Metrics,
    /// The NPS-style delivery subsystem (DESIGN §18): paced links,
    /// per-client playout sessions, multicast fan-out, loss/retransmit.
    /// Empty (no links, no sessions) unless the run attaches sessions
    /// through [`System::net_attach`]; a frame decode with no session
    /// bypasses delivery entirely, so existing experiments are
    /// unchanged.
    pub net: NetDelivery,
    /// Post-mortem event trace (disabled by default; enable with
    /// `sys.trace.set_enabled(true)`). The ring is part of the state;
    /// handlers emit [`Action::Trace`] records (only while enabled) and
    /// the executor appends them.
    pub trace: Trace,
    /// Per-volume file systems (index = volume id).
    fs: Vec<Ufs>,
    /// Movie placements by name.
    placements: BTreeMap<String, MoviePlacement>,
    tags: TagArena,
    /// `(volume, block)` pairs with disk I/O in flight (sync or
    /// read-ahead).
    inflight_blocks: HashSet<(u32, cras_ufs::FsBlock)>,
    /// Blocks the Unix server's current fetch step is waiting on.
    server_wait: Option<HashSet<(u32, cras_ufs::FsBlock)>>,
    cras_tid: ThreadId,
    hog_tids: Vec<ThreadId>,
    next_client: u32,
    rng: Rng,
    ticks_active: bool,
    /// How interval batches are issued across volumes. Pipelined is the
    /// system; the serial baseline exists only for the cross-volume
    /// overlap experiment and is selected per run through
    /// [`System::set_issue_mode`], never through [`SysConfig`].
    issue: IssueMode,
    /// Rebuild in progress (at most one at a time).
    rebuild: Option<RebuildManager>,
    /// Rebuild generation counter: bumped on every attach so disk
    /// completions and pacing events from an aborted rebuild can be
    /// recognized and dropped (their chunk indices may not exist in —
    /// or worse, alias into — a newer rebuild's plan).
    rebuild_gen: u64,
    /// [`IssueMode::SerialVolumes`] only: per-volume batches waiting for
    /// the previous batch's spindle to drain (front = next to issue).
    serial_batches: VecDeque<Vec<ReadReq>>,
    /// [`IssueMode::SerialVolumes`] only: read ids of the one batch
    /// currently in flight.
    serial_outstanding: HashSet<u64>,
}

/// The assembled system: the [`SysState`] transition core plus the thin
/// executor owning the executable substrates.
///
/// [`System`] derefs to [`SysState`], so component state remains
/// reachable as before (`sys.players`, `sys.cras`, …). The executor half
/// is [`System::handle`]: pop an event, run the pure transition, apply
/// the emitted [`Action`]s in push order. Durable control decisions
/// (recordings, admissions, starts/stops, volume failures, rebuild
/// lifecycle) additionally land in the transition [`Journal`], which
/// [`System::recover`] replays after a crash.
pub struct System {
    /// The event queue and virtual clock.
    pub engine: Engine<Event>,
    /// The disk volumes.
    pub disks: VolumeSet<DiskTag>,
    /// The CPU.
    pub cpu: Cpu,
    /// The deadline notification port: one message per interval overrun,
    /// consumed by the deadline-manager role (bounded; losing an old
    /// warning is acceptable, as in Real-Time Mach).
    pub deadline_port: Port<u64>,
    /// The pure transition core.
    state: SysState,
    /// The durable transition journal.
    journal: Journal,
    /// Reused action buffer (drained after every transition).
    actions: Vec<Action>,
}

impl std::ops::Deref for System {
    type Target = SysState;

    fn deref(&self) -> &SysState {
        &self.state
    }
}

impl std::ops::DerefMut for System {
    fn deref_mut(&mut self) -> &mut SysState {
        &mut self.state
    }
}

impl System {
    /// Builds a system: `cfg.server.volumes` ST32550N disks, a tuned UFS
    /// per volume, calibrated CRAS.
    ///
    /// Disk parameters for the admission test come from running the
    /// Appendix A calibration against a scratch copy of each distinct
    /// disk model — CRAS only ever sees what a real system could
    /// measure. A homogeneous array (`cfg.fast_volumes == 0`) needs one
    /// calibration; a mixed array calibrates the fast model separately
    /// so per-volume admission weighs each spindle's real bandwidth.
    pub fn new(cfg: SysConfig) -> System {
        assert!(cfg.server.volumes >= 1, "system needs at least one volume");
        assert!(
            (cfg.fast_volumes as usize) <= cfg.server.volumes,
            "fast_volumes exceeds the volume count"
        );
        let mut rng = Rng::new(cfg.seed);
        let nvol = cfg.server.volumes;
        let mut devices: Vec<DiskDevice<DiskTag>> = Vec::with_capacity(nvol);
        for v in 0..nvol as u64 {
            let mut disk: DiskDevice<DiskTag> = Self::base_device(&cfg, v as u32);
            if cfg.disk_fault_prob > 0.0 {
                disk.set_fault_injector(Some(cras_disk::FaultInjector::new(
                    cfg.disk_fault_prob,
                    cfg.disk_fault_penalty,
                    cfg.seed ^ 0xFA17 ^ (v << 32),
                )));
            }
            devices.push(disk);
        }
        let disks = VolumeSet::new(devices);
        let mut scratch: DiskDevice<u8> = DiskDevice::st32550n();
        let cal = cras_disk::calibrate::calibrate(&mut scratch, 64 * 1024);
        let fs: Vec<Ufs> = (0..nvol as u32)
            .map(|v| {
                let geom = disks.volume(VolumeId(v)).geometry().clone();
                Ufs::format_volume(&geom, MkfsParams::tuned(&geom), rng.fork().next_u64(), v)
            })
            .collect();
        let cras = if cfg.fast_volumes == 0 {
            CrasServer::new(cal.params, cfg.server)
        } else {
            let mut fast_scratch: DiskDevice<u8> = Self::base_device(&cfg, 0);
            let fast = cras_disk::calibrate::calibrate(&mut fast_scratch, 64 * 1024).params;
            let per_volume = (0..nvol as u32)
                .map(|v| {
                    if v < cfg.fast_volumes {
                        fast
                    } else {
                        cal.params
                    }
                })
                .collect();
            CrasServer::new_per_volume(per_volume, cfg.server)
        };
        let mut cpu = Cpu::new();
        let cras_tid = cpu.create("cras-sched", Self::policy_for(&cfg, prio::CRAS));
        let hog_tids = (0..cfg.hogs)
            .map(|i| cpu.create(&format!("hog{i}"), Self::policy_for(&cfg, prio::HOG)))
            .collect();
        System {
            engine: Engine::new(),
            disks,
            cpu,
            deadline_port: Port::new(64, FullPolicy::DropOldest),
            state: SysState {
                cfg,
                userver: UnixServer::new(),
                cras,
                players: BTreeMap::new(),
                bgs: BTreeMap::new(),
                writers: BTreeMap::new(),
                metrics: Metrics::new(),
                net: NetDelivery::new(),
                trace: Trace::new(4096),
                fs,
                placements: BTreeMap::new(),
                tags: TagArena::default(),
                inflight_blocks: HashSet::new(),
                server_wait: None,
                cras_tid,
                hog_tids,
                next_client: 0,
                rng,
                ticks_active: false,
                issue: IssueMode::Pipelined,
                rebuild: None,
                rebuild_gen: 0,
                serial_batches: VecDeque::new(),
                serial_outstanding: HashSet::new(),
            },
            journal: Journal::new(),
            actions: Vec::new(),
        }
    }

    /// The uncalibrated disk model behind volume `v`: the leading
    /// `cfg.fast_volumes` spindles are ST32550N mechanics with platter
    /// density scaled by `cfg.fast_factor`, the rest are stock.
    fn base_device<T>(cfg: &SysConfig, v: u32) -> DiskDevice<T> {
        if v < cfg.fast_volumes {
            DiskDevice::new(
                cras_disk::DiskGeometry::st32550n().scaled(cfg.fast_factor),
                cras_disk::SeekModel::st32550n_measured(),
                cras_disk::DiskTimings::st32550n(),
            )
        } else {
            DiskDevice::st32550n()
        }
    }

    fn policy_for(cfg: &SysConfig, fixed_prio: u8) -> SchedPolicy {
        match cfg.sched {
            SchedMode::FixedPriority => SchedPolicy::FixedPriority { prio: fixed_prio },
            SchedMode::RoundRobin { quantum } => SchedPolicy::RoundRobin {
                prio: prio::RR,
                quantum,
            },
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> Instant {
        self.engine.now()
    }

    /// The volume-0 disk (single-disk compatibility accessor).
    pub fn disk(&self) -> &DiskDevice<DiskTag> {
        self.disks.volume(VolumeId(0))
    }

    /// Mutable volume-0 disk.
    pub fn disk_mut(&mut self) -> &mut DiskDevice<DiskTag> {
        self.disks.volume_mut(VolumeId(0))
    }

    /// The transition journal accumulated so far.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }
}

impl SysState {
    /// Selects how interval batches are issued across volumes
    /// (experiment hook). [`IssueMode::SerialVolumes`] is a measured
    /// *baseline*, not a supported operating mode — only the
    /// cross-volume overlap experiment should ever select it, so it is
    /// deliberately not part of [`SysConfig`].
    pub fn set_issue_mode(&mut self, mode: IssueMode) {
        self.issue = mode;
    }

    /// The current batch-issue mode.
    pub fn issue_mode(&self) -> IssueMode {
        self.issue
    }

    /// Number of volumes.
    pub fn volumes(&self) -> usize {
        self.fs.len()
    }

    /// The volume-0 file system (single-disk compatibility accessor).
    pub fn ufs(&self) -> &Ufs {
        &self.fs[0]
    }

    /// Mutable volume-0 file system.
    pub fn ufs_mut(&mut self) -> &mut Ufs {
        &mut self.fs[0]
    }

    /// The file system on volume `vol`.
    pub fn ufs_on(&self, vol: u32) -> &Ufs {
        &self.fs[vol as usize]
    }

    /// Mutable file system on volume `vol`.
    pub fn ufs_on_mut(&mut self, vol: u32) -> &mut Ufs {
        &mut self.fs[vol as usize]
    }

    /// Where a movie's data lives (if it was recorded through
    /// [`System::record_movie`]).
    pub fn placement(&self, name: &str) -> Option<&MoviePlacement> {
        self.placements.get(name)
    }

    /// Records a movie into the file system. The public entry point is
    /// [`System::record_movie`], which journals the recording so crash
    /// recovery can replay it; placement is a pure function of the
    /// config seed and the record order, so replaying the journal
    /// reproduces it exactly.
    fn record_movie(&mut self, name: &str, profile: StreamProfile, secs: f64) -> Movie {
        match self.cfg.server.placement {
            PlacementPolicy::RoundRobin => {
                let vol = self.cras.place_next();
                let movie = cras_media::record_movie(
                    &mut self.fs[vol.index()],
                    name,
                    profile,
                    secs,
                    &mut self.rng,
                )
                .expect("movie recording failed");
                self.placements.insert(
                    name.to_string(),
                    MoviePlacement::Whole {
                        vol: vol.0,
                        ino: movie.ino,
                    },
                );
                movie
            }
            PlacementPolicy::Striped { stripe_bytes } => {
                self.record_movie_striped(name, profile, secs, stripe_bytes)
            }
            PlacementPolicy::Mirrored => self.record_movie_mirrored(name, profile, secs),
            PlacementPolicy::Parity { group } => {
                self.record_movie_parity(name, profile, secs, group)
            }
        }
    }

    /// Records a movie in rotating-parity layout across the next band of
    /// `group` volumes: band volume `v` gets a data-unit file
    /// (`{name}.pd{v}`) holding its share of the stripe rows and a
    /// parity file (`{name}.pp{v}`) holding the rows whose parity
    /// rotates onto it. The control file lives on the band's base
    /// volume. Setup phase: the parity bytes are *laid out* here; the
    /// simulation is data-free, so no XOR is computed (the
    /// [`cras_core::ParityEncoder`] covers the §4 recording path).
    fn record_movie_parity(
        &mut self,
        name: &str,
        profile: StreamProfile,
        secs: f64,
        group: usize,
    ) -> Movie {
        let base = self.cras.place_next_band(group).0;
        let group = group as u32;
        let table = cras_media::generate_chunks(&profile, secs, &mut self.rng);
        let total = table.total_bytes();
        let geom = ParityGeometry::new(base, group, PARITY_STRIPE_BYTES, total);
        let mut data = Vec::with_capacity(group as usize);
        let mut parity = Vec::with_capacity(group as usize);
        for v in 0..group {
            let fsv = &mut self.fs[(base + v) as usize];
            let dino = fsv
                .create(&format!("{name}.pd{v}"))
                .expect("data-unit file");
            let db = geom.data_bytes_on(v);
            if db > 0 {
                fsv.append(dino, db).expect("data-unit allocation");
            }
            let pino = fsv.create(&format!("{name}.pp{v}")).expect("parity file");
            let pb = geom.parity_bytes_on(v);
            if pb > 0 {
                fsv.append(pino, pb).expect("parity allocation");
            }
            data.push(dino);
            parity.push(pino);
        }
        let ctl = cras_media::container::encode(&table);
        let ctl_ino = self.fs[base as usize]
            .create(&format!("{name}.ctl"))
            .expect("control file");
        self.fs[base as usize]
            .append(ctl_ino, ctl.len() as u64)
            .expect("control file fits");
        let ino = data[0];
        self.placements.insert(
            name.to_string(),
            MoviePlacement::Parity {
                base,
                group,
                stripe_bytes: geom.stripe_bytes,
                total_bytes: total,
                data,
                parity,
            },
        );
        Movie {
            name: name.to_string(),
            ino,
            table,
            profile,
        }
    }

    /// Records a movie twice: normally onto a primary volume, and as a
    /// same-size replica file (`{name}.mir`) onto a mirror volume. The
    /// replica allocates its own extents, so the two copies may fragment
    /// differently — degraded reads remap by logical byte range, not by
    /// disk block.
    fn record_movie_mirrored(&mut self, name: &str, profile: StreamProfile, secs: f64) -> Movie {
        let (p, m) = self.cras.place_next_pair();
        let movie =
            cras_media::record_movie(&mut self.fs[p.index()], name, profile, secs, &mut self.rng)
                .expect("movie recording failed");
        let total = movie.table.total_bytes();
        let fsm = &mut self.fs[m.index()];
        let mirror_ino = fsm.create(&format!("{name}.mir")).expect("mirror file");
        fsm.append(mirror_ino, total).expect("mirror allocation");
        self.placements.insert(
            name.to_string(),
            MoviePlacement::Mirrored {
                primary: p.0,
                mirror: m.0,
                ino: movie.ino,
                mirror_ino,
            },
        );
        movie
    }

    /// Records a movie striped across all volumes: stripe unit `k` of the
    /// data goes to volume `k mod N`, appended to a per-volume stripe
    /// file. The control file lives on volume 0, as in the whole-movie
    /// layout.
    fn record_movie_striped(
        &mut self,
        name: &str,
        profile: StreamProfile,
        secs: f64,
        stripe_bytes: u64,
    ) -> Movie {
        assert!(stripe_bytes > 0, "zero stripe unit");
        assert!(
            stripe_bytes.is_multiple_of(BSIZE as u64),
            "stripe unit must be a multiple of the fs block size"
        );
        let table = cras_media::generate_chunks(&profile, secs, &mut self.rng);
        let total = table.total_bytes();
        let n = self.fs.len() as u64;
        // Stripe k (the last may be short) lands on volume k mod N.
        let nstripes = total.div_ceil(stripe_bytes);
        let mut per_vol = vec![0u64; n as usize];
        for k in 0..nstripes {
            let len = stripe_bytes.min(total - k * stripe_bytes);
            per_vol[(k % n) as usize] += len;
        }
        let mut stripes = Vec::with_capacity(n as usize);
        for (v, bytes) in per_vol.iter().enumerate() {
            let fsv = &mut self.fs[v];
            let ino = fsv.create(&format!("{name}.s{v}")).expect("stripe file");
            if *bytes > 0 {
                fsv.append(ino, *bytes).expect("stripe allocation");
            }
            stripes.push(ino);
        }
        let ctl = cras_media::container::encode(&table);
        let ctl_ino = self.fs[0]
            .create(&format!("{name}.ctl"))
            .expect("control file");
        self.fs[0]
            .append(ctl_ino, ctl.len() as u64)
            .expect("control file fits");
        let ino = stripes[0];
        self.placements.insert(
            name.to_string(),
            MoviePlacement::Striped {
                stripes,
                stripe_bytes,
                total_bytes: total,
            },
        );
        Movie {
            name: name.to_string(),
            ino,
            table,
            profile,
        }
    }

    /// Resolves a movie's placed extent map for `crs_open`: each extent
    /// tagged with the volume it lives on, file offsets in logical media
    /// bytes.
    fn movie_extents(&self, movie: &Movie) -> Vec<VolumeExtent> {
        match self.placements.get(&movie.name) {
            // The placement names the volume; the `Movie` handle names the
            // inode (tools like the fragmenter re-home a movie's data into
            // a fresh inode under the same name).
            Some(MoviePlacement::Whole { vol, ino: _ }) => {
                on_volume(VolumeId(*vol), self.fs[*vol as usize].extent_map(movie.ino))
            }
            Some(MoviePlacement::Striped {
                stripes,
                stripe_bytes,
                total_bytes,
            }) => {
                let maps: Vec<Vec<Extent>> = stripes
                    .iter()
                    .enumerate()
                    .map(|(v, &ino)| self.fs[v].extent_map(ino))
                    .collect();
                striped_extents(&maps, *stripe_bytes, *total_bytes)
            }
            Some(MoviePlacement::Mirrored { primary, .. }) => on_volume(
                VolumeId(*primary),
                self.fs[*primary as usize].extent_map(movie.ino),
            ),
            Some(MoviePlacement::Parity {
                base,
                group,
                stripe_bytes,
                total_bytes,
                data,
                ..
            }) => {
                let geom = ParityGeometry::new(*base, *group, *stripe_bytes, *total_bytes);
                let maps: Vec<Vec<Extent>> = data
                    .iter()
                    .enumerate()
                    .map(|(v, &ino)| self.fs[(*base + v as u32) as usize].extent_map(ino))
                    .collect();
                parity_data_extents(&geom, &maps)
            }
            // Movies created directly through `ufs_mut()` (tests,
            // experiments) live on volume 0.
            None => on_volume(VolumeId(0), self.fs[0].extent_map(movie.ino)),
        }
    }

    /// The mirror replica's extent map, if the movie is mirrored.
    fn movie_mirror_extents(&self, movie: &Movie) -> Option<Vec<VolumeExtent>> {
        match self.placements.get(&movie.name) {
            Some(MoviePlacement::Mirrored {
                mirror, mirror_ino, ..
            }) => Some(on_volume(
                VolumeId(*mirror),
                self.fs[*mirror as usize].extent_map(*mirror_ino),
            )),
            _ => None,
        }
    }

    /// The parity layout and per-volume parity-file maps of a
    /// parity-placed movie, for `crs_open` and the rebuild planner.
    fn movie_parity_state(&self, movie: &Movie) -> Option<ParityState> {
        match self.placements.get(&movie.name) {
            Some(MoviePlacement::Parity {
                base,
                group,
                stripe_bytes,
                total_bytes,
                parity,
                ..
            }) => {
                let geom = ParityGeometry::new(*base, *group, *stripe_bytes, *total_bytes);
                let parity_maps = parity
                    .iter()
                    .enumerate()
                    .map(|(v, &ino)| {
                        let vol = *base + v as u32;
                        on_volume(VolumeId(vol), self.fs[vol as usize].extent_map(ino))
                    })
                    .collect();
                Some(ParityState { geom, parity_maps })
            }
            _ => None,
        }
    }

    /// The single volume holding a movie's data, for Unix-server access
    /// paths that read one file.
    ///
    /// # Panics
    ///
    /// Panics for striped and parity movies: the Unix server reads whole
    /// files and has no stripe-reassembly layer.
    fn movie_volume(&self, movie: &Movie) -> u32 {
        match self.placements.get(&movie.name) {
            Some(MoviePlacement::Whole { vol, .. }) => *vol,
            Some(MoviePlacement::Mirrored { primary, .. }) => *primary,
            Some(MoviePlacement::Striped { .. }) => {
                panic!("Unix-server access to a striped movie is not supported")
            }
            Some(MoviePlacement::Parity { .. }) => {
                panic!("Unix-server access to a parity movie is not supported")
            }
            None => 0,
        }
    }

    fn alloc_client(&mut self) -> ClientId {
        let id = ClientId(self.next_client);
        self.next_client += 1;
        id
    }

    /// Opens a CRAS stream for `movie`: the admission half of
    /// [`System::add_cras_player`].
    fn open_cras_stream(&mut self, movie: &Movie) -> Result<StreamId, AdmissionError> {
        let extents = self.movie_extents(movie);
        let stream = if let Some(ps) = self.movie_parity_state(movie) {
            if self.cfg.enforce_admission {
                self.cras
                    .open_parity(&movie.name, movie.table.clone(), extents, ps)?
            } else {
                match self.cras.open_parity(
                    &movie.name,
                    movie.table.clone(),
                    extents.clone(),
                    ps.clone(),
                ) {
                    Ok(id) => id,
                    Err(_) => self.cras.open_parity_unchecked(
                        &movie.name,
                        movie.table.clone(),
                        extents,
                        ps,
                    ),
                }
            }
        } else {
            let mirror = self.movie_mirror_extents(movie);
            if self.cfg.enforce_admission {
                self.cras
                    .open_replicated(&movie.name, movie.table.clone(), extents, mirror)?
            } else {
                match self.cras.open_replicated(
                    &movie.name,
                    movie.table.clone(),
                    extents.clone(),
                    mirror.clone(),
                ) {
                    Ok(id) => id,
                    Err(_) => self.cras.open_replicated_unchecked(
                        &movie.name,
                        movie.table.clone(),
                        extents,
                        mirror,
                    ),
                }
            }
        };
        Ok(stream)
    }
}

impl System {
    /// Starts CRAS's interval timer (idempotent).
    pub fn activate_cras(&mut self) {
        if !self.state.ticks_active {
            self.state.ticks_active = true;
            self.engine.schedule_now(Event::CrasTick);
        }
    }

    /// Starts the configured CPU hogs.
    pub fn start_hogs(&mut self) {
        let burst = self.state.cfg.costs.hog_burst;
        for (i, tid) in self.state.hog_tids.clone().into_iter().enumerate() {
            self.exec_wake_cpu(tid, burst, CpuTag::Hog(i as u32));
        }
    }

    /// Control-plane CPU wake (setup paths outside the event loop).
    /// Handlers never call this — they emit [`Action::WakeCpu`] instead.
    fn exec_wake_cpu(&mut self, tid: ThreadId, burst: Duration, tag: CpuTag) {
        let now = self.engine.now();
        let id = self.state.tags.intern(tag);
        if let Some((at, tok)) = self.cpu.wake(tid, burst, id, now) {
            self.engine.schedule(at, Event::CpuSlice(tok));
        }
    }

    /// Records a movie into the file system (setup phase; consumes no
    /// simulated time). Under round-robin placement the whole movie lands
    /// on the next volume in rotation; under striped placement its data is
    /// spread over every volume in stripe units. The recording is
    /// journaled: replaying the journal against the same config seed
    /// reproduces the placement exactly.
    pub fn record_movie(&mut self, name: &str, profile: StreamProfile, secs: f64) -> Movie {
        let movie = self.state.record_movie(name, profile, secs);
        self.journal.append(
            self.engine.now(),
            JournalRecord::Recorded {
                name: name.to_string(),
                profile,
                secs,
            },
        );
        movie
    }

    /// Adds a player that consumes a movie through CRAS (`crs_open`).
    /// The admission is journaled so crash recovery can re-open it; a
    /// deferred (prefix-resident) admission gets its own record so the
    /// replay uses the deferred path — the cache is empty after a crash
    /// and the ordinary test could spuriously reject the stream.
    pub fn add_cras_player(
        &mut self,
        movie: &Movie,
        stride: u32,
    ) -> Result<ClientId, AdmissionError> {
        let stream = self.state.open_cras_stream(movie)?;
        Ok(self.install_cras_player(movie, stride, stream))
    }

    /// Recovery replay of a journaled deferred admission: re-opens the
    /// stream with zero disk shares (buffer memory still checked), in
    /// [`CacheState::Prefix`]. Parity-placed movies have no deferred
    /// open; they fall back to the ordinary admission test.
    fn add_cras_player_deferred(
        &mut self,
        movie: &Movie,
        stride: u32,
    ) -> Result<ClientId, AdmissionError> {
        if self.state.movie_parity_state(movie).is_some() {
            return self.add_cras_player(movie, stride);
        }
        let extents = self.state.movie_extents(movie);
        let mirror = self.state.movie_mirror_extents(movie);
        let stream = self.state.cras.open_deferred_replicated(
            &movie.name,
            movie.table.clone(),
            extents,
            mirror,
        )?;
        Ok(self.install_cras_player(movie, stride, stream))
    }

    /// Player bookkeeping shared by the ordinary and deferred admission
    /// paths: allocates the client, creates its decode thread, and
    /// journals the admission under the record matching the stream's
    /// cache state.
    fn install_cras_player(&mut self, movie: &Movie, stride: u32, stream: StreamId) -> ClientId {
        let id = self.state.alloc_client();
        let tid = self.cpu.create(
            &format!("player{}", id.0),
            Self::policy_for(&self.state.cfg, prio::PLAYER),
        );
        self.state.players.insert(
            id.0,
            Player::new(
                id,
                PlayerMode::Cras { stream },
                movie.table.clone(),
                stride,
                tid,
            ),
        );
        let rec = if matches!(self.state.cras.cache_state_of(stream), CacheState::Prefix) {
            JournalRecord::DeferredAdmitted {
                client: id.0,
                movie: movie.name.clone(),
                stride,
            }
        } else {
            JournalRecord::Admitted {
                client: id.0,
                movie: movie.name.clone(),
                stride,
            }
        };
        self.journal.append(self.engine.now(), rec);
        id
    }

    /// Adds a player that reads the movie through the Unix file system.
    /// Not journaled: UFS playback holds no CRAS reservation, so there
    /// is nothing durable to recover.
    pub fn add_ufs_player(&mut self, movie: &Movie, stride: u32) -> ClientId {
        let vol = self.state.movie_volume(movie);
        let id = self.state.alloc_client();
        let tid = self.cpu.create(
            &format!("player{}", id.0),
            Self::policy_for(&self.state.cfg, prio::PLAYER),
        );
        self.state.players.insert(
            id.0,
            Player::new(
                id,
                PlayerMode::Ufs {
                    ino: movie.ino,
                    vol,
                },
                movie.table.clone(),
                stride,
                tid,
            ),
        );
        id
    }
}

impl SysState {
    /// Adds a background `cat` reader over a movie file (64 KB reads,
    /// flat out).
    pub fn add_bg_reader(&mut self, movie: &Movie) -> ClientId {
        self.add_bg_reader_paced(movie, Duration::ZERO)
    }

    /// Adds a background reader that pauses between 64 KB reads —
    /// throttled load for experiments where the foreground must stay
    /// feasible (Figure 7 compares the systems "when both file systems
    /// achieve the same throughput").
    pub fn add_bg_reader_paced(&mut self, movie: &Movie, pause: Duration) -> ClientId {
        let vol = self.movie_volume(movie);
        let id = self.alloc_client();
        let size = self.fs[vol as usize].file_size(movie.ino);
        let mut bg = BgReader::new(id, movie.ino, size, 64 * 1024);
        bg.vol = vol;
        bg.pause = pause;
        self.bgs.insert(id.0, bg);
        id
    }

    /// Adds a paced background reader over a fresh file allocated
    /// directly on volume `vol` — skewed load for steering experiments,
    /// where the movies themselves span a whole parity band and
    /// [`SysState::add_bg_reader`] (which derives the volume from the
    /// movie's placement) cannot pin the noise to one spindle. The
    /// contiguous file means each `read_size` call reaches the disk as
    /// one non-preemptible transfer, so large sizes model bulk traffic
    /// that stalls real-time reads behind it.
    pub fn add_bg_reader_on(
        &mut self,
        vol: u32,
        name: &str,
        size: u64,
        read_size: u64,
        pause: Duration,
    ) -> ClientId {
        let ino = self.fs[vol as usize].create(name).expect("bg file");
        self.fs[vol as usize]
            .append(ino, size)
            .expect("bg file allocation");
        let id = self.alloc_client();
        let mut bg = BgReader::new(id, ino, size, read_size);
        bg.vol = vol;
        bg.pause = pause;
        self.bgs.insert(id.0, bg);
        id
    }

    /// Adds an editor appending `write_size` bytes every `period` to a
    /// fresh file on volume 0 (delayed writes drained by the syncer).
    pub fn add_bg_writer(&mut self, name: &str, write_size: u64, period: Duration) -> ClientId {
        let id = self.alloc_client();
        let ino = self.fs[0].create(name).expect("fresh edit file");
        self.writers
            .insert(id.0, BgWriter::new(id, ino, write_size, period));
        id
    }

    /// Whether every player has finished.
    pub fn all_players_done(&self) -> bool {
        self.players.values().all(|p| p.done)
    }

    /// Whether a rebuild is currently running.
    pub fn rebuild_active(&self) -> bool {
        self.rebuild.is_some()
    }
}

impl System {
    /// Starts the background writers and the syncer (1 s cadence, like
    /// the classic update daemon's spirit at media time scales).
    pub fn start_writers(&mut self) {
        let ids: Vec<u32> = self.writers.keys().copied().collect();
        for id in ids {
            self.engine.schedule_now(Event::BgWrite(ClientId(id)));
        }
        if !self.writers.is_empty() {
            self.engine
                .schedule_after(Duration::from_secs(1), Event::Sync);
        }
    }

    /// Starts the background readers now.
    pub fn start_bg(&mut self) {
        let now = self.now();
        let ids: Vec<u32> = self.bgs.keys().copied().collect();
        for id in ids {
            self.bgs.get_mut(&id).expect("just listed").started_at = now;
            self.engine.schedule_now(Event::BgKick(ClientId(id)));
        }
    }

    /// Begins playback for a player: CRAS players `crs_start` their
    /// stream (clock begins after the initial delay); UFS players get the
    /// same initial delay for comparability. Returns the playback start.
    pub fn start_playback(&mut self, client: ClientId) -> Instant {
        self.activate_cras();
        let now = self.now();
        let mode = self.players.get(&client.0).expect("no such player").mode;
        let start = match mode {
            PlayerMode::Cras { stream } => self.cras.start(stream, now),
            PlayerMode::Ufs { .. } => {
                let delay =
                    self.cfg.server.interval * self.cfg.server.initial_delay_intervals as u64;
                now + delay
            }
        };
        self.players
            .get_mut(&client.0)
            .expect("checked above")
            .playback_start = start;
        // A join formed by `start` is visible to delivery right away,
        // so the leader's very first packet already carries the member.
        self.state.net_sync_join(client);
        let due0 = self
            .players
            .get(&client.0)
            .expect("checked above")
            .due(0)
            .max(now);
        self.engine.schedule(due0, Event::PlayerFrame(client));
        self.journal.append(
            now,
            JournalRecord::Started {
                client: client.0,
                playback_start: start,
            },
        );
        start
    }

    /// Stops a player: CRAS players `crs_stop` their stream, releasing
    /// its reservation; the player is marked done. Journaled, so crash
    /// recovery does not resurrect the stream.
    pub fn stop_playback(&mut self, client: ClientId) {
        let now = self.now();
        let Some(mode) = self.state.players.get(&client.0).map(|p| p.mode) else {
            return;
        };
        if let PlayerMode::Cras { stream } = mode {
            self.state.cras.stop(stream, now);
        }
        if let Some(p) = self.state.players.get_mut(&client.0) {
            p.done = true;
        }
        self.journal
            .append(now, JournalRecord::Stopped { client: client.0 });
    }

    /// Ends a viewer session for good: CRAS players `crs_close` their
    /// stream, which releases the admission shares *and* the stream
    /// slot (unlike [`System::stop_playback`], after which the stopped
    /// stream still occupies the table and counts against any
    /// stream-count cap). The player record stays for its stats but is
    /// marked done, so queued poll/decode events retire harmlessly.
    /// Journaled as a stop, so crash recovery skips the stream.
    pub fn close_playback(&mut self, client: ClientId) {
        let now = self.now();
        let Some(mode) = self.state.players.get(&client.0).map(|p| p.mode) else {
            return;
        };
        if let PlayerMode::Cras { stream } = mode {
            self.state.cras.close(stream);
        }
        if let Some(p) = self.state.players.get_mut(&client.0) {
            p.done = true;
        }
        self.journal
            .append(now, JournalRecord::Stopped { client: client.0 });
    }

    /// Retries admission for a parked (rebuffering) viewer: the stream
    /// re-runs the feed ladder (disk share, then cache window) and, on
    /// success, playback resumes from the frozen position after the
    /// standard initial delay. A resumed disk share is journaled like
    /// any reserve-at-drain promotion. Returns whether the viewer
    /// resumed; a viewer that is not paused (or is done) returns false.
    pub fn retry_parked(&mut self, client: ClientId) -> bool {
        let now = self.now();
        let Some(p) = self.state.players.get(&client.0) else {
            return false;
        };
        if p.done || !p.paused {
            return false;
        }
        let PlayerMode::Cras { stream } = p.mode else {
            return false;
        };
        let Some((begin, disk)) = self.state.cras.resume(stream, now) else {
            return false;
        };
        let p = self.state.players.get_mut(&client.0).expect("checked");
        p.paused = false;
        p.polls_this_frame = 0;
        self.engine.schedule(begin, Event::PlayerFrame(client));
        if disk {
            self.journal
                .append(now, JournalRecord::DiskShareReserved { client: client.0 });
        }
        self.metrics.resumed_streams += 1;
        true
    }

    // ----- delivery subsystem setup (DESIGN §18) -----------------------

    /// Adds a delivery link and returns its index. Journaled, so crash
    /// recovery re-creates links in order and indices stay stable.
    pub fn net_add_link(&mut self, params: LinkParams) -> u32 {
        let id = self.state.net.add_link(params);
        self.journal.append(
            self.now(),
            JournalRecord::NetLink {
                bandwidth: params.bandwidth,
                latency_ns: params.latency.as_nanos(),
                per_packet_ns: params.per_packet.as_nanos(),
            },
        );
        id
    }

    /// Attaches a delivery session for `client` on `link`: every frame
    /// the client decodes from here on travels the paced link into a
    /// bounded playout buffer. Journaled for recovery.
    pub fn net_attach(&mut self, client: ClientId, link: u32, cfg: SessionCfg) {
        self.state.net.attach(client.0, link, cfg);
        self.journal.append(
            self.now(),
            JournalRecord::NetSession {
                client: client.0,
                link,
                playout_delay_ns: cfg.playout_delay.as_nanos(),
                high_watermark: cfg.high_watermark,
                low_watermark: cfg.low_watermark,
                drain_scale: cfg.drain_scale,
            },
        );
    }

    /// Switches multicast fan-out for joined groups on or off.
    /// Journaled for recovery.
    pub fn net_set_multicast(&mut self, on: bool) {
        self.state.net.set_multicast(on);
        self.journal
            .append(self.now(), JournalRecord::NetMulticast { on });
    }

    /// Installs (or clears) a deterministic fault injector on a link.
    /// Harness-level and deliberately *not* journaled, like the disk
    /// fault injectors.
    pub fn net_set_link_faults(&mut self, link: u32, faults: Option<NetFaults>) {
        self.state.net.set_link_faults(link, faults);
    }

    /// Runs the event loop until `t` (events after `t` stay queued).
    pub fn run_until(&mut self, t: Instant) {
        while let Some(at) = self.engine.peek_time() {
            if at > t {
                break;
            }
            let Some((now, ev)) = self.engine.pop() else {
                break;
            };
            if now > t {
                // A cancelled tombstone hid this later event: re-queue.
                self.engine.schedule(now, ev);
                break;
            }
            self.handle(ev, now);
        }
    }

    /// Runs for `d` from the current time.
    pub fn run_for(&mut self, d: Duration) {
        let t = self.now() + d;
        self.run_until(t);
    }

    /// Runs until `t` like [`System::run_until`], but delivers every
    /// batch of same-instant events in a *randomly permuted, then
    /// canonically re-sorted* order. The shuffle models a real kernel
    /// delivering simultaneous wakeups in arbitrary order; the re-sort
    /// by [`Event::dispatch_key`] is the system's defense. The
    /// interleaving fuzzer runs this under many `rng` seeds and asserts
    /// byte-identical metrics.
    pub fn run_until_shuffled(&mut self, t: Instant, rng: &mut Rng) {
        let mut batch: Vec<Event> = Vec::new();
        loop {
            match self.engine.peek_time() {
                Some(at) if at <= t => {}
                _ => break,
            }
            batch.clear();
            let Some(at) = self.engine.pop_batch(&mut batch) else {
                break;
            };
            if at > t {
                // A cancelled tombstone hid this later batch: re-queue.
                for ev in batch.drain(..) {
                    self.engine.schedule(at, ev);
                }
                break;
            }
            rng.shuffle(&mut batch);
            batch.sort_by_key(Event::dispatch_key);
            for &ev in &batch {
                self.handle(ev, at);
            }
        }
    }

    // ----- redundancy: failure, detection and rebuild -----------------

    /// Declares a permanent failure of `vol` now: the device fails its
    /// in-flight and all future operations fast, and CRAS immediately
    /// steers mirrored streams to their surviving replicas and stops
    /// admitting new load against the volume.
    pub fn fail_volume(&mut self, vol: u32) {
        let now = self.now();
        self.disks.fail_volume(VolumeId(vol));
        self.cras.set_volume_failed(VolumeId(vol), true);
        if self.metrics.volume_failed_at.is_none() {
            self.metrics.volume_failed_at = Some(now);
        }
        self.trace
            .log_with(now, "volume", || format!("volume {vol} failed"));
        self.journal
            .append(now, JournalRecord::VolumeFailed { vol });
        // Conservatively abort any rebuild in progress: the dead spindle
        // may be the copy's source, and a rebuild onto it is moot.
        self.rebuild = None;
    }

    /// Declares a whole-shard failure now: every volume fails fast at
    /// once, as when the machine hosting this shard loses power. Each
    /// spindle goes through [`System::fail_volume`] individually, so the
    /// journal records the full sequence and crash recovery replays it.
    /// A cluster gateway uses this as the shard-kill fault and stops
    /// stepping the shard afterwards; recovery of the shard follows the
    /// normal attach-replacement path one volume at a time.
    pub fn fail_shard(&mut self) {
        for vol in 0..self.cfg.server.volumes as u32 {
            if !self.cras.volume_failed(VolumeId(vol)) {
                self.fail_volume(vol);
            }
        }
    }

    /// Snapshot of this shard's admitted load, spare interval capacity
    /// and volume health, consumed by cluster-level routing: the gateway
    /// sends each open to the live replica with the fewest admitted
    /// streams, breaking ties toward the most recent slack.
    pub fn load_signal(&self) -> ShardLoad {
        let volumes = self.cfg.server.volumes;
        let volumes_down = (0..volumes as u32)
            .filter(|&v| self.cras.volume_failed(VolumeId(v)))
            .count();
        ShardLoad {
            streams: self.cras.stream_count(),
            recent_slack: self
                .metrics
                .recent_slack(self.cfg.server.interval, REBUILD_SLACK_WINDOW),
            recent_lag: self
                .metrics
                .recent_volume_lag(volumes, STEER_LAG_WINDOW)
                .into_iter()
                .fold(0.0, f64::max),
            uplink_queued_bytes: self.net.queued_bytes_total(),
            uplink_late_frames: self.net.late_frames_total(),
            volumes,
            volumes_down,
        }
    }

    /// Attaches a fresh replacement disk for a failed volume and starts
    /// the rate-controlled rebuild of every mirrored replica that lived
    /// there. The volume rejoins admission (and read steering) only once
    /// the rebuild completes.
    ///
    /// # Panics
    ///
    /// Panics where [`System::try_attach_replacement`] would return an
    /// error — use that when the failed device may still be draining its
    /// fast-error completions through the event loop.
    pub fn attach_replacement(&mut self, vol: u32) {
        if let Err(e) = self.try_attach_replacement(vol) {
            panic!("cannot attach replacement for volume {vol}: {e}");
        }
    }

    /// Fallible variant of [`System::attach_replacement`]: refuses (and
    /// leaves the system untouched) instead of panicking when the volume
    /// is not failed, a rebuild is already running, or the failed device
    /// still has an operation in flight. The last case is a real race,
    /// not misuse: a down volume fails its in-flight operation *fast*,
    /// but the completion still travels through the event queue, so an
    /// attach issued from outside the event loop can land first — retry
    /// after letting the system run.
    pub fn try_attach_replacement(&mut self, vol: u32) -> Result<(), AttachError> {
        if !self.cras.volume_failed(VolumeId(vol)) {
            return Err(AttachError::NotFailed);
        }
        if self.rebuild.is_some() {
            return Err(AttachError::RebuildRunning);
        }
        // After a whole-shard kill every volume is down; a rebuild
        // planned now would source its copy from dead spindles and churn
        // fast-failing reads until it aborts. Refuse with a typed error
        // instead.
        if (0..self.cfg.server.volumes as u32)
            .any(|v| v != vol && self.cras.volume_failed(VolumeId(v)))
        {
            return Err(AttachError::PeersDown);
        }
        // The replacement must match the failed slot's disk model, or a
        // fast volume would silently degrade to stock mechanics.
        self.disks
            .try_replace_volume(VolumeId(vol), Self::base_device(&self.cfg, vol))
            .map_err(|_| AttachError::DeviceBusy)?;
        let cfg = self.state.cfg;
        if cfg.disk_fault_prob > 0.0 {
            // The replacement spindle gets its own fault stream.
            self.disks
                .volume_mut(VolumeId(vol))
                .set_fault_injector(Some(cras_disk::FaultInjector::new(
                    cfg.disk_fault_prob,
                    cfg.disk_fault_penalty,
                    cfg.seed ^ 0xFA17 ^ ((vol as u64) << 32) ^ 0x5EB1,
                )));
        }
        let mirrored: Vec<(u32, u32, Ino, Ino)> = self
            .placements
            .values()
            .filter_map(|p| match p {
                MoviePlacement::Mirrored {
                    primary,
                    mirror,
                    ino,
                    mirror_ino,
                } => Some((*primary, *mirror, *ino, *mirror_ino)),
                _ => None,
            })
            .collect();
        let mut chunks = Vec::new();
        for (p, m, ino, mino) in mirrored {
            let (src, dst) = if p == vol {
                (
                    on_volume(VolumeId(m), self.fs[m as usize].extent_map(mino)),
                    on_volume(VolumeId(p), self.fs[p as usize].extent_map(ino)),
                )
            } else if m == vol {
                (
                    on_volume(VolumeId(p), self.fs[p as usize].extent_map(ino)),
                    on_volume(VolumeId(m), self.fs[m as usize].extent_map(mino)),
                )
            } else {
                continue;
            };
            chunks.extend(plan_chunks(&src, &dst, self.cfg.rebuild_chunk));
        }
        // Parity movies whose band contains the volume: reconstruct its
        // lost data units from the surviving data+parity units, and
        // re-encode its lost parity units from the rows' data units.
        // (base, group, stripe_bytes, total_bytes, data inos, parity inos)
        type ParityBand = (u32, u32, u64, u64, Vec<Ino>, Vec<Ino>);
        let parity_placed: Vec<ParityBand> = self
            .placements
            .values()
            .filter_map(|p| match p {
                MoviePlacement::Parity {
                    base,
                    group,
                    stripe_bytes,
                    total_bytes,
                    data,
                    parity,
                } if (*base..*base + *group).contains(&vol) => Some((
                    *base,
                    *group,
                    *stripe_bytes,
                    *total_bytes,
                    data.clone(),
                    parity.clone(),
                )),
                _ => None,
            })
            .collect();
        for (base, group, stripe_bytes, total_bytes, data, parity) in parity_placed {
            let geom = ParityGeometry::new(base, group, stripe_bytes, total_bytes);
            let maps: Vec<Vec<Extent>> = data
                .iter()
                .enumerate()
                .map(|(v, &ino)| self.fs[(base + v as u32) as usize].extent_map(ino))
                .collect();
            let extents = parity_data_extents(&geom, &maps);
            let parity_maps = parity
                .iter()
                .enumerate()
                .map(|(v, &ino)| {
                    let pv = base + v as u32;
                    on_volume(VolumeId(pv), self.fs[pv as usize].extent_map(ino))
                })
                .collect();
            let ps = ParityState { geom, parity_maps };
            let bv = (vol - base) as usize;
            let dst_data = on_volume(VolumeId(vol), self.fs[vol as usize].extent_map(data[bv]));
            let dst_parity = on_volume(VolumeId(vol), self.fs[vol as usize].extent_map(parity[bv]));
            chunks.extend(plan_parity_recon(
                &extents,
                &ps,
                &dst_data,
                &dst_parity,
                vol,
            ));
        }
        let now = self.now();
        self.metrics.rebuild_started_at = Some(now);
        self.rebuild_gen += 1;
        let gen = self.rebuild_gen;
        self.rebuild = Some(RebuildManager::new(
            vol,
            gen,
            chunks,
            self.cfg.rebuild_rate,
            now,
        ));
        self.trace
            .log_with(now, "rebuild", || format!("rebuilding volume {vol}"));
        self.journal
            .append(now, JournalRecord::RebuildStarted { vol });
        self.engine.schedule_now(Event::RebuildStep(gen));
        Ok(())
    }

    /// Per-volume fault/health snapshot from the disk substrate.
    pub fn volume_health(&self) -> Vec<VolumeHealth> {
        (0..self.volumes() as u32)
            .map(|v| {
                let d = self.disks.volume(VolumeId(v));
                let (ops_seen, transient_faults, media_errors) = d
                    .fault_injector()
                    .map(|f| (f.ops_seen(), f.injected(), f.media_errors()))
                    .unwrap_or((0, 0, 0));
                VolumeHealth {
                    volume: v,
                    ops_seen,
                    transient_faults,
                    media_errors,
                    down: d.is_down(),
                }
            })
            .collect()
    }

    // ----- crash recovery ---------------------------------------------

    /// Reconstructs a system after a crash from its transition journal.
    ///
    /// `cfg` must equal the crashed instance's config: placement is a
    /// pure function of the config seed and the record order, so
    /// replaying the journal's recordings reproduces the on-disk layout
    /// exactly. The replay then fast-forwards the clock to `resume_at`
    /// (the crash instant), re-fails failed volumes, re-admits the
    /// surviving admissions (admitted minus stopped) in journal order,
    /// resumes every started stream at its first undelivered frame with
    /// a fresh initial delay — zero frames dropped — and restarts an
    /// interrupted rebuild from scratch onto a fresh replacement.
    ///
    /// Returns the recovered system and the old→new client-id map (ids
    /// are reassigned densely during replay).
    ///
    /// Soft state is regenerated, not recovered: stream buffers refill
    /// during the fresh initial delay and per-frame statistics restart
    /// at the resume point. Background readers/writers and CPU hogs are
    /// experiment load, not durable decisions, and are not journaled.
    ///
    /// # Panics
    ///
    /// Panics if a journaled admission no longer passes the admission
    /// test on replay (only possible when `cfg` differs from the
    /// crashed instance's) or a journaled rebuild cannot re-attach.
    pub fn recover(
        cfg: SysConfig,
        journal: &Journal,
        resume_at: Instant,
    ) -> (System, BTreeMap<u32, u32>) {
        let mut sys = System::new(cfg);
        let mut movies: BTreeMap<String, Movie> = BTreeMap::new();
        let mut admitted: Vec<(u32, String, u32)> = Vec::new();
        let mut deferred: BTreeSet<u32> = BTreeSet::new();
        let mut started: BTreeMap<u32, Instant> = BTreeMap::new();
        let mut stopped: BTreeSet<u32> = BTreeSet::new();
        let mut failed: BTreeSet<u32> = BTreeSet::new();
        let mut rebuilding: BTreeSet<u32> = BTreeSet::new();
        let mut net_links: Vec<LinkParams> = Vec::new();
        let mut net_multicast: Option<bool> = None;
        let mut net_sessions: Vec<(u32, u32, SessionCfg)> = Vec::new();
        for (_, rec) in journal.entries() {
            match rec {
                JournalRecord::Recorded {
                    name,
                    profile,
                    secs,
                } => {
                    let m = sys.record_movie(name, *profile, *secs);
                    movies.insert(name.clone(), m);
                }
                JournalRecord::Admitted {
                    client,
                    movie,
                    stride,
                } => {
                    admitted.push((*client, movie.clone(), *stride));
                }
                JournalRecord::DeferredAdmitted {
                    client,
                    movie,
                    stride,
                } => {
                    admitted.push((*client, movie.clone(), *stride));
                    deferred.insert(*client);
                }
                JournalRecord::DiskShareReserved { client } => {
                    // The prefix drained before the crash: the stream
                    // recovers as an ordinary disk admission.
                    deferred.remove(client);
                }
                JournalRecord::Started {
                    client,
                    playback_start,
                } => {
                    started.insert(*client, *playback_start);
                }
                JournalRecord::Stopped { client } => {
                    stopped.insert(*client);
                }
                JournalRecord::VolumeFailed { vol } => {
                    failed.insert(*vol);
                    rebuilding.remove(vol);
                }
                JournalRecord::RebuildStarted { vol } => {
                    rebuilding.insert(*vol);
                }
                JournalRecord::RebuildFinished { vol } => {
                    failed.remove(vol);
                    rebuilding.remove(vol);
                }
                JournalRecord::Checkpoint { .. } => {}
                JournalRecord::NetLink {
                    bandwidth,
                    latency_ns,
                    per_packet_ns,
                } => net_links.push(LinkParams {
                    bandwidth: *bandwidth,
                    latency: Duration::from_nanos(*latency_ns),
                    per_packet: Duration::from_nanos(*per_packet_ns),
                }),
                JournalRecord::NetMulticast { on } => net_multicast = Some(*on),
                JournalRecord::NetSession {
                    client,
                    link,
                    playout_delay_ns,
                    high_watermark,
                    low_watermark,
                    drain_scale,
                } => net_sessions.push((
                    *client,
                    *link,
                    SessionCfg {
                        playout_delay: Duration::from_nanos(*playout_delay_ns),
                        high_watermark: *high_watermark,
                        low_watermark: *low_watermark,
                        drain_scale: *drain_scale,
                    },
                )),
            }
        }
        // Restart at the crash instant: recording consumes no simulated
        // time, so the queue is empty and the clock can jump.
        sys.engine.advance_to(resume_at);
        for vol in &failed {
            sys.fail_volume(*vol);
        }
        let mut remap: BTreeMap<u32, u32> = BTreeMap::new();
        for (old_id, movie, stride) in &admitted {
            if stopped.contains(old_id) {
                continue;
            }
            let m = movies
                .get(movie)
                .expect("journal order: recorded before admitted");
            let new_id = if deferred.contains(old_id) {
                sys.add_cras_player_deferred(m, *stride)
                    .expect("recovery deferred re-admission failed; config mismatch?")
            } else {
                sys.add_cras_player(m, *stride)
                    .expect("recovery re-admission failed; config mismatch?")
            };
            remap.insert(*old_id, new_id.0);
        }
        for (&old_id, &new_id) in &remap {
            if let Some(&old_start) = started.get(&old_id) {
                sys.resume_playback(ClientId(new_id), old_start, resume_at);
            }
        }
        for vol in &rebuilding {
            if failed.contains(vol) {
                sys.try_attach_replacement(*vol)
                    .expect("recovery rebuild re-attach failed");
            }
        }
        // Delivery subsystem: links come back in journal order (indices
        // stable); surviving streams get fresh sessions under their new
        // client ids — a fresh session, like a fresh stream clock, means
        // the client rebuffers from the resume point with zero carried
        // counters.
        for params in net_links {
            sys.net_add_link(params);
        }
        if let Some(on) = net_multicast {
            sys.net_set_multicast(on);
        }
        for (old_id, link, cfg) in net_sessions {
            if let Some(&new_id) = remap.get(&old_id) {
                sys.net_attach(ClientId(new_id), link, cfg);
            }
        }
        (sys, remap)
    }

    /// Re-anchors a recovered player at the first frame the crashed run
    /// had not yet delivered. The stream seeks to that frame's media
    /// timestamp and restarts with a fresh initial delay;
    /// `playback_start` is set so `due(k*)` equals the new delivery
    /// anchor, keeping the frame cadence exact from there on. A player
    /// whose every frame was already due before `resume_at` is marked
    /// done instead.
    pub fn resume_playback(&mut self, client: ClientId, old_start: Instant, resume_at: Instant) {
        let (time_scale, mode, target) = {
            let Some(p) = self.state.players.get(&client.0) else {
                return;
            };
            let mut k = 0u32;
            let mut target = None;
            while let Some(ch) = p.table.get(k) {
                if old_start + ch.timestamp.mul_f64(p.time_scale) > resume_at {
                    target = Some((k, ch.timestamp));
                    break;
                }
                k += p.stride;
            }
            (p.time_scale, p.mode, target)
        };
        let Some((k, ts)) = target else {
            // Every frame was already due: the stream finished before
            // the crash; nothing to resume.
            if let Some(p) = self.state.players.get_mut(&client.0) {
                p.done = true;
            }
            return;
        };
        self.activate_cras();
        let now = self.now();
        let begin = match mode {
            PlayerMode::Cras { stream } => {
                self.state.cras.seek(stream, now, ts);
                self.state.cras.start(stream, now)
            }
            PlayerMode::Ufs { .. } => {
                let delay = self.state.cfg.server.interval
                    * self.state.cfg.server.initial_delay_intervals as u64;
                now + delay
            }
        };
        let new_start = begin - ts.mul_f64(time_scale);
        {
            let p = self
                .state
                .players
                .get_mut(&client.0)
                .expect("checked above");
            p.playback_start = new_start;
            p.next_frame = k;
        }
        self.engine
            .schedule(begin.max(now), Event::PlayerFrame(client));
        self.journal.append(
            now,
            JournalRecord::Started {
                client: client.0,
                playback_start: new_start,
            },
        );
    }

    // ----- event dispatch (the executor) ------------------------------

    /// Pops one event's worth of work: completes the substrate
    /// interaction the event carries (CPU slice end, disk completion),
    /// runs the matching pure transition on [`SysState`], then applies
    /// the emitted actions in push order.
    fn handle(&mut self, ev: Event, now: Instant) {
        debug_assert!(self.actions.is_empty());
        let mut acts = std::mem::take(&mut self.actions);
        match ev {
            Event::CrasTick => self.state.on_cras_tick(now, &mut acts),
            Event::CpuSlice(tok) => {
                let out = self.cpu.slice_end(tok, now);
                if let Some((at, t)) = out.resched {
                    self.engine.schedule(at, Event::CpuSlice(t));
                }
                if let Some(done) = out.completed {
                    // A scheduler tick consumes the per-spindle load
                    // snapshot (device queue depths + recent completion
                    // lag) for coded-read steering. Substrate state is
                    // executor-owned, so it is sampled here — like disk
                    // completions — and handed to the pure transition
                    // through the server's setter.
                    if matches!(self.state.tags.resolve(done.tag), CpuTag::CrasSched) {
                        let depths = self.disks.outstanding_depths();
                        let lags = self
                            .state
                            .metrics
                            .recent_volume_lag(depths.len(), STEER_LAG_WINDOW);
                        let loads: Vec<VolumeLoad> = depths
                            .into_iter()
                            .zip(lags)
                            .map(|(queued, lag)| VolumeLoad { queued, lag })
                            .collect();
                        self.state.cras.set_volume_loads(&loads);
                    }
                    self.state.on_cpu_done(done.tag, now, &mut acts);
                }
            }
            Event::DiskDone(vol) => {
                let (done, next) = self.disks.complete(VolumeId(vol), now);
                if let Some(at) = next {
                    self.engine.schedule(at, Event::DiskDone(vol));
                }
                let vol_down = self.disks.is_down(VolumeId(vol));
                self.state.on_disk_done(vol, done, vol_down, now, &mut acts);
            }
            Event::PlayerFrame(c) | Event::PlayerPoll(c) => {
                self.state.on_player_tick(c, now, &mut acts)
            }
            Event::BgKick(c) => self.state.on_bg_kick(c, now, &mut acts),
            Event::BgWrite(c) => self.state.on_bg_write(c, now, &mut acts),
            Event::Sync => self.state.on_sync(now, &mut acts),
            Event::RebuildStep(gen) => self.state.on_rebuild_step(gen, now, &mut acts),
            Event::Checkpoint(seq) => self.state.on_checkpoint(seq, &mut acts),
            Event::NetLinkFree(link) => self.state.on_net_link_free(link, now, &mut acts),
            Event::NetArrive { link, pkt } => self.state.on_net_arrive(link, pkt, now, &mut acts),
            Event::NetNak(c, ord) => self.state.on_net_nak(c, ord, now, &mut acts),
            Event::NetPlayout(c, ord) => self.state.on_net_playout(c, ord, now, &mut acts),
            Event::NetRetry(c) => self.state.net_resume(c, now, &mut acts),
        }
        self.apply(&mut acts, now);
        self.actions = acts;
    }

    /// Applies emitted actions in push order. Every action lands at the
    /// virtual instant the transition ran, so the insertion sequence
    /// into the engine queue is exactly what the old inline handlers
    /// produced.
    fn apply(&mut self, acts: &mut Vec<Action>, now: Instant) {
        for act in acts.drain(..) {
            match act {
                Action::SubmitDisk { vol, req } => {
                    if let Some(at) = self.disks.submit(VolumeId(vol), now, req) {
                        self.engine.schedule(at, Event::DiskDone(vol));
                    }
                }
                Action::SubmitBatch { vol, reqs } => {
                    if let Some(at) = self.disks.submit_batch(vol, now, reqs) {
                        self.engine.schedule(at, Event::DiskDone(vol.0));
                    }
                }
                Action::Schedule { at, ev } => {
                    self.engine.schedule(at, ev);
                }
                Action::WakeCpu { tid, burst, tag } => {
                    if let Some((at, tok)) = self.cpu.wake(tid, burst, tag, now) {
                        self.engine.schedule(at, Event::CpuSlice(tok));
                    }
                }
                Action::DeadlineWarn { index } => {
                    self.deadline_port.send(now, index);
                }
                Action::Trace { component, message } => {
                    self.state.trace.log(now, component, message);
                }
                Action::Journal(rec) => {
                    self.journal.append(now, rec);
                }
            }
        }
    }
}

impl SysState {
    fn on_rebuild_step(&mut self, gen: u64, now: Instant, acts: &mut Vec<Action>) {
        // Load-aware pacing: scale the configured rate cap by the spare
        // fraction the recent intervals actually left on the table, so a
        // lightly loaded array rebuilds near the cap while a busy one
        // backs off. The floor keeps a saturated system from starving
        // the rebuild outright.
        let slack = self
            .metrics
            .recent_slack(self.cfg.server.interval, REBUILD_SLACK_WINDOW);
        let rate = self.cfg.rebuild_rate * slack.max(REBUILD_RATE_FLOOR);
        let Some(rb) = &mut self.rebuild else {
            return;
        };
        if rb.generation() != gen {
            // A pacing event scheduled by an aborted rebuild: letting it
            // through would advance the new rebuild's chunk cursor and
            // double-issue a chunk.
            return;
        }
        rb.set_rate(rate);
        match rb.take_next() {
            Some((idx, c)) => {
                // Normal-priority I/O: the RT queue's strict priority
                // protects admitted streams from the rebuild traffic.
                if c.srcs.is_empty() {
                    // Nothing survives to read (the parity of an
                    // all-absent tail row is zeros): write directly.
                    self.submit_disk(
                        c.dst_vol,
                        DiskRequest::write(c.dst_block, c.nblocks, DiskTag::RebuildWrite(gen, idx)),
                        acts,
                    );
                } else {
                    for s in &c.srcs {
                        self.submit_disk(
                            s.vol,
                            DiskRequest::read(s.block, s.nblocks, DiskTag::RebuildRead(gen, idx)),
                            acts,
                        );
                    }
                }
            }
            None => self.finish_rebuild(now, acts),
        }
    }

    fn finish_rebuild(&mut self, now: Instant, acts: &mut Vec<Action>) {
        let Some(rb) = self.rebuild.take() else {
            return;
        };
        self.cras.set_volume_failed(VolumeId(rb.volume()), false);
        self.metrics.rebuild_finished_at = Some(now);
        self.metrics.rebuild_bytes = rb.copied_bytes();
        self.trace_with("rebuild", acts, || {
            format!(
                "volume {} rebuilt ({} bytes)",
                rb.volume(),
                rb.copied_bytes()
            )
        });
        acts.push(Action::Journal(JournalRecord::RebuildFinished {
            vol: rb.volume(),
        }));
    }

    /// Emits a CPU wake: interns the completion tag and defers the wake
    /// to the executor.
    fn wake_cpu(&mut self, tid: ThreadId, burst: Duration, tag: CpuTag, acts: &mut Vec<Action>) {
        let id = self.tags.intern(tag);
        acts.push(Action::WakeCpu {
            tid,
            burst,
            tag: id,
        });
    }

    /// Emits a disk submit.
    fn submit_disk(&self, vol: u32, req: DiskRequest<DiskTag>, acts: &mut Vec<Action>) {
        acts.push(Action::SubmitDisk { vol, req });
    }

    /// Emits a trace record, building the message only while tracing is
    /// enabled (preserving the disabled-path cost of `Trace::log_with`).
    fn trace_with<F: FnOnce() -> String>(
        &self,
        component: &'static str,
        acts: &mut Vec<Action>,
        f: F,
    ) {
        if self.trace.is_enabled() {
            acts.push(Action::Trace {
                component,
                message: f(),
            });
        }
    }

    /// The `Event::Checkpoint` transition: stamp the marker into the
    /// journal.
    fn on_checkpoint(&mut self, seq: u32, acts: &mut Vec<Action>) {
        acts.push(Action::Journal(JournalRecord::Checkpoint { seq }));
    }

    /// [`IssueMode::SerialVolumes`] only: releases the next staged
    /// per-volume batch once the previous one has fully completed.
    fn issue_next_serial_batch(&mut self, acts: &mut Vec<Action>) {
        debug_assert!(self.serial_outstanding.is_empty());
        let Some(batch) = self.serial_batches.pop_front() else {
            return;
        };
        for r in &batch {
            self.serial_outstanding.insert(r.id.0);
        }
        for r in batch {
            self.submit_disk(
                r.volume.0,
                DiskRequest::rt_read(r.block, r.nblocks, DiskTag::Cras(r.id)),
                acts,
            );
        }
    }

    /// [`IssueMode::SerialVolumes`] only: retires `rid` from the
    /// in-flight batch (adding `retries` re-issued in its place) and
    /// releases the next batch when the current one drains.
    fn on_serial_read_settled(&mut self, rid: ReadId, retries: &[ReadId], acts: &mut Vec<Action>) {
        if self.issue != IssueMode::SerialVolumes {
            return;
        }
        self.serial_outstanding.remove(&rid.0);
        for r in retries {
            self.serial_outstanding.insert(r.0);
        }
        if self.serial_outstanding.is_empty() {
            self.issue_next_serial_batch(acts);
        }
    }

    fn on_cras_tick(&mut self, now: Instant, acts: &mut Vec<Action>) {
        // The request-scheduler thread must win the CPU before the
        // interval pass happens; under round robin this is where delay
        // creeps in (Figure 10).
        let streams = self.cras.stream_count() as u64;
        let burst = self.cfg.costs.cras_tick_base
            + Duration::from_nanos(self.cfg.costs.cras_tick_per_stream.as_nanos() * streams.max(1));
        self.wake_cpu(self.cras_tid, burst, CpuTag::CrasSched, acts);
        let next = now + self.cfg.server.interval;
        acts.push(Action::Schedule {
            at: next,
            ev: Event::CrasTick,
        });
    }

    /// The completion half of a CPU burst: the executor has already
    /// ended the slice and re-armed the scheduler; this transition
    /// routes the interned completion tag.
    fn on_cpu_done(&mut self, tag: u64, now: Instant, acts: &mut Vec<Action>) {
        match self.tags.resolve(tag) {
            CpuTag::CrasSched => {
                let rep = self.cras.interval_tick(now);
                if rep.overran {
                    // The paper's recovery action is a warning message.
                    acts.push(Action::DeadlineWarn { index: rep.index });
                    self.trace_with("deadline", acts, || {
                        format!("interval {} overran", rep.index)
                    });
                }
                self.trace_with("cras", acts, || {
                    format!(
                        "tick {}: {} reads, {} chunks posted",
                        rep.index,
                        rep.reqs.len(),
                        rep.posted_chunks
                    )
                });
                if rep.steered_streams > 0 {
                    self.trace_with("cras", acts, || {
                        format!(
                            "tick {}: {} stream(s) steered to parity fan-out",
                            rep.index, rep.steered_streams
                        )
                    });
                }
                if rep.lost_streams > 0 {
                    self.trace_with("cras", acts, || {
                        format!(
                            "tick {}: {} stream batch(es) dropped, no live replica",
                            rep.index, rep.lost_streams
                        )
                    });
                }
                self.metrics.on_interval(&rep, now);
                // A parked stream's viewer pauses (rebuffers) instead
                // of burning its poll budget against a frozen clock;
                // the gateway may retry admission for it later via
                // `System::resume_playback`.
                for sid in &rep.parked_streams {
                    let paused = self.players.values_mut().find(
                        |p| matches!(p.mode, PlayerMode::Cras { stream } if stream.0 == *sid),
                    );
                    if let Some(p) = paused {
                        p.paused = true;
                    }
                }
                // A drained deferred stream now holds a real disk share:
                // journal the promotion so crash recovery re-admits it
                // as an ordinary disk stream from here on.
                for sid in &rep.deferred_reserved {
                    let client = self.players.values().find_map(|p| match p.mode {
                        PlayerMode::Cras { stream } if stream.0 == *sid => Some(p.id.0),
                        _ => None,
                    });
                    if let Some(client) = client {
                        acts.push(Action::Journal(JournalRecord::DiskShareReserved { client }));
                    }
                }
                match self.issue {
                    IssueMode::Pipelined => {
                        // Hand every spindle its whole batch at tick
                        // time: each volume chains through its own
                        // real-time queue, one op in flight per
                        // spindle, and the interval's I/O ends with the
                        // slowest volume — max(per-volume), the same
                        // quantity the admission test bounds.
                        for (vol, batch) in rep.volume_batches() {
                            let reqs: Vec<DiskRequest<DiskTag>> = batch
                                .iter()
                                .map(|r| {
                                    DiskRequest::rt_read(r.block, r.nblocks, DiskTag::Cras(r.id))
                                })
                                .collect();
                            acts.push(Action::SubmitBatch { vol, reqs });
                        }
                    }
                    IssueMode::SerialVolumes => {
                        // Baseline: stage the batches and release them
                        // one volume at a time, the next only when the
                        // previous fully completes — interval time
                        // degrades toward sum(per-volume).
                        for (_, batch) in rep.volume_batches() {
                            self.serial_batches.push_back(batch.to_vec());
                        }
                        if self.serial_outstanding.is_empty() {
                            self.issue_next_serial_batch(acts);
                        }
                    }
                }
            }
            CpuTag::PlayerDecode { client, frame } => {
                self.on_frame_decoded(client, frame, now, acts);
            }
            CpuTag::Hog(i) => {
                let burst = self.cfg.costs.hog_burst;
                let tid = self.hog_tids[i as usize];
                self.wake_cpu(tid, burst, CpuTag::Hog(i), acts);
            }
            CpuTag::UfsServe => {}
        }
    }

    /// The transition for a disk completion. The executor has already
    /// popped `done` from the volume and chained the next `DiskDone`;
    /// `vol_down` is the device's down state at completion time.
    fn on_disk_done(
        &mut self,
        vol: u32,
        done: Completed<DiskTag>,
        vol_down: bool,
        now: Instant,
        acts: &mut Vec<Action>,
    ) {
        match done.req.tag {
            DiskTag::Cras(rid) if done.failed => {
                // Failure detection lives in the I/O-done manager: a
                // fast-error from a down volume takes the spindle out of
                // admission and steering; the failed read is re-issued
                // against the surviving replica (degraded read) or, with
                // no replica, its batch is dropped.
                let v = VolumeId(vol);
                if vol_down && !self.cras.volume_failed(v) {
                    self.cras.set_volume_failed(v, true);
                    if self.metrics.volume_failed_at.is_none() {
                        self.metrics.volume_failed_at = Some(now);
                    }
                    self.trace_with("volume", acts, || format!("volume {vol} error detected"));
                    acts.push(Action::Journal(JournalRecord::VolumeFailed { vol }));
                }
                let retries = self.cras.io_failed(rid);
                let ids: Vec<ReadId> = retries.iter().map(|r| r.id).collect();
                self.metrics.on_cras_read_failed(rid, &done, &ids);
                for r in &retries {
                    self.submit_disk(
                        r.volume.0,
                        DiskRequest::rt_read(r.block, r.nblocks, DiskTag::Cras(r.id)),
                        acts,
                    );
                }
                self.on_serial_read_settled(rid, &ids, acts);
            }
            DiskTag::Cras(rid) => {
                self.metrics.on_cras_read_done(rid, &done);
                // I/O-done manager thread: cheap, handled inline.
                self.cras.io_done(rid, now);
                self.on_serial_read_settled(rid, &[], acts);
            }
            DiskTag::CrasWrite(_) => {
                self.metrics.cras_write_bytes += done.req.bytes();
            }
            DiskTag::RebuildRead(gen, idx) => {
                // A completion whose generation does not match the live
                // rebuild belongs to an aborted one; its index would be
                // read against the wrong chunk list. Drop it.
                let Some(rb) = self.rebuild.as_mut().filter(|rb| rb.generation() == gen) else {
                    return;
                };
                if done.failed {
                    // A surviving source failed under us: abort.
                    self.rebuild = None;
                } else if rb.source_done() {
                    // A mirror copy has one source; a parity
                    // reconstruction reads all g-1 survivors and XORs
                    // them — the write starts when the last lands.
                    let c = rb.chunk(idx);
                    let (dv, db, nb) = (c.dst_vol, c.dst_block, c.nblocks);
                    self.submit_disk(
                        dv,
                        DiskRequest::write(db, nb, DiskTag::RebuildWrite(gen, idx)),
                        acts,
                    );
                }
            }
            DiskTag::RebuildWrite(gen, idx) => {
                let Some(rb) = self.rebuild.as_mut().filter(|rb| rb.generation() == gen) else {
                    return;
                };
                if done.failed {
                    self.rebuild = None;
                } else {
                    match rb.chunk_copied(idx, now) {
                        Some(due) => {
                            acts.push(Action::Schedule {
                                at: due,
                                ev: Event::RebuildStep(gen),
                            });
                        }
                        None => self.finish_rebuild(now, acts),
                    }
                }
            }
            DiskTag::UfsWriteback(_, _) => {}
            DiskTag::UfsFetch(v, run) | DiskTag::UfsReadAhead(v, run) => {
                for b in run.blocks() {
                    self.fs[v as usize].mark_cached(b);
                    self.inflight_blocks.remove(&(v, b));
                }
                self.check_server_wait(now, acts);
            }
            DiskTag::Raw(_) => {}
        }
    }

    /// Issues a read through the Unix server on behalf of `owner`, against
    /// the file system on `vol`.
    #[allow(clippy::too_many_arguments)]
    fn ufs_read(
        &mut self,
        vol: u32,
        owner: UOwner,
        ino: Ino,
        offset: u64,
        len: u64,
        now: Instant,
        acts: &mut Vec<Action>,
    ) {
        let plan = self.fs[vol as usize].plan_read(ino, offset, len);
        let req = FsReq {
            tag: UReq { vol, owner },
            fetch: plan.fetch,
            read_ahead: plan.read_ahead,
        };
        if let Some(step) = self.userver.submit(req) {
            self.drive_userver(step, now, acts);
        }
    }

    /// Advances the server when the blocks its fetch step waits on have
    /// all arrived.
    fn check_server_wait(&mut self, now: Instant, acts: &mut Vec<Action>) {
        let done = match &mut self.server_wait {
            None => false,
            Some(wait) => {
                // Keep only blocks whose I/O is still in flight.
                wait.retain(|k| self.inflight_blocks.contains(k));
                wait.is_empty()
            }
        };
        if done {
            self.server_wait = None;
            let step = self.userver.fetch_done();
            self.drive_userver(step, now, acts);
        }
    }

    fn drive_userver(&mut self, first: Step<UReq>, now: Instant, acts: &mut Vec<Action>) {
        let mut step = Some(first);
        while let Some(s) = step.take() {
            match s {
                Step::Fetch(run) => {
                    let vol = self
                        .userver
                        .current_tag()
                        .expect("a fetch step implies a request in service")
                        .vol;
                    // Blocks may have arrived (or be in flight) since the
                    // plan was made: fetch only what is truly absent, and
                    // sleep on in-flight buffers instead of re-issuing.
                    let missing: Vec<cras_ufs::FsBlock> = run
                        .blocks()
                        .filter(|b| !self.fs[vol as usize].cache().peek(*b))
                        .collect();
                    if missing.is_empty() {
                        step = Some(self.userver.fetch_done());
                        continue;
                    }
                    let to_submit: Vec<cras_ufs::FsBlock> = missing
                        .iter()
                        .copied()
                        .filter(|b| !self.inflight_blocks.contains(&(vol, *b)))
                        .collect();
                    for sub in cras_ufs::fs::merge_runs(&to_submit, u32::MAX) {
                        for b in sub.blocks() {
                            self.inflight_blocks.insert((vol, b));
                        }
                        self.submit_disk(
                            vol,
                            DiskRequest::read(
                                fsblock_to_disk(sub.start),
                                SECT_PER_FSBLOCK * sub.len,
                                DiskTag::UfsFetch(vol, sub),
                            ),
                            acts,
                        );
                    }
                    self.server_wait = Some(missing.into_iter().map(|b| (vol, b)).collect());
                    // The server blocks until the blocks arrive.
                    return;
                }
                Step::Done(req) => {
                    let vol = req.tag.vol;
                    // Driver-level asynchronous read-ahead fills the cache
                    // without occupying the server; blocks already cached
                    // or in flight are skipped.
                    for run in &req.read_ahead {
                        let fresh: Vec<cras_ufs::FsBlock> = run
                            .blocks()
                            .filter(|b| {
                                !self.fs[vol as usize].cache().peek(*b)
                                    && !self.inflight_blocks.contains(&(vol, *b))
                            })
                            .collect();
                        for sub in cras_ufs::fs::merge_runs(&fresh, u32::MAX) {
                            for b in sub.blocks() {
                                self.inflight_blocks.insert((vol, b));
                            }
                            self.submit_disk(
                                vol,
                                DiskRequest::read(
                                    fsblock_to_disk(sub.start),
                                    SECT_PER_FSBLOCK * sub.len,
                                    DiskTag::UfsReadAhead(vol, sub),
                                ),
                                acts,
                            );
                        }
                    }
                    match req.tag.owner {
                        UOwner::Player {
                            client,
                            frame,
                            bytes: _,
                        } => {
                            // The player may be gone by the time its read
                            // completes (stopped, or its shard killed while
                            // the block was in flight): the completion is a
                            // logged drop, not a decode.
                            match self.players.get(&client.0).map(|p| p.tid) {
                                Some(tid) => self.wake_cpu(
                                    tid,
                                    self.cfg.costs.decode,
                                    CpuTag::PlayerDecode { client, frame },
                                    acts,
                                ),
                                None => self.trace_with("userver", acts, || {
                                    format!(
                                        "client {} gone; read for frame {frame} dropped",
                                        client.0
                                    )
                                }),
                            }
                        }
                        UOwner::Bg { client, bytes } => {
                            let min_cycle = self.cfg.costs.bg_cycle;
                            if let Some(bg) = self.bgs.get_mut(&client.0) {
                                bg.complete(bytes);
                                let at = now + bg.pause.max(min_cycle);
                                acts.push(Action::Schedule {
                                    at,
                                    ev: Event::BgKick(client),
                                });
                            } else {
                                self.trace_with("userver", acts, || {
                                    format!("bg client {} gone; completion dropped", client.0)
                                });
                            }
                        }
                    }
                    step = self.userver.next_request();
                }
            }
        }
    }

    fn on_player_tick(&mut self, client: ClientId, now: Instant, acts: &mut Vec<Action>) {
        let Some(player) = self.players.get(&client.0) else {
            return;
        };
        if player.done || player.paused {
            // A paused (rebuffering) viewer absorbs queued frame/poll
            // events without rescheduling; `resume_playback` restarts
            // the schedule with a fresh event.
            return;
        }
        let k = player.next_frame;
        let Some(chunk) = player.table.get(k).copied() else {
            // A queued PlayerFrame event can outlive the frame table it
            // indexes (a shard-down race against re-admission): retire
            // the player as a journal-visible drop instead of panicking
            // inside the event loop.
            self.trace_with("player", acts, || {
                format!("client {} frame {k} out of range; player retired", client.0)
            });
            if let Some(p) = self.players.get_mut(&client.0) {
                p.done = true;
            }
            return;
        };
        match player.mode {
            PlayerMode::Cras { stream } => {
                let got = self.cras.get(stream, chunk.timestamp);
                match got {
                    Some(_buffered) => {
                        let tid = self.players.get(&client.0).expect("exists").tid;
                        self.wake_cpu(
                            tid,
                            self.cfg.costs.decode,
                            CpuTag::PlayerDecode { client, frame: k },
                            acts,
                        );
                    }
                    None => {
                        let media_now = self.cras.media_time(stream, now);
                        let jitter = self.cfg.server.jitter;
                        let poll = self.cfg.poll;
                        let p = self.players.get_mut(&client.0).expect("exists");
                        p.stats.polls += 1;
                        p.polls_this_frame += 1;
                        let expired = media_now > chunk.timestamp + jitter;
                        if expired || p.polls_this_frame > 1000 {
                            if let Some(_due) = p.frame_dropped(now) {
                                let due = p.due(p.next_frame).max(now);
                                acts.push(Action::Schedule {
                                    at: due,
                                    ev: Event::PlayerFrame(client),
                                });
                            }
                            self.trace_with("player", acts, || {
                                format!("client {} dropped frame {k}", client.0)
                            });
                        } else {
                            acts.push(Action::Schedule {
                                at: now + poll,
                                ev: Event::PlayerPoll(client),
                            });
                        }
                    }
                }
            }
            PlayerMode::Ufs { ino, vol } => {
                self.ufs_read(
                    vol,
                    UOwner::Player {
                        client,
                        frame: k,
                        bytes: chunk.size,
                    },
                    ino,
                    chunk.file_offset,
                    chunk.size as u64,
                    now,
                    acts,
                );
            }
        }
    }

    fn on_frame_decoded(
        &mut self,
        client: ClientId,
        frame: u32,
        now: Instant,
        acts: &mut Vec<Action>,
    ) {
        let Some(player) = self.players.get_mut(&client.0) else {
            return;
        };
        if let Some(due) = player.frame_shown(frame, now) {
            let at = due.max(now);
            acts.push(Action::Schedule {
                at,
                ev: Event::PlayerFrame(client),
            });
        }
        if self.net.has_session(client.0) {
            self.net_deliver_frame(client, frame, now, acts);
        }
    }

    // ----- delivery subsystem transitions (DESIGN §18) ----------------

    /// Aligns `client`'s multicast membership with the cache manager's
    /// join state, resolving the leader stream to its client. Called at
    /// playback start (so the group exists before the leader's first
    /// transmission — no startup NAK repair) and again on every decode
    /// (joins dissolve when a member parks or seeks away).
    fn net_sync_join(&mut self, client: ClientId) {
        if !self.net.has_session(client.0) {
            return;
        }
        let Some(p) = self.players.get(&client.0) else {
            return;
        };
        let leader_client = match p.mode {
            PlayerMode::Cras { stream } => match self.cras.cache_state_of(stream) {
                CacheState::Joined { leader } => self
                    .players
                    .iter()
                    .find(
                        |(_, q)| matches!(q.mode, PlayerMode::Cras { stream: s } if s.0 == leader),
                    )
                    .map(|(&cid, _)| cid),
                _ => None,
            },
            PlayerMode::Ufs { .. } => None,
        };
        self.net.sync_membership(client.0, leader_client);
    }

    /// Hands a decoded frame to the delivery subsystem: aligns multicast
    /// membership with the cache manager's join state, then transmits
    /// (or, for a group member, registers the frame against the
    /// leader's shared packet).
    fn net_deliver_frame(
        &mut self,
        client: ClientId,
        frame: u32,
        now: Instant,
        acts: &mut Vec<Action>,
    ) {
        let Some(p) = self.players.get(&client.0) else {
            return;
        };
        let Some(chunk) = p.table.get(frame).copied() else {
            return;
        };
        self.net_sync_join(client);
        let mut fx = Vec::new();
        self.net.send_frame(
            client.0,
            frame,
            chunk.size as u64,
            chunk.timestamp,
            now,
            &mut fx,
        );
        self.apply_net_effects(fx, now, acts);
    }

    fn on_net_link_free(&mut self, link: u32, now: Instant, acts: &mut Vec<Action>) {
        let mut fx = Vec::new();
        self.net.on_link_free(link, now, &mut fx);
        self.apply_net_effects(fx, now, acts);
    }

    fn on_net_arrive(&mut self, link: u32, pkt: u64, now: Instant, acts: &mut Vec<Action>) {
        let mut fx = Vec::new();
        self.net.on_arrive(link, pkt, now, &mut fx);
        self.apply_net_effects(fx, now, acts);
    }

    fn on_net_nak(&mut self, client: ClientId, ord: u32, now: Instant, acts: &mut Vec<Action>) {
        let mut fx = Vec::new();
        self.net.on_nak(client.0, ord, now, &mut fx);
        self.apply_net_effects(fx, now, acts);
    }

    fn on_net_playout(&mut self, client: ClientId, ord: u32, now: Instant, acts: &mut Vec<Action>) {
        let mut fx = Vec::new();
        self.net.on_playout(client.0, ord, now, &mut fx);
        self.apply_net_effects(fx, now, acts);
    }

    /// Maps the delivery machine's requested effects onto the §14 action
    /// seam: timers become scheduled events, park/resume requests run
    /// their stream-layer transitions inline (they emit further actions
    /// but never further net effects, so this does not recurse).
    fn apply_net_effects(&mut self, fx: Vec<NetEffect>, now: Instant, acts: &mut Vec<Action>) {
        for e in fx {
            match e {
                NetEffect::LinkFree { at, link } => acts.push(Action::Schedule {
                    at,
                    ev: Event::NetLinkFree(link),
                }),
                NetEffect::Arrive { at, link, pkt } => acts.push(Action::Schedule {
                    at,
                    ev: Event::NetArrive { link, pkt },
                }),
                NetEffect::Nak { at, session, ord } => acts.push(Action::Schedule {
                    at,
                    ev: Event::NetNak(ClientId(session), ord),
                }),
                NetEffect::Playout { at, session, ord } => acts.push(Action::Schedule {
                    at,
                    ev: Event::NetPlayout(ClientId(session), ord),
                }),
                NetEffect::Park { session } => self.net_park(ClientId(session), now, acts),
                NetEffect::Resume { session } => self.net_resume(ClientId(session), now, acts),
            }
        }
    }

    /// Credit exhausted: the client's playout buffer crossed its high
    /// watermark, so park the feeding stream — it sheds its cache pins
    /// and disk share until the client drains. A stream some other
    /// machinery already parked simply rides along (the net-side resume
    /// will retry it like any rebuffer).
    fn net_park(&mut self, client: ClientId, now: Instant, acts: &mut Vec<Action>) {
        let Some(p) = self.players.get(&client.0) else {
            self.net.mark_resumed(client.0);
            return;
        };
        let PlayerMode::Cras { stream } = p.mode else {
            self.net.mark_resumed(client.0);
            return;
        };
        if p.done {
            self.net.mark_resumed(client.0);
            return;
        }
        if p.paused {
            return;
        }
        if self.cras.park(stream, now) {
            self.players.get_mut(&client.0).expect("checked").paused = true;
            self.metrics.net_parks += 1;
            self.trace_with("net", acts, || {
                format!("client {} parked by delivery backpressure", client.0)
            });
        } else {
            self.net.mark_resumed(client.0);
        }
    }

    /// Credit restored: the buffer drained below the low watermark, so
    /// resume the feeding stream through the ordinary feed ladder. When
    /// the ladder has no capacity yet the attempt re-arms on a timer —
    /// a fully drained session generates no more playout events, so the
    /// chain cannot re-trigger the resume by itself.
    fn net_resume(&mut self, client: ClientId, now: Instant, acts: &mut Vec<Action>) {
        if !self.net.is_parked(client.0) {
            self.net.mark_resumed(client.0);
            return;
        }
        let Some(p) = self.players.get(&client.0) else {
            self.net.mark_resumed(client.0);
            return;
        };
        if p.done {
            self.net.mark_resumed(client.0);
            return;
        }
        if !p.paused {
            // Something else (a gateway failover, the workload's retry
            // loop) already resumed the stream.
            self.net.mark_resumed(client.0);
            return;
        }
        let PlayerMode::Cras { stream } = p.mode else {
            self.net.mark_resumed(client.0);
            return;
        };
        match self.cras.resume(stream, now) {
            Some((begin, disk)) => {
                let p = self.players.get_mut(&client.0).expect("checked");
                p.paused = false;
                p.polls_this_frame = 0;
                acts.push(Action::Schedule {
                    at: begin,
                    ev: Event::PlayerFrame(client),
                });
                if disk {
                    acts.push(Action::Journal(JournalRecord::DiskShareReserved {
                        client: client.0,
                    }));
                }
                self.metrics.resumed_streams += 1;
                self.net.mark_resumed(client.0);
            }
            None => acts.push(Action::Schedule {
                at: now + self.cfg.server.interval,
                ev: Event::NetRetry(client),
            }),
        }
    }

    fn on_bg_write(&mut self, client: ClientId, now: Instant, acts: &mut Vec<Action>) {
        let Some(w) = self.writers.get_mut(&client.0) else {
            return;
        };
        let (ino, vol, bytes, period) = (w.ino, w.vol, w.write_size, w.period);
        w.complete();
        // Delayed write: allocate + dirty in memory; no disk I/O here.
        self.fs[vol as usize]
            .append_dirty(ino, bytes)
            .expect("edit file grows within limits");
        acts.push(Action::Schedule {
            at: now + period,
            ev: Event::BgWrite(client),
        });
    }

    fn on_sync(&mut self, now: Instant, acts: &mut Vec<Action>) {
        // Flush everything dirty each pass, like the classic update
        // daemon: write-back arrives in bursts, which is exactly the
        // disk contention the editing experiment studies.
        for v in 0..self.fs.len() {
            let runs = self.fs[v].take_dirty(usize::MAX);
            for run in runs {
                self.submit_disk(
                    v as u32,
                    DiskRequest::write(
                        fsblock_to_disk(run.start),
                        SECT_PER_FSBLOCK * run.len,
                        DiskTag::UfsWriteback(v as u32, run),
                    ),
                    acts,
                );
            }
        }
        if !self.writers.is_empty() {
            acts.push(Action::Schedule {
                at: now + Duration::from_secs(1),
                ev: Event::Sync,
            });
        }
    }

    fn on_bg_kick(&mut self, client: ClientId, now: Instant, acts: &mut Vec<Action>) {
        let Some(bg) = self.bgs.get(&client.0) else {
            return;
        };
        if bg.in_flight {
            return;
        }
        let (pos, len) = bg.next_range();
        let (ino, vol) = (bg.ino, bg.vol);
        self.bgs.get_mut(&client.0).expect("exists").in_flight = true;
        self.ufs_read(
            vol,
            UOwner::Bg { client, bytes: len },
            ino,
            pos,
            len,
            now,
            acts,
        );
    }
}

/// Composes the placed extent map of a striped movie from the per-volume
/// stripe files' extent maps. Stripe `k` (logical bytes
/// `[k·S, k·S+len)`) is the `k/N`-th stripe inside volume `k mod N`'s
/// stripe file; only the final logical stripe may be short, and it is the
/// last one in its file, so within-file stripe offsets are exact
/// multiples of the stripe unit.
fn striped_extents(maps: &[Vec<Extent>], stripe_bytes: u64, total: u64) -> Vec<VolumeExtent> {
    let n = maps.len() as u64;
    let mut out = Vec::new();
    let mut logical = 0u64;
    let mut k = 0u64;
    while logical < total {
        let len = stripe_bytes.min(total - logical);
        let vol = (k % n) as usize;
        let within = (k / n) * stripe_bytes;
        let (lo, hi) = (within, within + len);
        for e in &maps[vol] {
            let e_lo = e.file_offset;
            let e_hi = e.file_offset + e.nblocks as u64 * 512;
            let a = lo.max(e_lo);
            let b = hi.min(e_hi);
            if a >= b {
                continue;
            }
            out.push(VolumeExtent {
                volume: VolumeId(vol as u32),
                extent: Extent {
                    file_offset: logical + (a - lo),
                    disk_block: e.disk_block + (a - e_lo) / 512,
                    nblocks: (b - a).div_ceil(512) as u32,
                },
            });
        }
        logical += len;
        k += 1;
    }
    out
}

/// Composes the placed logical extent map of a parity movie's *data*
/// bytes from the band's per-volume data-unit files. Data unit `k`
/// (logical bytes `[k·S, k·S+len)`) is the `data_file_index(k)`-th unit
/// inside its volume's data file; only the final logical unit may be
/// short, and it is the last one in its file, so within-file unit
/// offsets are exact multiples of the stripe unit.
fn parity_data_extents(geom: &ParityGeometry, maps: &[Vec<Extent>]) -> Vec<VolumeExtent> {
    let sb = geom.stripe_bytes;
    let mut out = Vec::new();
    for k in 0..geom.data_units() {
        let len = geom.unit_len(k);
        let vol = geom.data_volume(k);
        let within = geom.data_file_index(k) * sb;
        let (lo, hi) = (within, within + len);
        for e in &maps[(vol.0 - geom.base) as usize] {
            let e_lo = e.file_offset;
            let e_hi = e.file_offset + e.nblocks as u64 * 512;
            let a = lo.max(e_lo);
            let b = hi.min(e_hi);
            if a >= b {
                continue;
            }
            out.push(VolumeExtent {
                volume: vol,
                extent: Extent {
                    file_offset: k * sb + (a - lo),
                    disk_block: e.disk_block + (a - e_lo) / 512,
                    nblocks: (b - a).div_ceil(512) as u32,
                },
            });
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use cras_media::StreamProfile;

    fn sys(cfg: SysConfig) -> System {
        System::new(cfg)
    }

    #[test]
    fn single_cras_player_plays_smoothly() {
        let mut s = sys(SysConfig::default());
        let movie = s.record_movie("m", StreamProfile::mpeg1(), 10.0);
        let c = s.add_cras_player(&movie, 1).unwrap();
        s.start_playback(c);
        s.run_for(Duration::from_secs(15));
        let p = &s.players[&c.0];
        assert!(p.done, "playback should finish");
        assert_eq!(p.stats.frames_dropped, 0, "no drops expected");
        assert_eq!(p.stats.frames_shown, 300);
        let (mean, max) = p.delay_summary();
        // Delay is decode cost plus scheduling noise: a few ms.
        assert!(mean < 0.010, "mean delay {mean}");
        assert!(max < 0.050, "max delay {max}");
    }

    #[test]
    fn single_ufs_player_plays() {
        let mut s = sys(SysConfig::default());
        let movie = s.record_movie("m", StreamProfile::mpeg1(), 5.0);
        let c = s.add_ufs_player(&movie, 1);
        s.start_playback(c);
        s.run_for(Duration::from_secs(10));
        let p = &s.players[&c.0];
        assert!(p.done);
        assert_eq!(p.stats.frames_shown, 150);
        let (mean, _max) = p.delay_summary();
        // Unloaded UFS still pays a disk trip per frame: delay small but
        // larger than CRAS's.
        assert!(mean < 0.050, "mean delay {mean}");
    }

    #[test]
    fn cras_beats_ufs_under_background_load() {
        // The Figure 7 contrast in miniature.
        let run = |use_cras: bool| -> (f64, f64) {
            let mut s = sys(SysConfig::default());
            let movie = s.record_movie("m", StreamProfile::mpeg1(), 8.0);
            let noise = s.record_movie("noise", StreamProfile::mpeg2(), 20.0);
            let c = if use_cras {
                s.add_cras_player(&movie, 1).unwrap()
            } else {
                s.add_ufs_player(&movie, 1)
            };
            s.add_bg_reader(&noise);
            s.add_bg_reader(&noise);
            s.start_bg();
            s.start_playback(c);
            s.run_for(Duration::from_secs(15));
            s.players[&c.0].delay_summary()
        };
        let (cras_mean, cras_max) = run(true);
        let (ufs_mean, ufs_max) = run(false);
        assert!(
            cras_max < ufs_max,
            "cras max {cras_max} vs ufs max {ufs_max}"
        );
        assert!(
            cras_mean < ufs_mean,
            "cras mean {cras_mean} vs ufs mean {ufs_mean}"
        );
    }

    #[test]
    fn admission_rejects_overload_when_enforced() {
        let mut s = sys(SysConfig::default());
        let movies: Vec<Movie> = (0..30)
            .map(|i| s.record_movie(&format!("m{i}"), StreamProfile::mpeg1(), 5.0))
            .collect();
        let mut admitted = 0;
        for m in &movies {
            match s.add_cras_player(m, 1) {
                Ok(_) => admitted += 1,
                Err(_) => break,
            }
        }
        assert!((10..=20).contains(&admitted), "admitted {admitted} streams");
    }

    #[test]
    fn hogs_delay_round_robin_player_only() {
        let run = |mode: SchedMode| -> f64 {
            let mut cfg = SysConfig::default();
            cfg.sched = mode;
            cfg.hogs = 2;
            let mut s = sys(cfg);
            let movie = s.record_movie("m", StreamProfile::mpeg1(), 6.0);
            let c = s.add_cras_player(&movie, 1).unwrap();
            s.start_hogs();
            s.start_playback(c);
            s.run_for(Duration::from_secs(10));
            s.players[&c.0].delay_summary().1
        };
        let fp_max = run(SchedMode::FixedPriority);
        let rr_max = run(SchedMode::RoundRobin {
            quantum: Duration::from_millis(100),
        });
        assert!(
            rr_max > 5.0 * fp_max.max(0.001),
            "rr {rr_max} vs fp {fp_max}"
        );
    }

    #[test]
    fn trace_captures_server_activity() {
        let mut s = sys(SysConfig::default());
        s.trace.set_enabled(true);
        let movie = s.record_movie("m", StreamProfile::mpeg1(), 4.0);
        let c = s.add_cras_player(&movie, 1).unwrap();
        s.start_playback(c);
        s.run_for(Duration::from_secs(6));
        let rendered = s.trace.render();
        assert!(rendered.contains("cras"), "trace: {rendered}");
        assert!(rendered.contains("reads"), "trace: {rendered}");
        // No drops in this scenario => no player drop records.
        assert!(!rendered.contains("dropped frame"));
    }

    #[test]
    fn admission_ratio_measured() {
        let mut s = sys(SysConfig::default());
        let movie = s.record_movie("m", StreamProfile::mpeg1(), 10.0);
        let c = s.add_cras_player(&movie, 1).unwrap();
        s.start_playback(c);
        s.run_for(Duration::from_secs(12));
        let (avg, max) = s.metrics.ratio_summary(1);
        // One low-rate stream: the paper finds the estimate very
        // pessimistic (actual well under calculated).
        assert!(avg > 0.0 && avg < 0.6, "avg ratio {avg}");
        assert!(max < 1.0, "max ratio {max}");
    }

    #[test]
    fn round_robin_places_movies_on_alternate_volumes() {
        let mut cfg = SysConfig::default();
        cfg.server.volumes = 2;
        let mut s = sys(cfg);
        let a = s.record_movie("a", StreamProfile::mpeg1(), 4.0);
        let b = s.record_movie("b", StreamProfile::mpeg1(), 4.0);
        match s.placement(&a.name) {
            Some(MoviePlacement::Whole { vol, .. }) => assert_eq!(*vol, 0),
            other => panic!("unexpected placement {other:?}"),
        }
        match s.placement(&b.name) {
            Some(MoviePlacement::Whole { vol, .. }) => assert_eq!(*vol, 1),
            other => panic!("unexpected placement {other:?}"),
        }
    }

    #[test]
    fn two_volume_system_plays_from_both_disks() {
        let mut cfg = SysConfig::default();
        cfg.server.volumes = 2;
        let mut s = sys(cfg);
        let a = s.record_movie("a", StreamProfile::mpeg1(), 8.0);
        let b = s.record_movie("b", StreamProfile::mpeg1(), 8.0);
        let ca = s.add_cras_player(&a, 1).unwrap();
        let cb = s.add_cras_player(&b, 1).unwrap();
        s.start_playback(ca);
        s.start_playback(cb);
        s.run_for(Duration::from_secs(12));
        for c in [ca, cb] {
            let p = &s.players[&c.0];
            assert!(p.done, "player {} unfinished", c.0);
            assert_eq!(p.stats.frames_dropped, 0, "player {} dropped", c.0);
        }
        let (rt0, _) = s.disks.volume(VolumeId(0)).stats().ops;
        let (rt1, _) = s.disks.volume(VolumeId(1)).stats().ops;
        assert!(rt0 > 0, "volume 0 idle");
        assert!(rt1 > 0, "volume 1 idle");
    }

    #[test]
    fn striped_movie_reads_every_volume() {
        let mut cfg = SysConfig::default();
        cfg.server.volumes = 2;
        cfg.server.placement = PlacementPolicy::Striped {
            stripe_bytes: 256 * 1024,
        };
        let mut s = sys(cfg);
        let movie = s.record_movie("m", StreamProfile::mpeg1(), 8.0);
        let c = s.add_cras_player(&movie, 1).unwrap();
        s.start_playback(c);
        s.run_for(Duration::from_secs(12));
        let p = &s.players[&c.0];
        assert!(p.done, "playback should finish");
        assert_eq!(p.stats.frames_dropped, 0, "no drops expected");
        let (rt0, _) = s.disks.volume(VolumeId(0)).stats().ops;
        let (rt1, _) = s.disks.volume(VolumeId(1)).stats().ops;
        assert!(rt0 > 0, "volume 0 idle");
        assert!(rt1 > 0, "volume 1 idle");
    }

    #[test]
    fn striped_extents_cover_movie_bytes_in_order() {
        let mut cfg = SysConfig::default();
        cfg.server.volumes = 2;
        cfg.server.placement = PlacementPolicy::Striped {
            stripe_bytes: 256 * 1024,
        };
        let mut s = sys(cfg);
        let movie = s.record_movie("m", StreamProfile::mpeg1(), 6.0);
        let extents = s.movie_extents(&movie);
        assert!(extents.len() >= 2, "striping should split extents");
        let mut cursor = 0u64;
        for ve in &extents {
            assert_eq!(ve.extent.file_offset, cursor, "gap in logical bytes");
            cursor += ve.extent.nblocks as u64 * 512;
        }
        assert!(
            cursor >= movie.table.total_bytes(),
            "extents cover the movie"
        );
        let vols: std::collections::BTreeSet<u32> = extents.iter().map(|ve| ve.volume.0).collect();
        assert_eq!(vols.len(), 2, "both volumes hold data");
    }

    fn mirrored_cfg(volumes: usize) -> SysConfig {
        let mut cfg = SysConfig::default();
        cfg.server.volumes = volumes;
        cfg.server.placement = PlacementPolicy::Mirrored;
        cfg
    }

    fn mirrored_placement(s: &System, name: &str) -> (u32, u32) {
        match s.placement(name) {
            Some(MoviePlacement::Mirrored {
                primary, mirror, ..
            }) => (*primary, *mirror),
            other => panic!("unexpected placement {other:?}"),
        }
    }

    #[test]
    fn mirrored_movies_never_share_the_spindle() {
        let mut s = sys(mirrored_cfg(4));
        for i in 0..6 {
            let name = format!("m{i}");
            s.record_movie(&name, StreamProfile::mpeg1(), 3.0);
            let (p, m) = mirrored_placement(&s, &name);
            assert_ne!(p, m, "movie {name} mirrored onto its own volume");
        }
    }

    #[test]
    fn mirrored_stream_survives_a_volume_failure() {
        let mut s = sys(mirrored_cfg(4));
        let movie = s.record_movie("m", StreamProfile::mpeg1(), 10.0);
        let c = s.add_cras_player(&movie, 1).unwrap();
        s.start_playback(c);
        s.run_for(Duration::from_secs(3));
        let (p, _) = mirrored_placement(&s, "m");
        s.fail_volume(p);
        s.run_for(Duration::from_secs(12));
        let pl = &s.players[&c.0];
        assert!(pl.done, "playback should finish through the failure");
        assert_eq!(pl.stats.frames_dropped, 0, "mirrored stream dropped");
        assert_eq!(s.metrics.overruns, 0, "deadline missed during failover");
        assert!(
            s.metrics.degraded_intervals > 0,
            "the mirror should have served intervals"
        );
    }

    #[test]
    fn rebuild_restores_the_volume_at_the_configured_rate() {
        let mut s = sys(mirrored_cfg(4));
        let movie = s.record_movie("m", StreamProfile::mpeg1(), 20.0);
        let c = s.add_cras_player(&movie, 1).unwrap();
        s.start_playback(c);
        s.run_for(Duration::from_secs(2));
        let (_, m) = mirrored_placement(&s, "m");
        s.fail_volume(m);
        // Let the dead volume's error queue drain before attaching.
        s.run_for(Duration::from_secs(1));
        s.attach_replacement(m);
        assert!(s.rebuild_active());
        s.run_for(Duration::from_secs(25));
        assert!(!s.rebuild_active(), "rebuild should have completed");
        let t = s.metrics.rebuild_time().expect("rebuild finished");
        assert!(s.metrics.rebuild_bytes > 0);
        // Rate control: the copy may not beat the configured rate.
        let floor = s.metrics.rebuild_bytes as f64 / s.cfg.rebuild_rate;
        assert!(
            t.as_secs_f64() >= floor * 0.99,
            "rebuild {}s beat the rate floor {floor}s",
            t.as_secs_f64()
        );
        assert!(!s.cras.volume_failed(VolumeId(m)), "capacity not restored");
        assert!(!s.volume_health()[m as usize].down);
        let pl = &s.players[&c.0];
        assert_eq!(pl.stats.frames_dropped, 0, "rebuild traffic dropped frames");
        assert_eq!(s.metrics.overruns, 0, "rebuild caused deadline misses");
    }

    #[test]
    fn injector_scheduled_failure_is_detected_by_io_done() {
        // The volume dies via the fault injector's schedule, not via an
        // explicit call: the I/O-done manager must notice the failed read
        // and take the spindle out of steering on its own.
        let mut s = sys(mirrored_cfg(4));
        let movie = s.record_movie("m", StreamProfile::mpeg1(), 10.0);
        let (p, _) = mirrored_placement(&s, "m");
        s.disks
            .volume_mut(VolumeId(p))
            .set_fault_injector(Some(cras_disk::FaultInjector::none(7)));
        let t_fail = Instant::ZERO + Duration::from_secs(4);
        if let Some(f) = s.disks.volume_mut(VolumeId(p)).fault_injector_mut() {
            f.fail_volume_at(t_fail);
        }
        let c = s.add_cras_player(&movie, 1).unwrap();
        s.start_playback(c);
        s.run_for(Duration::from_secs(15));
        assert!(s.cras.volume_failed(VolumeId(p)), "failure not detected");
        assert!(s.metrics.degraded_reads > 0, "no degraded reads recorded");
        let pl = &s.players[&c.0];
        assert!(pl.done);
        assert_eq!(pl.stats.frames_dropped, 0);
        let health = s.volume_health();
        assert!(health[p as usize].down);
        assert!(health[p as usize].ops_seen > 0);
    }

    #[test]
    fn attach_refuses_until_the_error_queue_drains() {
        let mut s = sys(mirrored_cfg(4));
        s.record_movie("m", StreamProfile::mpeg1(), 5.0);
        let (p, _) = mirrored_placement(&s, "m");
        let q = (p + 1) % 4;
        assert_eq!(s.try_attach_replacement(q), Err(AttachError::NotFailed));
        // Put an op in flight on the spindle, then declare it failed:
        // the op's completion still has to travel the event queue, so an
        // immediate attach races the drain and must be refused (the old
        // panicking path fired exactly here).
        let now = s.now();
        if let Some(at) = s.disks.submit(
            VolumeId(p),
            now,
            DiskRequest::read(1_000, 64, DiskTag::Raw(7)),
        ) {
            s.engine.schedule(at, Event::DiskDone(p));
        }
        s.fail_volume(p);
        assert_eq!(s.try_attach_replacement(p), Err(AttachError::DeviceBusy));
        assert!(
            !s.rebuild_active(),
            "refused attach must not start a rebuild"
        );
        s.run_for(Duration::from_secs(1));
        assert_eq!(s.try_attach_replacement(p), Ok(()));
        assert!(s.rebuild_active());
        assert_eq!(
            s.try_attach_replacement(p),
            Err(AttachError::RebuildRunning)
        );
    }

    #[test]
    fn second_failure_mid_rebuild_restarts_cleanly() {
        // A rebuild is aborted mid-copy by a second failure of the same
        // volume, and a new rebuild starts while the aborted one's
        // pacing events (and possibly a copy-op completion) are still in
        // the event queue. The generation tags must keep those stale
        // events from driving the new rebuild's chunk cursor — the
        // refailed run has to copy exactly what a clean run copies.
        let run = |refail: bool| -> u64 {
            let mut cfg = mirrored_cfg(4);
            // Slow the copy so the second failure lands mid-rebuild.
            cfg.rebuild_rate = 256.0 * 1024.0;
            let mut s = sys(cfg);
            s.record_movie("m", StreamProfile::mpeg1(), 10.0);
            let (_, m) = mirrored_placement(&s, "m");
            s.fail_volume(m);
            s.run_for(Duration::from_secs(1));
            s.attach_replacement(m);
            if refail {
                s.run_for(Duration::from_millis(1500));
                assert!(s.rebuild_active(), "rebuild finished too early");
                s.fail_volume(m);
                assert!(!s.rebuild_active(), "second failure must abort");
                let mut tries = 0;
                while let Err(e) = s.try_attach_replacement(m) {
                    assert_eq!(e, AttachError::DeviceBusy);
                    tries += 1;
                    assert!(tries < 1000, "attach never succeeded");
                    s.run_for(Duration::from_millis(1));
                }
            }
            s.run_for(Duration::from_secs(60));
            assert!(!s.rebuild_active(), "rebuild should have completed");
            assert!(!s.cras.volume_failed(VolumeId(m)));
            s.metrics.rebuild_bytes
        };
        let clean = run(false);
        assert!(clean > 0);
        assert_eq!(
            run(true),
            clean,
            "stale events from the aborted rebuild drove the new one"
        );
    }

    #[test]
    fn serial_issue_baseline_still_meets_light_deadlines() {
        let mut cfg = SysConfig::default();
        cfg.server.volumes = 2;
        cfg.server.placement = PlacementPolicy::Striped {
            stripe_bytes: 256 * 1024,
        };
        let mut s = sys(cfg);
        s.set_issue_mode(IssueMode::SerialVolumes);
        let movie = s.record_movie("m", StreamProfile::mpeg1(), 8.0);
        let c = s.add_cras_player(&movie, 1).unwrap();
        s.start_playback(c);
        s.run_for(Duration::from_secs(12));
        let p = &s.players[&c.0];
        assert!(p.done, "light serial load should still finish");
        assert_eq!(p.stats.frames_dropped, 0);
        assert!(
            s.serial_batches.is_empty() && s.serial_outstanding.is_empty(),
            "staged batches drained"
        );
        assert!(!s.metrics.interval_walls().is_empty());
    }

    #[test]
    #[should_panic(expected = "striped movie is not supported")]
    fn ufs_player_on_striped_movie_panics() {
        let mut cfg = SysConfig::default();
        cfg.server.volumes = 2;
        cfg.server.placement = PlacementPolicy::Striped {
            stripe_bytes: 256 * 1024,
        };
        let mut s = sys(cfg);
        let movie = s.record_movie("m", StreamProfile::mpeg1(), 4.0);
        s.add_ufs_player(&movie, 1);
    }

    fn parity_cfg(volumes: usize, group: usize) -> SysConfig {
        let mut cfg = SysConfig::default();
        cfg.server.volumes = volumes;
        cfg.server.placement = PlacementPolicy::Parity { group };
        cfg
    }

    /// The victim volume's on-disk footprint for one parity movie:
    /// block-rounded data units plus full parity units — exactly what a
    /// reconstruction rebuild must write back.
    fn parity_footprint_on(s: &System, name: &str, vol: u32) -> u64 {
        match s.placement(name) {
            Some(MoviePlacement::Parity {
                base,
                group,
                stripe_bytes,
                total_bytes,
                ..
            }) => {
                let geom = ParityGeometry::new(*base, *group, *stripe_bytes, *total_bytes);
                let v = vol - *base;
                (0..geom.data_units())
                    .filter(|&k| geom.data_volume(k).0 == vol)
                    .map(|k| geom.unit_len(k).div_ceil(512) * 512)
                    .sum::<u64>()
                    + geom.parity_bytes_on(v)
            }
            other => panic!("unexpected placement {other:?}"),
        }
    }

    #[test]
    fn parity_extents_cover_the_movie_across_the_band() {
        let mut s = sys(parity_cfg(4, 4));
        let movie = s.record_movie("m", StreamProfile::mpeg1(), 6.0);
        let extents = s.movie_extents(&movie);
        let mut cursor = 0u64;
        for ve in &extents {
            assert_eq!(ve.extent.file_offset, cursor, "gap in logical bytes");
            cursor += ve.extent.nblocks as u64 * 512;
        }
        assert!(
            cursor >= movie.table.total_bytes(),
            "extents cover the movie"
        );
        let vols: std::collections::BTreeSet<u32> = extents.iter().map(|ve| ve.volume.0).collect();
        assert_eq!(vols.len(), 4, "every band volume holds data units");
        let ps = s.movie_parity_state(&movie).expect("parity state");
        for v in 0..4u32 {
            let mapped: u64 = ps.parity_maps[v as usize]
                .iter()
                .map(|e| e.extent.bytes())
                .sum();
            assert!(
                mapped >= ps.geom.parity_bytes_on(v),
                "volume {v} parity file too small"
            );
        }
    }

    #[test]
    fn parity_stream_survives_a_volume_failure() {
        let mut s = sys(parity_cfg(4, 4));
        let movie = s.record_movie("m", StreamProfile::mpeg1(), 10.0);
        let c = s.add_cras_player(&movie, 1).unwrap();
        s.start_playback(c);
        s.run_for(Duration::from_secs(3));
        s.fail_volume(1);
        s.run_for(Duration::from_secs(12));
        let pl = &s.players[&c.0];
        assert!(pl.done, "playback should finish through the failure");
        assert_eq!(pl.stats.frames_dropped, 0, "parity stream dropped");
        assert_eq!(s.metrics.overruns, 0, "deadline missed during failover");
        assert!(
            s.metrics.degraded_intervals > 0,
            "survivors should have served degraded intervals"
        );
        assert_eq!(s.metrics.lost_reads, 0, "single failure lost data");
    }

    #[test]
    fn parity_rebuild_writes_back_the_victims_exact_footprint() {
        // Across fail points: whichever band volume dies, the
        // reconstruction rebuild must write exactly that volume's data
        // and parity units to the replacement — no more, no less.
        for victim in [0u32, 2, 3] {
            let mut s = sys(parity_cfg(4, 4));
            let movie = s.record_movie("m", StreamProfile::mpeg1(), 12.0);
            let expect = parity_footprint_on(&s, "m", victim);
            let c = s.add_cras_player(&movie, 1).unwrap();
            s.start_playback(c);
            s.run_for(Duration::from_secs(2));
            s.fail_volume(victim);
            s.run_for(Duration::from_secs(1));
            s.attach_replacement(victim);
            assert!(s.rebuild_active());
            s.run_for(Duration::from_secs(40));
            assert!(!s.rebuild_active(), "rebuild should have completed");
            assert_eq!(
                s.metrics.rebuild_bytes, expect,
                "victim {victim} footprint mismatch"
            );
            assert!(
                !s.cras.volume_failed(VolumeId(victim)),
                "capacity not restored"
            );
            let pl = &s.players[&c.0];
            assert_eq!(pl.stats.frames_dropped, 0, "victim {victim} dropped frames");
        }
    }

    #[test]
    fn parity_rebuild_respects_the_load_scaled_rate() {
        let mut s = sys(parity_cfg(4, 4));
        let movie = s.record_movie("m", StreamProfile::mpeg1(), 25.0);
        let c = s.add_cras_player(&movie, 1).unwrap();
        s.start_playback(c);
        s.run_for(Duration::from_secs(2));
        s.fail_volume(2);
        s.run_for(Duration::from_secs(1));
        s.attach_replacement(2);
        s.run_for(Duration::from_secs(60));
        assert!(!s.rebuild_active(), "rebuild should have completed");
        let t = s.metrics.rebuild_time().expect("rebuild finished");
        // Load-aware pacing only ever scales the configured cap *down*,
        // so the cap's rate floor still binds.
        let floor = s.metrics.rebuild_bytes as f64 / s.cfg.rebuild_rate;
        assert!(
            t.as_secs_f64() >= floor * 0.99,
            "rebuild {}s beat the rate cap floor {floor}s",
            t.as_secs_f64()
        );
        assert_eq!(s.players[&c.0].stats.frames_dropped, 0);
        assert_eq!(s.metrics.overruns, 0);
    }
}
