//! The orchestrated system: one event loop binding the disk, the CPU, the
//! Unix server, CRAS and the client applications.
//!
//! Components are pure state machines; this module is the only place
//! events are scheduled. Every figure in the paper is a run of this system
//! under a different configuration.

use std::collections::{BTreeMap, HashSet};

use cras_core::{AdmissionError, CrasServer};
use cras_disk::{DiskDevice, DiskRequest};
use cras_media::{Movie, StreamProfile};
use cras_rtmach::port::{FullPolicy, Port};
use cras_rtmach::{Cpu, SchedPolicy, ThreadId};
use cras_sim::trace::Trace;
use cras_sim::{Duration, Engine, Instant, Rng};
use cras_ufs::layout::fsblock_to_disk;
use cras_ufs::{FsReq, Ino, MkfsParams, Step, Ufs, UnixServer, SECT_PER_FSBLOCK};

use crate::bgload::{BgReader, BgWriter};
use crate::config::{prio, SchedMode, SysConfig};
use crate::metrics::Metrics;
use crate::player::{Player, PlayerMode};
use crate::tags::{ClientId, CpuTag, DiskTag, Event, TagArena};

/// Owner of a Unix-server request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UOwner {
    /// A player reading frame `frame` (`bytes` media bytes).
    Player {
        /// The player.
        client: ClientId,
        /// Frame index.
        frame: u32,
        /// Frame size in bytes.
        bytes: u32,
    },
    /// A background reader finishing a `bytes`-byte read call.
    Bg {
        /// The reader.
        client: ClientId,
        /// Read-call length.
        bytes: u64,
    },
}

/// The assembled system.
pub struct System {
    /// Configuration it was built with.
    pub cfg: SysConfig,
    /// The event queue and virtual clock.
    pub engine: Engine<Event>,
    /// The disk.
    pub disk: DiskDevice<DiskTag>,
    /// The CPU.
    pub cpu: Cpu,
    /// The file system.
    pub ufs: Ufs,
    /// The serialized Unix server.
    pub userver: UnixServer<UOwner>,
    /// The CRAS server.
    pub cras: CrasServer,
    /// Players by client id.
    pub players: BTreeMap<u32, Player>,
    /// Background readers by client id.
    pub bgs: BTreeMap<u32, BgReader>,
    /// Background writers by client id.
    pub writers: BTreeMap<u32, BgWriter>,
    /// Measurements.
    pub metrics: Metrics,
    /// The deadline notification port: one message per interval overrun,
    /// consumed by the deadline-manager role (bounded; losing an old
    /// warning is acceptable, as in Real-Time Mach).
    pub deadline_port: Port<u64>,
    /// Post-mortem event trace (disabled by default; enable with
    /// `sys.trace.set_enabled(true)`).
    pub trace: Trace,
    tags: TagArena,
    /// File-system blocks with disk I/O in flight (sync or read-ahead).
    inflight_blocks: HashSet<cras_ufs::FsBlock>,
    /// Blocks the Unix server's current fetch step is waiting on.
    server_wait: Option<HashSet<cras_ufs::FsBlock>>,
    cras_tid: ThreadId,
    hog_tids: Vec<ThreadId>,
    next_client: u32,
    rng: Rng,
    ticks_active: bool,
}

impl System {
    /// Builds a system: ST32550N disk, tuned UFS, calibrated CRAS.
    ///
    /// Disk parameters for the admission test come from running the
    /// Appendix A calibration against a scratch copy of the same disk
    /// model — CRAS only ever sees what a real system could measure.
    pub fn new(cfg: SysConfig) -> System {
        let mut rng = Rng::new(cfg.seed);
        let mut disk: DiskDevice<DiskTag> = DiskDevice::st32550n();
        if cfg.disk_fault_prob > 0.0 {
            disk.set_fault_injector(Some(cras_disk::FaultInjector::new(
                cfg.disk_fault_prob,
                cfg.disk_fault_penalty,
                cfg.seed ^ 0xFA17,
            )));
        }
        let mut scratch: DiskDevice<u8> = DiskDevice::st32550n();
        let cal = cras_disk::calibrate::calibrate(&mut scratch, 64 * 1024);
        let geom = disk.geometry().clone();
        let ufs = Ufs::format(&geom, MkfsParams::tuned(&geom), rng.fork().next_u64());
        let cras = CrasServer::new(cal.params, cfg.server);
        let mut cpu = Cpu::new();
        let cras_tid = cpu.create("cras-sched", Self::policy_for(&cfg, prio::CRAS));
        let hog_tids = (0..cfg.hogs)
            .map(|i| cpu.create(&format!("hog{i}"), Self::policy_for(&cfg, prio::HOG)))
            .collect();
        System {
            cfg,
            engine: Engine::new(),
            disk,
            cpu,
            ufs,
            userver: UnixServer::new(),
            cras,
            players: BTreeMap::new(),
            bgs: BTreeMap::new(),
            writers: BTreeMap::new(),
            metrics: Metrics::new(),
            deadline_port: Port::new(64, FullPolicy::DropOldest),
            trace: Trace::new(4096),
            tags: TagArena::default(),
            inflight_blocks: HashSet::new(),
            server_wait: None,
            cras_tid,
            hog_tids,
            next_client: 0,
            rng,
            ticks_active: false,
        }
    }

    fn policy_for(cfg: &SysConfig, fixed_prio: u8) -> SchedPolicy {
        match cfg.sched {
            SchedMode::FixedPriority => SchedPolicy::FixedPriority { prio: fixed_prio },
            SchedMode::RoundRobin { quantum } => SchedPolicy::RoundRobin {
                prio: prio::RR,
                quantum,
            },
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> Instant {
        self.engine.now()
    }

    /// Records a movie into the file system (setup phase; consumes no
    /// simulated time).
    pub fn record_movie(&mut self, name: &str, profile: StreamProfile, secs: f64) -> Movie {
        cras_media::record_movie(&mut self.ufs, name, profile, secs, &mut self.rng)
            .expect("movie recording failed")
    }

    /// Starts CRAS's interval timer (idempotent).
    pub fn activate_cras(&mut self) {
        if !self.ticks_active {
            self.ticks_active = true;
            self.engine.schedule_now(Event::CrasTick);
        }
    }

    /// Starts the configured CPU hogs.
    pub fn start_hogs(&mut self) {
        let burst = self.cfg.costs.hog_burst;
        for (i, tid) in self.hog_tids.clone().into_iter().enumerate() {
            self.wake_cpu(tid, burst, CpuTag::Hog(i as u32));
        }
    }

    fn alloc_client(&mut self) -> ClientId {
        let id = ClientId(self.next_client);
        self.next_client += 1;
        id
    }

    /// Adds a player that consumes a movie through CRAS (`crs_open`).
    pub fn add_cras_player(
        &mut self,
        movie: &Movie,
        stride: u32,
    ) -> Result<ClientId, AdmissionError> {
        let extents = self.ufs.extent_map(movie.ino);
        let stream = if self.cfg.enforce_admission {
            self.cras.open(&movie.name, movie.table.clone(), extents)?
        } else {
            match self.cras.open(
                &movie.name,
                movie.table.clone(),
                self.ufs.extent_map(movie.ino),
            ) {
                Ok(id) => id,
                Err(_) => self.cras.open_unchecked(
                    &movie.name,
                    movie.table.clone(),
                    self.ufs.extent_map(movie.ino),
                ),
            }
        };
        let id = self.alloc_client();
        let tid = self.cpu.create(
            &format!("player{}", id.0),
            Self::policy_for(&self.cfg, prio::PLAYER),
        );
        self.players.insert(
            id.0,
            Player::new(
                id,
                PlayerMode::Cras { stream },
                movie.table.clone(),
                stride,
                tid,
            ),
        );
        Ok(id)
    }

    /// Adds a player that reads the movie through the Unix file system.
    pub fn add_ufs_player(&mut self, movie: &Movie, stride: u32) -> ClientId {
        let id = self.alloc_client();
        let tid = self.cpu.create(
            &format!("player{}", id.0),
            Self::policy_for(&self.cfg, prio::PLAYER),
        );
        self.players.insert(
            id.0,
            Player::new(
                id,
                PlayerMode::Ufs { ino: movie.ino },
                movie.table.clone(),
                stride,
                tid,
            ),
        );
        id
    }

    /// Adds a background `cat` reader over a movie file (64 KB reads,
    /// flat out).
    pub fn add_bg_reader(&mut self, movie: &Movie) -> ClientId {
        self.add_bg_reader_paced(movie, Duration::ZERO)
    }

    /// Adds a background reader that pauses between 64 KB reads —
    /// throttled load for experiments where the foreground must stay
    /// feasible (Figure 7 compares the systems "when both file systems
    /// achieve the same throughput").
    pub fn add_bg_reader_paced(&mut self, movie: &Movie, pause: Duration) -> ClientId {
        let id = self.alloc_client();
        let size = self.ufs.file_size(movie.ino);
        let mut bg = BgReader::new(id, movie.ino, size, 64 * 1024);
        bg.pause = pause;
        self.bgs.insert(id.0, bg);
        id
    }

    /// Adds an editor appending `write_size` bytes every `period` to a
    /// fresh file (delayed writes drained by the syncer).
    pub fn add_bg_writer(&mut self, name: &str, write_size: u64, period: Duration) -> ClientId {
        let id = self.alloc_client();
        let ino = self.ufs.create(name).expect("fresh edit file");
        self.writers
            .insert(id.0, BgWriter::new(id, ino, write_size, period));
        id
    }

    /// Starts the background writers and the syncer (1 s cadence, like
    /// the classic update daemon's spirit at media time scales).
    pub fn start_writers(&mut self) {
        let ids: Vec<u32> = self.writers.keys().copied().collect();
        for id in ids {
            self.engine.schedule_now(Event::BgWrite(ClientId(id)));
        }
        if !self.writers.is_empty() {
            self.engine
                .schedule_after(Duration::from_secs(1), Event::Sync);
        }
    }

    /// Starts the background readers now.
    pub fn start_bg(&mut self) {
        let now = self.now();
        let ids: Vec<u32> = self.bgs.keys().copied().collect();
        for id in ids {
            self.bgs.get_mut(&id).expect("just listed").started_at = now;
            self.engine.schedule_now(Event::BgKick(ClientId(id)));
        }
    }

    /// Begins playback for a player: CRAS players `crs_start` their
    /// stream (clock begins after the initial delay); UFS players get the
    /// same initial delay for comparability. Returns the playback start.
    pub fn start_playback(&mut self, client: ClientId) -> Instant {
        self.activate_cras();
        let now = self.now();
        let mode = self.players.get(&client.0).expect("no such player").mode;
        let start = match mode {
            PlayerMode::Cras { stream } => self.cras.start(stream, now),
            PlayerMode::Ufs { .. } => {
                let delay =
                    self.cfg.server.interval * self.cfg.server.initial_delay_intervals as u64;
                now + delay
            }
        };
        self.players
            .get_mut(&client.0)
            .expect("checked above")
            .playback_start = start;
        let due0 = self
            .players
            .get(&client.0)
            .expect("checked above")
            .due(0)
            .max(now);
        self.engine.schedule(due0, Event::PlayerFrame(client));
        start
    }

    /// Runs the event loop until `t` (events after `t` stay queued).
    pub fn run_until(&mut self, t: Instant) {
        while let Some(at) = self.engine.peek_time() {
            if at > t {
                break;
            }
            let Some((now, ev)) = self.engine.pop() else {
                break;
            };
            if now > t {
                // A cancelled tombstone hid this later event: re-queue.
                self.engine.schedule(now, ev);
                break;
            }
            self.handle(ev, now);
        }
    }

    /// Runs for `d` from the current time.
    pub fn run_for(&mut self, d: Duration) {
        let t = self.now() + d;
        self.run_until(t);
    }

    /// Whether every player has finished.
    pub fn all_players_done(&self) -> bool {
        self.players.values().all(|p| p.done)
    }

    // ----- event dispatch ---------------------------------------------

    fn handle(&mut self, ev: Event, now: Instant) {
        match ev {
            Event::CrasTick => self.on_cras_tick(now),
            Event::CpuSlice(tok) => self.on_cpu_slice(tok, now),
            Event::DiskDone => self.on_disk_done(now),
            Event::PlayerFrame(c) | Event::PlayerPoll(c) => self.on_player_tick(c, now),
            Event::BgKick(c) => self.on_bg_kick(c, now),
            Event::BgWrite(c) => self.on_bg_write(c, now),
            Event::Sync => self.on_sync(now),
            Event::RecorderTick => {}
            Event::Checkpoint(_) => {}
        }
    }

    fn wake_cpu(&mut self, tid: ThreadId, burst: Duration, tag: CpuTag) {
        let now = self.now();
        let id = self.tags.intern(tag);
        if let Some((at, tok)) = self.cpu.wake(tid, burst, id, now) {
            self.engine.schedule(at, Event::CpuSlice(tok));
        }
    }

    fn submit_disk(&mut self, req: DiskRequest<DiskTag>) {
        let now = self.now();
        if let Some(at) = self.disk.submit(now, req) {
            self.engine.schedule(at, Event::DiskDone);
        }
    }

    fn on_cras_tick(&mut self, now: Instant) {
        // The request-scheduler thread must win the CPU before the
        // interval pass happens; under round robin this is where delay
        // creeps in (Figure 10).
        let streams = self.cras.stream_count() as u64;
        let burst = self.cfg.costs.cras_tick_base
            + Duration::from_nanos(self.cfg.costs.cras_tick_per_stream.as_nanos() * streams.max(1));
        self.wake_cpu(self.cras_tid, burst, CpuTag::CrasSched);
        let next = now + self.cfg.server.interval;
        self.engine.schedule(next, Event::CrasTick);
    }

    fn on_cpu_slice(&mut self, tok: cras_rtmach::SliceToken, now: Instant) {
        let out = self.cpu.slice_end(tok, now);
        if let Some((at, t)) = out.resched {
            self.engine.schedule(at, Event::CpuSlice(t));
        }
        let Some(done) = out.completed else {
            return;
        };
        match self.tags.resolve(done.tag) {
            CpuTag::CrasSched => {
                let rep = self.cras.interval_tick(now);
                if rep.overran {
                    // The paper's recovery action is a warning message.
                    self.deadline_port.send(now, rep.index);
                    self.trace.log_with(now, "deadline", || {
                        format!("interval {} overran", rep.index)
                    });
                }
                self.trace.log_with(now, "cras", || {
                    format!(
                        "tick {}: {} reads, {} chunks posted",
                        rep.index,
                        rep.reqs.len(),
                        rep.posted_chunks
                    )
                });
                self.metrics.on_interval(&rep, now);
                for r in &rep.reqs {
                    self.submit_disk(DiskRequest::rt_read(
                        r.block,
                        r.nblocks,
                        DiskTag::Cras(r.id),
                    ));
                }
            }
            CpuTag::PlayerDecode { client, frame } => {
                self.on_frame_decoded(client, frame, now);
            }
            CpuTag::Hog(i) => {
                let burst = self.cfg.costs.hog_burst;
                let tid = self.hog_tids[i as usize];
                self.wake_cpu(tid, burst, CpuTag::Hog(i));
            }
            CpuTag::UfsServe => {}
        }
    }

    fn on_disk_done(&mut self, now: Instant) {
        let (done, next) = self.disk.complete(now);
        if let Some(at) = next {
            self.engine.schedule(at, Event::DiskDone);
        }
        match done.req.tag {
            DiskTag::Cras(rid) => {
                self.metrics.on_cras_read_done(rid, &done);
                // I/O-done manager thread: cheap, handled inline.
                self.cras.io_done(rid, now);
            }
            DiskTag::CrasWrite(_) => {
                self.metrics.cras_write_bytes += done.req.bytes();
            }
            DiskTag::UfsWriteback(_) => {}
            DiskTag::UfsFetch(run) | DiskTag::UfsReadAhead(run) => {
                for b in run.blocks() {
                    self.ufs.mark_cached(b);
                    self.inflight_blocks.remove(&b);
                }
                self.check_server_wait(now);
            }
            DiskTag::Raw(_) => {}
        }
    }

    /// Issues a read through the Unix server on behalf of `owner`.
    fn ufs_read(&mut self, owner: UOwner, ino: Ino, offset: u64, len: u64) {
        let plan = self.ufs.plan_read(ino, offset, len);
        let req = FsReq {
            tag: owner,
            fetch: plan.fetch,
            read_ahead: plan.read_ahead,
        };
        if let Some(step) = self.userver.submit(req) {
            let now = self.now();
            self.drive_userver(step, now);
        }
    }

    /// Advances the server when the blocks its fetch step waits on have
    /// all arrived.
    fn check_server_wait(&mut self, now: Instant) {
        let done = match &mut self.server_wait {
            None => false,
            Some(wait) => {
                // Keep only blocks whose I/O is still in flight.
                wait.retain(|b| self.inflight_blocks.contains(b));
                wait.is_empty()
            }
        };
        if done {
            self.server_wait = None;
            let step = self.userver.fetch_done();
            self.drive_userver(step, now);
        }
    }

    fn drive_userver(&mut self, first: Step<UOwner>, now: Instant) {
        let mut step = Some(first);
        while let Some(s) = step.take() {
            match s {
                Step::Fetch(run) => {
                    // Blocks may have arrived (or be in flight) since the
                    // plan was made: fetch only what is truly absent, and
                    // sleep on in-flight buffers instead of re-issuing.
                    let missing: Vec<cras_ufs::FsBlock> = run
                        .blocks()
                        .filter(|b| !self.ufs.cache().peek(*b))
                        .collect();
                    if missing.is_empty() {
                        step = Some(self.userver.fetch_done());
                        continue;
                    }
                    let to_submit: Vec<cras_ufs::FsBlock> = missing
                        .iter()
                        .copied()
                        .filter(|b| !self.inflight_blocks.contains(b))
                        .collect();
                    for sub in cras_ufs::fs::merge_runs(&to_submit, u32::MAX) {
                        for b in sub.blocks() {
                            self.inflight_blocks.insert(b);
                        }
                        self.submit_disk(DiskRequest::read(
                            fsblock_to_disk(sub.start),
                            SECT_PER_FSBLOCK * sub.len,
                            DiskTag::UfsFetch(sub),
                        ));
                    }
                    self.server_wait = Some(missing.into_iter().collect());
                    // The server blocks until the blocks arrive.
                    return;
                }
                Step::Done(req) => {
                    // Driver-level asynchronous read-ahead fills the cache
                    // without occupying the server; blocks already cached
                    // or in flight are skipped.
                    for run in &req.read_ahead {
                        let fresh: Vec<cras_ufs::FsBlock> = run
                            .blocks()
                            .filter(|b| {
                                !self.ufs.cache().peek(*b) && !self.inflight_blocks.contains(b)
                            })
                            .collect();
                        for sub in cras_ufs::fs::merge_runs(&fresh, u32::MAX) {
                            for b in sub.blocks() {
                                self.inflight_blocks.insert(b);
                            }
                            self.submit_disk(DiskRequest::read(
                                fsblock_to_disk(sub.start),
                                SECT_PER_FSBLOCK * sub.len,
                                DiskTag::UfsReadAhead(sub),
                            ));
                        }
                    }
                    match req.tag {
                        UOwner::Player {
                            client,
                            frame,
                            bytes: _,
                        } => {
                            let tid = self.players.get(&client.0).expect("player exists").tid;
                            self.wake_cpu(
                                tid,
                                self.cfg.costs.decode,
                                CpuTag::PlayerDecode { client, frame },
                            );
                        }
                        UOwner::Bg { client, bytes } => {
                            let min_cycle = self.cfg.costs.bg_cycle;
                            let bg = self.bgs.get_mut(&client.0).expect("bg exists");
                            bg.complete(bytes);
                            let at = now + bg.pause.max(min_cycle);
                            self.engine.schedule(at, Event::BgKick(client));
                        }
                    }
                    step = self.userver.next_request();
                }
            }
        }
    }

    fn on_player_tick(&mut self, client: ClientId, now: Instant) {
        let Some(player) = self.players.get(&client.0) else {
            return;
        };
        if player.done {
            return;
        }
        let k = player.next_frame;
        let chunk = *player.table.get(k).expect("frame in range");
        match player.mode {
            PlayerMode::Cras { stream } => {
                let got = self.cras.get(stream, chunk.timestamp);
                match got {
                    Some(_buffered) => {
                        let tid = self.players.get(&client.0).expect("exists").tid;
                        self.wake_cpu(
                            tid,
                            self.cfg.costs.decode,
                            CpuTag::PlayerDecode { client, frame: k },
                        );
                    }
                    None => {
                        let media_now = self.cras.media_time(stream, now);
                        let jitter = self.cfg.server.jitter;
                        let p = self.players.get_mut(&client.0).expect("exists");
                        p.stats.polls += 1;
                        p.polls_this_frame += 1;
                        let expired = media_now > chunk.timestamp + jitter;
                        if expired || p.polls_this_frame > 1000 {
                            self.trace.log_with(now, "player", || {
                                format!("client {} dropped frame {k}", client.0)
                            });
                            if let Some(_due) = p.frame_dropped(now) {
                                let due = p.due(p.next_frame).max(now);
                                self.engine.schedule(due, Event::PlayerFrame(client));
                            }
                        } else {
                            let at = now + self.cfg.poll;
                            self.engine.schedule(at, Event::PlayerPoll(client));
                        }
                    }
                }
            }
            PlayerMode::Ufs { ino } => {
                self.ufs_read(
                    UOwner::Player {
                        client,
                        frame: k,
                        bytes: chunk.size,
                    },
                    ino,
                    chunk.file_offset,
                    chunk.size as u64,
                );
            }
        }
    }

    fn on_frame_decoded(&mut self, client: ClientId, frame: u32, now: Instant) {
        let Some(player) = self.players.get_mut(&client.0) else {
            return;
        };
        if let Some(due) = player.frame_shown(frame, now) {
            let at = due.max(now);
            self.engine.schedule(at, Event::PlayerFrame(client));
        }
    }

    fn on_bg_write(&mut self, client: ClientId, _now: Instant) {
        let Some(w) = self.writers.get_mut(&client.0) else {
            return;
        };
        let (ino, bytes, period) = (w.ino, w.write_size, w.period);
        w.complete();
        // Delayed write: allocate + dirty in memory; no disk I/O here.
        self.ufs
            .append_dirty(ino, bytes)
            .expect("edit file grows within limits");
        self.engine.schedule_after(period, Event::BgWrite(client));
    }

    fn on_sync(&mut self, _now: Instant) {
        // Flush everything dirty each pass, like the classic update
        // daemon: write-back arrives in bursts, which is exactly the
        // disk contention the editing experiment studies.
        for run in self.ufs.take_dirty(usize::MAX) {
            self.submit_disk(DiskRequest::write(
                fsblock_to_disk(run.start),
                SECT_PER_FSBLOCK * run.len,
                DiskTag::UfsWriteback(run),
            ));
        }
        if !self.writers.is_empty() {
            self.engine
                .schedule_after(Duration::from_secs(1), Event::Sync);
        }
    }

    fn on_bg_kick(&mut self, client: ClientId, _now: Instant) {
        let Some(bg) = self.bgs.get(&client.0) else {
            return;
        };
        if bg.in_flight {
            return;
        }
        let (pos, len) = bg.next_range();
        let ino = bg.ino;
        self.bgs.get_mut(&client.0).expect("exists").in_flight = true;
        self.ufs_read(UOwner::Bg { client, bytes: len }, ino, pos, len);
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use cras_media::StreamProfile;

    fn sys(cfg: SysConfig) -> System {
        System::new(cfg)
    }

    #[test]
    fn single_cras_player_plays_smoothly() {
        let mut s = sys(SysConfig::default());
        let movie = s.record_movie("m", StreamProfile::mpeg1(), 10.0);
        let c = s.add_cras_player(&movie, 1).unwrap();
        s.start_playback(c);
        s.run_for(Duration::from_secs(15));
        let p = &s.players[&c.0];
        assert!(p.done, "playback should finish");
        assert_eq!(p.stats.frames_dropped, 0, "no drops expected");
        assert_eq!(p.stats.frames_shown, 300);
        let (mean, max) = p.delay_summary();
        // Delay is decode cost plus scheduling noise: a few ms.
        assert!(mean < 0.010, "mean delay {mean}");
        assert!(max < 0.050, "max delay {max}");
    }

    #[test]
    fn single_ufs_player_plays() {
        let mut s = sys(SysConfig::default());
        let movie = s.record_movie("m", StreamProfile::mpeg1(), 5.0);
        let c = s.add_ufs_player(&movie, 1);
        s.start_playback(c);
        s.run_for(Duration::from_secs(10));
        let p = &s.players[&c.0];
        assert!(p.done);
        assert_eq!(p.stats.frames_shown, 150);
        let (mean, _max) = p.delay_summary();
        // Unloaded UFS still pays a disk trip per frame: delay small but
        // larger than CRAS's.
        assert!(mean < 0.050, "mean delay {mean}");
    }

    #[test]
    fn cras_beats_ufs_under_background_load() {
        // The Figure 7 contrast in miniature.
        let run = |use_cras: bool| -> (f64, f64) {
            let mut s = sys(SysConfig::default());
            let movie = s.record_movie("m", StreamProfile::mpeg1(), 8.0);
            let noise = s.record_movie("noise", StreamProfile::mpeg2(), 20.0);
            let c = if use_cras {
                s.add_cras_player(&movie, 1).unwrap()
            } else {
                s.add_ufs_player(&movie, 1)
            };
            s.add_bg_reader(&noise);
            s.add_bg_reader(&noise);
            s.start_bg();
            s.start_playback(c);
            s.run_for(Duration::from_secs(15));
            s.players[&c.0].delay_summary()
        };
        let (cras_mean, cras_max) = run(true);
        let (ufs_mean, ufs_max) = run(false);
        assert!(
            cras_max < ufs_max,
            "cras max {cras_max} vs ufs max {ufs_max}"
        );
        assert!(
            cras_mean < ufs_mean,
            "cras mean {cras_mean} vs ufs mean {ufs_mean}"
        );
    }

    #[test]
    fn admission_rejects_overload_when_enforced() {
        let mut s = sys(SysConfig::default());
        let movies: Vec<Movie> = (0..30)
            .map(|i| s.record_movie(&format!("m{i}"), StreamProfile::mpeg1(), 5.0))
            .collect();
        let mut admitted = 0;
        for m in &movies {
            match s.add_cras_player(m, 1) {
                Ok(_) => admitted += 1,
                Err(_) => break,
            }
        }
        assert!((10..=20).contains(&admitted), "admitted {admitted} streams");
    }

    #[test]
    fn hogs_delay_round_robin_player_only() {
        let run = |mode: SchedMode| -> f64 {
            let mut cfg = SysConfig::default();
            cfg.sched = mode;
            cfg.hogs = 2;
            let mut s = sys(cfg);
            let movie = s.record_movie("m", StreamProfile::mpeg1(), 6.0);
            let c = s.add_cras_player(&movie, 1).unwrap();
            s.start_hogs();
            s.start_playback(c);
            s.run_for(Duration::from_secs(10));
            s.players[&c.0].delay_summary().1
        };
        let fp_max = run(SchedMode::FixedPriority);
        let rr_max = run(SchedMode::RoundRobin {
            quantum: Duration::from_millis(100),
        });
        assert!(
            rr_max > 5.0 * fp_max.max(0.001),
            "rr {rr_max} vs fp {fp_max}"
        );
    }

    #[test]
    fn trace_captures_server_activity() {
        let mut s = sys(SysConfig::default());
        s.trace.set_enabled(true);
        let movie = s.record_movie("m", StreamProfile::mpeg1(), 4.0);
        let c = s.add_cras_player(&movie, 1).unwrap();
        s.start_playback(c);
        s.run_for(Duration::from_secs(6));
        let rendered = s.trace.render();
        assert!(rendered.contains("cras"), "trace: {rendered}");
        assert!(rendered.contains("reads"), "trace: {rendered}");
        // No drops in this scenario => no player drop records.
        assert!(!rendered.contains("dropped frame"));
    }

    #[test]
    fn admission_ratio_measured() {
        let mut s = sys(SysConfig::default());
        let movie = s.record_movie("m", StreamProfile::mpeg1(), 10.0);
        let c = s.add_cras_player(&movie, 1).unwrap();
        s.start_playback(c);
        s.run_for(Duration::from_secs(12));
        let (avg, max) = s.metrics.ratio_summary(1);
        // One low-rate stream: the paper finds the estimate very
        // pessimistic (actual well under calculated).
        assert!(avg > 0.0 && avg < 0.6, "avg ratio {avg}");
        assert!(max < 1.0, "max ratio {max}");
    }
}
