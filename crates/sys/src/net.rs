//! A minimal NPS-like network link.
//!
//! The paper's QtPlay (Figure 11) retrieves movie data through CRAS and
//! "transmits it over the network using NPS", the user-level real-time
//! network engine. The evaluation never measures the network, so this
//! model is deliberately small: a store-and-forward link with a
//! bandwidth, a propagation delay, and a per-packet overhead —
//! serialization is FIFO, so a busy link queues frames.
//!
//! Used by the distributed-player example to run the paper's
//! travel-coordinator scenario (video clips streamed to a remote viewer).

use cras_sim::{Duration, Instant};

/// A one-way network link.
#[derive(Clone, Debug)]
pub struct Link {
    /// Bandwidth in bytes/second.
    bandwidth: f64,
    /// Propagation delay.
    latency: Duration,
    /// Fixed per-packet processing overhead (protocol stack).
    per_packet: Duration,
    /// When the transmitter becomes free.
    busy_until: Instant,
    /// When the first transmission started (for throughput over the
    /// observed span).
    first_start: Option<Instant>,
    /// Bytes accepted.
    bytes_sent: u64,
    /// Packets accepted.
    packets: u64,
    /// Total queueing delay accumulated (time packets waited for the
    /// transmitter).
    queued: Duration,
}

impl Link {
    /// Creates a link.
    ///
    /// # Panics
    ///
    /// Panics if bandwidth is not positive.
    pub fn new(bandwidth: f64, latency: Duration, per_packet: Duration) -> Link {
        assert!(bandwidth > 0.0, "non-positive bandwidth");
        Link {
            bandwidth,
            latency,
            per_packet,
            busy_until: Instant::ZERO,
            first_start: None,
            bytes_sent: 0,
            packets: 0,
            queued: Duration::ZERO,
        }
    }

    /// A 10 Mbps Ethernet like the paper's evaluation machine, with
    /// mid-90s protocol-stack overhead.
    pub fn ethernet_10mbps() -> Link {
        Link::new(
            10_000_000.0 / 8.0,
            Duration::from_micros(200),
            Duration::from_micros(400),
        )
    }

    /// Bytes accepted so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Packets accepted so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Total queueing delay experienced by all packets.
    pub fn total_queueing(&self) -> Duration {
        self.queued
    }

    /// Transmits `bytes` starting no earlier than `now`; returns the
    /// arrival time at the far end.
    ///
    /// # Panics
    ///
    /// Panics on a zero-byte packet.
    pub fn transmit(&mut self, now: Instant, bytes: u64) -> Instant {
        assert!(bytes > 0, "empty packet");
        let start = if self.busy_until > now {
            self.queued += self.busy_until.since(now);
            self.busy_until
        } else {
            now
        };
        let serialization = Duration::from_secs_f64(bytes as f64 / self.bandwidth);
        let done_sending = start + self.per_packet + serialization;
        self.busy_until = done_sending;
        if self.first_start.is_none() {
            self.first_start = Some(start);
        }
        self.bytes_sent += bytes;
        self.packets += 1;
        done_sending + self.latency
    }

    /// Achieved throughput in bytes/second over the observed transmit
    /// span — first serialization start to last serialization end.
    /// Dividing lifetime byte counts by an arbitrary caller-chosen
    /// window under- or over-states the rate whenever the window and
    /// the transmissions do not line up; the observed span is the only
    /// window the link itself can vouch for. Zero before any packet.
    pub fn throughput(&self) -> f64 {
        let Some(first) = self.first_start else {
            return 0.0;
        };
        let span = self.busy_until.since(first);
        if span.is_zero() {
            0.0
        } else {
            self.bytes_sent as f64 / span.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }
    fn at(v: u64) -> Instant {
        Instant::ZERO + ms(v)
    }

    #[test]
    fn single_packet_time_is_overhead_plus_serialization_plus_latency() {
        let mut l = Link::new(1_000_000.0, ms(1), ms(2));
        // 10 000 B at 1 MB/s = 10 ms; + 2 ms overhead + 1 ms latency.
        let arrival = l.transmit(at(0), 10_000);
        assert_eq!(arrival, at(13));
        assert_eq!(l.packets(), 1);
    }

    #[test]
    fn back_to_back_packets_queue() {
        let mut l = Link::new(1_000_000.0, ms(0), ms(0));
        let a1 = l.transmit(at(0), 10_000); // Occupies [0, 10) ms.
        let a2 = l.transmit(at(0), 10_000); // Waits, occupies [10, 20).
        assert_eq!(a1, at(10));
        assert_eq!(a2, at(20));
        assert_eq!(l.total_queueing(), ms(10));
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut l = Link::new(1_000_000.0, ms(0), ms(0));
        l.transmit(at(0), 1_000); // Done at 1 ms.
        let a = l.transmit(at(5), 1_000);
        assert_eq!(a, at(6));
        assert_eq!(l.total_queueing(), Duration::ZERO);
    }

    #[test]
    fn mpeg1_fits_10mbps_ethernet() {
        // A 30 fps, 6250 B frame stream is ~1.5 Mbps: far under 10 Mbps,
        // per-frame network time ~5.4 ms.
        let mut l = Link::ethernet_10mbps();
        let arrival = l.transmit(at(0), 6_250);
        let elapsed = arrival.since(at(0));
        assert!(elapsed < ms(7), "frame transfer {elapsed}");
        // A sustained second of frames never backlogs.
        let mut t = Instant::ZERO;
        for k in 0..30u64 {
            let now = Instant::ZERO + Duration::from_micros(33_333 * k);
            t = l.transmit(now.max(t), 6_250);
        }
        assert!(t < Instant::ZERO + Duration::from_secs_f64(1.01));
        // 30 paced frames plus the single warm-up transfer above.
        assert_eq!(l.bytes_sent(), 31 * 6_250);
    }

    #[test]
    #[should_panic(expected = "empty packet")]
    fn empty_packet_panics() {
        let mut l = Link::ethernet_10mbps();
        l.transmit(at(0), 0);
    }

    #[test]
    fn throughput_covers_the_observed_span_not_a_caller_window() {
        let mut l = Link::new(1_000_000.0, ms(0), ms(0));
        assert_eq!(l.throughput(), 0.0);
        // Two 10 000 B packets, the second after a long idle gap: the
        // span runs from the first start (5 ms) to the second's end
        // (1010 ms), so the rate reflects the idle time in between —
        // and is unaffected by however long the run sits idle *after*
        // the last packet (the old window-argument form diluted the
        // rate by trailing idle time).
        l.transmit(at(5), 10_000);
        l.transmit(at(1_000), 10_000);
        let span = Duration::from_millis(1_005).as_secs_f64();
        let want = 20_000.0 / span;
        assert!((l.throughput() - want).abs() < 1e-6, "{}", l.throughput());
    }
}
