//! The transition journal: an append-only log of the durable control
//! decisions a [`crate::system::System`] makes — movies recorded,
//! streams admitted/started/stopped, volume failures, rebuild lifecycle.
//!
//! The journal is the crash-recovery contract. Everything else in the
//! system (buffer contents, in-flight I/O, CPU queues) is soft state
//! that a restart regenerates; the journal holds exactly what cannot be
//! re-derived: which streams the operator admitted and where their
//! clocks were anchored. [`crate::system::System::recover`] replays it
//! against a fresh system: the catalog records rebuild an identical
//! placement (recording is a pure function of config seed and record
//! order), the admission records re-open the surviving streams, and the
//! start records let each player resume at its first undelivered frame
//! with a fresh initial delay — zero drops for every durable stream.
//!
//! In the real server this log would be an fsync'd file; in the
//! simulation it is an in-memory vector the experiment harness clones
//! out of the "crashed" instance.

use cras_media::StreamProfile;
use cras_sim::Instant;

/// One durable control-plane decision.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalRecord {
    /// A movie was recorded into the catalog. Replaying these in order
    /// against the same config seed reproduces the placement exactly.
    Recorded {
        /// Movie name.
        name: String,
        /// Stream profile it was generated from.
        profile: StreamProfile,
        /// Length in media seconds.
        secs: f64,
    },
    /// A player passed admission for `movie`.
    Admitted {
        /// Client id the system assigned.
        client: u32,
        /// The movie it plays.
        movie: String,
        /// Frame stride (1 = every frame).
        stride: u32,
    },
    /// A player was admitted *deferred* (DESIGN §16): its movie's whole
    /// prefix was memory-resident, so it holds zero disk shares until
    /// the prefix drains. Recovery must replay it through the deferred
    /// path — the cache is empty after a restart, so the ordinary
    /// admission test could spuriously reject it.
    DeferredAdmitted {
        /// Client id the system assigned.
        client: u32,
        /// The movie it plays.
        movie: String,
        /// Frame stride (1 = every frame).
        stride: u32,
    },
    /// A deferred player's prefix drained and its disk share was
    /// reserved (reserve-at-drain). From here on it recovers exactly
    /// like an ordinarily admitted stream.
    DiskShareReserved {
        /// The client.
        client: u32,
    },
    /// Playback began: the stream's logical clock was anchored so frame
    /// `k` of the stride sequence is due at `playback_start + ts(k)`.
    Started {
        /// The client.
        client: u32,
        /// Real time of media time zero.
        playback_start: Instant,
    },
    /// The client stopped; its stream no longer needs recovery.
    Stopped {
        /// The client.
        client: u32,
    },
    /// A volume was declared (or detected) failed.
    VolumeFailed {
        /// The volume.
        vol: u32,
    },
    /// A replacement was attached and a rebuild began onto `vol`.
    RebuildStarted {
        /// The volume under reconstruction.
        vol: u32,
    },
    /// The rebuild finished; `vol` rejoined admission and steering.
    RebuildFinished {
        /// The restored volume.
        vol: u32,
    },
    /// An experiment-driver checkpoint marker (the `Event::Checkpoint`
    /// arm writes these).
    Checkpoint {
        /// Caller-chosen sequence number.
        seq: u32,
    },
    /// A delivery link was added (DESIGN §18). Replay re-creates the
    /// links in order, so indices survive recovery. Fault injectors are
    /// harness-level and deliberately not journaled, like the disk
    /// injectors.
    NetLink {
        /// Bandwidth in bytes/second.
        bandwidth: f64,
        /// Propagation delay in nanoseconds.
        latency_ns: u64,
        /// Per-packet overhead in nanoseconds.
        per_packet_ns: u64,
    },
    /// A delivery session was attached for `client` on `link`.
    NetSession {
        /// The client.
        client: u32,
        /// Link index.
        link: u32,
        /// Startup playout delay in nanoseconds.
        playout_delay_ns: u64,
        /// Park the feeding stream above this buffer level.
        high_watermark: u64,
        /// Resume it below this level.
        low_watermark: u64,
        /// Client consumption scale (1.0 = nominal).
        drain_scale: f64,
    },
    /// Multicast fan-out was switched on or off.
    NetMulticast {
        /// The new setting.
        on: bool,
    },
}

/// Append-only transition journal.
#[derive(Clone, Debug, Default)]
pub struct Journal {
    entries: Vec<(Instant, JournalRecord)>,
}

impl Journal {
    /// Creates an empty journal.
    pub fn new() -> Journal {
        Journal::default()
    }

    /// Appends a record stamped `at`.
    pub fn append(&mut self, at: Instant, rec: JournalRecord) {
        self.entries.push((at, rec));
    }

    /// All records in append order.
    pub fn entries(&self) -> &[(Instant, JournalRecord)] {
        &self.entries
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Timestamp of the newest record.
    pub fn last_time(&self) -> Option<Instant> {
        self.entries.last().map(|(t, _)| *t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_preserves_append_order_and_times() {
        let mut j = Journal::new();
        assert!(j.is_empty());
        let t1 = Instant::from_secs_f64(1.0);
        let t2 = Instant::from_secs_f64(2.0);
        j.append(t1, JournalRecord::VolumeFailed { vol: 3 });
        j.append(t2, JournalRecord::RebuildStarted { vol: 3 });
        assert_eq!(j.len(), 2);
        assert_eq!(j.last_time(), Some(t2));
        assert_eq!(j.entries()[0].1, JournalRecord::VolumeFailed { vol: 3 });
    }
}
