//! Global event and routing-tag types of the orchestrated system.

use cras_core::{ReadId, WriteId};
use cras_rtmach::SliceToken;
use cras_ufs::fs::FetchRun;

/// Identifies one client application (player or background reader).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClientId(pub u32);

/// The global event enum dispatched by the system loop.
#[derive(Clone, Copy, Debug)]
pub enum Event {
    /// The disk on this volume finished its in-flight operation.
    DiskDone(u32),
    /// A CPU slice boundary (burst completion or quantum expiry).
    CpuSlice(SliceToken),
    /// CRAS's interval timer fired.
    CrasTick,
    /// A player's next frame is due.
    PlayerFrame(ClientId),
    /// A player retries a frame that was not yet buffered.
    PlayerPoll(ClientId),
    /// A background reader (re)starts its next read.
    BgKick(ClientId),
    /// A background writer's next write call is due.
    BgWrite(ClientId),
    /// The syncer flushes dirty blocks to disk.
    Sync,
    /// The rebuild manager's next paced copy chunk is due. Carries the
    /// rebuild generation that scheduled it, so a pacing event left over
    /// from an aborted rebuild (the replacement volume failed again)
    /// cannot drive a newer rebuild's chunk cursor.
    RebuildStep(u64),
    /// Experiment-driver checkpoint marker; the handler stamps a
    /// [`crate::journal::JournalRecord::Checkpoint`] into the journal.
    Checkpoint(u32),
    /// A delivery link's transmitter finished serializing a packet.
    NetLinkFree(u32),
    /// A copy of delivery packet `pkt` reaches the clients on `link`.
    NetArrive {
        /// Link index.
        link: u32,
        /// Packet id.
        pkt: u64,
    },
    /// A client's NAK for send ordinal `ord` lands server-side.
    NetNak(ClientId, u32),
    /// A delivery session plays (or declares late) send ordinal `ord`.
    NetPlayout(ClientId, u32),
    /// A net-parked stream retries its resume (earlier attempt found no
    /// disk or cache capacity).
    NetRetry(ClientId),
}

impl Event {
    /// Total order used to canonicalize same-tick dispatch.
    ///
    /// Two events due at the same virtual instant may be delivered in
    /// any order by a real kernel; the interleaving fuzzer permutes
    /// them, then sorts by this key before dispatch so observable
    /// behavior is invariant to delivery order. The key is total: no
    /// two distinct live events compare equal (disk completions are
    /// per-volume one-at-a-time, slice tokens are unique, client timers
    /// are per-client exclusive, and rebuild generations are unique).
    pub fn dispatch_key(&self) -> (u8, u64) {
        match *self {
            Event::DiskDone(vol) => (0, vol as u64),
            Event::CpuSlice(tok) => (1, tok.raw()),
            Event::CrasTick => (2, 0),
            Event::PlayerFrame(c) => (3, c.0 as u64),
            Event::PlayerPoll(c) => (4, c.0 as u64),
            Event::BgKick(c) => (5, c.0 as u64),
            Event::BgWrite(c) => (6, c.0 as u64),
            Event::Sync => (7, 0),
            Event::RebuildStep(gen) => (8, gen),
            Event::Checkpoint(seq) => (9, seq as u64),
            Event::NetLinkFree(link) => (10, link as u64),
            // Packet ids are globally unique; a duplicated delivery is
            // two *identical* events, so swapping them is a no-op and
            // the order stays total in the sense the fuzzer needs.
            Event::NetArrive { pkt, .. } => (11, pkt),
            Event::NetNak(c, ord) => (12, ((c.0 as u64) << 32) | ord as u64),
            Event::NetPlayout(c, ord) => (13, ((c.0 as u64) << 32) | ord as u64),
            Event::NetRetry(c) => (14, c.0 as u64),
        }
    }
}

/// Routing tag carried by disk requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskTag {
    /// A CRAS real-time stream read.
    Cras(ReadId),
    /// A CRAS recorder real-time write.
    CrasWrite(WriteId),
    /// A synchronous clustered UFS fetch on behalf of the Unix server
    /// (volume, run).
    UfsFetch(u32, FetchRun),
    /// An asynchronous UFS read-ahead run (volume, run).
    UfsReadAhead(u32, FetchRun),
    /// A syncer write-back of dirty blocks (volume, run).
    UfsWriteback(u32, FetchRun),
    /// The read half of a rebuild copy chunk: `(generation, chunk)`,
    /// normal-priority, from the surviving replica. The generation
    /// guards against a completion from an *aborted* rebuild indexing a
    /// newer rebuild's chunk list (the lists differ whenever a second
    /// failure re-plans the copy).
    RebuildRead(u64, u64),
    /// The write half of a rebuild copy chunk: `(generation, chunk)`,
    /// normal-priority, to the replacement volume.
    RebuildWrite(u64, u64),
    /// Raw traffic from calibration or ad-hoc experiments.
    Raw(u64),
}

/// Routing tag carried by CPU bursts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CpuTag {
    /// The CRAS request-scheduler thread finished its interval pass.
    CrasSched,
    /// A player finished decoding/displaying frame `frame` of its stream.
    PlayerDecode {
        /// The player.
        client: ClientId,
        /// Frame index.
        frame: u32,
    },
    /// A CPU hog finished one busy burst (it immediately re-arms).
    Hog(u32),
    /// The Unix server spent CPU processing one request.
    UfsServe,
}

/// Tag arena: the CPU scheduler carries `u64` tags; the system maps them
/// to [`CpuTag`] values through this arena.
#[derive(Default, Debug)]
pub struct TagArena {
    tags: Vec<CpuTag>,
}

impl TagArena {
    /// Interns a tag, returning its id.
    pub fn intern(&mut self, tag: CpuTag) -> u64 {
        self.tags.push(tag);
        (self.tags.len() - 1) as u64
    }

    /// Resolves an id.
    ///
    /// # Panics
    ///
    /// Panics on an id this arena never issued.
    pub fn resolve(&self, id: u64) -> CpuTag {
        self.tags[id as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_roundtrip() {
        let mut a = TagArena::default();
        let x = a.intern(CpuTag::CrasSched);
        let y = a.intern(CpuTag::Hog(3));
        assert_eq!(a.resolve(x), CpuTag::CrasSched);
        assert_eq!(a.resolve(y), CpuTag::Hog(3));
        assert_ne!(x, y);
    }
}
