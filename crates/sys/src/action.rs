//! The effect vocabulary of the pure transition core.
//!
//! Event handlers on [`crate::system::SysState`] never touch the engine,
//! the disks, the CPU or the deadline port directly — they push
//! [`Action`] values describing the side effects they want, and the thin
//! executor half of [`crate::system::System`] applies them in push order
//! against the real substrates. This is the PHASM shape,
//! `(State, Event) → (State', Actions)`: transitions become replayable
//! and order-auditable, which is what the transition journal, the crash
//! recovery path and the same-tick interleaving fuzzer are built on.
//!
//! Apply order equals push order, and every deferred effect lands at the
//! same virtual instant the handler ran, so the executor reproduces the
//! exact engine-queue insertion sequence the old inline handlers
//! produced — the refactor is behavior-preserving by construction.

use cras_disk::{DiskRequest, VolumeId};
use cras_rtmach::ThreadId;
use cras_sim::{Duration, Instant};

use crate::journal::JournalRecord;
use crate::tags::{DiskTag, Event};

/// One deferred side effect emitted by a state transition.
#[derive(Debug)]
pub enum Action {
    /// Submit one disk request to volume `vol`.
    SubmitDisk {
        /// Target volume.
        vol: u32,
        /// The request (tag routes the completion).
        req: DiskRequest<DiskTag>,
    },
    /// Submit a whole per-spindle interval batch to `vol` (C-SCAN
    /// ordered by the device).
    SubmitBatch {
        /// Target volume.
        vol: VolumeId,
        /// The interval's requests for that volume.
        reqs: Vec<DiskRequest<DiskTag>>,
    },
    /// Arm a timer: enqueue `ev` at absolute time `at`.
    Schedule {
        /// Fire time.
        at: Instant,
        /// The event to fire.
        ev: Event,
    },
    /// Wake a CPU thread with a `burst` of work. `tag` is the interned
    /// [`crate::tags::CpuTag`] id identifying the burst's completion.
    WakeCpu {
        /// The thread.
        tid: ThreadId,
        /// Burst length.
        burst: Duration,
        /// Interned completion tag.
        tag: u64,
    },
    /// Post one deadline-overrun warning (interval `index`) to the
    /// deadline notification port.
    DeadlineWarn {
        /// The overrun interval's index.
        index: u64,
    },
    /// Append a record to the post-mortem trace ring. Transitions only
    /// emit this while tracing is enabled, preserving the lazy-format
    /// fast path.
    Trace {
        /// Component label.
        component: &'static str,
        /// Rendered message.
        message: String,
    },
    /// Append a durable record to the transition journal.
    Journal(JournalRecord),
}
