//! `cras-sys` — the orchestrator: one discrete-event loop binding every
//! substrate into the system the paper evaluates.
//!
//! * [`system`] — [`system::SysState`], the pure transition core
//!   (`(State, Event) → (State', Actions)`), and [`system::System`],
//!   the thin executor that pops events and applies the emitted
//!   [`action::Action`]s against engine, disks, CPU and ports.
//! * [`action`] — the effect vocabulary transitions emit.
//! * [`journal`] — the durable transition journal crash recovery
//!   replays.
//! * [`player`] — QtPlay-like clients measuring per-frame delay.
//! * [`bgload`] — the `cat` background readers.
//! * [`config`] — scheduling mode, CPU cost model, priorities.
//! * [`rebuild`] — rate-controlled rebuild after a volume loss: mirror
//!   copies and parity reconstruction.
//! * [`metrics`] — per-interval admission-accuracy accounting.
//! * [`tags`] — the global event enum and routing tags.
//! * [`net`] — a minimal NPS-like network link for the distributed
//!   (Figure 11) configuration. The full delivery subsystem (paced
//!   links, playout sessions, multicast, loss/retransmit) lives in the
//!   `cras-net` crate and plugs into [`system::SysState`] as the `net`
//!   field (DESIGN §18).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod bgload;
pub mod config;
pub mod journal;
pub mod metrics;
pub mod net;
pub mod player;
pub mod rebuild;
pub mod system;
pub mod tags;

pub use action::Action;
pub use bgload::BgReader;
pub use config::{prio, CpuCosts, IssueMode, SchedMode, SysConfig};
pub use journal::{Journal, JournalRecord};
pub use metrics::{IntervalIo, IntervalWall, Metrics, ShardLoad, VolumeHealth};
pub use net::Link;
pub use player::{Player, PlayerMode, PlayerStats};
pub use rebuild::{plan_chunks, plan_parity_recon, RebuildChunk, RebuildManager, SrcRead};
pub use system::{AttachError, MoviePlacement, SysState, System, UOwner, UReq};
pub use tags::{ClientId, CpuTag, DiskTag, Event};
