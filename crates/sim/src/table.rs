//! Plain-text table and series rendering for experiment output.
//!
//! The benchmark binaries print the same rows/series the paper reports;
//! this module keeps the formatting in one place.

use std::fmt::Write as _;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use cras_sim::table::Table;
/// let mut t = Table::new(&["streams", "MB/s"]);
/// t.row(&["1", "0.19"]);
/// t.row(&["25", "3.58"]);
/// let s = t.render();
/// assert!(s.contains("streams"));
/// assert!(s.contains("3.58"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn row(&mut self, cells: &[&str]) {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of already-owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a separator rule.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }
}

/// Formats a float with a fixed number of decimals (helper for rows).
pub fn fnum(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// Renders an `(x, y)` series as one aligned line per point, with a title.
pub fn render_series(title: &str, xlabel: &str, ylabel: &str, points: &[(f64, f64)]) -> String {
    let mut t = Table::new(&[xlabel, ylabel]);
    for &(x, y) in points {
        t.row(&[&fnum(x, 3), &fnum(y, 6)]);
    }
    format!("# {title}\n{}", t.render())
}

/// Renders a crude ASCII sparkline of `values` scaled into `width` columns
/// and 8 vertical levels — handy for eyeballing delay traces in a terminal.
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: &[char] = &['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let max = values.iter().copied().fold(f64::MIN, f64::max);
    let min = values.iter().copied().fold(f64::MAX, f64::min);
    let span = (max - min).max(f64::MIN_POSITIVE);
    values
        .iter()
        .map(|v| {
            let idx = (((v - min) / span) * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[idx.min(LEVELS.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["1", "2"]);
        t.row(&["100", "2000"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows equal width.
        assert!(lines[0].len() >= lines[2].trim_end().len());
        assert!(s.contains("long-header"));
    }

    #[test]
    fn table_handles_ragged_rows() {
        let mut t = Table::new(&["x"]);
        t.row(&["1", "extra"]);
        t.row(&[]);
        let s = t.render();
        assert!(s.contains("extra"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn series_rendering() {
        let s = render_series("fig", "n", "mbps", &[(1.0, 0.1875), (2.0, 0.375)]);
        assert!(s.starts_with("# fig"));
        assert!(s.contains("0.375000"));
    }

    #[test]
    fn sparkline_monotone() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        let first = s.chars().next().unwrap();
        let last = s.chars().last().unwrap();
        assert_eq!(first, '▁');
        assert_eq!(last, '█');
    }

    #[test]
    fn sparkline_empty_and_flat() {
        assert_eq!(sparkline(&[]), "");
        let s = sparkline(&[5.0, 5.0]);
        assert_eq!(s.chars().count(), 2);
    }
}
