//! Measurement collection: online summary statistics, percentile samples,
//! fixed-bin histograms, time series and time-weighted averages.
//!
//! These are the building blocks for the paper's reported quantities:
//! throughput (bytes over a window), per-frame delay traces (Figures 7/10),
//! and the average/maximum admission-accuracy ratios (Figures 8/9).

use crate::time::{Duration, Instant};

/// Online mean/variance/min/max accumulator (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> OnlineStats {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 if fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation, or 0 if empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation, or 0 if empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A full-sample reservoir for exact percentiles (fine for the sizes the
/// experiments produce: at most a few million f64s).
#[derive(Clone, Debug, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty sample set.
    pub fn new() -> Samples {
        Samples::default()
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.values.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Exact percentile `p` in [0, 100] by nearest-rank; 0 if empty.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.values
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * (self.values.len() - 1) as f64).round() as usize;
        self.values[rank]
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Mean of the sample, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Maximum, or 0 if empty.
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Read-only view of the raw values (insertion order not preserved
    /// after a percentile query).
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Fixed-width-bin histogram over `[lo, hi)` with overflow/underflow bins.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `nbins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `nbins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Histogram {
        assert!(nbins > 0, "Histogram: zero bins");
        assert!(lo < hi, "Histogram: empty range");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total number of observations, including out-of-range ones.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Counts per bin.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The midpoint value of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }
}

/// A `(time, value)` trace, e.g. per-frame delay over a run (Fig 7/10).
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(Instant, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> TimeSeries {
        TimeSeries::default()
    }

    /// Appends a point; times must be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the previous point.
    pub fn push(&mut self, t: Instant, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "TimeSeries: non-monotone time");
        }
        self.points.push((t, v));
    }

    /// The recorded points.
    pub fn points(&self) -> &[(Instant, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Summary statistics over the values.
    pub fn summary(&self) -> OnlineStats {
        let mut s = OnlineStats::new();
        for &(_, v) in &self.points {
            s.add(v);
        }
        s
    }

    /// Downsamples to at most `n` evenly spaced points (for printing).
    pub fn downsample(&self, n: usize) -> Vec<(Instant, f64)> {
        if n == 0 || self.points.is_empty() {
            return Vec::new();
        }
        if self.points.len() <= n {
            return self.points.clone();
        }
        let step = self.points.len() as f64 / n as f64;
        (0..n)
            .map(|i| self.points[(i as f64 * step) as usize])
            .collect()
    }
}

/// Time-weighted average of a piecewise-constant quantity (e.g. buffer
/// occupancy, disk-queue depth).
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    last_t: Instant,
    last_v: f64,
    weighted_sum: f64,
    total: Duration,
    max: f64,
    started: bool,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        TimeWeighted::new()
    }
}

impl TimeWeighted {
    /// Creates an empty accumulator.
    pub fn new() -> TimeWeighted {
        TimeWeighted {
            last_t: Instant::ZERO,
            last_v: 0.0,
            weighted_sum: 0.0,
            total: Duration::ZERO,
            max: 0.0,
            started: false,
        }
    }

    /// Records that the quantity changed to `v` at time `t`.
    pub fn set(&mut self, t: Instant, v: f64) {
        if self.started {
            let dt = t.saturating_since(self.last_t);
            self.weighted_sum += self.last_v * dt.as_secs_f64();
            self.total += dt;
        }
        self.started = true;
        self.last_t = t;
        self.last_v = v;
        if v > self.max {
            self.max = v;
        }
    }

    /// Closes the interval at `t` and returns the time-weighted mean.
    pub fn finish(&mut self, t: Instant) -> f64 {
        self.set(t, self.last_v);
        if self.total.is_zero() {
            self.last_v
        } else {
            self.weighted_sum / self.total.as_secs_f64()
        }
    }

    /// Maximum value observed.
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty_is_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i * 13 % 31) as f64).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn samples_percentiles() {
        let mut s = Samples::new();
        for i in (1..=100).rev() {
            s.add(i as f64);
        }
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert!((s.median() - 50.0).abs() <= 1.0);
        assert!((s.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn samples_empty() {
        let mut s = Samples::new();
        assert_eq!(s.percentile(50.0), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.6, 9.9, -1.0, 10.0, 11.0] {
            h.add(x);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[1], 2);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn time_series_summary_and_downsample() {
        let mut ts = TimeSeries::new();
        for i in 0..100u64 {
            ts.push(Instant::from_nanos(i * 1000), i as f64);
        }
        assert_eq!(ts.len(), 100);
        let s = ts.summary();
        assert!((s.mean() - 49.5).abs() < 1e-9);
        let d = ts.downsample(10);
        assert_eq!(d.len(), 10);
        assert_eq!(d[0].1, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-monotone")]
    fn time_series_rejects_backwards_time() {
        let mut ts = TimeSeries::new();
        ts.push(Instant::from_nanos(10), 1.0);
        ts.push(Instant::from_nanos(5), 2.0);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new();
        tw.set(Instant::ZERO, 1.0);
        tw.set(Instant::from_secs_f64(1.0), 3.0);
        // 1.0 for 1s, then 3.0 for 1s => mean 2.0.
        let mean = tw.finish(Instant::from_secs_f64(2.0));
        assert!((mean - 2.0).abs() < 1e-9);
        assert_eq!(tw.max(), 3.0);
    }

    #[test]
    fn time_weighted_zero_span() {
        let mut tw = TimeWeighted::new();
        tw.set(Instant::ZERO, 5.0);
        let mean = tw.finish(Instant::ZERO);
        assert_eq!(mean, 5.0);
    }
}
