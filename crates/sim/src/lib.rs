//! `cras-sim` — discrete-event simulation substrate for the CRAS
//! reproduction.
//!
//! The paper evaluates CRAS on real hardware (a P5-100 with a Seagate
//! ST32550N and an AM9513 timer board). This workspace replaces wall-clock
//! hardware with a deterministic discrete-event simulation; this crate is
//! the foundation everything else builds on:
//!
//! * [`time`] — nanosecond-resolution [`time::Instant`] / [`time::Duration`]
//!   newtypes.
//! * [`engine`] — the generic event queue, [`engine::Engine`].
//! * [`rng`] — a seedable, forkable deterministic PRNG.
//! * [`stats`] — online statistics, histograms, time series,
//!   time-weighted averages.
//! * [`json`] — a minimal JSON value/parser for the result artifacts.
//! * [`table`] — plain-text rendering for the experiment harness.
//! * [`trace`] — a bounded event-trace ring for post-mortem debugging.
//!
//! No `unsafe` code and no external dependencies: determinism is a
//! correctness property of every experiment in the repository, so the
//! whole stack is pinned down here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod json;
pub mod rng;
pub mod stats;
pub mod table;
pub mod time;
pub mod trace;

pub use engine::{Engine, EventId};
pub use rng::Rng;
pub use time::{Duration, Instant};
pub use trace::{Trace, TraceRecord};
