//! Lightweight event tracing: a bounded ring of timestamped records for
//! post-mortem debugging of simulation runs.
//!
//! Tracing is off by default and costs one branch when disabled. The ring
//! holds the most recent `capacity` records; a drained trace renders as
//! aligned text.

use std::collections::VecDeque;
use std::fmt;

use crate::time::Instant;

/// One trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// When it happened.
    pub at: Instant,
    /// Component that logged it (static label).
    pub component: &'static str,
    /// The message.
    pub message: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>14} {:<10} {}",
            format!("{}", self.at),
            self.component,
            self.message
        )
    }
}

/// A bounded, optionally-enabled trace ring.
#[derive(Clone, Debug)]
pub struct Trace {
    ring: VecDeque<TraceRecord>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl Trace {
    /// Creates a disabled trace with the given ring capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Trace {
        assert!(capacity > 0, "zero-capacity trace");
        Trace {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            enabled: false,
            dropped: 0,
        }
    }

    /// Turns recording on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a message (no-op while disabled).
    pub fn log(&mut self, at: Instant, component: &'static str, message: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(TraceRecord {
            at,
            component,
            message: message.into(),
        });
    }

    /// Records only when `enabled`, building the message lazily — use for
    /// messages that are expensive to format.
    pub fn log_with<F: FnOnce() -> String>(&mut self, at: Instant, component: &'static str, f: F) {
        if self.enabled {
            self.log(at, component, f());
        }
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Records evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.ring.iter()
    }

    /// Renders the whole ring.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.ring {
            out.push_str(&format!("{r}\n"));
        }
        out
    }

    /// Empties the ring.
    pub fn clear(&mut self) {
        self.ring.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    fn at(ms: u64) -> Instant {
        Instant::ZERO + Duration::from_millis(ms)
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new(8);
        t.log(at(1), "disk", "op started");
        assert!(t.is_empty());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::new(8);
        t.set_enabled(true);
        t.log(at(1), "disk", "a");
        t.log(at(2), "cpu", "b");
        let msgs: Vec<&str> = t.records().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, vec!["a", "b"]);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Trace::new(3);
        t.set_enabled(true);
        for i in 0..5 {
            t.log(at(i), "x", format!("m{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.records().next().unwrap().message, "m2");
    }

    #[test]
    fn lazy_log_skips_formatting_when_disabled() {
        let mut t = Trace::new(4);
        let mut called = false;
        t.log_with(at(1), "x", || {
            called = true;
            "never".into()
        });
        assert!(!called);
        t.set_enabled(true);
        t.log_with(at(1), "x", || "now".into());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn render_contains_fields() {
        let mut t = Trace::new(4);
        t.set_enabled(true);
        t.log(at(5), "cras", "tick 3");
        let s = t.render();
        assert!(s.contains("cras"));
        assert!(s.contains("tick 3"));
    }

    #[test]
    fn clear_resets_ring() {
        let mut t = Trace::new(4);
        t.set_enabled(true);
        t.log(at(1), "x", "a");
        t.clear();
        assert!(t.is_empty());
    }
}
