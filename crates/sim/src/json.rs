//! A minimal JSON value type, parser and pretty-printer.
//!
//! The experiment harness serializes figures and tables to JSON and the
//! report generator reads them back. The repository builds with no
//! third-party crates (offline determinism is a correctness property), so
//! this module supplies the small JSON subset those artifacts need:
//! objects, arrays, strings, finite numbers, booleans and null.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (stored as f64, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are ordered for deterministic output.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The element at `idx` if this is a long-enough array.
    pub fn at(&self, idx: usize) -> Option<&Json> {
        match self {
            Json::Arr(v) => v.get(idx),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(v) if v.is_empty() => out.push_str("[]"),
            Json::Arr(v) => {
                out.push('[');
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&pad);
                    e.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(m) if m.is_empty() => out.push_str("{}"),
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

/// Writes a number the way `serde_json` would: integers without a
/// fraction, everything else via the shortest roundtrip form.
fn write_num(out: &mut String, n: f64) {
    assert!(n.is_finite(), "JSON cannot represent {n}");
    if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let s = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{s}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let src = r#"{"id": "fig6", "points": [[1, 0.5], [2.5, -3e2]], "ok": true, "none": null}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_str), Some("fig6"));
        let pts = v.get("points").and_then(Json::as_array).unwrap();
        assert_eq!(pts[0].at(1).and_then(Json::as_f64), Some(0.5));
        assert_eq!(pts[1].at(1).and_then(Json::as_f64), Some(-300.0));
        let re = parse(&v.pretty()).unwrap();
        assert_eq!(re, v);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        let re = parse(&v.pretty()).unwrap();
        assert_eq!(re, v);
    }

    #[test]
    fn integers_print_without_fraction() {
        let mut m = BTreeMap::new();
        m.insert("n".to_string(), Json::Num(42.0));
        let txt = Json::Obj(m).pretty();
        assert!(txt.contains("\"n\": 42"), "{txt}");
        assert!(!txt.contains("42.0"), "{txt}");
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"abc").is_err());
        assert!(parse("{}extra").is_err());
    }

    #[test]
    fn nested_structures_parse() {
        let v = parse(r#"{"a": {"b": [{"c": 1}]}}"#).unwrap();
        let c = v
            .get("a")
            .and_then(|a| a.get("b"))
            .and_then(|b| b.at(0))
            .and_then(|o| o.get("c"))
            .and_then(Json::as_f64);
        assert_eq!(c, Some(1.0));
    }
}
