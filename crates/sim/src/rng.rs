//! Deterministic pseudo-random numbers for simulations.
//!
//! Every experiment takes a single `u64` seed; all stochastic behaviour
//! (background-load inter-arrival times, VBR frame sizes, file placement
//! jitter) draws from child streams of that seed, so a figure regenerated
//! twice is bit-identical.
//!
//! The generator is SplitMix64 feeding xoshiro256**, both public-domain
//! algorithms; we implement them locally so the core determinism contract
//! does not depend on an external crate's version.

/// A small, fast, deterministic PRNG (xoshiro256** seeded via SplitMix64).
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a seed. Any seed value (including 0) is
    /// valid; SplitMix64 expansion guarantees a non-degenerate state.
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child generator (for per-component streams).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below: zero bound");
        // Lemire's debiased multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "Rng::range_inclusive: lo > hi");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform f64 in `[0, 1)` with 53-bit resolution.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Sample from an exponential distribution with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        // Avoid ln(0).
        let u = 1.0 - self.f64();
        -mean * u.ln()
    }

    /// Sample from a normal distribution (Box–Muller, one sample per call).
    pub fn normal(&mut self, mean: f64, stddev: f64) -> f64 {
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + stddev * z
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "Rng::pick: empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::new(7);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(3);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_covers_small_range() {
        let mut r = Rng::new(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(4);
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_is_plausible() {
        let mut r = Rng::new(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut r = Rng::new(6);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.2, "mean={mean}");
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = Rng::new(8);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean={mean}");
        assert!((var - 4.0).abs() < 0.4, "var={var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = Rng::new(12);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            match r.range_inclusive(10, 12) {
                10 => lo_seen = true,
                12 => hi_seen = true,
                11 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }
}
