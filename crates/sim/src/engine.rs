//! The discrete-event engine: a monotone virtual clock plus a priority
//! queue of pending events.
//!
//! [`Engine`] is generic over the event payload `E`; the orchestrator crate
//! (`cras-sys`) instantiates it with its global event enum. Components never
//! schedule events themselves — they return "next event at time t" values
//! that the orchestrator turns into [`Engine::schedule`] calls. This keeps
//! every component a pure, unit-testable state machine.
//!
//! Ties are broken by insertion order (FIFO among same-timestamp events), so
//! runs are fully deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{Duration, Instant};

/// A handle identifying a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

struct Scheduled<E> {
    at: Instant,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A monotone discrete-event queue over event payloads of type `E`.
///
/// # Examples
///
/// ```
/// use cras_sim::engine::Engine;
/// use cras_sim::time::{Duration, Instant};
///
/// let mut e: Engine<&'static str> = Engine::new();
/// e.schedule_after(Duration::from_millis(2), "b");
/// e.schedule_after(Duration::from_millis(1), "a");
/// assert_eq!(e.pop().map(|(_, p)| p), Some("a"));
/// assert_eq!(e.pop().map(|(_, p)| p), Some("b"));
/// assert_eq!(e.now(), Instant::ZERO + Duration::from_millis(2));
/// assert!(e.pop().is_none());
/// ```
pub struct Engine<E> {
    now: Instant,
    queue: BinaryHeap<Scheduled<E>>,
    seq: u64,
    next_id: u64,
    cancelled: Vec<EventId>,
    dispatched: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Engine::new()
    }
}

impl<E> Engine<E> {
    /// Creates an empty engine with the clock at [`Instant::ZERO`].
    pub fn new() -> Engine<E> {
        Engine {
            now: Instant::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            next_id: 0,
            cancelled: Vec::new(),
            dispatched: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Number of events dispatched so far (diagnostic).
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Number of events still pending (including cancelled tombstones).
    pub fn pending(&self) -> usize {
        self.queue.len().saturating_sub(self.cancelled.len())
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — scheduling backwards in time is a
    /// logic error in the caller.
    pub fn schedule(&mut self, at: Instant, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at:?} now={:?}",
            self.now
        );
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq: self.seq,
            id,
            payload,
        });
        id
    }

    /// Schedules `payload` to fire `after` from now.
    pub fn schedule_after(&mut self, after: Duration, payload: E) -> EventId {
        let at = self.now + after;
        self.schedule(at, payload)
    }

    /// Schedules `payload` to fire immediately (at the current time, after
    /// all events already queued for the current time).
    pub fn schedule_now(&mut self, payload: E) -> EventId {
        self.schedule(self.now, payload)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Cancellation is lazy: the entry stays in the heap as a tombstone and
    /// is skipped at pop time. Cancelling an already-fired or unknown id is
    /// a behavioural no-op, but its tombstone lingers (undercounting
    /// [`Engine::pending`]) until the queue next drains — avoid cancelling
    /// ids you know have fired.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.push(id);
    }

    /// Pops the earliest pending event, advancing the clock to its time.
    ///
    /// Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(Instant, E)> {
        loop {
            let head = self.queue.pop()?;
            if let Some(pos) = self.cancelled.iter().position(|c| *c == head.id) {
                self.cancelled.swap_remove(pos);
                continue;
            }
            debug_assert!(head.at >= self.now, "event queue went backwards");
            self.now = head.at;
            self.dispatched += 1;
            // An empty queue proves any remaining tombstones refer to
            // already-fired events; drop them so pending() stays exact.
            if self.queue.is_empty() {
                self.cancelled.clear();
            }
            return Some((head.at, head.payload));
        }
    }

    /// Pops *every* event due at the earliest pending timestamp into
    /// `buf` (appending, FIFO order preserved) and advances the clock to
    /// that timestamp. Returns the batch's timestamp, or `None` when the
    /// queue is empty.
    ///
    /// This is the deterministic same-tick dispatch batch: a dispatcher
    /// that re-orders the batch by a canonical event key (instead of
    /// insertion order) becomes invariant to the *delivery* order of
    /// same-tick events — the property the sys-layer interleaving fuzzer
    /// asserts, and the property parallel shards will need.
    pub fn pop_batch(&mut self, buf: &mut Vec<E>) -> Option<Instant> {
        let (at, first) = self.pop()?;
        buf.push(first);
        while self.peek_time() == Some(at) {
            // peek_time is a conservative bound: the head may be a
            // tombstone, which pop() skips — re-check the popped time.
            match self.pop() {
                Some((t, ev)) if t == at => buf.push(ev),
                Some((t, ev)) => {
                    // A tombstone hid a later event; it belongs to the
                    // next batch. Put it back and rewind the clock to
                    // the batch's timestamp.
                    self.now = at;
                    self.schedule(t, ev);
                    break;
                }
                None => break,
            }
        }
        Some(at)
    }

    /// Advances the virtual clock to `t` without dispatching anything.
    /// Used by crash recovery to fast-forward a freshly built system to
    /// the crash instant before resuming journaled streams.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past, or if an event earlier than `t` is
    /// still pending (skipping over it would break monotonicity).
    pub fn advance_to(&mut self, t: Instant) {
        assert!(t >= self.now, "advancing into the past");
        if let Some(at) = self.peek_time() {
            assert!(at >= t, "advance_to would skip a pending event");
        }
        self.now = t;
    }

    /// Peeks at the time of the earliest pending event without firing it.
    pub fn peek_time(&self) -> Option<Instant> {
        // Tombstones may hide the true head; this is a conservative bound
        // (never later than the true next event), which is all callers need.
        self.queue.peek().map(|s| s.at)
    }

    /// Runs events through a dispatcher closure until the queue drains or
    /// the clock passes `until`.
    ///
    /// The dispatcher receives the engine itself so it can schedule
    /// follow-up events. Events strictly after `until` remain queued.
    pub fn run_until<F>(&mut self, until: Instant, mut dispatch: F)
    where
        F: FnMut(&mut Engine<E>, Instant, E),
    {
        while let Some(at) = self.peek_time() {
            if at > until {
                break;
            }
            let Some((t, payload)) = self.pop() else {
                break;
            };
            if t > until {
                // A cancelled tombstone hid this later event from
                // peek_time: put it back for the next run and stop.
                self.now = until;
                self.schedule(t, payload);
                break;
            }
            dispatch(self, t, payload);
        }
        if self.now < until && self.peek_time().is_none() {
            self.now = until;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut e: Engine<u32> = Engine::new();
        let t = Instant::ZERO + ms(5);
        e.schedule(t, 1);
        e.schedule(t, 2);
        e.schedule(t, 3);
        assert_eq!(e.pop().unwrap().1, 1);
        assert_eq!(e.pop().unwrap().1, 2);
        assert_eq!(e.pop().unwrap().1, 3);
    }

    #[test]
    fn ordering_by_time() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_after(ms(30), 3);
        e.schedule_after(ms(10), 1);
        e.schedule_after(ms(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| e.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(e.now(), Instant::ZERO + ms(30));
    }

    #[test]
    fn schedule_now_fires_at_current_time() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_after(ms(10), 1);
        assert_eq!(e.pop().unwrap().1, 1);
        e.schedule_now(2);
        let (t, p) = e.pop().unwrap();
        assert_eq!((t, p), (Instant::ZERO + ms(10), 2));
    }

    #[test]
    fn cancel_skips_event() {
        let mut e: Engine<u32> = Engine::new();
        let a = e.schedule_after(ms(1), 1);
        e.schedule_after(ms(2), 2);
        e.cancel(a);
        assert_eq!(e.pop().unwrap().1, 2);
        assert!(e.pop().is_none());
    }

    #[test]
    fn cancel_unknown_is_noop() {
        let mut e: Engine<u32> = Engine::new();
        let a = e.schedule_after(ms(1), 1);
        assert_eq!(e.pop().unwrap().1, 1);
        e.cancel(a); // Already fired.
        e.schedule_after(ms(1), 2);
        assert_eq!(e.pop().unwrap().1, 2);
    }

    #[test]
    fn pending_accounts_for_tombstones() {
        let mut e: Engine<u32> = Engine::new();
        let a = e.schedule_after(ms(1), 1);
        e.schedule_after(ms(2), 2);
        assert_eq!(e.pending(), 2);
        e.cancel(a);
        assert_eq!(e.pending(), 1);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn schedule_past_panics() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_after(ms(10), 1);
        e.pop();
        e.schedule(Instant::ZERO + ms(5), 2);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_after(ms(1), 1);
        e.schedule_after(ms(5), 5);
        e.schedule_after(ms(9), 9);
        let mut seen = Vec::new();
        e.run_until(Instant::ZERO + ms(6), |_, _, p| seen.push(p));
        assert_eq!(seen, vec![1, 5]);
        assert_eq!(e.pending(), 1);
    }

    #[test]
    fn run_until_requeues_event_hidden_by_tombstone() {
        let mut e: Engine<u32> = Engine::new();
        let a = e.schedule_after(ms(5), 1); // Will be cancelled.
        e.schedule_after(ms(20), 2); // Beyond the deadline.
        e.cancel(a);
        let mut seen = Vec::new();
        e.run_until(Instant::ZERO + ms(10), |_, _, p| seen.push(p));
        assert!(seen.is_empty(), "nothing fires before the deadline");
        assert_eq!(e.pending(), 1, "the later event is still queued");
        // It fires once the window reaches it.
        e.run_until(Instant::ZERO + ms(25), |_, _, p| seen.push(p));
        assert_eq!(seen, vec![2]);
    }

    #[test]
    fn stale_tombstones_cleared_when_queue_drains() {
        let mut e: Engine<u32> = Engine::new();
        let a = e.schedule_after(ms(1), 1);
        assert_eq!(e.pop().unwrap().1, 1);
        e.cancel(a); // Already fired: tombstone goes stale.
        e.schedule_after(ms(1), 2);
        assert_eq!(e.pop().unwrap().1, 2); // Queue drains => purge.
        e.schedule_after(ms(1), 3);
        assert_eq!(e.pending(), 1, "stale tombstone no longer undercounts");
    }

    #[test]
    fn run_until_advances_clock_when_drained() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_after(ms(1), 1);
        e.run_until(Instant::ZERO + ms(100), |_, _, _| {});
        assert_eq!(e.now(), Instant::ZERO + ms(100));
    }

    mod properties {
        use super::*;
        use crate::rng::Rng;

        /// Events always pop in non-decreasing time order, FIFO among
        /// equal timestamps. Randomized over 200 seeded cases.
        #[test]
        fn pop_order_is_stable_sort() {
            let mut rng = Rng::new(0xE4617E);
            for case in 0..200 {
                let n = rng.range_inclusive(1, 99) as usize;
                let delays: Vec<u64> = (0..n).map(|_| rng.below(1000)).collect();
                let mut e: Engine<usize> = Engine::new();
                for (i, &d) in delays.iter().enumerate() {
                    e.schedule_after(Duration::from_micros(d), i);
                }
                let mut popped: Vec<(u64, usize)> = Vec::new();
                while let Some((t, i)) = e.pop() {
                    popped.push((t.as_nanos(), i));
                }
                assert_eq!(popped.len(), delays.len(), "case {case}");
                for w in popped.windows(2) {
                    assert!(w[0].0 <= w[1].0, "time went backwards (case {case})");
                    if w[0].0 == w[1].0 {
                        assert!(w[0].1 < w[1].1, "FIFO violated at equal time (case {case})");
                    }
                }
            }
        }

        /// Cancelling an arbitrary subset removes exactly that subset.
        #[test]
        fn cancel_subset() {
            let mut rng = Rng::new(0xCA9CE1);
            for case in 0..200 {
                let n = rng.range_inclusive(1, 59) as usize;
                let delays: Vec<(u64, bool)> =
                    (0..n).map(|_| (rng.below(100), rng.chance(0.5))).collect();
                let mut e: Engine<usize> = Engine::new();
                let mut keep = Vec::new();
                for (i, &(d, cancel)) in delays.iter().enumerate() {
                    let id = e.schedule_after(Duration::from_micros(d), i);
                    if cancel {
                        e.cancel(id);
                    } else {
                        keep.push(i);
                    }
                }
                let mut popped: Vec<usize> = Vec::new();
                while let Some((_, i)) = e.pop() {
                    popped.push(i);
                }
                popped.sort_unstable();
                keep.sort_unstable();
                assert_eq!(popped, keep, "case {case}");
            }
        }
    }

    #[test]
    fn pop_batch_takes_all_equal_timestamps_in_fifo_order() {
        let mut e: Engine<u32> = Engine::new();
        let t = Instant::ZERO + ms(5);
        e.schedule(t, 1);
        e.schedule(t, 2);
        e.schedule_after(ms(9), 9);
        e.schedule(t, 3);
        let mut batch = Vec::new();
        assert_eq!(e.pop_batch(&mut batch), Some(t));
        assert_eq!(batch, vec![1, 2, 3]);
        assert_eq!(e.now(), t);
        batch.clear();
        assert_eq!(e.pop_batch(&mut batch), Some(Instant::ZERO + ms(9)));
        assert_eq!(batch, vec![9]);
        batch.clear();
        assert_eq!(e.pop_batch(&mut batch), None);
    }

    #[test]
    fn pop_batch_requeues_event_hidden_by_tombstone() {
        let mut e: Engine<u32> = Engine::new();
        let t = Instant::ZERO + ms(5);
        e.schedule(t, 1);
        let a = e.schedule(t, 2);
        e.schedule_after(ms(9), 9); // Hidden behind 2's tombstone.
        e.cancel(a);
        let mut batch = Vec::new();
        assert_eq!(e.pop_batch(&mut batch), Some(t));
        assert_eq!(batch, vec![1], "cancelled event must not appear");
        assert_eq!(e.now(), t, "clock stays at the batch timestamp");
        // The later event is still pending and schedulable at its time.
        batch.clear();
        assert_eq!(e.pop_batch(&mut batch), Some(Instant::ZERO + ms(9)));
        assert_eq!(batch, vec![9]);
    }

    #[test]
    fn advance_to_moves_the_clock_forward() {
        let mut e: Engine<u32> = Engine::new();
        e.advance_to(Instant::ZERO + ms(50));
        assert_eq!(e.now(), Instant::ZERO + ms(50));
        e.schedule_after(ms(1), 1);
        assert_eq!(e.pop().unwrap().0, Instant::ZERO + ms(51));
    }

    #[test]
    #[should_panic(expected = "skip a pending event")]
    fn advance_to_refuses_to_skip_pending_events() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_after(ms(1), 1);
        e.advance_to(Instant::ZERO + ms(50));
    }

    #[test]
    fn dispatcher_can_chain_events() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_after(ms(1), 0);
        let mut count = 0;
        e.run_until(Instant::ZERO + ms(10), |e, _, p| {
            count += 1;
            if p < 3 {
                e.schedule_after(ms(1), p + 1);
            }
        });
        assert_eq!(count, 4);
    }
}
