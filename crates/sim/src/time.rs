//! Virtual time: [`Instant`] and [`Duration`] newtypes with nanosecond
//! resolution.
//!
//! The paper measures with an AM9513 timer board "with accuracy to the
//! nearest 1 micro second"; the simulation keeps nanoseconds internally so
//! that rounding never perturbs event ordering, and exposes µs/ms/s
//! constructors for the paper's parameters.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// Number of nanoseconds in one microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;
/// Number of nanoseconds in one millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Number of nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// A span of virtual time, in integer nanoseconds.
///
/// `Duration` is `Copy`, totally ordered, and supports saturating-free
/// checked-by-construction arithmetic: additions that would overflow `u64`
/// nanoseconds panic, which at ~584 years of simulated time is treated as a
/// logic error rather than a recoverable condition.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable duration (used as an "infinite" sentinel).
    pub const MAX: Duration = Duration(u64::MAX);

    /// Creates a duration from integer nanoseconds.
    pub const fn from_nanos(ns: u64) -> Duration {
        Duration(ns)
    }

    /// Creates a duration from integer microseconds.
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us * NANOS_PER_MICRO)
    }

    /// Creates a duration from integer milliseconds.
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * NANOS_PER_MILLI)
    }

    /// Creates a duration from integer seconds.
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * NANOS_PER_SEC)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Duration {
        if !s.is_finite() || s <= 0.0 {
            return Duration::ZERO;
        }
        Duration((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Creates a duration from fractional milliseconds (clamping like
    /// [`Duration::from_secs_f64`]).
    pub fn from_millis_f64(ms: f64) -> Duration {
        Duration::from_secs_f64(ms / 1_000.0)
    }

    /// Returns the duration as integer nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as integer microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / NANOS_PER_MICRO
    }

    /// Returns the duration as integer milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / NANOS_PER_MILLI
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Returns true if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: returns zero rather than wrapping.
    pub const fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub const fn checked_add(self, rhs: Duration) -> Option<Duration> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Duration(v)),
            None => None,
        }
    }

    /// Multiplies the duration by an integer factor.
    pub const fn mul_u64(self, k: u64) -> Duration {
        Duration(self.0 * k)
    }

    /// Scales the duration by a non-negative float, rounding to nanoseconds.
    pub fn mul_f64(self, k: f64) -> Duration {
        Duration::from_secs_f64(self.as_secs_f64() * k)
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: Duration) -> Duration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: Duration) -> Duration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.checked_add(rhs.0).expect("Duration overflow"))
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.checked_sub(rhs.0).expect("Duration underflow"))
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0.checked_mul(rhs).expect("Duration overflow"))
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Div<Duration> for Duration {
    type Output = u64;
    /// Integer division of two durations: how many `rhs` fit in `self`.
    fn div(self, rhs: Duration) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<Duration> for Duration {
    type Output = Duration;
    fn rem(self, rhs: Duration) -> Duration {
        Duration(self.0 % rhs.0)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

/// A point in virtual time, measured from simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant(u64);

impl Instant {
    /// The simulation epoch (t = 0).
    pub const ZERO: Instant = Instant(0);
    /// The farthest representable instant.
    pub const MAX: Instant = Instant(u64::MAX);

    /// Creates an instant at `ns` nanoseconds after the epoch.
    pub const fn from_nanos(ns: u64) -> Instant {
        Instant(ns)
    }

    /// Creates an instant at fractional seconds after the epoch.
    pub fn from_secs_f64(s: f64) -> Instant {
        Instant(Duration::from_secs_f64(s).as_nanos())
    }

    /// Returns nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; use
    /// [`Instant::saturating_since`] for a clamping variant.
    pub fn since(self, earlier: Instant) -> Duration {
        Duration(
            self.0
                .checked_sub(earlier.0)
                .expect("Instant::since: earlier is in the future"),
        )
    }

    /// Duration elapsed since `earlier`, or zero if `earlier` is later.
    pub const fn saturating_since(self, earlier: Instant) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub const fn checked_add(self, d: Duration) -> Option<Instant> {
        match self.0.checked_add(d.as_nanos()) {
            Some(v) => Some(Instant(v)),
            None => None,
        }
    }

    /// Rounds this instant *up* to the next multiple of `period`
    /// (used for aligning periodic activities).
    pub fn align_up(self, period: Duration) -> Instant {
        let p = period.as_nanos();
        assert!(p > 0, "align_up: zero period");
        let rem = self.0 % p;
        if rem == 0 {
            self
        } else {
            Instant(self.0 + (p - rem))
        }
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant(
            self.0
                .checked_add(rhs.as_nanos())
                .expect("Instant overflow"),
        )
    }
}

impl AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    fn sub(self, rhs: Duration) -> Instant {
        Instant(
            self.0
                .checked_sub(rhs.as_nanos())
                .expect("Instant underflow"),
        )
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, rhs: Instant) -> Duration {
        self.since(rhs)
    }
}

impl fmt::Debug for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", format_ns(self.0))
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// Formats a nanosecond count with a human-readable unit.
fn format_ns(ns: u64) -> String {
    if ns == 0 {
        "0s".to_string()
    } else if ns < NANOS_PER_MICRO {
        format!("{ns}ns")
    } else if ns < NANOS_PER_MILLI {
        format!("{:.3}us", ns as f64 / NANOS_PER_MICRO as f64)
    } else if ns < NANOS_PER_SEC {
        format!("{:.3}ms", ns as f64 / NANOS_PER_MILLI as f64)
    } else {
        format!("{:.6}s", ns as f64 / NANOS_PER_SEC as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_micros(1), Duration::from_nanos(1_000));
        assert_eq!(Duration::from_millis(1), Duration::from_micros(1_000));
        assert_eq!(Duration::from_secs(1), Duration::from_millis(1_000));
        assert_eq!(Duration::from_secs_f64(0.5), Duration::from_millis(500));
        assert_eq!(Duration::from_millis_f64(8.33).as_micros(), 8_330);
    }

    #[test]
    fn duration_f64_roundtrip() {
        let d = Duration::from_secs_f64(1.234567891);
        assert!((d.as_secs_f64() - 1.234567891).abs() < 1e-9);
    }

    #[test]
    fn duration_from_f64_clamps_bad_input() {
        assert_eq!(Duration::from_secs_f64(-3.0), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::NAN), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::NEG_INFINITY), Duration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let a = Duration::from_millis(10);
        let b = Duration::from_millis(4);
        assert_eq!(a + b, Duration::from_millis(14));
        assert_eq!(a - b, Duration::from_millis(6));
        assert_eq!(a * 3, Duration::from_millis(30));
        assert_eq!(a / 2, Duration::from_millis(5));
        assert_eq!(a / b, 2);
        assert_eq!(a % b, Duration::from_millis(2));
        assert_eq!(b.saturating_sub(a), Duration::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn duration_sub_underflow_panics() {
        let _ = Duration::from_millis(1) - Duration::from_millis(2);
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = Instant::ZERO;
        let t1 = t0 + Duration::from_secs(2);
        assert_eq!(t1.since(t0), Duration::from_secs(2));
        assert_eq!(t1 - t0, Duration::from_secs(2));
        assert_eq!(t0.saturating_since(t1), Duration::ZERO);
        assert_eq!(t1 - Duration::from_secs(1), t0 + Duration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn instant_since_future_panics() {
        let t0 = Instant::ZERO;
        let t1 = t0 + Duration::from_secs(1);
        let _ = t0.since(t1);
    }

    #[test]
    fn instant_align_up() {
        let p = Duration::from_millis(500);
        assert_eq!(Instant::ZERO.align_up(p), Instant::ZERO);
        let t = Instant::from_nanos(1);
        assert_eq!(t.align_up(p), Instant::from_nanos(p.as_nanos()));
        let t = Instant::ZERO + p;
        assert_eq!(t.align_up(p), t);
    }

    mod properties {
        use super::*;
        use crate::rng::Rng;

        /// Duration add/sub round-trips.
        #[test]
        fn add_sub_roundtrip() {
            let mut rng = Rng::new(0xADD5);
            for _ in 0..1000 {
                let da = Duration::from_nanos(rng.below(u64::MAX / 4));
                let db = Duration::from_nanos(rng.below(u64::MAX / 4));
                assert_eq!((da + db) - db, da);
                assert_eq!((da + db).saturating_sub(da), db);
            }
        }

        /// f64 conversion round-trips within a nanosecond per second
        /// of magnitude.
        #[test]
        fn f64_roundtrip() {
            let mut rng = Rng::new(0xF64);
            for _ in 0..1000 {
                let ns = rng.below(1u64 << 53);
                let d = Duration::from_nanos(ns);
                let back = Duration::from_secs_f64(d.as_secs_f64());
                let err = back.as_nanos().abs_diff(ns);
                assert!(err <= 1 + ns / 1_000_000_000, "err {err}");
            }
        }

        /// align_up lands on a multiple and never moves backwards.
        #[test]
        fn align_up_properties() {
            let mut rng = Rng::new(0xA119);
            for _ in 0..1000 {
                let t = rng.below(u64::MAX / 2);
                let p = rng.range_inclusive(1, 999_999);
                let inst = Instant::from_nanos(t);
                let period = Duration::from_nanos(p);
                let aligned = inst.align_up(period);
                assert!(aligned >= inst);
                assert_eq!(aligned.as_nanos() % p, 0);
                assert!(aligned.as_nanos() - t < p);
            }
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Duration::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", Duration::from_micros(5)), "5.000us");
        assert_eq!(format!("{}", Duration::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", Duration::from_secs(5)), "5.000000s");
        assert_eq!(format!("{}", Duration::ZERO), "0s");
    }
}
