//! The priority-inversion scenario the paper's design avoids, replayed on
//! the substrate: a low-priority thread holds a resource a high-priority
//! thread needs while a medium-priority thread hogs the CPU. Without
//! priority inheritance the high-priority thread waits for the *medium*
//! one (unbounded inversion); with inheritance the holder is boosted and
//! the inversion is bounded by the critical section.

use cras_rtmach::{Acquire, Cpu, InheritancePolicy, MutexSim, SchedPolicy, SliceToken};
use cras_sim::{Duration, Instant};

fn fp(prio: u8) -> SchedPolicy {
    SchedPolicy::FixedPriority { prio }
}

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

/// A tiny orchestrator: drives CPU slices and, at scripted times, lock
/// acquire/release points. Returns the time the high-priority thread
/// finished its critical work.
fn run_scenario(policy: InheritancePolicy) -> u64 {
    let mut cpu = Cpu::new();
    let lo = cpu.create("lo", fp(1));
    let mid = cpu.create("mid", fp(5));
    let hi = cpu.create("hi", fp(9));
    let mut mutex = MutexSim::new(policy);

    // Timeline:
    //   t=0  lo acquires the lock and starts a 20 ms critical section.
    //   t=2  mid wakes with 100 ms of pure CPU work.
    //   t=4  hi wakes, needs the lock for 5 ms of work.
    assert_eq!(mutex.acquire(lo, 1), Acquire::Granted);

    let mut events: Vec<(Instant, SliceToken)> = Vec::new();
    let push = |r: Option<(Instant, SliceToken)>, events: &mut Vec<(Instant, SliceToken)>| {
        if let Some(e) = r {
            events.push(e);
        }
    };
    // lo's critical section: one 20 ms burst; release at its end.
    let r = cpu.wake(lo, ms(20), 100, Instant::ZERO);
    push(r, &mut events);

    let mut hi_waiting = false;
    let mut hi_done_at: Option<Instant> = None;
    let mut mid_started = false;
    let mut hi_arrived = false;

    loop {
        // Inject the scripted wakes at their times.
        events.sort_by_key(|e| e.0);
        let next_slice = events.first().map(|e| e.0);
        let t_mid = Instant::ZERO + ms(2);
        let t_hi = Instant::ZERO + ms(4);
        let mut candidates = vec![];
        if !mid_started {
            candidates.push(t_mid);
        }
        if !hi_arrived {
            candidates.push(t_hi);
        }
        if let Some(ts) = next_slice {
            candidates.push(ts);
        }
        let Some(&now) = candidates.iter().min() else {
            break;
        };

        if !mid_started && now == t_mid {
            mid_started = true;
            let r = cpu.wake(mid, ms(100), 200, now);
            push(r, &mut events);
            continue;
        }
        if !hi_arrived && now == t_hi {
            hi_arrived = true;
            // hi tries the lock first.
            match mutex.acquire(hi, 9) {
                Acquire::Granted => {
                    let r = cpu.wake(hi, ms(5), 300, now);
                    push(r, &mut events);
                }
                Acquire::Blocked {
                    owner,
                    boost_owner_to,
                } => {
                    hi_waiting = true;
                    if let Some(b) = boost_owner_to {
                        let r = cpu.set_boost(owner, Some(b), now);
                        push(r, &mut events);
                    }
                }
            }
            continue;
        }
        // Otherwise: the earliest slice event.
        let idx = events
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.0)
            .map(|(i, _)| i)
            .unwrap();
        let (t, tok) = events.remove(idx);
        let out = cpu.slice_end(tok, t);
        push(out.resched, &mut events);
        if let Some(done) = out.completed {
            match done.tag {
                100 => {
                    // lo leaves the critical section.
                    let rel = mutex.release(lo);
                    if rel.clear_boost {
                        let r = cpu.set_boost(lo, None, t);
                        push(r, &mut events);
                    }
                    if rel.granted_to == Some(hi) && hi_waiting {
                        hi_waiting = false;
                        let r = cpu.wake(hi, ms(5), 300, t);
                        push(r, &mut events);
                    }
                }
                300 => {
                    mutex.release(hi);
                    hi_done_at = Some(t);
                }
                _ => {}
            }
        }
        if hi_done_at.is_some() && events.is_empty() {
            break;
        }
        if hi_done_at.is_some() {
            // Let remaining threads (mid) finish draining.
            continue;
        }
    }
    hi_done_at
        .expect("hi finishes")
        .since(Instant::ZERO)
        .as_millis()
}

#[test]
fn without_inheritance_hi_waits_for_mid() {
    // lo runs 0..2 (2 of 20 ms done), mid preempts 2..102, lo resumes
    // 102..120, releases; hi runs 120..125.
    let done = run_scenario(InheritancePolicy::None);
    assert_eq!(done, 125, "unbounded inversion through mid's 100 ms");
}

#[test]
fn with_inheritance_hi_is_bounded_by_the_critical_section() {
    // lo boosted to 9 at t=4: runs 2..22 straight through (mid preempted
    // lo 2..4? mid at prio 5 preempts lo at 2; at t=4 hi blocks and
    // boosts lo to 9; lo resumes 4..22, releases; hi runs 22..27.
    let done = run_scenario(InheritancePolicy::PriorityInheritance);
    assert_eq!(done, 27, "inversion bounded by the critical section");
}
