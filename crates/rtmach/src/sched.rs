//! The single-CPU preemptive scheduler.
//!
//! [`Cpu`] is an event-driven state machine: the orchestrator calls
//! [`Cpu::wake`] to hand a thread a burst of CPU work and
//! [`Cpu::slice_end`] when a previously returned slice boundary arrives.
//! Both return at most one `(time, token)` pair for the orchestrator to
//! schedule; stale tokens (invalidated by preemption) are ignored, which
//! is the standard trick for preemption in discrete-event models.
//!
//! Fixed-priority threads preempt anything with lower effective priority
//! the instant they wake — this is what lets CRAS's request-scheduler
//! thread meet its interval deadlines in Figure 10. Round-robin threads
//! share their level in quantum-sized slices, which is exactly what
//! produces the large delay jitter the paper measures under round-robin.

use cras_sim::{Duration, Instant};

use crate::thread::{Burst, SchedPolicy, ThreadId, ThreadRec, ThreadState};

/// Identifies one scheduled slice; stale tokens are ignored.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SliceToken(u64);

impl SliceToken {
    /// The token's raw issue number (monotone per CPU). Used by the
    /// orchestrator's canonical same-tick event ordering.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// What the orchestrator must do after a scheduler operation: schedule the
/// next slice-boundary event, if any.
pub type Resched = Option<(Instant, SliceToken)>;

/// A completed burst report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BurstDone {
    /// The thread whose burst finished.
    pub tid: ThreadId,
    /// The tag given at [`Cpu::wake`].
    pub tag: u64,
}

/// Outcome of a [`Cpu::slice_end`] call.
#[derive(Clone, Debug, Default)]
pub struct SliceOutcome {
    /// Burst that completed at this boundary (empty for quantum expiry or
    /// a stale token).
    pub completed: Option<BurstDone>,
    /// Next slice boundary to schedule.
    pub resched: Resched,
}

#[derive(Clone, Copy, Debug)]
struct Current {
    tid: ThreadId,
    token: SliceToken,
    started: Instant,
    ends: Instant,
    burst_ends: bool,
}

/// Aggregate CPU statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct CpuStats {
    /// Total time the CPU executed any thread.
    pub busy: Duration,
    /// Number of dispatches.
    pub dispatches: u64,
    /// Number of preemptions.
    pub preemptions: u64,
}

/// The simulated CPU.
pub struct Cpu {
    threads: Vec<ThreadRec>,
    /// Ready thread ids, dispatch order = max effective prio, then FIFO.
    ready: Vec<ThreadId>,
    current: Option<Current>,
    next_token: u64,
    stats: CpuStats,
}

impl Default for Cpu {
    fn default() -> Self {
        Cpu::new()
    }
}

impl Cpu {
    /// Creates an empty CPU.
    pub fn new() -> Cpu {
        Cpu {
            threads: Vec::new(),
            ready: Vec::new(),
            current: None,
            next_token: 0,
            stats: CpuStats::default(),
        }
    }

    /// Creates a thread; it starts [`ThreadState::Blocked`].
    pub fn create(&mut self, name: &str, policy: SchedPolicy) -> ThreadId {
        let tid = ThreadId(self.threads.len() as u32);
        self.threads.push(ThreadRec::new(name.to_string(), policy));
        tid
    }

    /// Current state of a thread.
    pub fn state(&self, tid: ThreadId) -> ThreadState {
        self.threads[tid.0 as usize].state
    }

    /// Name of a thread.
    pub fn name(&self, tid: ThreadId) -> &str {
        &self.threads[tid.0 as usize].name
    }

    /// Total CPU time consumed by a thread so far (not counting the
    /// currently running slice).
    pub fn runtime(&self, tid: ThreadId) -> Duration {
        self.threads[tid.0 as usize].total_cpu
    }

    /// Number of bursts a thread has completed.
    pub fn bursts_completed(&self, tid: ThreadId) -> u64 {
        self.threads[tid.0 as usize].bursts_completed
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> CpuStats {
        self.stats
    }

    /// The running thread, if any.
    pub fn running(&self) -> Option<ThreadId> {
        self.current.map(|c| c.tid)
    }

    /// Whether the CPU is idle.
    pub fn is_idle(&self) -> bool {
        self.current.is_none()
    }

    /// Sets (or clears) a priority-inheritance boost on a thread.
    ///
    /// A raised boost on a *ready* thread can preempt the running thread;
    /// the caller must treat the returned [`Resched`] like any other.
    pub fn set_boost(&mut self, tid: ThreadId, boost: Option<u8>, now: Instant) -> Resched {
        self.threads[tid.0 as usize].boost = boost;
        // Re-evaluate only if the boosted thread is ready and would now
        // outrank the running thread.
        if self.threads[tid.0 as usize].state == ThreadState::Ready {
            if let Some(cur) = self.current {
                let cur_prio = self.threads[cur.tid.0 as usize].effective_prio();
                let new_prio = self.threads[tid.0 as usize].effective_prio();
                if new_prio > cur_prio {
                    return self.preempt_and_dispatch(now);
                }
            }
        }
        None
    }

    /// Gives `tid` a burst of `work` CPU time tagged `tag`. The thread
    /// becomes ready (bursts queue FIFO if it already has work).
    ///
    /// Returns the next slice boundary to schedule, when this wake changed
    /// the dispatch decision (idle CPU or preemption).
    ///
    /// # Panics
    ///
    /// Panics if `work` is zero — zero-length bursts would complete
    /// "instantly" and are almost always an orchestrator bug; model cheap
    /// operations with a small positive cost instead.
    pub fn wake(&mut self, tid: ThreadId, work: Duration, tag: u64, now: Instant) -> Resched {
        assert!(!work.is_zero(), "zero-length CPU burst");
        let t = &mut self.threads[tid.0 as usize];
        t.work.push_back(Burst {
            remaining: work,
            tag,
        });
        match t.state {
            ThreadState::Blocked => {
                t.state = ThreadState::Ready;
                self.ready.push(tid);
            }
            ThreadState::Ready | ThreadState::Running => {
                // Extra work queued behind the current burst(s).
                return None;
            }
        }
        match self.current {
            None => self.dispatch(now),
            Some(cur) => {
                let cur_prio = self.threads[cur.tid.0 as usize].effective_prio();
                let new_prio = self.threads[tid.0 as usize].effective_prio();
                if new_prio > cur_prio && now < cur.ends {
                    self.preempt_and_dispatch(now)
                } else {
                    // Equal/lower priority waits; if `now == cur.ends` the
                    // already-scheduled slice event will re-dispatch.
                    None
                }
            }
        }
    }

    /// Handles a slice-boundary event for `token`.
    ///
    /// A stale token (the slice was preempted away) yields an empty
    /// outcome. Otherwise the running thread either completed its burst or
    /// exhausted its quantum, and the next thread is dispatched.
    pub fn slice_end(&mut self, token: SliceToken, now: Instant) -> SliceOutcome {
        let Some(cur) = self.current else {
            return SliceOutcome::default();
        };
        if cur.token != token {
            return SliceOutcome::default();
        }
        assert_eq!(cur.ends, now, "slice event fired at the wrong time");
        self.current = None;
        let elapsed = now.since(cur.started);
        let t = &mut self.threads[cur.tid.0 as usize];
        t.total_cpu += elapsed;
        self.stats.busy += elapsed;

        let mut completed = None;
        if cur.burst_ends {
            let burst = t.work.pop_front().expect("running thread without work");
            t.bursts_completed += 1;
            completed = Some(BurstDone {
                tid: cur.tid,
                tag: burst.tag,
            });
            if t.work.is_empty() {
                t.state = ThreadState::Blocked;
            } else {
                t.state = ThreadState::Ready;
                self.ready.push(cur.tid);
            }
        } else {
            // Quantum expiry: charge the slice against the burst and
            // requeue at the tail of the ready list.
            let burst = t.work.front_mut().expect("running thread without work");
            burst.remaining = burst.remaining.saturating_sub(elapsed);
            t.state = ThreadState::Ready;
            self.ready.push(cur.tid);
        }

        SliceOutcome {
            completed,
            resched: self.dispatch(now),
        }
    }

    fn preempt_and_dispatch(&mut self, now: Instant) -> Resched {
        let cur = self.current.take().expect("preempt with idle CPU");
        let elapsed = now.since(cur.started);
        let t = &mut self.threads[cur.tid.0 as usize];
        t.total_cpu += elapsed;
        self.stats.busy += elapsed;
        self.stats.preemptions += 1;
        let burst = t.work.front_mut().expect("running thread without work");
        burst.remaining = burst.remaining.saturating_sub(elapsed);
        t.state = ThreadState::Ready;
        // A preempted thread resumes ahead of equal-priority peers.
        self.ready.insert(0, cur.tid);
        self.dispatch(now)
    }

    fn dispatch(&mut self, now: Instant) -> Resched {
        debug_assert!(self.current.is_none());
        if self.ready.is_empty() {
            return None;
        }
        // Highest effective priority; FIFO among equals (stable scan).
        let mut best_idx = 0;
        let mut best_prio = self.threads[self.ready[0].0 as usize].effective_prio();
        for (i, &tid) in self.ready.iter().enumerate().skip(1) {
            let p = self.threads[tid.0 as usize].effective_prio();
            if p > best_prio {
                best_prio = p;
                best_idx = i;
            }
        }
        let tid = self.ready.remove(best_idx);
        let t = &mut self.threads[tid.0 as usize];
        t.state = ThreadState::Running;
        let burst = t.work.front().expect("ready thread without work");
        let quantum = t.policy.quantum();
        let (slice, burst_ends) = match quantum {
            Some(q) if q < burst.remaining => (q, false),
            _ => (burst.remaining, true),
        };
        self.next_token += 1;
        let token = SliceToken(self.next_token);
        let ends = now + slice;
        self.current = Some(Current {
            tid,
            token,
            started: now,
            ends,
            burst_ends,
        });
        self.stats.dispatches += 1;
        Some((ends, token))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1;
    fn ms(v: u64) -> Duration {
        Duration::from_millis(v * MS)
    }
    fn at(v: u64) -> Instant {
        Instant::ZERO + ms(v)
    }

    fn fp(prio: u8) -> SchedPolicy {
        SchedPolicy::FixedPriority { prio }
    }
    fn rr(prio: u8, q: u64) -> SchedPolicy {
        SchedPolicy::RoundRobin {
            prio,
            quantum: ms(q),
        }
    }

    /// Drives the CPU to completion from a list of initial wakes,
    /// returning (finish_time_ms, tid, tag) triples in completion order.
    fn drive(cpu: &mut Cpu, wakes: Vec<(u64, ThreadId, u64, u64)>) -> Vec<(u64, ThreadId, u64)> {
        // wakes: (time_ms, tid, work_ms, tag)
        let mut events: Vec<(Instant, SliceToken)> = Vec::new();
        let mut done = Vec::new();
        let mut wakes = wakes;
        wakes.sort_by_key(|w| w.0);
        let mut wi = 0;
        loop {
            // Find next event: earliest of pending wake or slice event.
            let next_wake = wakes.get(wi).map(|w| at(w.0));
            events.sort_by_key(|e| e.0);
            let next_slice = events.first().map(|e| e.0);
            let take_wake = match (next_wake, next_slice) {
                (None, None) => break,
                (Some(tw), Some(ts)) => tw <= ts,
                (Some(_), None) => true,
                (None, Some(_)) => false,
            };
            if take_wake {
                let (tms, tid, work, tag) = wakes[wi];
                wi += 1;
                if let Some(r) = cpu.wake(tid, ms(work), tag, at(tms)) {
                    events.push(r);
                }
            } else {
                let (t, tok) = events.remove(0);
                let out = cpu.slice_end(tok, t);
                if let Some(b) = out.completed {
                    done.push((t.since(Instant::ZERO).as_millis(), b.tid, b.tag));
                }
                if let Some(r) = out.resched {
                    events.push(r);
                }
            }
        }
        done
    }

    #[test]
    fn single_thread_runs_to_completion() {
        let mut cpu = Cpu::new();
        let a = cpu.create("a", fp(5));
        let done = drive(&mut cpu, vec![(0, a, 10, 1)]);
        assert_eq!(done, vec![(10, a, 1)]);
        assert_eq!(cpu.runtime(a), ms(10));
        assert_eq!(cpu.state(a), ThreadState::Blocked);
    }

    #[test]
    fn higher_priority_preempts() {
        let mut cpu = Cpu::new();
        let lo = cpu.create("lo", fp(1));
        let hi = cpu.create("hi", fp(9));
        // lo starts at 0 (20 ms work); hi wakes at 5 (3 ms work).
        let done = drive(&mut cpu, vec![(0, lo, 20, 1), (5, hi, 3, 2)]);
        assert_eq!(done, vec![(8, hi, 2), (23, lo, 1)]);
        assert_eq!(cpu.stats().preemptions, 1);
    }

    #[test]
    fn equal_priority_fifo_no_preemption() {
        let mut cpu = Cpu::new();
        let a = cpu.create("a", fp(5));
        let b = cpu.create("b", fp(5));
        let done = drive(&mut cpu, vec![(0, a, 10, 1), (2, b, 5, 2)]);
        assert_eq!(done, vec![(10, a, 1), (15, b, 2)]);
    }

    #[test]
    fn round_robin_interleaves() {
        let mut cpu = Cpu::new();
        let a = cpu.create("a", rr(5, 10));
        let b = cpu.create("b", rr(5, 10));
        // Both have 20 ms of work; quantum 10 ms: a(0-10) b(10-20)
        // a(20-30 done) b(30-40 done).
        let done = drive(&mut cpu, vec![(0, a, 20, 1), (0, b, 20, 2)]);
        assert_eq!(done, vec![(30, a, 1), (40, b, 2)]);
    }

    #[test]
    fn round_robin_quantum_delays_short_job() {
        // The Figure 10 mechanism: under RR, a short periodic job waits
        // behind hog quanta; under FP it preempts instantly.
        let mut cpu = Cpu::new();
        let hog1 = cpu.create("hog1", rr(5, 100));
        let hog2 = cpu.create("hog2", rr(5, 100));
        let job = cpu.create("job", rr(5, 100));
        let done = drive(
            &mut cpu,
            vec![(0, hog1, 300, 1), (0, hog2, 300, 2), (50, job, 5, 3)],
        );
        let job_done = done.iter().find(|d| d.1 == job).unwrap();
        // job arrives at 50; hog1 runs til 100, hog2 til 200, job at 205.
        assert_eq!(job_done.0, 205);
    }

    #[test]
    fn fixed_priority_job_unaffected_by_hogs() {
        let mut cpu = Cpu::new();
        let hog1 = cpu.create("hog1", fp(1));
        let hog2 = cpu.create("hog2", fp(1));
        let job = cpu.create("job", fp(9));
        let done = drive(
            &mut cpu,
            vec![(0, hog1, 300, 1), (0, hog2, 300, 2), (50, job, 5, 3)],
        );
        let job_done = done.iter().find(|d| d.1 == job).unwrap();
        assert_eq!(job_done.0, 55);
    }

    #[test]
    fn queued_bursts_complete_in_order() {
        let mut cpu = Cpu::new();
        let a = cpu.create("a", fp(5));
        let done = drive(&mut cpu, vec![(0, a, 5, 1), (0, a, 5, 2), (0, a, 5, 3)]);
        assert_eq!(done, vec![(5, a, 1), (10, a, 2), (15, a, 3)]);
        assert_eq!(cpu.bursts_completed(a), 3);
    }

    #[test]
    fn stale_token_is_ignored() {
        let mut cpu = Cpu::new();
        let lo = cpu.create("lo", fp(1));
        let hi = cpu.create("hi", fp(9));
        let first = cpu.wake(lo, ms(20), 1, at(0)).unwrap();
        // Preemption invalidates `first`.
        let second = cpu.wake(hi, ms(3), 2, at(5)).unwrap();
        let stale = cpu.slice_end(first.1, first.0);
        assert!(stale.completed.is_none());
        assert!(stale.resched.is_none());
        let out = cpu.slice_end(second.1, second.0);
        assert_eq!(out.completed.unwrap().tid, hi);
    }

    #[test]
    fn preempted_thread_resumes_before_equal_peers() {
        let mut cpu = Cpu::new();
        let a = cpu.create("a", fp(5));
        let b = cpu.create("b", fp(5));
        let hi = cpu.create("hi", fp(9));
        // a runs 0-10 (work 10), b ready at 1. hi preempts a at 2 for 3 ms.
        // After hi, a should resume (not b), finishing its remaining 8 ms.
        let done = drive(&mut cpu, vec![(0, a, 10, 1), (1, b, 5, 2), (2, hi, 3, 3)]);
        assert_eq!(done, vec![(5, hi, 3), (13, a, 1), (18, b, 2)]);
    }

    #[test]
    fn boost_triggers_preemption() {
        let mut cpu = Cpu::new();
        let running = cpu.create("running", fp(5));
        let waiter = cpu.create("waiter", fp(1));
        let r1 = cpu.wake(running, ms(100), 1, at(0)).unwrap();
        assert!(cpu.wake(waiter, ms(10), 2, at(1)).is_none());
        // Boost the low-priority waiter above the runner.
        let r2 = cpu.set_boost(waiter, Some(9), at(2));
        let (t2, tok2) = r2.expect("boost should preempt");
        assert_eq!(cpu.running(), Some(waiter));
        let out = cpu.slice_end(tok2, t2);
        assert_eq!(out.completed.unwrap().tid, waiter);
        // Original token is stale.
        let stale = cpu.slice_end(r1.1, r1.0);
        assert!(stale.completed.is_none());
    }

    #[test]
    fn busy_time_accounts_everything() {
        let mut cpu = Cpu::new();
        let a = cpu.create("a", fp(5));
        let b = cpu.create("b", fp(7));
        drive(&mut cpu, vec![(0, a, 10, 1), (3, b, 4, 2)]);
        assert_eq!(cpu.stats().busy, ms(14));
        assert_eq!(cpu.runtime(a), ms(10));
        assert_eq!(cpu.runtime(b), ms(4));
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_burst_panics() {
        let mut cpu = Cpu::new();
        let a = cpu.create("a", fp(5));
        cpu.wake(a, Duration::ZERO, 1, at(0));
    }

    #[test]
    fn nested_preemption_unwinds_in_priority_order() {
        let mut cpu = Cpu::new();
        let lo = cpu.create("lo", fp(1));
        let mid = cpu.create("mid", fp(5));
        let hi = cpu.create("hi", fp(9));
        // lo starts (30 ms); mid preempts at 5 (10 ms, 3 done by 8); hi
        // preempts mid at 8 (2 ms). Unwind: hi@10, mid resumes 10..17,
        // lo resumes 17..42.
        let done = drive(
            &mut cpu,
            vec![(0, lo, 30, 1), (5, mid, 10, 2), (8, hi, 2, 3)],
        );
        assert_eq!(done, vec![(10, hi, 3), (17, mid, 2), (42, lo, 1)]);
        assert_eq!(cpu.stats().preemptions, 2);
    }

    #[test]
    fn fixed_priority_thread_preempts_round_robin_level() {
        let mut cpu = Cpu::new();
        let rr1 = cpu.create("rr1", rr(5, 50));
        let rr2 = cpu.create("rr2", rr(5, 50));
        let fp_hi = cpu.create("fp", fp(9));
        let done = drive(
            &mut cpu,
            vec![(0, rr1, 100, 1), (0, rr2, 100, 2), (10, fp_hi, 5, 3)],
        );
        let fp_done = done.iter().find(|d| d.1 == fp_hi).unwrap();
        assert_eq!(fp_done.0, 15, "FP preempts the RR level instantly");
        // RR threads still complete all their work afterwards.
        assert_eq!(done.len(), 3);
    }

    #[test]
    fn wake_at_slice_end_does_not_double_dispatch() {
        let mut cpu = Cpu::new();
        let a = cpu.create("a", fp(5));
        let b = cpu.create("b", fp(9));
        let (t1, tok1) = cpu.wake(a, ms(10), 1, at(0)).unwrap();
        // b wakes exactly when a's slice ends: no preemption (the slice
        // event handles the switch).
        let r = cpu.wake(b, ms(5), 2, t1);
        assert!(r.is_none());
        let out = cpu.slice_end(tok1, t1);
        assert_eq!(out.completed.unwrap().tid, a);
        let (t2, tok2) = out.resched.unwrap();
        assert_eq!(cpu.running(), Some(b));
        let out2 = cpu.slice_end(tok2, t2);
        assert_eq!(out2.completed.unwrap().tid, b);
        assert_eq!(t2, at(15));
    }
}
