//! Periodic real-time threads and deadline bookkeeping.
//!
//! Real-Time Mach's periodic threads release at fixed intervals and report
//! missed deadlines through a deadline notification port; CRAS's deadline
//! manager thread "executes the recovery action from a missed deadline.
//! Currently, CRAS notifies a warning message when a deadline is missed."
//!
//! [`PeriodicState`] tracks releases, completions and misses for one
//! periodic activity (e.g. CRAS's request-scheduler thread with period =
//! the interval time).

use cras_sim::{Duration, Instant};

/// Static description of a periodic activity.
#[derive(Clone, Copy, Debug)]
pub struct PeriodicSpec {
    /// Release period.
    pub period: Duration,
    /// Offset of the first release from time zero.
    pub offset: Duration,
    /// Relative deadline (from release). Usually equal to `period` for
    /// CRAS: interval *k*'s pre-fetches must finish before interval *k*+1.
    pub deadline: Duration,
}

impl PeriodicSpec {
    /// A spec with deadline equal to the period and zero offset.
    pub fn simple(period: Duration) -> PeriodicSpec {
        PeriodicSpec {
            period,
            offset: Duration::ZERO,
            deadline: period,
        }
    }
}

/// What happened at a completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeadlineVerdict {
    /// Completed at or before the absolute deadline.
    Met,
    /// Completed after the absolute deadline.
    Missed {
        /// How late completion was.
        by: Duration,
    },
}

/// Dynamic state of one periodic activity.
#[derive(Clone, Debug)]
pub struct PeriodicState {
    spec: PeriodicSpec,
    releases: u64,
    completions: u64,
    misses: u64,
    current_release: Option<Instant>,
    worst_lateness: Duration,
    total_response: Duration,
}

impl PeriodicState {
    /// Creates the state machine for a spec.
    pub fn new(spec: PeriodicSpec) -> PeriodicState {
        PeriodicState {
            spec,
            releases: 0,
            completions: 0,
            misses: 0,
            current_release: None,
            worst_lateness: Duration::ZERO,
            total_response: Duration::ZERO,
        }
    }

    /// The spec.
    pub fn spec(&self) -> PeriodicSpec {
        self.spec
    }

    /// Absolute time of release number `k` (0-based).
    pub fn release_time(&self, k: u64) -> Instant {
        Instant::ZERO + self.spec.offset + self.spec.period * k
    }

    /// The next release time (the one not yet released).
    pub fn next_release(&self) -> Instant {
        self.release_time(self.releases)
    }

    /// Records release number `releases` occurring; returns its absolute
    /// deadline.
    ///
    /// If the previous release never completed, it is counted as a miss
    /// (overrun) — the paper's CRAS logs a warning and carries on.
    pub fn release(&mut self) -> Instant {
        if self.current_release.is_some() {
            self.misses += 1;
            self.current_release = None;
        }
        let t = self.next_release();
        self.releases += 1;
        self.current_release = Some(t);
        t + self.spec.deadline
    }

    /// Records the current release completing at `now`.
    ///
    /// # Panics
    ///
    /// Panics if no release is outstanding.
    pub fn complete(&mut self, now: Instant) -> DeadlineVerdict {
        let released = self
            .current_release
            .take()
            .expect("complete without release");
        self.completions += 1;
        self.total_response += now.saturating_since(released);
        let deadline = released + self.spec.deadline;
        if now <= deadline {
            DeadlineVerdict::Met
        } else {
            let by = now.since(deadline);
            self.misses += 1;
            if by > self.worst_lateness {
                self.worst_lateness = by;
            }
            DeadlineVerdict::Missed { by }
        }
    }

    /// Number of releases so far.
    pub fn releases(&self) -> u64 {
        self.releases
    }

    /// Number of completions so far.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Number of deadline misses (late completions plus overruns).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Worst observed lateness.
    pub fn worst_lateness(&self) -> Duration {
        self.worst_lateness
    }

    /// Mean response time (release → completion) over all completions.
    pub fn mean_response(&self) -> Duration {
        if self.completions == 0 {
            Duration::ZERO
        } else {
            self.total_response / self.completions
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }
    fn at(v: u64) -> Instant {
        Instant::ZERO + ms(v)
    }

    #[test]
    fn release_times_are_periodic() {
        let s = PeriodicState::new(PeriodicSpec {
            period: ms(500),
            offset: ms(100),
            deadline: ms(500),
        });
        assert_eq!(s.release_time(0), at(100));
        assert_eq!(s.release_time(3), at(1600));
    }

    #[test]
    fn met_deadline() {
        let mut s = PeriodicState::new(PeriodicSpec::simple(ms(500)));
        let dl = s.release();
        assert_eq!(dl, at(500));
        assert_eq!(s.complete(at(300)), DeadlineVerdict::Met);
        assert_eq!(s.misses(), 0);
        assert_eq!(s.mean_response(), ms(300));
    }

    #[test]
    fn missed_deadline_records_lateness() {
        let mut s = PeriodicState::new(PeriodicSpec::simple(ms(500)));
        s.release();
        let v = s.complete(at(620));
        assert_eq!(v, DeadlineVerdict::Missed { by: ms(120) });
        assert_eq!(s.misses(), 1);
        assert_eq!(s.worst_lateness(), ms(120));
    }

    #[test]
    fn overrun_counts_as_miss() {
        let mut s = PeriodicState::new(PeriodicSpec::simple(ms(500)));
        s.release();
        // Never completes; next release arrives.
        s.release();
        assert_eq!(s.misses(), 1);
        assert_eq!(s.releases(), 2);
        assert_eq!(s.completions(), 0);
    }

    #[test]
    fn next_release_advances() {
        let mut s = PeriodicState::new(PeriodicSpec::simple(ms(500)));
        assert_eq!(s.next_release(), at(0));
        s.release();
        assert_eq!(s.next_release(), at(500));
        s.complete(at(10));
        assert_eq!(s.next_release(), at(500));
    }

    #[test]
    #[should_panic(expected = "without release")]
    fn complete_without_release_panics() {
        let mut s = PeriodicState::new(PeriodicSpec::simple(ms(500)));
        s.complete(at(10));
    }
}
