//! Mach-style ports: typed one-way message queues between threads.
//!
//! Real-Time Mach components talk through ports: applications send
//! `crs_open`/`crs_start` requests to CRAS's request-manager port, the
//! kernel posts I/O-done notifications, and missed deadlines arrive on a
//! *deadline notification port* consumed by the deadline-handling thread.
//! This module models the queueing semantics the simulation needs:
//! bounded capacity, FIFO delivery, blocking-receive bookkeeping, and
//! send-on-full policies.

use std::collections::VecDeque;

use cras_sim::Instant;

use crate::thread::ThreadId;

/// What a sender does when the port is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FullPolicy {
    /// Drop the new message (notifications: losing one warning is fine).
    DropNewest,
    /// Drop the oldest queued message.
    DropOldest,
    /// Refuse the send (caller sees an error).
    Reject,
}

/// Result of a send.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendOutcome {
    /// Queued; if a receiver was blocked, it should be woken.
    Delivered {
        /// The blocked receiver to wake, if any.
        wake: Option<ThreadId>,
    },
    /// Dropped per the full-queue policy.
    Dropped,
    /// Rejected per the full-queue policy.
    Rejected,
}

/// A timestamped message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message<M> {
    /// When it was sent.
    pub sent_at: Instant,
    /// The payload.
    pub payload: M,
}

/// A bounded FIFO port.
///
/// # Examples
///
/// ```
/// use cras_rtmach::port::{FullPolicy, Port};
/// use cras_sim::Instant;
///
/// let mut warnings: Port<u64> = Port::new(8, FullPolicy::DropOldest);
/// warnings.send(Instant::ZERO, 3); // Interval 3 missed its deadline.
/// assert_eq!(warnings.try_receive().unwrap().payload, 3);
/// ```
#[derive(Clone, Debug)]
pub struct Port<M> {
    queue: VecDeque<Message<M>>,
    capacity: usize,
    on_full: FullPolicy,
    /// Thread blocked in receive, if any.
    waiter: Option<ThreadId>,
    sends: u64,
    drops: u64,
}

impl<M> Port<M> {
    /// Creates a port with the given capacity and full-queue policy.
    ///
    /// # Panics
    ///
    /// Panics if capacity is zero.
    pub fn new(capacity: usize, on_full: FullPolicy) -> Port<M> {
        assert!(capacity > 0, "zero-capacity port");
        Port {
            queue: VecDeque::new(),
            capacity,
            on_full,
            waiter: None,
            sends: 0,
            drops: 0,
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total successful sends.
    pub fn sends(&self) -> u64 {
        self.sends
    }

    /// Messages lost to the full-queue policy.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Sends a message.
    pub fn send(&mut self, now: Instant, payload: M) -> SendOutcome {
        if self.queue.len() == self.capacity {
            match self.on_full {
                FullPolicy::DropNewest => {
                    self.drops += 1;
                    return SendOutcome::Dropped;
                }
                FullPolicy::DropOldest => {
                    self.queue.pop_front();
                    self.drops += 1;
                }
                FullPolicy::Reject => return SendOutcome::Rejected,
            }
        }
        self.queue.push_back(Message {
            sent_at: now,
            payload,
        });
        self.sends += 1;
        SendOutcome::Delivered {
            wake: self.waiter.take(),
        }
    }

    /// Non-blocking receive.
    pub fn try_receive(&mut self) -> Option<Message<M>> {
        self.queue.pop_front()
    }

    /// Blocking receive: returns the message if one is queued; otherwise
    /// records `tid` as the blocked receiver (the orchestrator parks the
    /// thread and wakes it on the next delivered send).
    ///
    /// # Panics
    ///
    /// Panics if another thread is already blocked (ports here are
    /// single-receiver).
    pub fn receive_or_block(&mut self, tid: ThreadId) -> Option<Message<M>> {
        if let Some(m) = self.queue.pop_front() {
            return Some(m);
        }
        assert!(
            self.waiter.is_none() || self.waiter == Some(tid),
            "second receiver on a single-receiver port"
        );
        self.waiter = Some(tid);
        None
    }

    /// The blocked receiver, if any.
    pub fn waiter(&self) -> Option<ThreadId> {
        self.waiter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::from_raw(i)
    }
    fn at(ms: u64) -> Instant {
        Instant::ZERO + cras_sim::Duration::from_millis(ms)
    }

    #[test]
    fn fifo_delivery() {
        let mut p = Port::new(4, FullPolicy::Reject);
        p.send(at(1), "a");
        p.send(at(2), "b");
        assert_eq!(p.try_receive().unwrap().payload, "a");
        assert_eq!(p.try_receive().unwrap().payload, "b");
        assert!(p.try_receive().is_none());
        assert_eq!(p.sends(), 2);
    }

    #[test]
    fn blocking_receive_then_wake() {
        let mut p = Port::new(4, FullPolicy::Reject);
        assert!(p.receive_or_block(t(1)).is_none());
        assert_eq!(p.waiter(), Some(t(1)));
        let out = p.send(at(5), 42);
        assert_eq!(out, SendOutcome::Delivered { wake: Some(t(1)) });
        assert!(p.waiter().is_none());
        assert_eq!(p.try_receive().unwrap().payload, 42);
    }

    #[test]
    fn drop_newest_policy() {
        let mut p = Port::new(2, FullPolicy::DropNewest);
        p.send(at(1), 1);
        p.send(at(2), 2);
        assert_eq!(p.send(at(3), 3), SendOutcome::Dropped);
        assert_eq!(p.len(), 2);
        assert_eq!(p.drops(), 1);
        assert_eq!(p.try_receive().unwrap().payload, 1);
    }

    #[test]
    fn drop_oldest_policy() {
        let mut p = Port::new(2, FullPolicy::DropOldest);
        p.send(at(1), 1);
        p.send(at(2), 2);
        p.send(at(3), 3);
        assert_eq!(p.drops(), 1);
        assert_eq!(p.try_receive().unwrap().payload, 2);
        assert_eq!(p.try_receive().unwrap().payload, 3);
    }

    #[test]
    fn reject_policy() {
        let mut p = Port::new(1, FullPolicy::Reject);
        p.send(at(1), 1);
        assert_eq!(p.send(at(2), 2), SendOutcome::Rejected);
        assert_eq!(p.len(), 1);
        assert_eq!(p.drops(), 0);
    }

    #[test]
    fn timestamps_preserved() {
        let mut p = Port::new(4, FullPolicy::Reject);
        p.send(at(7), "x");
        assert_eq!(p.try_receive().unwrap().sent_at, at(7));
    }

    #[test]
    #[should_panic(expected = "second receiver")]
    fn two_receivers_panic() {
        let mut p: Port<u32> = Port::new(4, FullPolicy::Reject);
        p.receive_or_block(t(1));
        p.receive_or_block(t(2));
    }
}
