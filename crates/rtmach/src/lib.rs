//! `cras-rtmach` — the Real-Time Mach substrate.
//!
//! CRAS is a user-level server whose predictability comes from the
//! microkernel underneath: preemptive fixed-priority scheduling, periodic
//! threads with deadline notification, and priority-inversion management.
//! This crate models exactly those mechanisms on one simulated CPU:
//!
//! * [`sched`] — the event-driven preemptive scheduler
//!   ([`sched::Cpu`]) with fixed-priority and round-robin policies
//!   (Figure 10 contrasts the two).
//! * [`periodic`] — periodic-thread release/deadline bookkeeping used by
//!   CRAS's request-scheduler and deadline-manager threads.
//! * [`sync`] — mutexes with and without priority inheritance (the Unix
//!   server's missing inheritance is the paper's explanation for UFS's
//!   collapse under background load).
//! * [`rm`] — rate-monotonic priority assignment and schedulability
//!   analysis (the policy Real-Time Mach uses for periodic threads).
//! * [`port`] — Mach-style bounded message ports (deadline notification,
//!   client requests).
//! * [`thread`] — thread ids, policies and states.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod periodic;
pub mod port;
pub mod rm;
pub mod sched;
pub mod sync;
pub mod thread;

pub use periodic::{DeadlineVerdict, PeriodicSpec, PeriodicState};
pub use port::{FullPolicy, Message, Port, SendOutcome};
pub use rm::{is_schedulable, liu_layland_bound, response_times, rm_priorities, Task};
pub use sched::{BurstDone, Cpu, CpuStats, Resched, SliceOutcome, SliceToken};
pub use sync::{Acquire, InheritancePolicy, MutexSim, Release};
pub use thread::{SchedPolicy, ThreadId, ThreadState};
