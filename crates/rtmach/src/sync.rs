//! Mutexes with and without priority inheritance.
//!
//! The paper credits Real-Time Mach's "integrated management of priority
//! inversion" for CRAS's predictability, and blames the Unix file system's
//! priority inversions for its throughput collapse under load (Figure 6).
//! [`MutexSim`] models a lock whose owner may be boosted to the highest
//! waiting priority ([`InheritancePolicy::PriorityInheritance`]) or left
//! alone ([`InheritancePolicy::None`], the Unix-server behaviour).
//!
//! The model is decoupled from the CPU: `acquire`/`release` report the
//! boost changes and hand-offs, and the orchestrator applies them via
//! [`crate::sched::Cpu::set_boost`] and by waking the new owner.

use std::collections::VecDeque;

use crate::thread::ThreadId;

/// Whether the lock propagates waiter priority to the owner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InheritancePolicy {
    /// No inheritance; priority inversion is possible.
    None,
    /// Basic priority inheritance: owner runs at the maximum of its own
    /// priority and all waiters' priorities.
    PriorityInheritance,
}

/// Result of an acquire attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Acquire {
    /// The caller now owns the lock.
    Granted,
    /// The caller must block; if inheritance applies and raised the
    /// owner's boost, the new boost to apply is reported.
    Blocked {
        /// Current owner.
        owner: ThreadId,
        /// New boost for the owner (None = unchanged).
        boost_owner_to: Option<u8>,
    },
}

/// Result of a release.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Release {
    /// The thread that now owns the lock (first waiter), if any.
    pub granted_to: Option<ThreadId>,
    /// The released owner's boost must be cleared.
    pub clear_boost: bool,
    /// Boost the *new* owner should get from remaining waiters, if any.
    pub boost_new_owner_to: Option<u8>,
}

/// A simulated mutex.
#[derive(Clone, Debug)]
pub struct MutexSim {
    policy: InheritancePolicy,
    owner: Option<(ThreadId, u8)>,
    waiters: VecDeque<(ThreadId, u8)>,
    contentions: u64,
}

impl MutexSim {
    /// Creates a free mutex.
    pub fn new(policy: InheritancePolicy) -> MutexSim {
        MutexSim {
            policy,
            owner: None,
            waiters: VecDeque::new(),
            contentions: 0,
        }
    }

    /// Current owner.
    pub fn owner(&self) -> Option<ThreadId> {
        self.owner.map(|(t, _)| t)
    }

    /// Number of blocked waiters.
    pub fn waiter_count(&self) -> usize {
        self.waiters.len()
    }

    /// Times an acquire found the lock held.
    pub fn contentions(&self) -> u64 {
        self.contentions
    }

    fn max_waiter_prio(&self) -> Option<u8> {
        self.waiters.iter().map(|&(_, p)| p).max()
    }

    /// Attempts to acquire for `tid` running at `prio`.
    ///
    /// # Panics
    ///
    /// Panics on recursive acquisition (the caller already owns it).
    pub fn acquire(&mut self, tid: ThreadId, prio: u8) -> Acquire {
        match self.owner {
            None => {
                self.owner = Some((tid, prio));
                Acquire::Granted
            }
            Some((owner, owner_prio)) => {
                assert_ne!(owner, tid, "recursive mutex acquisition");
                self.contentions += 1;
                self.waiters.push_back((tid, prio));
                let boost = match self.policy {
                    InheritancePolicy::None => None,
                    InheritancePolicy::PriorityInheritance => {
                        let m = self.max_waiter_prio().expect("just pushed");
                        if m > owner_prio {
                            Some(m)
                        } else {
                            None
                        }
                    }
                };
                Acquire::Blocked {
                    owner,
                    boost_owner_to: boost,
                }
            }
        }
    }

    /// Releases the lock held by `tid`, granting it to the first waiter.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is not the owner.
    pub fn release(&mut self, tid: ThreadId) -> Release {
        let (owner, _) = self.owner.take().expect("release of a free mutex");
        assert_eq!(owner, tid, "release by non-owner");
        let granted = self.waiters.pop_front();
        let clear_boost = self.policy == InheritancePolicy::PriorityInheritance;
        let mut boost_new = None;
        if let Some((next, next_prio)) = granted {
            self.owner = Some((next, next_prio));
            if self.policy == InheritancePolicy::PriorityInheritance {
                if let Some(m) = self.max_waiter_prio() {
                    if m > next_prio {
                        boost_new = Some(m);
                    }
                }
            }
        }
        Release {
            granted_to: granted.map(|(t, _)| t),
            clear_boost,
            boost_new_owner_to: boost_new,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn uncontended_grant() {
        let mut m = MutexSim::new(InheritancePolicy::None);
        assert_eq!(m.acquire(t(0), 5), Acquire::Granted);
        assert_eq!(m.owner(), Some(t(0)));
        let r = m.release(t(0));
        assert_eq!(r.granted_to, None);
        assert!(m.owner().is_none());
    }

    #[test]
    fn contended_fifo_handoff() {
        let mut m = MutexSim::new(InheritancePolicy::None);
        m.acquire(t(0), 5);
        assert!(matches!(m.acquire(t(1), 3), Acquire::Blocked { .. }));
        assert!(matches!(m.acquire(t(2), 9), Acquire::Blocked { .. }));
        assert_eq!(m.waiter_count(), 2);
        let r = m.release(t(0));
        assert_eq!(r.granted_to, Some(t(1)));
        assert_eq!(m.owner(), Some(t(1)));
        let r = m.release(t(1));
        assert_eq!(r.granted_to, Some(t(2)));
    }

    #[test]
    fn no_inheritance_never_boosts() {
        let mut m = MutexSim::new(InheritancePolicy::None);
        m.acquire(t(0), 1);
        let a = m.acquire(t(1), 9);
        assert_eq!(
            a,
            Acquire::Blocked {
                owner: t(0),
                boost_owner_to: None
            }
        );
        let r = m.release(t(0));
        assert!(!r.clear_boost);
    }

    #[test]
    fn inheritance_boosts_owner_to_max_waiter() {
        let mut m = MutexSim::new(InheritancePolicy::PriorityInheritance);
        m.acquire(t(0), 1);
        let a = m.acquire(t(1), 9);
        assert_eq!(
            a,
            Acquire::Blocked {
                owner: t(0),
                boost_owner_to: Some(9)
            }
        );
        // A lower waiter does not raise further.
        let a = m.acquire(t(2), 5);
        assert_eq!(
            a,
            Acquire::Blocked {
                owner: t(0),
                boost_owner_to: Some(9)
            }
        );
    }

    #[test]
    fn inheritance_boost_not_raised_by_lower_prio_waiter() {
        let mut m = MutexSim::new(InheritancePolicy::PriorityInheritance);
        m.acquire(t(0), 7);
        let a = m.acquire(t(1), 3);
        assert_eq!(
            a,
            Acquire::Blocked {
                owner: t(0),
                boost_owner_to: None
            }
        );
    }

    #[test]
    fn release_transfers_residual_boost() {
        let mut m = MutexSim::new(InheritancePolicy::PriorityInheritance);
        m.acquire(t(0), 1);
        m.acquire(t(1), 2); // First waiter, low prio.
        m.acquire(t(2), 9); // Second waiter, high prio.
        let r = m.release(t(0));
        assert_eq!(r.granted_to, Some(t(1)));
        assert!(r.clear_boost);
        // New owner (prio 2) inherits from waiter t2 (prio 9).
        assert_eq!(r.boost_new_owner_to, Some(9));
    }

    #[test]
    fn contention_counter() {
        let mut m = MutexSim::new(InheritancePolicy::None);
        m.acquire(t(0), 5);
        m.acquire(t(1), 5);
        m.acquire(t(2), 5);
        assert_eq!(m.contentions(), 2);
    }

    #[test]
    #[should_panic(expected = "recursive")]
    fn recursive_acquire_panics() {
        let mut m = MutexSim::new(InheritancePolicy::None);
        m.acquire(t(0), 5);
        m.acquire(t(0), 5);
    }

    #[test]
    #[should_panic(expected = "non-owner")]
    fn foreign_release_panics() {
        let mut m = MutexSim::new(InheritancePolicy::None);
        m.acquire(t(0), 5);
        m.release(t(1));
    }
}
