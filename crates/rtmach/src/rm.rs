//! Rate-monotonic priority assignment and schedulability analysis.
//!
//! Real-Time Mach's canonical policy for periodic threads is rate
//! monotonic: shorter period ⇒ higher priority. CRAS's request-scheduler
//! thread is periodic (period = the interval time) and competes with the
//! players' frame-rate threads; this module assigns the fixed priorities
//! the Figure 10 experiment gives them, and provides the classic
//! schedulability checks:
//!
//! * the Liu–Layland utilization bound `U ≤ n(2^{1/n} − 1)`,
//! * exact response-time analysis (fixed-point iteration), which is
//!   necessary and sufficient for synchronous task sets.

use cras_sim::Duration;

/// One periodic task: worst-case execution time and period.
///
/// # Examples
///
/// ```
/// use cras_rtmach::rm::{is_schedulable, rm_priorities, Task};
/// use cras_sim::Duration;
///
/// let tasks = [
///     Task::new(Duration::from_millis(1), Duration::from_millis(500)),
///     Task::new(Duration::from_millis(2), Duration::from_micros(33_333)),
/// ];
/// assert!(is_schedulable(&tasks));
/// // Shorter period (the 30 fps player) gets the higher priority.
/// assert_eq!(rm_priorities(&tasks, 10), vec![10, 11]);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Task {
    /// Worst-case execution time per release.
    pub wcet: Duration,
    /// Release period (deadline = period).
    pub period: Duration,
}

impl Task {
    /// Creates a task.
    ///
    /// # Panics
    ///
    /// Panics if the WCET is zero, the period is zero, or WCET exceeds
    /// the period.
    pub fn new(wcet: Duration, period: Duration) -> Task {
        assert!(!wcet.is_zero() && !period.is_zero(), "zero task parameter");
        assert!(wcet <= period, "WCET exceeds period");
        Task { wcet, period }
    }

    /// Utilization `C/T`.
    pub fn utilization(&self) -> f64 {
        self.wcet.as_secs_f64() / self.period.as_secs_f64()
    }
}

/// Total utilization of a task set.
pub fn total_utilization(tasks: &[Task]) -> f64 {
    tasks.iter().map(Task::utilization).sum()
}

/// The Liu–Layland bound for `n` tasks.
pub fn liu_layland_bound(n: usize) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let n = n as f64;
    n * (2f64.powf(1.0 / n) - 1.0)
}

/// Rate-monotonic priority order: indices of `tasks` from highest
/// priority (shortest period) to lowest, ties broken by index.
pub fn rm_order(tasks: &[Task]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..tasks.len()).collect();
    idx.sort_by_key(|&i| (tasks[i].period, i));
    idx
}

/// Assigns numeric fixed priorities (higher = more urgent) in
/// rate-monotonic order, using the range `[base, base + n)` top-down.
///
/// # Panics
///
/// Panics if the range would overflow `u8`.
pub fn rm_priorities(tasks: &[Task], base: u8) -> Vec<u8> {
    let n = tasks.len();
    assert!(base as usize + n <= u8::MAX as usize, "priority overflow");
    let order = rm_order(tasks);
    let mut prio = vec![0u8; n];
    for (rank, &task_idx) in order.iter().enumerate() {
        // Highest rank (rank 0 = shortest period) gets the top priority.
        prio[task_idx] = base + (n - 1 - rank) as u8;
    }
    prio
}

/// Exact response-time analysis under rate-monotonic priorities.
///
/// Returns per-task worst-case response times, or `None` if some task is
/// unschedulable (response would exceed its period).
pub fn response_times(tasks: &[Task]) -> Option<Vec<Duration>> {
    let order = rm_order(tasks);
    let mut responses = vec![Duration::ZERO; tasks.len()];
    for (rank, &ti) in order.iter().enumerate() {
        let task = tasks[ti];
        let higher: Vec<Task> = order[..rank].iter().map(|&j| tasks[j]).collect();
        let mut r = task.wcet;
        loop {
            // R = C + Σ ceil(R / T_j) · C_j over higher-priority tasks.
            let mut next = task.wcet;
            for h in &higher {
                let releases = r.as_nanos().div_ceil(h.period.as_nanos());
                next += h.wcet * releases;
            }
            if next > task.period {
                return None;
            }
            if next == r {
                break;
            }
            r = next;
        }
        responses[ti] = r;
    }
    Some(responses)
}

/// Whether the set is schedulable under rate-monotonic priorities
/// (exact test).
pub fn is_schedulable(tasks: &[Task]) -> bool {
    response_times(tasks).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn liu_layland_values() {
        assert!((liu_layland_bound(1) - 1.0).abs() < 1e-12);
        assert!((liu_layland_bound(2) - 0.8284).abs() < 1e-3);
        assert!((liu_layland_bound(3) - 0.7798).abs() < 1e-3);
        // Approaches ln 2.
        assert!((liu_layland_bound(1000) - 0.6934).abs() < 1e-3);
    }

    #[test]
    fn rm_order_shortest_period_first() {
        let tasks = [
            Task::new(ms(10), ms(100)),
            Task::new(ms(5), ms(50)),
            Task::new(ms(1), ms(200)),
        ];
        assert_eq!(rm_order(&tasks), vec![1, 0, 2]);
        let prios = rm_priorities(&tasks, 10);
        assert_eq!(prios, vec![11, 12, 10]);
    }

    #[test]
    fn classic_schedulable_set() {
        // U = 0.1/0.3 + 0.1/0.5 ≈ 0.53 < bound(2).
        let tasks = [Task::new(ms(100), ms(300)), Task::new(ms(100), ms(500))];
        assert!(total_utilization(&tasks) < liu_layland_bound(2));
        let r = response_times(&tasks).expect("schedulable");
        assert_eq!(r[0], ms(100));
        assert_eq!(r[1], ms(200));
    }

    #[test]
    fn over_utilized_set_rejected() {
        let tasks = [Task::new(ms(60), ms(100)), Task::new(ms(60), ms(100))];
        assert!(!is_schedulable(&tasks));
    }

    #[test]
    fn beyond_bound_but_exactly_schedulable() {
        // U = 1.0 with harmonic periods: above Liu–Layland, still
        // schedulable — the exact test must accept it.
        let tasks = [Task::new(ms(50), ms(100)), Task::new(ms(100), ms(200))];
        assert!(total_utilization(&tasks) > liu_layland_bound(2));
        let r = response_times(&tasks).expect("harmonic set fits");
        assert_eq!(r[0], ms(50));
        assert_eq!(r[1], ms(200));
    }

    #[test]
    fn cras_thread_set_is_schedulable() {
        // The Figure 10 cast: CRAS scheduler (0.5 s period, ~1 ms),
        // a 30 fps player (~33 ms period, 2 ms decode), and the interval
        // work leaves plenty of slack.
        let tasks = [
            Task::new(ms(1), ms(500)),
            Task::new(ms(2), Duration::from_micros(33_333)),
        ];
        let r = response_times(&tasks).expect("schedulable");
        assert!(r[0] <= ms(3));
        assert!(r[1] <= ms(2));
    }

    #[test]
    #[should_panic(expected = "WCET exceeds period")]
    fn invalid_task_panics() {
        Task::new(ms(10), ms(5));
    }
}
