//! Thread identities, scheduling policies, and per-thread state.
//!
//! Real-Time Mach schedules threads under selectable policies; the paper's
//! Figure 10 contrasts *fixed priority* (real-time) against *round robin*
//! (time-sharing) for the same workload. Both are modeled here, plus the
//! per-thread bookkeeping the CPU scheduler needs.

use std::collections::VecDeque;

use cras_sim::Duration;

/// Identifies a thread within one [`crate::sched::Cpu`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ThreadId(pub(crate) u32);

impl ThreadId {
    /// The raw index (for display).
    pub fn index(self) -> u32 {
        self.0
    }

    /// Builds an id from a raw index. Only meaningful for ids previously
    /// obtained from the same [`crate::sched::Cpu`]; exists so other
    /// crates can store placeholder ids in tests.
    pub fn from_raw(index: u32) -> ThreadId {
        ThreadId(index)
    }
}

/// Scheduling policy of a thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Preemptive fixed priority: higher `prio` always runs first; equal
    /// priorities are FIFO and run to completion of their burst.
    FixedPriority {
        /// Priority level; larger is more urgent.
        prio: u8,
    },
    /// Round robin: equal-priority threads share the CPU in `quantum`
    /// slices; a thread exhausting its quantum goes to the tail.
    RoundRobin {
        /// Priority level; larger is more urgent.
        prio: u8,
        /// Time slice length.
        quantum: Duration,
    },
}

impl SchedPolicy {
    /// The base priority level of the policy.
    pub fn prio(&self) -> u8 {
        match *self {
            SchedPolicy::FixedPriority { prio } => prio,
            SchedPolicy::RoundRobin { prio, .. } => prio,
        }
    }

    /// The quantum, if the policy time-slices.
    pub fn quantum(&self) -> Option<Duration> {
        match *self {
            SchedPolicy::FixedPriority { .. } => None,
            SchedPolicy::RoundRobin { quantum, .. } => Some(quantum),
        }
    }
}

/// A unit of CPU work given to a thread by [`crate::sched::Cpu::wake`].
#[derive(Clone, Copy, Debug)]
pub struct Burst {
    /// CPU time still owed.
    pub remaining: Duration,
    /// Caller tag reported back when the burst completes.
    pub tag: u64,
}

/// Lifecycle state of a thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadState {
    /// No pending work.
    Blocked,
    /// Has work, waiting for the CPU.
    Ready,
    /// Currently executing.
    Running,
}

/// Internal per-thread record.
#[derive(Clone, Debug)]
pub(crate) struct ThreadRec {
    pub name: String,
    pub policy: SchedPolicy,
    /// Priority-inheritance boost; effective priority is
    /// `max(policy.prio(), boost)`.
    pub boost: Option<u8>,
    pub state: ThreadState,
    pub work: VecDeque<Burst>,
    pub total_cpu: Duration,
    pub bursts_completed: u64,
}

impl ThreadRec {
    pub fn new(name: String, policy: SchedPolicy) -> ThreadRec {
        ThreadRec {
            name,
            policy,
            boost: None,
            state: ThreadState::Blocked,
            work: VecDeque::new(),
            total_cpu: Duration::ZERO,
            bursts_completed: 0,
        }
    }

    pub fn effective_prio(&self) -> u8 {
        match self.boost {
            Some(b) => b.max(self.policy.prio()),
            None => self.policy.prio(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_accessors() {
        let fp = SchedPolicy::FixedPriority { prio: 10 };
        assert_eq!(fp.prio(), 10);
        assert_eq!(fp.quantum(), None);
        let rr = SchedPolicy::RoundRobin {
            prio: 5,
            quantum: Duration::from_millis(100),
        };
        assert_eq!(rr.prio(), 5);
        assert_eq!(rr.quantum(), Some(Duration::from_millis(100)));
    }

    #[test]
    fn boost_raises_but_never_lowers() {
        let mut t = ThreadRec::new("t".into(), SchedPolicy::FixedPriority { prio: 10 });
        assert_eq!(t.effective_prio(), 10);
        t.boost = Some(20);
        assert_eq!(t.effective_prio(), 20);
        t.boost = Some(3);
        assert_eq!(t.effective_prio(), 10);
        t.boost = None;
        assert_eq!(t.effective_prio(), 10);
    }
}
