//! C-SCAN request queue.
//!
//! The paper: "Each queue is sorted by using the traditional C-SCAN
//! algorithm to minimize total seek time. The disk arm moves
//! unidirectionally across the disk surface toward the inner track. When
//! there are no more requests for service ahead of the arm it jumps back
//! to service the request nearest the outer track and proceeds inward
//! again."
//!
//! Cylinder numbers increase toward the inner track, so the sweep is in
//! increasing cylinder order with a jump back to the minimum.

use cras_sim::Instant;

/// An entry pending in a C-SCAN queue.
#[derive(Clone, Debug)]
pub struct Pending<T> {
    /// Target cylinder (sort key).
    pub cyl: u32,
    /// FIFO tiebreaker among equal cylinders.
    pub seq: u64,
    /// When the request was enqueued.
    pub submitted_at: Instant,
    /// The queued item.
    pub item: T,
}

/// A C-SCAN-ordered queue of requests.
#[derive(Clone, Debug)]
pub struct CScanQueue<T> {
    // Sorted by (cyl, seq).
    entries: Vec<Pending<T>>,
    seq: u64,
}

impl<T> Default for CScanQueue<T> {
    fn default() -> Self {
        CScanQueue::new()
    }
}

impl<T> CScanQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> CScanQueue<T> {
        CScanQueue {
            entries: Vec::new(),
            seq: 0,
        }
    }

    /// Number of pending requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a request targeting `cyl`.
    pub fn push(&mut self, cyl: u32, submitted_at: Instant, item: T) {
        self.seq += 1;
        let entry = Pending {
            cyl,
            seq: self.seq,
            submitted_at,
            item,
        };
        let pos = self
            .entries
            .partition_point(|e| (e.cyl, e.seq) <= (cyl, entry.seq));
        self.entries.insert(pos, entry);
    }

    /// Removes and returns the next request under C-SCAN from head
    /// position `head_cyl`: the nearest request at or ahead of the head in
    /// the inward direction, or — if none — the outermost request (the
    /// "jump back").
    pub fn pop_next(&mut self, head_cyl: u32) -> Option<Pending<T>> {
        if self.entries.is_empty() {
            return None;
        }
        let pos = self.entries.partition_point(|e| e.cyl < head_cyl);
        let idx = if pos < self.entries.len() { pos } else { 0 };
        Some(self.entries.remove(idx))
    }

    /// Peeks at the cylinder the next pop would service.
    pub fn peek_next_cyl(&self, head_cyl: u32) -> Option<u32> {
        if self.entries.is_empty() {
            return None;
        }
        let pos = self.entries.partition_point(|e| e.cyl < head_cyl);
        let idx = if pos < self.entries.len() { pos } else { 0 };
        Some(self.entries[idx].cyl)
    }

    /// Drains every entry in current sorted order (for shutdown/inspection).
    pub fn drain(&mut self) -> Vec<Pending<T>> {
        std::mem::take(&mut self.entries)
    }

    /// Iterates over pending entries in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Pending<T>> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q_from(cyls: &[u32]) -> CScanQueue<u32> {
        let mut q = CScanQueue::new();
        for &c in cyls {
            q.push(c, Instant::ZERO, c);
        }
        q
    }

    #[test]
    fn services_inward_then_wraps() {
        let mut q = q_from(&[50, 10, 90, 30]);
        // Head at 40: expect 50, 90, then wrap to 10, 30.
        let mut head = 40;
        let mut order = Vec::new();
        while let Some(p) = q.pop_next(head) {
            head = p.cyl;
            order.push(p.cyl);
        }
        assert_eq!(order, vec![50, 90, 10, 30]);
    }

    #[test]
    fn exact_head_position_is_serviced_first() {
        let mut q = q_from(&[40, 60]);
        assert_eq!(q.pop_next(40).unwrap().cyl, 40);
    }

    #[test]
    fn fifo_among_same_cylinder() {
        let mut q = CScanQueue::new();
        q.push(10, Instant::ZERO, "first");
        q.push(10, Instant::ZERO, "second");
        assert_eq!(q.pop_next(0).unwrap().item, "first");
        assert_eq!(q.pop_next(0).unwrap().item, "second");
    }

    #[test]
    fn wrap_to_outermost() {
        let mut q = q_from(&[5, 7]);
        // Head beyond all requests: jump back to outermost (min cylinder).
        assert_eq!(q.pop_next(100).unwrap().cyl, 5);
        assert_eq!(q.pop_next(100).unwrap().cyl, 7);
    }

    #[test]
    fn empty_queue() {
        let mut q: CScanQueue<u32> = CScanQueue::new();
        assert!(q.pop_next(0).is_none());
        assert!(q.peek_next_cyl(0).is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = q_from(&[50, 10, 90]);
        for head in [0, 20, 60, 95] {
            let peeked = q.peek_next_cyl(head);
            let mut clone_entries: Vec<u32> = q.iter().map(|p| p.cyl).collect();
            clone_entries.sort_unstable();
            let popped = q.pop_next(head).unwrap();
            assert_eq!(peeked, Some(popped.cyl));
            q.push(popped.cyl, Instant::ZERO, popped.item);
        }
    }

    #[test]
    fn full_sweep_visits_sorted_order_from_zero() {
        let mut q = q_from(&[30, 10, 20, 40]);
        let mut head = 0;
        let mut order = Vec::new();
        while let Some(p) = q.pop_next(head) {
            head = p.cyl;
            order.push(p.cyl);
        }
        assert_eq!(order, vec![10, 20, 30, 40]);
    }

    #[test]
    fn drain_returns_everything_sorted() {
        let mut q = q_from(&[30, 10, 20]);
        let all: Vec<u32> = q.drain().into_iter().map(|p| p.cyl).collect();
        assert_eq!(all, vec![10, 20, 30]);
        assert!(q.is_empty());
    }
}
