//! Disk parameter calibration — the paper's Appendix A reproduced.
//!
//! The authors measured `D`, `T_seek_max`, `T_seek_min` and `T_cmd` "using
//! small benchmark programs" and derived `T_rot` from the spindle speed.
//! This module runs the same micro-benchmarks against a [`DiskDevice`]:
//!
//! * a seek sweep producing the Figure 12 curve plus its linear fit,
//! * a sequential-read sweep measuring the sustained transfer rate `D`,
//! * a same-sector re-read isolating the command overhead `T_cmd`.
//!
//! The result is a [`DiskParams`] — Table 4 of the paper — which the
//! admission test consumes. Calibrating *through* the device (instead of
//! reading the model's constants) keeps the reproduction honest: the
//! admission test only sees what a real system could measure.

use cras_sim::{Duration, Instant};

use crate::device::DiskDevice;
use crate::request::DiskRequest;
use crate::seek::SeekModel;

/// The measured disk parameters of Table 4 (plus `B_other`, set by system
/// configuration rather than measurement).
#[derive(Clone, Copy, Debug)]
pub struct DiskParams {
    /// Sustained data transfer rate `D`, bytes/second.
    pub transfer_rate: f64,
    /// Maximum head seek time `T_seek_max` (linear fit at full stroke).
    pub t_seek_max: Duration,
    /// Minimum head seek time `T_seek_min` (linear fit intercept).
    pub t_seek_min: Duration,
    /// Disk rotational latency `T_rot` (one full revolution).
    pub t_rot: Duration,
    /// Disk command overhead `T_cmd`.
    pub t_cmd: Duration,
    /// Maximum block size of other disk traffic `B_other`, bytes.
    pub b_other: u64,
    /// Number of cylinders (for the seek-bound formula).
    pub n_cyl: u32,
}

impl DiskParams {
    /// The paper's Table 4 values, verbatim.
    pub fn paper_table4() -> DiskParams {
        DiskParams {
            transfer_rate: 6.5e6,
            t_seek_max: Duration::from_millis(17),
            t_seek_min: Duration::from_millis(4),
            t_rot: Duration::from_micros(8_330),
            t_cmd: Duration::from_millis(2),
            b_other: 64 * 1024,
            n_cyl: 3510,
        }
    }
}

/// One point of the Figure 12 seek sweep.
#[derive(Clone, Copy, Debug)]
pub struct SeekSample {
    /// Cylinder distance of the seek.
    pub distance_cyl: u32,
    /// Equivalent distance in 512-byte blocks (the paper's "Mblock" axis).
    pub distance_blocks: u64,
    /// Measured seek time.
    pub time: Duration,
    /// The linear approximation at this distance.
    pub approx: Duration,
}

/// Output of a full calibration run.
#[derive(Clone, Debug)]
pub struct Calibration {
    /// Measured parameters (Table 4).
    pub params: DiskParams,
    /// Seek curve samples (Figure 12).
    pub seek_curve: Vec<SeekSample>,
    /// Fitted line `(alpha_secs_per_cyl, beta_secs)`.
    pub fit: (f64, f64),
}

/// Runs one op to completion on an otherwise-idle device, returning its
/// completion instant.
fn run_one<T>(dev: &mut DiskDevice<T>, now: Instant, req: DiskRequest<T>) -> Instant {
    let fin = dev.submit(now, req).expect("calibration device busy");
    let (_, next) = dev.complete(fin);
    assert!(next.is_none(), "calibration device not drained");
    fin
}

/// Measures the seek curve: for each probe distance, previews the service
/// breakdown of a seek-dominated access and isolates the seek phase.
pub fn measure_seek_curve<T>(dev: &DiskDevice<T>, points: usize) -> Vec<(u32, f64)> {
    let n_cyl = dev.geometry().cylinders();
    let step = (n_cyl as usize / points.max(1)).max(1);
    let mut samples = Vec::new();
    let mut distance = 1u32;
    while distance < n_cyl {
        // Preview a read at `distance` cylinders from a head parked at 0;
        // the breakdown separates the seek phase exactly like a
        // measurement rig that subtracts rotation + transfer would.
        let block = dev.geometry().first_block_of(distance);
        let b = dev.service_preview(Instant::ZERO, block, 1);
        samples.push((distance, b.seek.as_secs_f64()));
        distance = distance.saturating_add(step as u32);
    }
    samples
}

/// Measures the sustained sequential transfer rate by timing a long
/// sequence of 128 KB reads (command overhead is subtracted, as a raw-rate
/// benchmark that issues one large command per track would see).
pub fn measure_transfer_rate<T: Default>(dev: &mut DiskDevice<T>) -> f64 {
    let chunk_blocks = 256u32; // 128 KB per command.
    let span = dev.geometry().total_blocks();
    // Sample the start, middle and end zones for a capacity-weighted rate.
    let starts = [
        0u64,
        span / 2 / chunk_blocks as u64 * chunk_blocks as u64,
        (span - 40 * chunk_blocks as u64) / chunk_blocks as u64 * chunk_blocks as u64,
    ];
    let mut total_bytes = 0.0;
    let mut total_secs = 0.0;
    let mut now = Instant::ZERO;
    for &start in &starts {
        let mut blk = start;
        for _ in 0..32 {
            let preview = dev.service_preview(now, blk, chunk_blocks);
            let fin = run_one(dev, now, DiskRequest::read(blk, chunk_blocks, T::default()));
            // Pure transfer phase only; rotation and command overhead are
            // positioning costs, not rate.
            total_secs += preview.transfer.as_secs_f64();
            total_bytes += chunk_blocks as f64 * 512.0;
            now = fin;
            blk += chunk_blocks as u64;
        }
    }
    total_bytes / total_secs
}

/// Measures the command overhead by re-reading the sector currently under
/// the head: with zero seek, the best-case service time over many aligned
/// attempts converges to `T_cmd` + one sector of transfer.
pub fn measure_command_overhead<T: Default>(dev: &mut DiskDevice<T>) -> Duration {
    let mut best = Duration::MAX;
    let mut now = Instant::ZERO;
    for i in 0..64 {
        // Walk start times across the rotation to find the aligned case.
        now += Duration::from_micros(130 * (i + 1));
        let b = dev.service_preview(now, 0, 1);
        let candidate = b.command + b.rotation;
        if candidate < best {
            best = candidate;
        }
    }
    best
}

/// Full calibration: the Appendix A procedure.
pub fn calibrate<T: Default>(dev: &mut DiskDevice<T>, b_other: u64) -> Calibration {
    let n_cyl = dev.geometry().cylinders();
    let raw = measure_seek_curve(dev, 64);
    let (alpha, beta) = SeekModel::linear_fit(&raw);
    let t_seek_min = Duration::from_secs_f64(beta.max(0.0));
    let t_seek_max = Duration::from_secs_f64(alpha * n_cyl as f64 + beta);
    let transfer_rate = measure_transfer_rate(dev);
    let t_cmd = measure_command_overhead(dev);
    let t_rot = Duration::from_secs_f64(dev.geometry().rotation_secs());

    let blocks_per_cyl_avg = dev.geometry().total_blocks() / n_cyl as u64;
    let seek_curve = raw
        .iter()
        .map(|&(d, t)| SeekSample {
            distance_cyl: d,
            distance_blocks: d as u64 * blocks_per_cyl_avg,
            time: Duration::from_secs_f64(t),
            approx: Duration::from_secs_f64(alpha * d as f64 + beta),
        })
        .collect();

    Calibration {
        params: DiskParams {
            transfer_rate,
            t_seek_max,
            t_seek_min,
            t_rot,
            t_cmd,
            b_other,
            n_cyl,
        },
        seek_curve,
        fit: (alpha, beta),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DiskDevice<u8> {
        DiskDevice::st32550n()
    }

    #[test]
    fn calibration_matches_table4() {
        let mut d = dev();
        let cal = calibrate(&mut d, 64 * 1024);
        let p = cal.params;
        let paper = DiskParams::paper_table4();
        // Transfer rate within 15% of 6.5 MB/s.
        assert!(
            (p.transfer_rate - paper.transfer_rate).abs() / paper.transfer_rate < 0.15,
            "D = {} B/s",
            p.transfer_rate
        );
        // Seek fit near 4 ms / 17 ms.
        assert!(
            (p.t_seek_min.as_secs_f64() - 0.004).abs() < 0.0015,
            "T_seek_min = {:?}",
            p.t_seek_min
        );
        assert!(
            (p.t_seek_max.as_secs_f64() - 0.017).abs() < 0.002,
            "T_seek_max = {:?}",
            p.t_seek_max
        );
        // Rotation 8.33 ms.
        assert!((p.t_rot.as_secs_f64() - 0.00833).abs() < 1e-4);
        // Command overhead 2 ms (plus sub-ms rotation residue at best).
        let cmd_ms = p.t_cmd.as_millis_f64();
        assert!((1.9..3.2).contains(&cmd_ms), "T_cmd = {cmd_ms} ms");
    }

    #[test]
    fn seek_curve_is_monotone_and_covers_disk() {
        let mut d = dev();
        let cal = calibrate(&mut d, 64 * 1024);
        assert!(cal.seek_curve.len() >= 32);
        let mut prev = Duration::ZERO;
        for s in &cal.seek_curve {
            assert!(s.time >= prev);
            prev = s.time;
        }
        let last = cal.seek_curve.last().unwrap();
        assert!(last.distance_cyl > 3000);
    }

    #[test]
    fn approx_brackets_measured_curve() {
        // The linear fit must cross the concave measured curve: above it
        // for short seeks, below it in the middle region.
        let mut d = dev();
        let cal = calibrate(&mut d, 64 * 1024);
        let first = &cal.seek_curve[0];
        assert!(
            first.approx > first.time,
            "fit should overestimate short seeks"
        );
        let mid = &cal.seek_curve[cal.seek_curve.len() / 2];
        assert!(mid.approx < mid.time + Duration::from_millis(3));
    }

    #[test]
    fn paper_table4_constants() {
        let p = DiskParams::paper_table4();
        assert_eq!(p.b_other, 65_536);
        assert_eq!(p.t_cmd, Duration::from_millis(2));
        assert_eq!(p.n_cyl, 3510);
    }
}
