//! Disk request and completion types.
//!
//! Requests are generic over a caller-supplied `tag` so the orchestrator
//! can route completions back to their owner (UFS block fetch, CRAS stream
//! read, calibration probe) without this crate knowing about any of them.

use cras_sim::{Duration, Instant};

use crate::geometry::BlockNo;

/// Which driver queue a request goes to.
///
/// The paper modifies the Real-Time Mach disk driver to keep *two* queues:
/// "one for normal activities, and another for real-time activities ...
/// If there are any requests in the real-time queue, the requests are
/// processed before the request in the non real-time queue."
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IoClass {
    /// CRAS interval pre-fetches: strict priority.
    RealTime,
    /// Unix file system and all other traffic.
    Normal,
}

/// Direction of the transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IoKind {
    /// Read from media.
    Read,
    /// Write to media.
    Write,
}

/// A request submitted to the disk.
#[derive(Clone, Debug)]
pub struct DiskRequest<T> {
    /// Starting block.
    pub block: BlockNo,
    /// Number of 512-byte blocks to transfer.
    pub nblocks: u32,
    /// Read or write.
    pub kind: IoKind,
    /// Scheduling class (queue selection).
    pub class: IoClass,
    /// Caller routing tag.
    pub tag: T,
}

impl<T> DiskRequest<T> {
    /// Convenience constructor for a real-time read.
    pub fn rt_read(block: BlockNo, nblocks: u32, tag: T) -> DiskRequest<T> {
        DiskRequest {
            block,
            nblocks,
            kind: IoKind::Read,
            class: IoClass::RealTime,
            tag,
        }
    }

    /// Convenience constructor for a normal-class read.
    pub fn read(block: BlockNo, nblocks: u32, tag: T) -> DiskRequest<T> {
        DiskRequest {
            block,
            nblocks,
            kind: IoKind::Read,
            class: IoClass::Normal,
            tag,
        }
    }

    /// Convenience constructor for a real-time write.
    pub fn rt_write(block: BlockNo, nblocks: u32, tag: T) -> DiskRequest<T> {
        DiskRequest {
            block,
            nblocks,
            kind: IoKind::Write,
            class: IoClass::RealTime,
            tag,
        }
    }

    /// Convenience constructor for a normal-class write.
    pub fn write(block: BlockNo, nblocks: u32, tag: T) -> DiskRequest<T> {
        DiskRequest {
            block,
            nblocks,
            kind: IoKind::Write,
            class: IoClass::Normal,
            tag,
        }
    }

    /// Bytes transferred by this request.
    pub fn bytes(&self) -> u64 {
        self.nblocks as u64 * crate::geometry::BLOCK_SIZE as u64
    }
}

/// Per-phase timing of one serviced operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceBreakdown {
    /// Controller command processing overhead (the paper's `T_cmd`).
    pub command: Duration,
    /// Head seek travel time.
    pub seek: Duration,
    /// Rotational latency waiting for the first sector.
    pub rotation: Duration,
    /// Media transfer time, including track/cylinder switch overheads.
    pub transfer: Duration,
}

impl ServiceBreakdown {
    /// Total service time (the op occupies the disk for this long).
    pub fn total(&self) -> Duration {
        self.command + self.seek + self.rotation + self.transfer
    }
}

/// A completed operation with its full timing history.
#[derive(Clone, Debug)]
pub struct Completed<T> {
    /// The original request.
    pub req: DiskRequest<T>,
    /// When the request entered the driver.
    pub submitted_at: Instant,
    /// When the disk started servicing it.
    pub started_at: Instant,
    /// When the transfer finished.
    pub finished_at: Instant,
    /// Phase timing.
    pub breakdown: ServiceBreakdown,
    /// The operation failed (media error or volume down); no data was
    /// transferred.
    pub failed: bool,
}

impl<T> Completed<T> {
    /// Time spent queued before service began.
    pub fn queue_delay(&self) -> Duration {
        self.started_at.since(self.submitted_at)
    }

    /// Total latency from submission to completion.
    pub fn latency(&self) -> Duration {
        self.finished_at.since(self.submitted_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_class_and_kind() {
        let r = DiskRequest::rt_read(10, 4, ());
        assert_eq!(r.class, IoClass::RealTime);
        assert_eq!(r.kind, IoKind::Read);
        let w = DiskRequest::write(10, 4, ());
        assert_eq!(w.class, IoClass::Normal);
        assert_eq!(w.kind, IoKind::Write);
    }

    #[test]
    fn bytes_counts_blocks() {
        let r = DiskRequest::read(0, 16, ());
        assert_eq!(r.bytes(), 16 * 512);
    }

    #[test]
    fn breakdown_total() {
        let b = ServiceBreakdown {
            command: Duration::from_millis(2),
            seek: Duration::from_millis(5),
            rotation: Duration::from_millis(4),
            transfer: Duration::from_millis(1),
        };
        assert_eq!(b.total(), Duration::from_millis(12));
    }

    #[test]
    fn completed_latency_accounting() {
        let c = Completed {
            req: DiskRequest::read(0, 1, ()),
            submitted_at: Instant::from_nanos(100),
            started_at: Instant::from_nanos(300),
            finished_at: Instant::from_nanos(900),
            breakdown: ServiceBreakdown::default(),
            failed: false,
        };
        assert_eq!(c.queue_delay(), Duration::from_nanos(200));
        assert_eq!(c.latency(), Duration::from_nanos(800));
    }
}
