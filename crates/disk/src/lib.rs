//! `cras-disk` — the storage substrate: a calibrated model of the paper's
//! Seagate ST32550N SCSI disk with the modified Real-Time Mach driver.
//!
//! The paper's two driver modifications are both here:
//!
//! 1. **Dual request queues** — a real-time queue (used by CRAS) with
//!    strict priority over the normal queue (used by the Unix file
//!    system), each sorted C-SCAN ([`cscan`]).
//! 2. **Large raw transfers** — requests carry explicit block extents of
//!    any size (CRAS reads up to 256 KB per command), rather than
//!    kernel-allocated per-block buffers.
//!
//! The service-time model ([`device`]) charges command overhead, seek
//! ([`seek`], with both the measured curve and the paper's linear
//! approximation), rotational positioning against a continuously spinning
//! platter, and zoned media transfer ([`geometry`]). [`calibrate`]
//! re-measures the model the way the paper's Appendix A does, producing
//! Table 4 and the Figure 12 seek curve. [`volume`] groups several
//! independent devices into a multi-disk [`VolumeSet`] (the §4
//! "several disk devices" variation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod cscan;
pub mod device;
pub mod faults;
pub mod geometry;
pub mod policy;
pub mod request;
pub mod seek;
pub mod volume;
pub mod xor;

pub use calibrate::{Calibration, DiskParams};
pub use device::{DiskDevice, DiskStats, DiskTimings, ERROR_LATENCY};
pub use faults::{Fault, FaultInjector};
pub use geometry::{BlockNo, DiskGeometry, Zone, BLOCK_SIZE};
pub use policy::{modeled_travel, DiskQueue, QueuePolicy, SweepCursor};
pub use request::{Completed, DiskRequest, IoClass, IoKind, ServiceBreakdown};
pub use seek::SeekModel;
pub use volume::{ReplaceError, VolumeId, VolumeSet};
pub use xor::{parity_of, reconstruct, xor_into};
