//! Head seek-time models.
//!
//! The paper (Appendix A, Figure 12) measures the ST32550N's seek curve and
//! approximates it *linearly*: `T_seek(x) = α·x + β` with
//! `β = T_seek_min = 4 ms` and `α·N_cyl + β = T_seek_max = 17 ms`.
//!
//! Real seek curves are not linear (Ruemmler & Wilkes, the paper's
//! citation 15):
//! short seeks are dominated by arm acceleration and follow a square-root
//! law, long seeks are coast-dominated and linear. [`SeekModel::Measured`]
//! implements that two-phase curve; [`SeekModel::linear_fit`] reproduces
//! the paper's approximation step, and the Figure 12 benchmark plots both.

use cras_sim::Duration;

/// A seek-time model mapping cylinder distance to head travel time.
///
/// # Examples
///
/// ```
/// use cras_disk::SeekModel;
///
/// let linear = SeekModel::st32550n_linear(3510);
/// assert_eq!(linear.time_secs(0), 0.0);
/// assert!((linear.time_secs(3510) - 0.017).abs() < 1e-9);
/// let measured = SeekModel::st32550n_measured();
/// // Short seeks are much cheaper than the linear fit claims.
/// assert!(measured.time_secs(1) < linear.time_secs(1));
/// ```
#[derive(Clone, Debug)]
pub enum SeekModel {
    /// The paper's linear approximation: `t = α·x + β` for `x ≥ 1`,
    /// `t = 0` for `x = 0`.
    Linear {
        /// Slope α in seconds per cylinder.
        alpha: f64,
        /// Intercept β in seconds (the paper's `T_seek_min`).
        beta: f64,
    },
    /// A Ruemmler–Wilkes-style measured curve: `a + b·sqrt(x)` for short
    /// seeks, `c + d·x` beyond the knee, continuous at the knee.
    Measured {
        /// Square-root-region offset (seconds).
        a: f64,
        /// Square-root-region coefficient (seconds per sqrt(cylinder)).
        b: f64,
        /// Linear-region offset (seconds).
        c: f64,
        /// Linear-region slope (seconds per cylinder).
        d: f64,
        /// Knee distance in cylinders.
        knee: u32,
    },
}

impl SeekModel {
    /// The paper's linear model for the ST32550N:
    /// `T_seek_min = 4 ms`, `T_seek_max = 17 ms` over `n_cyl` cylinders.
    pub fn st32550n_linear(n_cyl: u32) -> SeekModel {
        SeekModel::from_min_max(0.004, 0.017, n_cyl)
    }

    /// Builds a linear model from its endpoint times: `t(1) ≈ t_min`
    /// (intercept) and `t(n_cyl) = t_max`.
    pub fn from_min_max(t_min: f64, t_max: f64, n_cyl: u32) -> SeekModel {
        assert!(n_cyl > 0, "from_min_max: zero cylinders");
        assert!(t_max >= t_min && t_min >= 0.0, "from_min_max: bad times");
        SeekModel::Linear {
            alpha: (t_max - t_min) / n_cyl as f64,
            beta: t_min,
        }
    }

    /// A measured-style curve calibrated so that the paper's linear fit
    /// over `n_cyl` cylinders recovers `T_seek_min ≈ 4 ms` and
    /// `T_seek_max ≈ 17 ms`.
    ///
    /// Shape: single-track seek ≈ 1.5 ms, knee at ~400 cylinders, full
    /// stroke ≈ 17 ms — consistent with published Barracuda-class curves.
    pub fn st32550n_measured() -> SeekModel {
        let a = 0.0013;
        let b = 0.00022; // 1.5 ms at x = 1 ... ~5.7 ms at knee.
        let knee = 400u32;
        // Continuity at the knee with slope matching the long-stroke reach:
        // t(3510) = 17 ms.
        let t_knee = a + b * (knee as f64).sqrt();
        let d = (0.017 - t_knee) / (3510.0 - knee as f64);
        let c = t_knee - d * knee as f64;
        SeekModel::Measured { a, b, c, d, knee }
    }

    /// Seek time for a cylinder distance. Zero distance costs nothing
    /// (track-following, with settle folded into rotational positioning).
    pub fn time_secs(&self, distance: u32) -> f64 {
        if distance == 0 {
            return 0.0;
        }
        match *self {
            SeekModel::Linear { alpha, beta } => alpha * distance as f64 + beta,
            SeekModel::Measured { a, b, c, d, knee } => {
                if distance <= knee {
                    a + b * (distance as f64).sqrt()
                } else {
                    c + d * distance as f64
                }
            }
        }
    }

    /// Seek time as a [`Duration`].
    pub fn time(&self, distance: u32) -> Duration {
        Duration::from_secs_f64(self.time_secs(distance))
    }

    /// Least-squares linear fit of `(distance, time)` samples — the
    /// operation the paper performs on its measured curve to obtain
    /// `T_seek_min` / `T_seek_max` (Appendix A).
    ///
    /// Returns `(alpha, beta)` of `t = α·x + β`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two samples are given.
    pub fn linear_fit(samples: &[(u32, f64)]) -> (f64, f64) {
        assert!(samples.len() >= 2, "linear_fit: need >= 2 samples");
        let n = samples.len() as f64;
        let sx: f64 = samples.iter().map(|&(x, _)| x as f64).sum();
        let sy: f64 = samples.iter().map(|&(_, y)| y).sum();
        let sxx: f64 = samples.iter().map(|&(x, _)| (x as f64) * (x as f64)).sum();
        let sxy: f64 = samples.iter().map(|&(x, y)| x as f64 * y).sum();
        let denom = n * sxx - sx * sx;
        assert!(denom.abs() > f64::EPSILON, "linear_fit: degenerate x");
        let alpha = (n * sxy - sx * sy) / denom;
        let beta = (sy - alpha * sx) / n;
        (alpha, beta)
    }

    /// Evaluates the paper's derived parameters for a linear model over a
    /// disk with `n_cyl` cylinders: `(T_seek_min, T_seek_max)` in seconds.
    pub fn min_max_secs(&self, n_cyl: u32) -> (f64, f64) {
        match *self {
            SeekModel::Linear { alpha, beta } => (beta, alpha * n_cyl as f64 + beta),
            SeekModel::Measured { .. } => {
                // Fit a line through the curve, like the paper does.
                let samples: Vec<(u32, f64)> = (1..=n_cyl)
                    .step_by((n_cyl / 64).max(1) as usize)
                    .map(|x| (x, self.time_secs(x)))
                    .collect();
                let (alpha, beta) = SeekModel::linear_fit(&samples);
                (beta.max(0.0), alpha * n_cyl as f64 + beta)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_endpoints_match_paper() {
        let m = SeekModel::st32550n_linear(3510);
        assert_eq!(m.time_secs(0), 0.0);
        assert!((m.time_secs(1) - 0.004).abs() < 1e-5);
        assert!((m.time_secs(3510) - 0.017).abs() < 1e-9);
    }

    #[test]
    fn linear_is_monotone() {
        let m = SeekModel::st32550n_linear(3510);
        let mut prev = 0.0;
        for d in [0u32, 1, 10, 100, 1000, 3510] {
            let t = m.time_secs(d);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn measured_curve_is_monotone_and_continuous() {
        let m = SeekModel::st32550n_measured();
        let mut prev = 0.0;
        for d in 1..=3510 {
            let t = m.time_secs(d);
            assert!(t >= prev - 1e-12, "non-monotone at {d}");
            prev = t;
        }
        // Continuity across the knee.
        if let SeekModel::Measured { knee, .. } = m {
            let below = m.time_secs(knee);
            let above = m.time_secs(knee + 1);
            assert!((above - below) < 0.0005, "jump at knee: {below} vs {above}");
        }
    }

    #[test]
    fn measured_curve_full_stroke_is_17ms() {
        let m = SeekModel::st32550n_measured();
        assert!((m.time_secs(3510) - 0.017).abs() < 1e-6);
    }

    #[test]
    fn measured_short_seek_fast() {
        let m = SeekModel::st32550n_measured();
        assert!(m.time_secs(1) < 0.002);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let samples: Vec<(u32, f64)> = (1..100).map(|x| (x, 2.0 * x as f64 + 5.0)).collect();
        let (a, b) = SeekModel::linear_fit(&samples);
        assert!((a - 2.0).abs() < 1e-9);
        assert!((b - 5.0).abs() < 1e-9);
    }

    #[test]
    fn fit_of_measured_curve_matches_paper_constants() {
        // The paper's T_seek_min = 4 ms / T_seek_max = 17 ms come from
        // linearly approximating the measured curve; our measured model
        // must reproduce those constants to within a millisecond.
        let m = SeekModel::st32550n_measured();
        let (t_min, t_max) = m.min_max_secs(3510);
        assert!((t_min - 0.004).abs() < 0.001, "fitted T_seek_min = {t_min}");
        assert!((t_max - 0.017).abs() < 0.002, "fitted T_seek_max = {t_max}");
    }

    #[test]
    fn duration_conversion() {
        let m = SeekModel::st32550n_linear(3510);
        assert_eq!(m.time(0), Duration::ZERO);
        assert_eq!(m.time(3510), Duration::from_micros(17_000));
    }
}
