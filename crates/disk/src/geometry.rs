//! Disk geometry: cylinders, heads, sectors, zones, and the block ↔
//! cylinder mapping used by C-SCAN scheduling and the admission test.
//!
//! The paper's evaluation disk is a Seagate ST32550N ("Barracuda 2"):
//! 2 GB formatted, 7200 rpm (8.33 ms rotation), about 6.5 MB/s sustained
//! transfer. [`DiskGeometry::st32550n`] is the calibrated preset used by
//! every experiment.

/// A logical block address (512-byte blocks, like the paper's "Mblock"
/// seek-distance axis).
pub type BlockNo = u64;

/// Size of one disk block in bytes.
pub const BLOCK_SIZE: u32 = 512;

/// A zone of consecutive cylinders sharing a sectors-per-track count.
///
/// Modern (for 1996) disks are zoned: outer cylinders hold more sectors
/// per track. A single-zone table degenerates to classic uniform geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Zone {
    /// First cylinder of the zone (inclusive).
    pub first_cyl: u32,
    /// Number of cylinders in the zone.
    pub cyls: u32,
    /// Sectors per track within the zone.
    pub sectors_per_track: u32,
}

/// Physical layout of a disk.
#[derive(Clone, Debug)]
pub struct DiskGeometry {
    /// Number of data heads (tracks per cylinder).
    pub heads: u32,
    /// Spindle speed in revolutions per minute.
    pub rpm: u32,
    /// Zone table, ordered by `first_cyl`, covering all cylinders.
    pub zones: Vec<Zone>,
}

impl DiskGeometry {
    /// Builds a uniform (single-zone) geometry.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn uniform(cylinders: u32, heads: u32, sectors_per_track: u32, rpm: u32) -> DiskGeometry {
        assert!(
            cylinders > 0 && heads > 0 && sectors_per_track > 0 && rpm > 0,
            "DiskGeometry::uniform: zero dimension"
        );
        DiskGeometry {
            heads,
            rpm,
            zones: vec![Zone {
                first_cyl: 0,
                cyls: cylinders,
                sectors_per_track,
            }],
        }
    }

    /// The calibrated Seagate ST32550N model used by the paper.
    ///
    /// 3510 cylinders, 11 heads, 7200 rpm. The zone table is a three-zone
    /// simplification whose average transfer rate calibrates to the
    /// paper's measured ~6.5 MB/s (Table 4); the calibration benchmark in
    /// [`crate::calibrate`] re-measures it the same way the authors did.
    pub fn st32550n() -> DiskGeometry {
        DiskGeometry {
            heads: 11,
            rpm: 7200,
            zones: vec![
                Zone {
                    first_cyl: 0,
                    cyls: 1170,
                    sectors_per_track: 126,
                },
                Zone {
                    first_cyl: 1170,
                    cyls: 1170,
                    sectors_per_track: 111,
                },
                Zone {
                    first_cyl: 2340,
                    cyls: 1170,
                    sectors_per_track: 96,
                },
            ],
        }
    }

    /// A copy of this geometry with every zone's linear density scaled
    /// by `factor` (sectors per track rounded to the nearest integer).
    ///
    /// This models a heterogeneous array: a later-generation spindle
    /// with the same mechanics but denser platters transfers
    /// proportionally faster, which the per-volume admission test must
    /// see through calibration.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive, or if scaling
    /// would round any zone down to zero sectors per track.
    pub fn scaled(&self, factor: f64) -> DiskGeometry {
        assert!(
            factor.is_finite() && factor > 0.0,
            "DiskGeometry::scaled: factor must be finite and positive"
        );
        let zones = self
            .zones
            .iter()
            .map(|z| {
                let spt = (z.sectors_per_track as f64 * factor).round() as u32;
                assert!(spt > 0, "DiskGeometry::scaled: zone scaled to zero sectors");
                Zone {
                    sectors_per_track: spt,
                    ..*z
                }
            })
            .collect();
        DiskGeometry {
            heads: self.heads,
            rpm: self.rpm,
            zones,
        }
    }

    /// Total number of cylinders.
    pub fn cylinders(&self) -> u32 {
        self.zones.iter().map(|z| z.cyls).sum()
    }

    /// Sectors per track at the given cylinder.
    ///
    /// # Panics
    ///
    /// Panics if `cyl` is out of range.
    pub fn sectors_per_track(&self, cyl: u32) -> u32 {
        for z in &self.zones {
            if cyl >= z.first_cyl && cyl < z.first_cyl + z.cyls {
                return z.sectors_per_track;
            }
        }
        panic!("cylinder {cyl} out of range");
    }

    /// Blocks (sectors) in one cylinder at `cyl`.
    pub fn blocks_per_cylinder(&self, cyl: u32) -> u64 {
        self.sectors_per_track(cyl) as u64 * self.heads as u64
    }

    /// Total capacity in 512-byte blocks.
    pub fn total_blocks(&self) -> u64 {
        self.zones
            .iter()
            .map(|z| z.cyls as u64 * z.sectors_per_track as u64 * self.heads as u64)
            .sum()
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_blocks() * BLOCK_SIZE as u64
    }

    /// One full revolution of the spindle, in seconds.
    pub fn rotation_secs(&self) -> f64 {
        60.0 / self.rpm as f64
    }

    /// Media transfer rate at a cylinder, in bytes per second: one track
    /// per revolution.
    pub fn transfer_rate_at(&self, cyl: u32) -> f64 {
        let track_bytes = self.sectors_per_track(cyl) as f64 * BLOCK_SIZE as f64;
        track_bytes / self.rotation_secs()
    }

    /// Capacity-weighted average media transfer rate in bytes/second.
    pub fn avg_transfer_rate(&self) -> f64 {
        let total: u64 = self.total_blocks();
        let mut acc = 0.0;
        for z in &self.zones {
            let z_blocks = z.cyls as u64 * z.sectors_per_track as u64 * self.heads as u64;
            acc += self.transfer_rate_at(z.first_cyl) * z_blocks as f64 / total as f64;
        }
        acc
    }

    /// Maps a block number to its cylinder.
    ///
    /// # Panics
    ///
    /// Panics if `block` is beyond the disk capacity.
    pub fn cylinder_of(&self, block: BlockNo) -> u32 {
        let mut remaining = block;
        for z in &self.zones {
            let per_cyl = z.sectors_per_track as u64 * self.heads as u64;
            let z_blocks = z.cyls as u64 * per_cyl;
            if remaining < z_blocks {
                return z.first_cyl + (remaining / per_cyl) as u32;
            }
            remaining -= z_blocks;
        }
        panic!("block {block} beyond disk capacity");
    }

    /// First block of the given cylinder.
    pub fn first_block_of(&self, cyl: u32) -> BlockNo {
        let mut acc: u64 = 0;
        for z in &self.zones {
            if cyl < z.first_cyl + z.cyls {
                let within = (cyl - z.first_cyl) as u64;
                return acc + within * z.sectors_per_track as u64 * self.heads as u64;
            }
            acc += z.cyls as u64 * z.sectors_per_track as u64 * self.heads as u64;
        }
        panic!("cylinder {cyl} out of range");
    }

    /// Angular position (fraction of a revolution, in `[0, 1)`) of a block
    /// within its track.
    pub fn angle_of(&self, block: BlockNo) -> f64 {
        let cyl = self.cylinder_of(block);
        let spt = self.sectors_per_track(cyl) as u64;
        let within_cyl = block - self.first_block_of(cyl);
        let sector = within_cyl % spt;
        sector as f64 / spt as f64
    }

    /// Cylinder distance between two blocks.
    pub fn cyl_distance(&self, a: BlockNo, b: BlockNo) -> u32 {
        let ca = self.cylinder_of(a);
        let cb = self.cylinder_of(b);
        ca.abs_diff(cb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn st32550n_capacity_near_2gb() {
        let g = DiskGeometry::st32550n();
        let gb = g.capacity_bytes() as f64 / 1e9;
        assert!((1.9..2.4).contains(&gb), "capacity {gb} GB");
        assert_eq!(g.cylinders(), 3510);
    }

    #[test]
    fn st32550n_rotation_is_8_33ms() {
        let g = DiskGeometry::st32550n();
        assert!((g.rotation_secs() - 0.008333).abs() < 1e-5);
    }

    #[test]
    fn st32550n_avg_rate_near_6_5_mbs() {
        let g = DiskGeometry::st32550n();
        let mbs = g.avg_transfer_rate() / 1e6;
        assert!((6.2..7.3).contains(&mbs), "avg rate {mbs} MB/s");
    }

    #[test]
    fn block_cylinder_roundtrip() {
        let g = DiskGeometry::st32550n();
        for cyl in [0u32, 1, 100, 1170, 2000, 2340, 3509] {
            let b = g.first_block_of(cyl);
            assert_eq!(g.cylinder_of(b), cyl);
            // Last block of the cylinder still maps to it.
            let last = b + g.blocks_per_cylinder(cyl) - 1;
            assert_eq!(g.cylinder_of(last), cyl);
        }
    }

    #[test]
    fn block_mapping_is_monotone() {
        let g = DiskGeometry::st32550n();
        let mut prev = 0;
        for blk in (0..g.total_blocks()).step_by(1_000_000) {
            let c = g.cylinder_of(blk);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    #[should_panic(expected = "beyond disk capacity")]
    fn out_of_range_block_panics() {
        let g = DiskGeometry::st32550n();
        g.cylinder_of(g.total_blocks());
    }

    #[test]
    fn uniform_geometry() {
        let g = DiskGeometry::uniform(100, 4, 50, 3600);
        assert_eq!(g.cylinders(), 100);
        assert_eq!(g.total_blocks(), 100 * 4 * 50);
        assert_eq!(g.blocks_per_cylinder(0), 200);
        assert_eq!(g.sectors_per_track(99), 50);
        assert!((g.rotation_secs() - 1.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn angle_spans_track() {
        let g = DiskGeometry::uniform(10, 1, 4, 3600);
        assert_eq!(g.angle_of(0), 0.0);
        assert_eq!(g.angle_of(1), 0.25);
        assert_eq!(g.angle_of(3), 0.75);
        assert_eq!(g.angle_of(4), 0.0); // Next cylinder starts over.
    }

    #[test]
    fn cyl_distance_symmetric() {
        let g = DiskGeometry::st32550n();
        let a = g.first_block_of(10);
        let b = g.first_block_of(200);
        assert_eq!(g.cyl_distance(a, b), 190);
        assert_eq!(g.cyl_distance(b, a), 190);
        assert_eq!(g.cyl_distance(a, a), 0);
    }

    #[test]
    fn zone_rates_decrease_inward() {
        let g = DiskGeometry::st32550n();
        assert!(g.transfer_rate_at(0) > g.transfer_rate_at(3509));
    }

    #[test]
    fn scaled_geometry_scales_rate_and_capacity() {
        let g = DiskGeometry::st32550n();
        let f = g.scaled(1.5);
        assert_eq!(f.cylinders(), g.cylinders());
        assert_eq!(f.heads, g.heads);
        let rate_ratio = f.avg_transfer_rate() / g.avg_transfer_rate();
        assert!((rate_ratio - 1.5).abs() < 0.01, "rate ratio {rate_ratio}");
        let cap_ratio = f.capacity_bytes() as f64 / g.capacity_bytes() as f64;
        assert!((cap_ratio - 1.5).abs() < 0.01, "capacity ratio {cap_ratio}");
        // Unit scale is the identity.
        assert_eq!(g.scaled(1.0).zones, g.zones);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn scaled_rejects_zero_factor() {
        DiskGeometry::st32550n().scaled(0.0);
    }
}
