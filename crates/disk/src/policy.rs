//! Disk head-scheduling policies: FCFS, SSTF, SCAN (elevator) and C-SCAN.
//!
//! The paper uses "the traditional C-SCAN algorithm to minimize total
//! seek time"; [`DiskQueue`] generalizes the request queue over the
//! classic alternatives so the choice can be ablated (C-SCAN trades a
//! little average seek time for bounded starvation, which is what a
//! real-time queue needs).

use cras_sim::Instant;

use crate::cscan::{CScanQueue, Pending};

/// Head-scheduling policy for one request queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// First come, first served.
    Fcfs,
    /// Shortest seek time first (greedy; can starve edge requests).
    Sstf,
    /// Elevator: sweep inward, then outward.
    Scan,
    /// Circular SCAN: sweep inward, jump back (the paper's choice).
    #[default]
    CScan,
}

impl QueuePolicy {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            QueuePolicy::Fcfs => "FCFS",
            QueuePolicy::Sstf => "SSTF",
            QueuePolicy::Scan => "SCAN",
            QueuePolicy::CScan => "C-SCAN",
        }
    }
}

/// Per-spindle C-SCAN sweep state carried *across* scheduling rounds.
///
/// The device-level [`DiskQueue`] orders whatever is queued right now;
/// a server planning one batch per interval additionally needs to
/// remember where the previous batch left the head, or every interval
/// restarts its sweep from block 0 and pays a full-stroke seek back.
/// `key` yields a sort key that continues the sweep from the carried
/// position: blocks at or past it first (ascending), wrapped blocks
/// after (C-SCAN's jump back).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepCursor {
    pos: u64,
}

impl SweepCursor {
    /// A cursor starting at block 0 (a fresh spindle).
    pub fn new() -> SweepCursor {
        SweepCursor::default()
    }

    /// The block the next sweep starts from.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Sort key for `block` relative to the carried sweep position:
    /// ascending from the cursor, wrapped blocks last.
    pub fn key(&self, block: u64) -> (bool, u64) {
        (block < self.pos, block)
    }

    /// Advances the sweep position to `block` — typically the start of
    /// the request just issued. Using the start (not the end) matters:
    /// a stream's next read often begins a block *before* the previous
    /// read's end (chunk boundaries are not block-aligned, so adjacent
    /// reads overlap by one block), and anchoring at the end would make
    /// every follow-on read look like it wrapped.
    pub fn advance(&mut self, block: u64) {
        self.pos = block;
    }
}

/// Total head travel (in blocks) of servicing `blocks` in the given
/// order starting from `start` — the seek-distance model used by tests
/// comparing issue orders.
pub fn modeled_travel(start: u64, blocks: &[u64]) -> u64 {
    let mut pos = start;
    let mut travel = 0u64;
    for &b in blocks {
        travel += pos.abs_diff(b);
        pos = b;
    }
    travel
}

/// A request queue ordered by the configured policy.
#[derive(Clone, Debug)]
pub struct DiskQueue<T> {
    policy: QueuePolicy,
    /// C-SCAN/SCAN-sorted store (also used for SSTF via nearest search).
    sorted: CScanQueue<T>,
    /// FCFS store.
    fifo: Vec<Pending<T>>,
    /// SCAN direction: true = inward (increasing cylinders).
    inward: bool,
    seq: u64,
}

impl<T> DiskQueue<T> {
    /// Creates an empty queue with the given policy.
    pub fn new(policy: QueuePolicy) -> DiskQueue<T> {
        DiskQueue {
            policy,
            sorted: CScanQueue::new(),
            fifo: Vec::new(),
            inward: true,
            seq: 0,
        }
    }

    /// The policy.
    pub fn policy(&self) -> QueuePolicy {
        self.policy
    }

    /// Number of pending requests.
    pub fn len(&self) -> usize {
        match self.policy {
            QueuePolicy::Fcfs => self.fifo.len(),
            _ => self.sorted.len(),
        }
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues a request targeting `cyl`.
    pub fn push(&mut self, cyl: u32, submitted_at: Instant, item: T) {
        match self.policy {
            QueuePolicy::Fcfs => {
                self.seq += 1;
                self.fifo.push(Pending {
                    cyl,
                    seq: self.seq,
                    submitted_at,
                    item,
                });
            }
            _ => self.sorted.push(cyl, submitted_at, item),
        }
    }

    /// Pops the next request given the head position.
    pub fn pop_next(&mut self, head_cyl: u32) -> Option<Pending<T>> {
        match self.policy {
            QueuePolicy::Fcfs => {
                if self.fifo.is_empty() {
                    None
                } else {
                    Some(self.fifo.remove(0))
                }
            }
            QueuePolicy::CScan => self.sorted.pop_next(head_cyl),
            QueuePolicy::Sstf => {
                // Nearest cylinder to the head, either side.
                let best = self
                    .sorted
                    .iter()
                    .min_by_key(|p| (p.cyl.abs_diff(head_cyl), p.seq))?;
                let (cyl, seq) = (best.cyl, best.seq);
                self.take_exact(cyl, seq)
            }
            QueuePolicy::Scan => {
                // Continue in the current direction; reverse at the end.
                let pick = if self.inward {
                    self.sorted
                        .iter()
                        .filter(|p| p.cyl >= head_cyl)
                        .min_by_key(|p| (p.cyl, p.seq))
                        .map(|p| (p.cyl, p.seq))
                } else {
                    self.sorted
                        .iter()
                        .filter(|p| p.cyl <= head_cyl)
                        .max_by_key(|p| (p.cyl, u64::MAX - p.seq))
                        .map(|p| (p.cyl, p.seq))
                };
                match pick {
                    Some((cyl, seq)) => self.take_exact(cyl, seq),
                    None => {
                        if self.sorted.is_empty() {
                            None
                        } else {
                            self.inward = !self.inward;
                            self.pop_next(head_cyl)
                        }
                    }
                }
            }
        }
    }

    fn take_exact(&mut self, cyl: u32, seq: u64) -> Option<Pending<T>> {
        // Drain-and-rebuild is O(n) but queues are small (tens).
        let mut out = None;
        let entries = self.sorted.drain();
        for p in entries {
            if out.is_none() && p.cyl == cyl && p.seq == seq {
                out = Some(p);
            } else {
                self.sorted.push(p.cyl, p.submitted_at, p.item);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_order(policy: QueuePolicy, cyls: &[u32], head: u32) -> Vec<u32> {
        let mut q = DiskQueue::new(policy);
        for &c in cyls {
            q.push(c, Instant::ZERO, c);
        }
        let mut h = head;
        let mut out = Vec::new();
        while let Some(p) = q.pop_next(h) {
            h = p.cyl;
            out.push(p.cyl);
        }
        out
    }

    #[test]
    fn fcfs_is_submission_order() {
        assert_eq!(
            drain_order(QueuePolicy::Fcfs, &[50, 10, 90, 30], 40),
            vec![50, 10, 90, 30]
        );
    }

    #[test]
    fn cscan_sweeps_inward_and_wraps() {
        assert_eq!(
            drain_order(QueuePolicy::CScan, &[50, 10, 90, 30], 40),
            vec![50, 90, 10, 30]
        );
    }

    #[test]
    fn sstf_picks_nearest() {
        // Head 40: nearest 50 (d10 vs 30 d10 tie -> seq order: 50 first
        // inserted earlier than 30? cyls order [50,10,90,30]: 50 seq 1,
        // 30 seq 4; distance tie 10 -> min seq wins: 50. Then head 50:
        // nearest 30 (d20) vs 90 (d40) vs 10 (d40) -> 30; then 10; then 90.
        assert_eq!(
            drain_order(QueuePolicy::Sstf, &[50, 10, 90, 30], 40),
            vec![50, 30, 10, 90]
        );
    }

    #[test]
    fn scan_reverses_at_end() {
        // Head 40 inward: 50, 90; reverse: 30, 10.
        assert_eq!(
            drain_order(QueuePolicy::Scan, &[50, 10, 90, 30], 40),
            vec![50, 90, 30, 10]
        );
    }

    #[test]
    fn all_policies_conserve_requests() {
        for policy in [
            QueuePolicy::Fcfs,
            QueuePolicy::Sstf,
            QueuePolicy::Scan,
            QueuePolicy::CScan,
        ] {
            let order = drain_order(policy, &[5, 300, 17, 2999, 1200, 17], 600);
            assert_eq!(order.len(), 6, "{policy:?} lost requests");
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![5, 17, 17, 300, 1200, 2999]);
        }
    }

    #[test]
    fn scan_direction_persists_across_refills() {
        let mut q: DiskQueue<u32> = DiskQueue::new(QueuePolicy::Scan);
        // Drain inward past the end to flip direction outward.
        q.push(50, Instant::ZERO, 50);
        q.push(90, Instant::ZERO, 90);
        assert_eq!(q.pop_next(40).unwrap().cyl, 50);
        assert_eq!(q.pop_next(50).unwrap().cyl, 90);
        // New arrivals on both sides of the head: outward request must be
        // chosen first only after the direction flips at the top.
        q.push(95, Instant::ZERO, 95);
        q.push(10, Instant::ZERO, 10);
        assert_eq!(q.pop_next(90).unwrap().cyl, 95, "still sweeping inward");
        assert_eq!(q.pop_next(95).unwrap().cyl, 10, "reversed at the top");
    }

    #[test]
    fn empty_queue_returns_none() {
        for policy in [
            QueuePolicy::Fcfs,
            QueuePolicy::Sstf,
            QueuePolicy::Scan,
            QueuePolicy::CScan,
        ] {
            let mut q: DiskQueue<u32> = DiskQueue::new(policy);
            assert!(q.pop_next(0).is_none());
            assert!(q.is_empty());
        }
    }

    #[test]
    fn label_roundtrip() {
        assert_eq!(QueuePolicy::CScan.label(), "C-SCAN");
        assert_eq!(QueuePolicy::default(), QueuePolicy::CScan);
    }

    #[test]
    fn sweep_cursor_continues_from_carried_position() {
        let mut c = SweepCursor::new();
        assert_eq!(c.position(), 0);
        let mut blocks = vec![500u64, 100, 900, 300];
        blocks.sort_by_key(|&b| c.key(b));
        assert_eq!(blocks, vec![100, 300, 500, 900], "fresh cursor: ascending");
        c.advance(901);
        // Next round: blocks behind the head wrap to the end of the sweep.
        let mut blocks = vec![500u64, 950, 100, 1200];
        blocks.sort_by_key(|&b| c.key(b));
        assert_eq!(blocks, vec![950, 1200, 100, 500], "sweep from 901, wrap");
        c.advance(501);
        assert_eq!(c.position(), 501);
    }

    #[test]
    fn sweep_order_travels_less_than_restarting_at_zero() {
        // Two rounds of far-apart blocks: carrying the sweep position
        // halves the travel versus re-sorting ascending from 0.
        let round1 = [100u64, 400_000];
        let round2 = [200u64, 400_100];
        let naive = modeled_travel(0, &round1) + modeled_travel(400_000, &round2);
        let mut c = SweepCursor::new();
        let mut r1 = round1.to_vec();
        r1.sort_by_key(|&b| c.key(b));
        c.advance(*r1.last().unwrap() + 1);
        let mut r2 = round2.to_vec();
        r2.sort_by_key(|&b| c.key(b));
        let swept = modeled_travel(0, &r1) + modeled_travel(*r1.last().unwrap(), &r2);
        assert_eq!(r2, vec![400_100, 200], "round 2 continues the sweep");
        assert!(
            swept < naive,
            "sweep travel {swept} should beat naive {naive}"
        );
    }

    #[test]
    fn modeled_travel_sums_absolute_moves() {
        assert_eq!(modeled_travel(0, &[]), 0);
        assert_eq!(modeled_travel(10, &[30, 20, 50]), 20 + 10 + 30);
    }
}
