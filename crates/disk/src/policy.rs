//! Disk head-scheduling policies: FCFS, SSTF, SCAN (elevator) and C-SCAN.
//!
//! The paper uses "the traditional C-SCAN algorithm to minimize total
//! seek time"; [`DiskQueue`] generalizes the request queue over the
//! classic alternatives so the choice can be ablated (C-SCAN trades a
//! little average seek time for bounded starvation, which is what a
//! real-time queue needs).

use cras_sim::Instant;

use crate::cscan::{CScanQueue, Pending};

/// Head-scheduling policy for one request queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// First come, first served.
    Fcfs,
    /// Shortest seek time first (greedy; can starve edge requests).
    Sstf,
    /// Elevator: sweep inward, then outward.
    Scan,
    /// Circular SCAN: sweep inward, jump back (the paper's choice).
    #[default]
    CScan,
}

impl QueuePolicy {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            QueuePolicy::Fcfs => "FCFS",
            QueuePolicy::Sstf => "SSTF",
            QueuePolicy::Scan => "SCAN",
            QueuePolicy::CScan => "C-SCAN",
        }
    }
}

/// A request queue ordered by the configured policy.
#[derive(Clone, Debug)]
pub struct DiskQueue<T> {
    policy: QueuePolicy,
    /// C-SCAN/SCAN-sorted store (also used for SSTF via nearest search).
    sorted: CScanQueue<T>,
    /// FCFS store.
    fifo: Vec<Pending<T>>,
    /// SCAN direction: true = inward (increasing cylinders).
    inward: bool,
    seq: u64,
}

impl<T> DiskQueue<T> {
    /// Creates an empty queue with the given policy.
    pub fn new(policy: QueuePolicy) -> DiskQueue<T> {
        DiskQueue {
            policy,
            sorted: CScanQueue::new(),
            fifo: Vec::new(),
            inward: true,
            seq: 0,
        }
    }

    /// The policy.
    pub fn policy(&self) -> QueuePolicy {
        self.policy
    }

    /// Number of pending requests.
    pub fn len(&self) -> usize {
        match self.policy {
            QueuePolicy::Fcfs => self.fifo.len(),
            _ => self.sorted.len(),
        }
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues a request targeting `cyl`.
    pub fn push(&mut self, cyl: u32, submitted_at: Instant, item: T) {
        match self.policy {
            QueuePolicy::Fcfs => {
                self.seq += 1;
                self.fifo.push(Pending {
                    cyl,
                    seq: self.seq,
                    submitted_at,
                    item,
                });
            }
            _ => self.sorted.push(cyl, submitted_at, item),
        }
    }

    /// Pops the next request given the head position.
    pub fn pop_next(&mut self, head_cyl: u32) -> Option<Pending<T>> {
        match self.policy {
            QueuePolicy::Fcfs => {
                if self.fifo.is_empty() {
                    None
                } else {
                    Some(self.fifo.remove(0))
                }
            }
            QueuePolicy::CScan => self.sorted.pop_next(head_cyl),
            QueuePolicy::Sstf => {
                // Nearest cylinder to the head, either side.
                let best = self
                    .sorted
                    .iter()
                    .min_by_key(|p| (p.cyl.abs_diff(head_cyl), p.seq))?;
                let (cyl, seq) = (best.cyl, best.seq);
                self.take_exact(cyl, seq)
            }
            QueuePolicy::Scan => {
                // Continue in the current direction; reverse at the end.
                let pick = if self.inward {
                    self.sorted
                        .iter()
                        .filter(|p| p.cyl >= head_cyl)
                        .min_by_key(|p| (p.cyl, p.seq))
                        .map(|p| (p.cyl, p.seq))
                } else {
                    self.sorted
                        .iter()
                        .filter(|p| p.cyl <= head_cyl)
                        .max_by_key(|p| (p.cyl, u64::MAX - p.seq))
                        .map(|p| (p.cyl, p.seq))
                };
                match pick {
                    Some((cyl, seq)) => self.take_exact(cyl, seq),
                    None => {
                        if self.sorted.is_empty() {
                            None
                        } else {
                            self.inward = !self.inward;
                            self.pop_next(head_cyl)
                        }
                    }
                }
            }
        }
    }

    fn take_exact(&mut self, cyl: u32, seq: u64) -> Option<Pending<T>> {
        // Drain-and-rebuild is O(n) but queues are small (tens).
        let mut out = None;
        let entries = self.sorted.drain();
        for p in entries {
            if out.is_none() && p.cyl == cyl && p.seq == seq {
                out = Some(p);
            } else {
                self.sorted.push(p.cyl, p.submitted_at, p.item);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_order(policy: QueuePolicy, cyls: &[u32], head: u32) -> Vec<u32> {
        let mut q = DiskQueue::new(policy);
        for &c in cyls {
            q.push(c, Instant::ZERO, c);
        }
        let mut h = head;
        let mut out = Vec::new();
        while let Some(p) = q.pop_next(h) {
            h = p.cyl;
            out.push(p.cyl);
        }
        out
    }

    #[test]
    fn fcfs_is_submission_order() {
        assert_eq!(
            drain_order(QueuePolicy::Fcfs, &[50, 10, 90, 30], 40),
            vec![50, 10, 90, 30]
        );
    }

    #[test]
    fn cscan_sweeps_inward_and_wraps() {
        assert_eq!(
            drain_order(QueuePolicy::CScan, &[50, 10, 90, 30], 40),
            vec![50, 90, 10, 30]
        );
    }

    #[test]
    fn sstf_picks_nearest() {
        // Head 40: nearest 50 (d10 vs 30 d10 tie -> seq order: 50 first
        // inserted earlier than 30? cyls order [50,10,90,30]: 50 seq 1,
        // 30 seq 4; distance tie 10 -> min seq wins: 50. Then head 50:
        // nearest 30 (d20) vs 90 (d40) vs 10 (d40) -> 30; then 10; then 90.
        assert_eq!(
            drain_order(QueuePolicy::Sstf, &[50, 10, 90, 30], 40),
            vec![50, 30, 10, 90]
        );
    }

    #[test]
    fn scan_reverses_at_end() {
        // Head 40 inward: 50, 90; reverse: 30, 10.
        assert_eq!(
            drain_order(QueuePolicy::Scan, &[50, 10, 90, 30], 40),
            vec![50, 90, 30, 10]
        );
    }

    #[test]
    fn all_policies_conserve_requests() {
        for policy in [
            QueuePolicy::Fcfs,
            QueuePolicy::Sstf,
            QueuePolicy::Scan,
            QueuePolicy::CScan,
        ] {
            let order = drain_order(policy, &[5, 300, 17, 2999, 1200, 17], 600);
            assert_eq!(order.len(), 6, "{policy:?} lost requests");
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![5, 17, 17, 300, 1200, 2999]);
        }
    }

    #[test]
    fn scan_direction_persists_across_refills() {
        let mut q: DiskQueue<u32> = DiskQueue::new(QueuePolicy::Scan);
        // Drain inward past the end to flip direction outward.
        q.push(50, Instant::ZERO, 50);
        q.push(90, Instant::ZERO, 90);
        assert_eq!(q.pop_next(40).unwrap().cyl, 50);
        assert_eq!(q.pop_next(50).unwrap().cyl, 90);
        // New arrivals on both sides of the head: outward request must be
        // chosen first only after the direction flips at the top.
        q.push(95, Instant::ZERO, 95);
        q.push(10, Instant::ZERO, 10);
        assert_eq!(q.pop_next(90).unwrap().cyl, 95, "still sweeping inward");
        assert_eq!(q.pop_next(95).unwrap().cyl, 10, "reversed at the top");
    }

    #[test]
    fn empty_queue_returns_none() {
        for policy in [
            QueuePolicy::Fcfs,
            QueuePolicy::Sstf,
            QueuePolicy::Scan,
            QueuePolicy::CScan,
        ] {
            let mut q: DiskQueue<u32> = DiskQueue::new(policy);
            assert!(q.pop_next(0).is_none());
            assert!(q.is_empty());
        }
    }

    #[test]
    fn label_roundtrip() {
        assert_eq!(QueuePolicy::CScan.label(), "C-SCAN");
        assert_eq!(QueuePolicy::default(), QueuePolicy::CScan);
    }
}
