//! XOR erasure codec for rotating-parity stripe groups.
//!
//! A parity group of `g` volumes stores, per stripe row, `g-1` data units
//! and one parity unit that is the byte-wise XOR of the data units. Any
//! single lost unit — data or parity — is the XOR of the `g-1` survivors.
//! Units shorter than the stripe size (the tail of a movie) behave as if
//! zero-padded to full length: XOR with zero is the identity, so short
//! units simply contribute nothing beyond their own length.
//!
//! The simulation core is data-free (it moves byte *counts*, not bytes),
//! so this codec is the byte-level ground truth: the deploy-time encoder
//! ([`crate::xor::parity_of`] via `cras-core`'s `ParityEncoder`) and the
//! degraded-read/rebuild paths are all exercised against it in tests to
//! show reconstruction is byte-identical.

/// XOR `unit` into `acc`. `unit` may be shorter than `acc` (implicit
/// zero padding); it must not be longer.
pub fn xor_into(acc: &mut [u8], unit: &[u8]) {
    assert!(
        unit.len() <= acc.len(),
        "unit ({} bytes) longer than accumulator ({} bytes)",
        unit.len(),
        acc.len()
    );
    for (a, b) in acc.iter_mut().zip(unit) {
        *a ^= *b;
    }
}

/// Parity unit of a stripe row: the byte-wise XOR of all data units,
/// zero-padded to `len` (the stripe unit size).
pub fn parity_of(units: &[&[u8]], len: usize) -> Vec<u8> {
    let mut acc = vec![0u8; len];
    for u in units {
        xor_into(&mut acc, u);
    }
    acc
}

/// Reconstruct a lost unit of length `len` from the surviving data units
/// and the row's parity unit. XOR is its own inverse, so this is the same
/// fold as [`parity_of`] with the parity unit included.
pub fn reconstruct(survivors: &[&[u8]], parity: &[u8], len: usize) -> Vec<u8> {
    let mut acc = vec![0u8; len];
    xor_into(&mut acc, &parity[..len.min(parity.len())]);
    for u in survivors {
        xor_into(&mut acc, &u[..len.min(u.len())]);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random bytes (no external RNG in tests).
    fn noise(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn any_single_lost_unit_reconstructs_byte_identical() {
        let unit = 4096;
        for (g, seed) in [(2usize, 1u64), (3, 2), (4, 3), (8, 4)] {
            // g-1 data units, the last one short (movie tail).
            let mut data: Vec<Vec<u8>> = (0..g - 1)
                .map(|i| noise(seed * 100 + i as u64, unit))
                .collect();
            let tail = unit / 3 + 1;
            data.last_mut().unwrap().truncate(tail);

            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let parity = parity_of(&refs, unit);

            for (lost, unit_bytes) in data.iter().enumerate() {
                let survivors: Vec<&[u8]> = refs
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != lost)
                    .map(|(_, r)| *r)
                    .collect();
                let got = reconstruct(&survivors, &parity, unit_bytes.len());
                assert_eq!(&got, unit_bytes, "g={g} lost data unit {lost}");
            }

            // Losing the parity unit: re-encode from the data units.
            assert_eq!(parity_of(&refs, unit), parity, "g={g} parity re-encode");
        }
    }

    #[test]
    fn reconstruction_of_zero_padded_tail_is_zeros() {
        // A range beyond every survivor's length XORs to zero — the
        // degraded-read path relies on this when the last row is short.
        let a = noise(9, 1000);
        let parity = parity_of(&[&a], 4096);
        let got = reconstruct(&[], &parity, 4096);
        assert_eq!(&got[..1000], &a[..]);
        assert!(got[1000..].iter().all(|&b| b == 0));
    }
}
