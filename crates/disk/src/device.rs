//! The disk device state machine: dual C-SCAN queues, one operation in
//! flight, and a physical service-time model (command overhead + seek +
//! rotational positioning + zoned media transfer).
//!
//! The device never schedules events itself; [`DiskDevice::submit`] and
//! [`DiskDevice::complete`] return the completion time of any operation
//! they start, and the orchestrator turns that into an engine event. The
//! 1996 SCSI stack had no overlapping/tagged commands in this path, so a
//! single in-flight operation is faithful.

use cras_sim::{Duration, Instant};

use crate::faults::FaultInjector;
use crate::geometry::{BlockNo, DiskGeometry, BLOCK_SIZE};
use crate::policy::{DiskQueue, QueuePolicy};
use crate::request::{Completed, DiskRequest, IoClass, ServiceBreakdown};
use crate::seek::SeekModel;

/// Configuration knobs of the service-time model.
#[derive(Clone, Debug)]
pub struct DiskTimings {
    /// Per-command controller overhead (the paper's `T_cmd` = 2 ms).
    pub command_overhead: Duration,
    /// Head-switch time when a transfer crosses to the next track in the
    /// same cylinder (electronic switch + settle).
    pub head_switch: Duration,
    /// Track-to-track seek used when a transfer spills into the next
    /// cylinder.
    pub cyl_switch: Duration,
}

impl Default for DiskTimings {
    fn default() -> Self {
        DiskTimings::st32550n()
    }
}

impl DiskTimings {
    /// Timings calibrated for the ST32550N (Table 4: `T_cmd` = 2 ms).
    pub fn st32550n() -> DiskTimings {
        DiskTimings {
            command_overhead: Duration::from_millis(2),
            head_switch: Duration::from_micros(800),
            cyl_switch: Duration::from_micros(1_500),
        }
    }

    /// An idealized zero-overhead model (useful in unit tests).
    pub fn zero() -> DiskTimings {
        DiskTimings {
            command_overhead: Duration::ZERO,
            head_switch: Duration::ZERO,
            cyl_switch: Duration::ZERO,
        }
    }
}

/// Aggregate statistics maintained by the device.
#[derive(Clone, Debug, Default)]
pub struct DiskStats {
    /// Completed operations per class: `(real-time, normal)`.
    pub ops: (u64, u64),
    /// Bytes transferred per class: `(real-time, normal)`.
    pub bytes: (u64, u64),
    /// Total time the device spent servicing operations.
    pub busy: Duration,
    /// Total seek time spent.
    pub seek_time: Duration,
    /// Total rotational latency spent.
    pub rotation_time: Duration,
    /// Total media transfer time spent.
    pub transfer_time: Duration,
}

impl DiskStats {
    /// Total completed operations.
    pub fn total_ops(&self) -> u64 {
        self.ops.0 + self.ops.1
    }

    /// Total bytes across both classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.0 + self.bytes.1
    }

    /// Utilization over an observation window.
    pub fn utilization(&self, window: Duration) -> f64 {
        if window.is_zero() {
            0.0
        } else {
            self.busy.as_secs_f64() / window.as_secs_f64()
        }
    }
}

struct Inflight<T> {
    req: DiskRequest<T>,
    submitted_at: Instant,
    started_at: Instant,
    finishes_at: Instant,
    breakdown: ServiceBreakdown,
    failed: bool,
}

/// How long a downed volume takes to return an error for an operation:
/// the controller answers the command, the drive never does. Public so
/// failure-path timing models (error-queue drain time, the property
/// test's overhead margin) can reference the same constant.
pub const ERROR_LATENCY: Duration = Duration::from_millis(1);

/// The simulated disk: queues + head position + spindle + service model.
pub struct DiskDevice<T> {
    geom: DiskGeometry,
    seek: SeekModel,
    timings: DiskTimings,
    head_cyl: u32,
    rt_queue: DiskQueue<DiskRequest<T>>,
    normal_queue: DiskQueue<DiskRequest<T>>,
    inflight: Option<Inflight<T>>,
    stats: DiskStats,
    faults: Option<FaultInjector>,
    down: bool,
}

impl<T> DiskDevice<T> {
    /// Creates a device with the given geometry, seek model and timings.
    pub fn new(geom: DiskGeometry, seek: SeekModel, timings: DiskTimings) -> DiskDevice<T> {
        DiskDevice {
            geom,
            seek,
            timings,
            head_cyl: 0,
            rt_queue: DiskQueue::new(QueuePolicy::CScan),
            normal_queue: DiskQueue::new(QueuePolicy::CScan),
            inflight: None,
            stats: DiskStats::default(),
            faults: None,
            down: false,
        }
    }

    /// Marks the volume permanently failed (or revived). While down,
    /// every operation — including the one currently in flight —
    /// completes with `failed = true`; queued and future operations are
    /// answered with a fast error return instead of being serviced.
    pub fn set_down(&mut self, down: bool) {
        self.down = down;
        if down {
            if let Some(infl) = &mut self.inflight {
                // The spindle died under the in-flight op: it still
                // "completes" at its scheduled time, as an error.
                infl.failed = true;
            }
        }
    }

    /// Whether the volume is marked down.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Installs a transient-fault injector (None disables injection).
    pub fn set_fault_injector(&mut self, injector: Option<FaultInjector>) {
        self.faults = injector;
    }

    /// Replaces the head-scheduling policy of both queues (must be done
    /// while the queues are empty; used by the scheduling ablation).
    ///
    /// # Panics
    ///
    /// Panics if requests are pending.
    pub fn set_queue_policy(&mut self, policy: QueuePolicy) {
        assert!(
            self.rt_queue.is_empty() && self.normal_queue.is_empty(),
            "cannot change policy with pending requests"
        );
        self.rt_queue = DiskQueue::new(policy);
        self.normal_queue = DiskQueue::new(policy);
    }

    /// The queue policy in use.
    pub fn queue_policy(&self) -> QueuePolicy {
        self.rt_queue.policy()
    }

    /// The installed injector, if any (for its counters).
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    /// Mutable access to the installed injector (for scheduling faults
    /// on an already-installed carrier).
    pub fn fault_injector_mut(&mut self) -> Option<&mut FaultInjector> {
        self.faults.as_mut()
    }

    /// The calibrated ST32550N device used by the paper's evaluation, with
    /// the measured (non-linear) seek curve.
    pub fn st32550n() -> DiskDevice<T> {
        DiskDevice::new(
            DiskGeometry::st32550n(),
            SeekModel::st32550n_measured(),
            DiskTimings::st32550n(),
        )
    }

    /// The disk geometry.
    pub fn geometry(&self) -> &DiskGeometry {
        &self.geom
    }

    /// The seek model in use.
    pub fn seek_model(&self) -> &SeekModel {
        &self.seek
    }

    /// The timing configuration.
    pub fn timings(&self) -> &DiskTimings {
        &self.timings
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// Current head cylinder.
    pub fn head_cyl(&self) -> u32 {
        self.head_cyl
    }

    /// Whether an operation is being serviced.
    pub fn is_busy(&self) -> bool {
        self.inflight.is_some()
    }

    /// Queue depths `(real-time, normal)`, excluding the in-flight op.
    pub fn queue_depths(&self) -> (usize, usize) {
        (self.rt_queue.len(), self.normal_queue.len())
    }

    /// Total commands outstanding on the device: queued in either class
    /// plus any in-flight operation — the device-side half of the
    /// read-steering load signal.
    pub fn outstanding(&self) -> usize {
        self.rt_queue.len() + self.normal_queue.len() + usize::from(self.inflight.is_some())
    }

    /// Submits a request. If the device is idle the operation starts
    /// immediately and its completion time is returned; otherwise the
    /// request waits in its class queue and `None` is returned.
    ///
    /// # Panics
    ///
    /// Panics if the request extends beyond the disk capacity or transfers
    /// zero blocks.
    pub fn submit(&mut self, now: Instant, req: DiskRequest<T>) -> Option<Instant> {
        assert!(req.nblocks > 0, "zero-length disk request");
        assert!(
            req.block + req.nblocks as u64 <= self.geom.total_blocks(),
            "request beyond capacity: block {} + {}",
            req.block,
            req.nblocks
        );
        let cyl = self.geom.cylinder_of(req.block);
        match req.class {
            IoClass::RealTime => self.rt_queue.push(cyl, now, req),
            IoClass::Normal => self.normal_queue.push(cyl, now, req),
        }
        if self.inflight.is_none() {
            self.start_next(now)
        } else {
            None
        }
    }

    /// Completes the in-flight operation (the orchestrator calls this when
    /// the completion event fires) and starts the next queued one.
    ///
    /// Returns the completed operation and, if another op started, its
    /// completion time.
    ///
    /// # Panics
    ///
    /// Panics if nothing is in flight or the completion time disagrees
    /// with the event time (both indicate orchestrator bugs).
    pub fn complete(&mut self, now: Instant) -> (Completed<T>, Option<Instant>) {
        let fin = self.inflight.take().expect("complete: nothing in flight");
        assert_eq!(
            fin.finishes_at, now,
            "complete: event fired at the wrong time"
        );
        let done = Completed {
            req: fin.req,
            submitted_at: fin.submitted_at,
            started_at: fin.started_at,
            finished_at: fin.finishes_at,
            breakdown: fin.breakdown,
            failed: fin.failed,
        };
        // Failed operations count as ops but transfer no bytes.
        let bytes = if done.failed { 0 } else { done.req.bytes() };
        match done.req.class {
            IoClass::RealTime => {
                self.stats.ops.0 += 1;
                self.stats.bytes.0 += bytes;
            }
            IoClass::Normal => {
                self.stats.ops.1 += 1;
                self.stats.bytes.1 += bytes;
            }
        }
        let next = self.start_next(now);
        (done, next)
    }

    /// Computes the service breakdown an op would have if started at `now`
    /// with the head where it is. Pure; used by calibration and tests.
    pub fn service_preview(&self, now: Instant, block: BlockNo, nblocks: u32) -> ServiceBreakdown {
        self.service_breakdown(now, self.head_cyl, block, nblocks)
    }

    fn service_breakdown(
        &self,
        now: Instant,
        head_cyl: u32,
        block: BlockNo,
        nblocks: u32,
    ) -> ServiceBreakdown {
        let target_cyl = self.geom.cylinder_of(block);
        let distance = head_cyl.abs_diff(target_cyl);
        let command = self.timings.command_overhead;
        let seek = self.seek.time(distance);

        // Rotational latency: the spindle turns continuously; wait for the
        // first target sector to come under the head after command+seek.
        let rot = Duration::from_secs_f64(self.geom.rotation_secs());
        let ready_at = now + command + seek;
        let spindle_angle = (ready_at.as_nanos() % rot.as_nanos()) as f64 / rot.as_nanos() as f64;
        let target_angle = self.geom.angle_of(block);
        let mut wait = target_angle - spindle_angle;
        if wait < 0.0 {
            wait += 1.0;
        }
        let rotation = rot.mul_f64(wait);

        // Media transfer at the zone's rate, plus head/cylinder switches.
        let mut transfer = Duration::ZERO;
        let mut remaining = nblocks as u64;
        let mut cur_block = block;
        while remaining > 0 {
            let cyl = self.geom.cylinder_of(cur_block);
            let spt = self.geom.sectors_per_track(cyl) as u64;
            let rate = self.geom.transfer_rate_at(cyl);
            let within_cyl = cur_block - self.geom.first_block_of(cyl);
            let track_left = spt - (within_cyl % spt);
            let take = remaining.min(track_left);
            transfer += Duration::from_secs_f64(take as f64 * BLOCK_SIZE as f64 / rate);
            remaining -= take;
            cur_block += take;
            if remaining > 0 {
                let next_cyl = self.geom.cylinder_of(cur_block);
                transfer += if next_cyl != cyl {
                    self.timings.cyl_switch
                } else {
                    self.timings.head_switch
                };
            }
        }

        ServiceBreakdown {
            command,
            seek,
            rotation,
            transfer,
        }
    }

    fn start_next(&mut self, now: Instant) -> Option<Instant> {
        debug_assert!(self.inflight.is_none());
        // Real-time queue has strict priority.
        let pending = self
            .rt_queue
            .pop_next(self.head_cyl)
            .or_else(|| self.normal_queue.pop_next(self.head_cyl))?;
        let req = pending.item;
        if let Some(f) = &self.faults {
            if f.volume_down(now) {
                self.down = true;
            }
        }
        let (breakdown, failed) = if self.down {
            // A dead volume answers each command with a fast error; the
            // head never moves and no media time is spent.
            let b = ServiceBreakdown {
                command: ERROR_LATENCY,
                seek: Duration::ZERO,
                rotation: Duration::ZERO,
                transfer: Duration::ZERO,
            };
            (b, true)
        } else {
            let mut b = self.service_breakdown(now, self.head_cyl, req.block, req.nblocks);
            let mut failed = false;
            if let Some(f) = &mut self.faults {
                // Retry stalls show up as extra rotational/positioning
                // time; a media error pays them and then fails.
                let fault = f.next_op();
                b.rotation += fault.delay;
                failed = fault.media_error;
            }
            let end_block = req.block + req.nblocks as u64 - 1;
            self.head_cyl = self.geom.cylinder_of(end_block);
            (b, failed)
        };
        let finishes_at = now + breakdown.total();
        self.stats.busy += breakdown.total();
        self.stats.seek_time += breakdown.seek;
        self.stats.rotation_time += breakdown.rotation;
        self.stats.transfer_time += breakdown.transfer;

        self.inflight = Some(Inflight {
            req,
            submitted_at: pending.submitted_at,
            started_at: now,
            finishes_at,
            breakdown,
            failed,
        });
        Some(finishes_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::DiskGeometry;

    type Dev = DiskDevice<u32>;

    fn small_dev() -> Dev {
        // 100 cylinders, 2 heads, 100 sectors/track, 6000 rpm (10 ms/rev).
        DiskDevice::new(
            DiskGeometry::uniform(100, 2, 100, 6000),
            SeekModel::from_min_max(0.001, 0.010, 100),
            DiskTimings::zero(),
        )
    }

    #[test]
    fn idle_submit_starts_immediately() {
        let mut d = small_dev();
        let t0 = Instant::ZERO;
        let fin = d.submit(t0, DiskRequest::read(0, 1, 1));
        assert!(fin.is_some());
        assert!(d.is_busy());
        let (done, next) = d.complete(fin.unwrap());
        assert_eq!(done.req.tag, 1);
        assert!(next.is_none());
        assert!(!d.is_busy());
    }

    #[test]
    fn busy_submit_queues() {
        let mut d = small_dev();
        let t0 = Instant::ZERO;
        let fin1 = d.submit(t0, DiskRequest::read(0, 1, 1)).unwrap();
        let fin2 = d.submit(t0, DiskRequest::read(1000, 1, 2));
        assert!(fin2.is_none());
        assert_eq!(d.queue_depths(), (0, 1));
        let (done1, next) = d.complete(fin1);
        assert_eq!(done1.req.tag, 1);
        let fin2 = next.expect("queued op should start");
        let (done2, _) = d.complete(fin2);
        assert_eq!(done2.req.tag, 2);
    }

    #[test]
    fn rt_queue_has_priority() {
        let mut d = small_dev();
        let t0 = Instant::ZERO;
        let fin1 = d.submit(t0, DiskRequest::read(0, 1, 1)).unwrap();
        d.submit(t0, DiskRequest::read(500, 1, 2));
        d.submit(t0, DiskRequest::rt_read(9000, 1, 3));
        let (_, next) = d.complete(fin1);
        let (done, next2) = d.complete(next.unwrap());
        assert_eq!(done.req.tag, 3, "real-time request must jump the queue");
        let (done, _) = d.complete(next2.unwrap());
        assert_eq!(done.req.tag, 2);
    }

    #[test]
    fn service_time_grows_with_distance() {
        let d = small_dev();
        let near = d.service_preview(Instant::ZERO, 0, 1);
        // Block on the far side of the disk.
        let far_block = d.geometry().first_block_of(99);
        let far = d.service_preview(Instant::ZERO, far_block, 1);
        assert!(far.seek > near.seek);
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let d = small_dev();
        let one = d.service_preview(Instant::ZERO, 0, 1).transfer;
        let many = d.service_preview(Instant::ZERO, 0, 100).transfer;
        assert!(many > one * 50);
    }

    #[test]
    fn rotation_below_one_revolution() {
        let d = small_dev();
        let rev = Duration::from_secs_f64(d.geometry().rotation_secs());
        for blk in [0u64, 7, 55, 120, 9999] {
            let b = d.service_preview(Instant::from_nanos(12345), blk, 1);
            assert!(b.rotation < rev, "rotation {:?} >= rev", b.rotation);
        }
    }

    #[test]
    fn head_moves_to_end_of_transfer() {
        let mut d = small_dev();
        let t0 = Instant::ZERO;
        // 100 cyl * 200 blk/cyl; a 400-block read from 0 ends in cylinder 1.
        let fin = d.submit(t0, DiskRequest::read(0, 400, 1)).unwrap();
        d.complete(fin);
        assert_eq!(d.head_cyl(), 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = small_dev();
        let t0 = Instant::ZERO;
        let fin = d.submit(t0, DiskRequest::rt_read(0, 16, 1)).unwrap();
        let (_, _) = d.complete(fin);
        let fin = d.submit(fin, DiskRequest::read(0, 16, 2)).unwrap();
        let (_, _) = d.complete(fin);
        assert_eq!(d.stats().ops, (1, 1));
        assert_eq!(d.stats().bytes, (16 * 512, 16 * 512));
        assert!(d.stats().busy > Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_length_request_panics() {
        let mut d = small_dev();
        d.submit(Instant::ZERO, DiskRequest::read(0, 0, 1));
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn oversized_request_panics() {
        let mut d = small_dev();
        let total = d.geometry().total_blocks();
        d.submit(Instant::ZERO, DiskRequest::read(total - 1, 2, 1));
    }

    #[test]
    #[should_panic(expected = "nothing in flight")]
    fn complete_when_idle_panics() {
        let mut d = small_dev();
        d.complete(Instant::ZERO);
    }

    #[test]
    fn cscan_order_between_queued_requests() {
        let mut d = small_dev();
        let t0 = Instant::ZERO;
        // Occupy the device, then queue normal requests out of order.
        let fin = d.submit(t0, DiskRequest::read(0, 1, 0)).unwrap();
        let blk = |cyl: u32| d.geometry().first_block_of(cyl);
        let b50 = blk(50);
        let b10 = blk(10);
        let b90 = blk(90);
        d.submit(t0, DiskRequest::read(b50, 1, 50));
        d.submit(t0, DiskRequest::read(b10, 1, 10));
        d.submit(t0, DiskRequest::read(b90, 1, 90));
        let mut order = Vec::new();
        let (_, mut next) = d.complete(fin);
        while let Some(f) = next {
            let (done, n) = d.complete(f);
            order.push(done.req.tag);
            next = n;
        }
        // Head at cylinder 0 after first op: inward sweep 10, 50, 90.
        assert_eq!(order, vec![10, 50, 90]);
    }

    #[test]
    fn down_volume_fails_fast() {
        let mut d = small_dev();
        d.set_down(true);
        let t0 = Instant::ZERO;
        let fin = d.submit(t0, DiskRequest::rt_read(0, 64, 1)).unwrap();
        assert_eq!(fin, t0 + ERROR_LATENCY, "error returns are fast");
        let (done, _) = d.complete(fin);
        assert!(done.failed);
        assert_eq!(d.stats().bytes.0, 0, "no bytes transfer on failure");
        assert_eq!(d.stats().ops.0, 1, "the op itself is still counted");
    }

    #[test]
    fn set_down_fails_the_inflight_op() {
        let mut d = small_dev();
        let t0 = Instant::ZERO;
        let fin = d.submit(t0, DiskRequest::rt_read(0, 64, 1)).unwrap();
        d.set_down(true);
        // The op still completes at its already-scheduled time, as an
        // error.
        let (done, _) = d.complete(fin);
        assert!(done.failed);
    }

    #[test]
    fn scheduled_volume_failure_via_injector() {
        let mut d = small_dev();
        let mut f = FaultInjector::none(1);
        f.fail_volume_at(Instant::ZERO + Duration::from_secs(1));
        d.set_fault_injector(Some(f));
        let fin = d.submit(Instant::ZERO, DiskRequest::read(0, 8, 1)).unwrap();
        let (done, _) = d.complete(fin);
        assert!(!done.failed, "before the schedule fires");
        let late = Instant::ZERO + Duration::from_secs(2);
        let fin = d.submit(late, DiskRequest::read(0, 8, 2)).unwrap();
        let (done, _) = d.complete(fin);
        assert!(done.failed, "after the schedule fires");
        assert!(d.is_down());
    }

    #[test]
    fn media_error_fails_one_op_only() {
        let mut d = small_dev();
        let mut f = FaultInjector::none(1);
        f.fail_at(2);
        d.set_fault_injector(Some(f));
        let mut now = Instant::ZERO;
        let mut failures = Vec::new();
        for i in 0..3 {
            let fin = d.submit(now, DiskRequest::read(0, 8, i)).unwrap();
            now = fin;
            let (done, _) = d.complete(now);
            failures.push(done.failed);
        }
        assert_eq!(failures, vec![false, true, false]);
        assert!(!d.is_down(), "a media error does not down the volume");
        assert_eq!(d.fault_injector().unwrap().media_errors(), 1);
    }

    #[test]
    fn sequential_read_throughput_is_near_media_rate() {
        // Reading a whole cylinder sequentially should approach the zone's
        // media rate (minus switch overheads).
        let mut d: DiskDevice<u32> = DiskDevice::st32550n();
        let mut now = Instant::ZERO;
        let chunk = 256; // 128 KB.
        let total_blocks = 20_000u64;
        let mut blk = 0u64;
        let start = now;
        while blk < total_blocks {
            let fin = d
                .submit(now, DiskRequest::read(blk, chunk, 0))
                .expect("idle");
            now = fin;
            d.complete(now);
            blk += chunk as u64;
        }
        let secs = now.since(start).as_secs_f64();
        let rate = total_blocks as f64 * 512.0 / secs;
        // Sustained rate should be within a plausible band of 6.5 MB/s
        // (command overhead per 128 KB costs ~10%).
        assert!((4.0e6..8.0e6).contains(&rate), "sequential rate {rate} B/s");
    }
}
