//! The volume layer: a set of independent disks addressed by
//! [`VolumeId`].
//!
//! The paper's server manages one ST32550N, but §4 ("one variation of
//! the system includes several disk devices") anticipates scaling
//! capacity by adding spindles. A [`VolumeSet`] models that variation
//! faithfully to the 1996 hardware: each volume is its own
//! [`DiskDevice`] with its own dual C-SCAN queues, head position,
//! spindle phase, and at most one operation in flight — volumes share
//! nothing and overlap freely, so N volumes give N-way I/O parallelism
//! while every per-disk timing assumption of the admission test still
//! holds per volume.

use cras_sim::Instant;

use crate::device::{DiskDevice, DiskStats};
use crate::request::{Completed, DiskRequest};

/// Identifies one disk within a [`VolumeSet`].
///
/// Volume ids are dense: a set of `n` volumes uses ids `0..n`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VolumeId(pub u32);

impl VolumeId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for VolumeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vol{}", self.0)
    }
}

/// Why [`VolumeSet::try_replace_volume`] refused to swap a device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplaceError {
    /// The old device still has an operation in flight — typically a
    /// fast error return still draining from a downed volume. Its
    /// completion event would fire against the new device (and panic
    /// the single-op state machine), so the swap must wait.
    InFlight,
}

impl std::fmt::Display for ReplaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplaceError::InFlight => write!(f, "an operation is still in flight"),
        }
    }
}

impl std::error::Error for ReplaceError {}

/// A fixed-size array of independent [`DiskDevice`]s.
///
/// The set is purely an addressing layer: submissions and completions
/// name a volume and are forwarded to that device unchanged, so every
/// invariant of the single-disk state machine (strict real-time
/// priority, C-SCAN order, one in-flight op) holds within each volume.
pub struct VolumeSet<T> {
    disks: Vec<DiskDevice<T>>,
}

impl<T> VolumeSet<T> {
    /// Builds a set from pre-configured devices (ids follow Vec order).
    ///
    /// # Panics
    ///
    /// Panics on an empty set.
    pub fn new(disks: Vec<DiskDevice<T>>) -> VolumeSet<T> {
        assert!(!disks.is_empty(), "a volume set needs at least one disk");
        VolumeSet { disks }
    }

    /// `n` identical calibrated ST32550N volumes (the paper's disk).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn st32550n(n: usize) -> VolumeSet<T> {
        assert!(n > 0, "a volume set needs at least one disk");
        VolumeSet::new((0..n).map(|_| DiskDevice::st32550n()).collect())
    }

    /// A heterogeneous set: the first `fast` volumes are ST32550N
    /// mechanics with platter density scaled by `factor` (see
    /// [`DiskGeometry::scaled`](crate::geometry::DiskGeometry::scaled)),
    /// the rest are the stock calibrated disk. Mixing spindle
    /// generations in one array is exactly the case the per-volume
    /// admission test must handle: each volume is admitted against its
    /// own calibrated bandwidth, not a fleet-wide average.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, `fast > n`, or `factor` is not a valid
    /// scale for [`DiskGeometry::scaled`](crate::geometry::DiskGeometry::scaled).
    pub fn st32550n_mixed(n: usize, fast: usize, factor: f64) -> VolumeSet<T> {
        assert!(n > 0, "a volume set needs at least one disk");
        assert!(fast <= n, "fast volume count exceeds set size");
        VolumeSet::new(
            (0..n)
                .map(|v| {
                    if v < fast {
                        crate::device::DiskDevice::new(
                            crate::geometry::DiskGeometry::st32550n().scaled(factor),
                            crate::seek::SeekModel::st32550n_measured(),
                            crate::DiskTimings::st32550n(),
                        )
                    } else {
                        DiskDevice::st32550n()
                    }
                })
                .collect(),
        )
    }

    /// Number of volumes.
    pub fn len(&self) -> usize {
        self.disks.len()
    }

    /// True when the set holds a single volume (the seed configuration).
    pub fn is_empty(&self) -> bool {
        false // Guaranteed non-empty by construction.
    }

    /// All valid volume ids, in order.
    pub fn ids(&self) -> impl Iterator<Item = VolumeId> {
        (0..self.disks.len() as u32).map(VolumeId)
    }

    /// The device behind `vol`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    pub fn volume(&self, vol: VolumeId) -> &DiskDevice<T> {
        &self.disks[vol.index()]
    }

    /// Mutable access to the device behind `vol`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    pub fn volume_mut(&mut self, vol: VolumeId) -> &mut DiskDevice<T> {
        &mut self.disks[vol.index()]
    }

    /// Submits a request to one volume; see [`DiskDevice::submit`].
    pub fn submit(&mut self, vol: VolumeId, now: Instant, req: DiskRequest<T>) -> Option<Instant> {
        self.volume_mut(vol).submit(now, req)
    }

    /// Submits one volume's whole batch in issue order, returning the
    /// completion time of the operation that started (the first request,
    /// and only if the volume was idle — at most one op is ever in
    /// flight per spindle, the rest queue behind it in C-SCAN order).
    /// This is the per-spindle half of the pipelined interval issue
    /// path: the caller hands each volume its batch and every spindle
    /// drains its own chain concurrently.
    pub fn submit_batch(
        &mut self,
        vol: VolumeId,
        now: Instant,
        reqs: impl IntoIterator<Item = DiskRequest<T>>,
    ) -> Option<Instant> {
        let dev = self.volume_mut(vol);
        let mut started = None;
        for req in reqs {
            let at = dev.submit(now, req);
            started = started.or(at);
        }
        started
    }

    /// Completes the in-flight operation on one volume; see
    /// [`DiskDevice::complete`].
    pub fn complete(&mut self, vol: VolumeId, now: Instant) -> (Completed<T>, Option<Instant>) {
        self.volume_mut(vol).complete(now)
    }

    /// True if any volume is servicing an operation.
    pub fn any_busy(&self) -> bool {
        self.disks.iter().any(|d| d.is_busy())
    }

    /// Per-volume outstanding command counts (queued in either class
    /// plus any in-flight operation), indexed by volume id — the
    /// device-side half of the read-steering load signal
    /// ([`DiskDevice::outstanding`]).
    pub fn outstanding_depths(&self) -> Vec<usize> {
        self.disks.iter().map(|d| d.outstanding()).collect()
    }

    /// Marks a volume permanently down: its in-flight operation fails
    /// and all further operations are answered with fast error returns.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    pub fn fail_volume(&mut self, vol: VolumeId) {
        self.volume_mut(vol).set_down(true);
    }

    /// Whether a volume is marked down.
    pub fn is_down(&self, vol: VolumeId) -> bool {
        self.volume(vol).is_down()
    }

    /// Number of volumes not marked down.
    pub fn live_count(&self) -> usize {
        self.disks.iter().filter(|d| !d.is_down()).count()
    }

    /// Swaps in a replacement device for `vol` (a fresh spindle after a
    /// failure), refusing while the old device still has an operation in
    /// flight — its completion event would otherwise fire against the
    /// new device. Error returns on a downed volume drain in
    /// [`ERROR_LATENCY`](crate::device::ERROR_LATENCY) each, so callers
    /// retry until the error queue has emptied. The old device's
    /// statistics are discarded with it.
    pub fn try_replace_volume(
        &mut self,
        vol: VolumeId,
        device: DiskDevice<T>,
    ) -> Result<(), ReplaceError> {
        if self.volume(vol).is_busy() {
            return Err(ReplaceError::InFlight);
        }
        self.disks[vol.index()] = device;
        Ok(())
    }

    /// Panicking wrapper of [`VolumeSet::try_replace_volume`] for callers
    /// that have already drained the volume.
    ///
    /// # Panics
    ///
    /// Panics if the old device still has an operation in flight.
    pub fn replace_volume(&mut self, vol: VolumeId, device: DiskDevice<T>) {
        if let Err(e) = self.try_replace_volume(vol, device) {
            panic!("cannot replace {vol}: {e}");
        }
    }

    /// Statistics summed across all volumes.
    pub fn total_stats(&self) -> DiskStats {
        let mut total = DiskStats::default();
        for d in &self.disks {
            let s = d.stats();
            total.ops.0 += s.ops.0;
            total.ops.1 += s.ops.1;
            total.bytes.0 += s.bytes.0;
            total.bytes.1 += s.bytes.1;
            total.busy += s.busy;
            total.seek_time += s.seek_time;
            total.rotation_time += s.rotation_time;
            total.transfer_time += s.transfer_time;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::DiskGeometry;
    use crate::seek::SeekModel;
    use crate::DiskTimings;

    fn small() -> DiskDevice<u32> {
        DiskDevice::new(
            DiskGeometry::uniform(100, 2, 100, 6000),
            SeekModel::from_min_max(0.001, 0.010, 100),
            DiskTimings::zero(),
        )
    }

    #[test]
    fn volumes_are_independent() {
        let mut set = VolumeSet::new(vec![small(), small()]);
        let t0 = Instant::ZERO;
        // Both volumes accept an op immediately: neither sees the other's
        // in-flight state.
        let f0 = set.submit(VolumeId(0), t0, DiskRequest::read(0, 1, 10));
        let f1 = set.submit(VolumeId(1), t0, DiskRequest::read(0, 1, 11));
        assert!(f0.is_some() && f1.is_some());
        assert!(set.volume(VolumeId(0)).is_busy());
        assert!(set.volume(VolumeId(1)).is_busy());
        let (done0, _) = set.complete(VolumeId(0), f0.unwrap());
        let (done1, _) = set.complete(VolumeId(1), f1.unwrap());
        assert_eq!((done0.req.tag, done1.req.tag), (10, 11));
        assert!(!set.any_busy());
    }

    #[test]
    fn queues_do_not_cross_volumes() {
        let mut set = VolumeSet::new(vec![small(), small()]);
        let t0 = Instant::ZERO;
        let f0 = set
            .submit(VolumeId(0), t0, DiskRequest::read(0, 1, 1))
            .unwrap();
        // A second request to volume 0 queues there, volume 1 stays idle.
        assert!(set
            .submit(VolumeId(0), t0, DiskRequest::read(500, 1, 2))
            .is_none());
        assert_eq!(set.volume(VolumeId(0)).queue_depths(), (0, 1));
        assert_eq!(set.volume(VolumeId(1)).queue_depths(), (0, 0));
        assert!(!set.volume(VolumeId(1)).is_busy());
        let (_, next) = set.complete(VolumeId(0), f0);
        assert!(next.is_some(), "queued op starts on its own volume");
    }

    #[test]
    fn total_stats_sum_across_volumes() {
        let mut set = VolumeSet::new(vec![small(), small()]);
        let t0 = Instant::ZERO;
        for v in [VolumeId(0), VolumeId(1)] {
            let fin = set.submit(v, t0, DiskRequest::rt_read(0, 16, 1)).unwrap();
            set.complete(v, fin);
        }
        let total = set.total_stats();
        assert_eq!(total.ops, (2, 0));
        assert_eq!(total.bytes.0, 2 * 16 * 512);
    }

    #[test]
    fn single_volume_set_matches_bare_device() {
        // N=1 must be a pure pass-through: same completion times as a
        // bare DiskDevice fed the same sequence.
        let mut set: VolumeSet<u32> = VolumeSet::st32550n(1);
        let mut dev: DiskDevice<u32> = DiskDevice::st32550n();
        let mut now_set = Instant::ZERO;
        let mut now_dev = Instant::ZERO;
        for (i, blk) in [0u64, 9_000, 40_000, 123].into_iter().enumerate() {
            let fs = set
                .submit(
                    VolumeId(0),
                    now_set,
                    DiskRequest::rt_read(blk, 64, i as u32),
                )
                .unwrap();
            let fd = dev
                .submit(now_dev, DiskRequest::rt_read(blk, 64, i as u32))
                .unwrap();
            assert_eq!(fs, fd);
            set.complete(VolumeId(0), fs);
            dev.complete(fd);
            now_set = fs;
            now_dev = fd;
        }
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn empty_set_panics() {
        let _: VolumeSet<u32> = VolumeSet::new(vec![]);
    }

    #[test]
    fn submit_batch_starts_first_and_queues_the_rest() {
        let mut set = VolumeSet::new(vec![small(), small()]);
        let t0 = Instant::ZERO;
        let f0 = set.submit_batch(
            VolumeId(0),
            t0,
            [
                DiskRequest::rt_read(0, 1, 1),
                DiskRequest::rt_read(500, 1, 2),
                DiskRequest::rt_read(900, 1, 3),
            ],
        );
        assert!(f0.is_some(), "idle volume starts its first request");
        assert_eq!(set.volume(VolumeId(0)).queue_depths(), (2, 0));
        // A batch handed to a busy volume queues entirely.
        let f1 = set.submit_batch(VolumeId(0), t0, [DiskRequest::rt_read(100, 1, 4)]);
        assert!(f1.is_none());
        assert_eq!(set.volume(VolumeId(1)).queue_depths(), (0, 0));
        // The chain drains in order, one op in flight at a time.
        let mut next = Some(f0.unwrap());
        let mut tags = Vec::new();
        while let Some(at) = next {
            let (done, n) = set.complete(VolumeId(0), at);
            tags.push(done.req.tag);
            next = n;
        }
        assert_eq!(tags.len(), 4, "batch conserved");
    }

    #[test]
    fn try_replace_refuses_while_an_op_is_in_flight() {
        let mut set = VolumeSet::new(vec![small(), small()]);
        let t0 = Instant::ZERO;
        let fin = set
            .submit(VolumeId(0), t0, DiskRequest::read(0, 1, 1))
            .unwrap();
        assert_eq!(
            set.try_replace_volume(VolumeId(0), small()),
            Err(ReplaceError::InFlight)
        );
        set.complete(VolumeId(0), fin);
        assert_eq!(set.try_replace_volume(VolumeId(0), small()), Ok(()));
        assert_eq!(set.volume(VolumeId(0)).stats().total_ops(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot replace vol0")]
    fn replace_volume_panics_while_busy() {
        let mut set = VolumeSet::new(vec![small()]);
        set.submit(VolumeId(0), Instant::ZERO, DiskRequest::read(0, 1, 1));
        set.replace_volume(VolumeId(0), small());
    }

    #[test]
    fn mixed_set_puts_fast_spindles_first() {
        let set: VolumeSet<u32> = VolumeSet::st32550n_mixed(3, 1, 1.5);
        let fast = set.volume(VolumeId(0)).geometry().avg_transfer_rate();
        let slow = set.volume(VolumeId(1)).geometry().avg_transfer_rate();
        assert!((fast / slow - 1.5).abs() < 0.01, "ratio {}", fast / slow);
        assert_eq!(
            set.volume(VolumeId(1)).geometry().zones,
            set.volume(VolumeId(2)).geometry().zones
        );
        // fast = 0 degenerates to the homogeneous preset.
        let plain: VolumeSet<u32> = VolumeSet::st32550n_mixed(2, 0, 2.0);
        assert_eq!(
            plain.volume(VolumeId(0)).geometry().zones,
            DiskGeometry::st32550n().zones
        );
    }
}
