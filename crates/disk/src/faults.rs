//! Fault injection: transient slowdowns, per-operation media errors, and
//! permanent volume failures.
//!
//! Real drives occasionally retry a read (thermal recalibration, ECC
//! retries, bad-sector remapping) and stall the operation for tens of
//! milliseconds. The paper's deadline-manager thread exists exactly for
//! such events ("executes the recovery action from a missed deadline");
//! injecting them exercises that path and the time-driven buffer's
//! tolerance. Beyond transient stalls, the redundancy subsystem needs two
//! harder failure modes:
//!
//! * **media errors** — a specific operation exhausts its retries and
//!   returns failure ([`FaultInjector::fail_at`]);
//! * **volume loss** — the whole spindle drops off the bus at a scheduled
//!   time ([`FaultInjector::fail_volume_at`]); every operation from then
//!   on fails until a replacement volume is attached.
//!
//! All faults are deterministic: a seeded PRNG decides transient stalls,
//! and the permanent-failure schedule is explicit, so runs reproduce bit
//! for bit.

use std::collections::BTreeSet;

use cras_sim::{Duration, Instant, Rng};

/// What the injector decided for one operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// Extra positioning delay (retries); zero for a clean operation.
    pub delay: Duration,
    /// The operation fails with a media error after its retries.
    pub media_error: bool,
}

impl Fault {
    /// A clean operation: no delay, no error.
    pub const NONE: Fault = Fault {
        delay: Duration::ZERO,
        media_error: false,
    };
}

/// A deterministic fault injector.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    /// Probability that an operation takes a retry penalty.
    prob: f64,
    /// Penalty added to a faulted operation (e.g. one or two extra
    /// revolutions plus recalibration).
    penalty: Duration,
    rng: Rng,
    injected: u64,
    ops_seen: u64,
    /// Operation ordinals (1-based, by [`FaultInjector::ops_seen`]) that
    /// return a media error.
    fail_ops: BTreeSet<u64>,
    media_errors: u64,
    /// When the whole volume fails permanently.
    volume_fail_at: Option<Instant>,
}

impl FaultInjector {
    /// Creates an injector.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1]`.
    pub fn new(prob: f64, penalty: Duration, seed: u64) -> FaultInjector {
        assert!((0.0..=1.0).contains(&prob), "bad fault probability");
        FaultInjector {
            prob,
            penalty,
            rng: Rng::new(seed),
            injected: 0,
            ops_seen: 0,
            fail_ops: BTreeSet::new(),
            media_errors: 0,
            volume_fail_at: None,
        }
    }

    /// A typical retry profile: 1% of operations stall ~25 ms (three
    /// revolutions plus recalibration).
    pub fn typical(seed: u64) -> FaultInjector {
        FaultInjector::new(0.01, Duration::from_millis(25), seed)
    }

    /// An injector with no transient stalls — a carrier for the
    /// deterministic permanent-failure schedule only.
    pub fn none(seed: u64) -> FaultInjector {
        FaultInjector::new(0.0, Duration::ZERO, seed)
    }

    /// Schedules a media error on the `op_n`-th operation this injector
    /// sees (1-based). Idempotent per ordinal.
    pub fn fail_at(&mut self, op_n: u64) {
        self.fail_ops.insert(op_n);
    }

    /// Schedules permanent volume failure at time `t`. Every operation
    /// started at or after `t` fails until the volume is replaced.
    pub fn fail_volume_at(&mut self, t: Instant) {
        self.volume_fail_at = Some(t);
    }

    /// Whether the permanent-failure schedule has fired by `now`.
    pub fn volume_down(&self, now: Instant) -> bool {
        self.volume_fail_at.is_some_and(|t| now >= t)
    }

    /// Decides the fault outcome of the next operation.
    pub fn next_op(&mut self) -> Fault {
        self.ops_seen += 1;
        let mut f = Fault::NONE;
        if self.prob > 0.0 && self.rng.chance(self.prob) {
            self.injected += 1;
            f.delay = self.penalty;
        }
        if self.fail_ops.contains(&self.ops_seen) {
            self.media_errors += 1;
            // An error return still pays the retry penalty: the drive
            // retried before giving up.
            f.delay = self.penalty;
            f.media_error = true;
        }
        f
    }

    /// Decides the extra delay (possibly zero) for the next operation.
    ///
    /// Shorthand for [`FaultInjector::next_op`] when the caller only
    /// models transient stalls.
    pub fn sample(&mut self) -> Duration {
        self.next_op().delay
    }

    /// Operations that took the transient penalty.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Media errors returned.
    pub fn media_errors(&self) -> u64 {
        self.media_errors
    }

    /// Operations observed.
    pub fn ops_seen(&self) -> u64 {
        self.ops_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_never_faults() {
        let mut f = FaultInjector::new(0.0, Duration::from_millis(25), 1);
        for _ in 0..1000 {
            assert_eq!(f.sample(), Duration::ZERO);
        }
        assert_eq!(f.injected(), 0);
        assert_eq!(f.ops_seen(), 1000);
    }

    #[test]
    fn certain_probability_always_faults() {
        let mut f = FaultInjector::new(1.0, Duration::from_millis(10), 2);
        for _ in 0..100 {
            assert_eq!(f.sample(), Duration::from_millis(10));
        }
        assert_eq!(f.injected(), 100);
    }

    #[test]
    fn rate_is_approximately_honoured() {
        let mut f = FaultInjector::new(0.05, Duration::from_millis(25), 3);
        for _ in 0..20_000 {
            f.sample();
        }
        let rate = f.injected() as f64 / f.ops_seen() as f64;
        assert!((rate - 0.05).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut f = FaultInjector::new(0.1, Duration::from_millis(5), seed);
            (0..64).map(|_| f.sample().as_nanos()).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    #[should_panic(expected = "bad fault probability")]
    fn invalid_probability_panics() {
        FaultInjector::new(1.5, Duration::ZERO, 1);
    }

    #[test]
    fn scheduled_media_error_fires_once() {
        let mut f = FaultInjector::none(7);
        f.fail_at(3);
        let outcomes: Vec<Fault> = (0..5).map(|_| f.next_op()).collect();
        assert!(!outcomes[0].media_error && !outcomes[1].media_error);
        assert!(outcomes[2].media_error, "third op must fail");
        assert!(!outcomes[3].media_error && !outcomes[4].media_error);
        assert_eq!(f.media_errors(), 1);
        // No transient penalty configured, so the error costs no delay.
        assert_eq!(outcomes[2].delay, Duration::ZERO);
    }

    #[test]
    fn media_error_pays_retry_penalty() {
        let mut f = FaultInjector::new(0.0, Duration::from_millis(25), 7);
        f.fail_at(1);
        let o = f.next_op();
        assert!(o.media_error);
        assert_eq!(o.delay, Duration::from_millis(25));
    }

    #[test]
    fn volume_failure_schedule() {
        let mut f = FaultInjector::none(1);
        assert!(!f.volume_down(Instant::ZERO));
        f.fail_volume_at(Instant::ZERO + Duration::from_secs(5));
        assert!(!f.volume_down(Instant::ZERO + Duration::from_secs(4)));
        assert!(f.volume_down(Instant::ZERO + Duration::from_secs(5)));
        assert!(f.volume_down(Instant::ZERO + Duration::from_secs(6)));
    }
}
