//! Fault injection: transient per-operation slowdowns.
//!
//! Real drives occasionally retry a read (thermal recalibration, ECC
//! retries, bad-sector remapping) and stall the operation for tens of
//! milliseconds. The paper's deadline-manager thread exists exactly for
//! such events ("executes the recovery action from a missed deadline");
//! injecting them exercises that path and the time-driven buffer's
//! tolerance.
//!
//! Faults are deterministic: a seeded PRNG decides, per operation,
//! whether to add a retry penalty.

use cras_sim::{Duration, Rng};

/// A transient-slowdown injector.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    /// Probability that an operation takes a retry penalty.
    prob: f64,
    /// Penalty added to a faulted operation (e.g. one or two extra
    /// revolutions plus recalibration).
    penalty: Duration,
    rng: Rng,
    injected: u64,
    ops_seen: u64,
}

impl FaultInjector {
    /// Creates an injector.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1]`.
    pub fn new(prob: f64, penalty: Duration, seed: u64) -> FaultInjector {
        assert!((0.0..=1.0).contains(&prob), "bad fault probability");
        FaultInjector {
            prob,
            penalty,
            rng: Rng::new(seed),
            injected: 0,
            ops_seen: 0,
        }
    }

    /// A typical retry profile: 1% of operations stall ~25 ms (three
    /// revolutions plus recalibration).
    pub fn typical(seed: u64) -> FaultInjector {
        FaultInjector::new(0.01, Duration::from_millis(25), seed)
    }

    /// Decides the extra delay (possibly zero) for the next operation.
    pub fn sample(&mut self) -> Duration {
        self.ops_seen += 1;
        if self.prob > 0.0 && self.rng.chance(self.prob) {
            self.injected += 1;
            self.penalty
        } else {
            Duration::ZERO
        }
    }

    /// Operations that took the penalty.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Operations observed.
    pub fn ops_seen(&self) -> u64 {
        self.ops_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_never_faults() {
        let mut f = FaultInjector::new(0.0, Duration::from_millis(25), 1);
        for _ in 0..1000 {
            assert_eq!(f.sample(), Duration::ZERO);
        }
        assert_eq!(f.injected(), 0);
        assert_eq!(f.ops_seen(), 1000);
    }

    #[test]
    fn certain_probability_always_faults() {
        let mut f = FaultInjector::new(1.0, Duration::from_millis(10), 2);
        for _ in 0..100 {
            assert_eq!(f.sample(), Duration::from_millis(10));
        }
        assert_eq!(f.injected(), 100);
    }

    #[test]
    fn rate_is_approximately_honoured() {
        let mut f = FaultInjector::new(0.05, Duration::from_millis(25), 3);
        for _ in 0..20_000 {
            f.sample();
        }
        let rate = f.injected() as f64 / f.ops_seen() as f64;
        assert!((rate - 0.05).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut f = FaultInjector::new(0.1, Duration::from_millis(5), seed);
            (0..64).map(|_| f.sample().as_nanos()).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    #[should_panic(expected = "bad fault probability")]
    fn invalid_probability_panics() {
        FaultInjector::new(1.5, Duration::ZERO, 1);
    }
}
