//! Per-client delivery sessions with bounded playout buffers.
//!
//! A session tracks every frame the server handed to the network in
//! send order (`ord` 0, 1, 2, …), whether it has arrived, and a playout
//! cursor that consumes frames strictly in order at deadline instants.
//! The playout anchor is set at the session's first transmission —
//! playout of that frame happens `playout_delay` later, and every
//! subsequent frame at its media timestamp scaled by `drain_scale`
//! (a scale above 1.0 models a client that consumes slower than the
//! presentation rate — the classic misbehaving receiver).
//!
//! The buffer gauge counts arrived-but-unplayed bytes. Crossing the
//! high watermark asks the sys layer to *park* the feeding stream
//! (credit exhausted); draining below the low watermark while parked
//! asks it to resume (credit restored). Between the two, the client's
//! slack is exactly the buffered data — which is also the window the
//! NAK/retransmit machinery has to repair a loss in.

use std::collections::{BTreeMap, BTreeSet};

use cras_sim::{Duration, Instant};

/// Configuration of one delivery session.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SessionCfg {
    /// Startup buffering: playout of the first transmitted frame
    /// happens this long after the transmission.
    pub playout_delay: Duration,
    /// Park the feeding stream when the playout buffer exceeds this
    /// many bytes.
    pub high_watermark: u64,
    /// Resume a parked stream when the buffer drains below this.
    pub low_watermark: u64,
    /// Real seconds per media second of the client's consumption
    /// (1.0 = nominal; 1.25 = a client playing 25% slow).
    pub drain_scale: f64,
}

impl Default for SessionCfg {
    fn default() -> SessionCfg {
        SessionCfg {
            playout_delay: Duration::from_millis(500),
            high_watermark: u64::MAX,
            low_watermark: 0,
            drain_scale: 1.0,
        }
    }
}

/// One frame handed to the network, keyed by send ordinal.
#[derive(Clone, Copy, Debug)]
pub struct SentFrame {
    /// Frame index in the movie's chunk table.
    pub frame: u32,
    /// Frame size in bytes.
    pub bytes: u64,
    /// Media timestamp of the frame.
    pub ts: Duration,
    /// Whether a copy has arrived at the client.
    pub arrived: bool,
}

/// Per-session delivery counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SessionStats {
    /// Frames this session transmitted itself (packets enqueued,
    /// retransmits not counted).
    pub frames_sent: u64,
    /// Frames suppressed because a multicast group packet carries them.
    pub frames_suppressed: u64,
    /// Frames played on time.
    pub frames_played: u64,
    /// Bytes played.
    pub bytes_played: u64,
    /// Frames that missed their playout deadline — the counted drops.
    pub late_frames: u64,
    /// Frames that arrived after their playout deadline but before the
    /// cursor passed them (played late by the chain's catch-up).
    pub arrived_late: u64,
    /// Total arrival lateness of those frames, nanoseconds.
    pub lateness_ns: u64,
    /// Arrivals discarded because playout had already skipped the frame.
    pub discarded_late: u64,
    /// Duplicate arrivals ignored.
    pub dup_arrivals: u64,
    /// NAKs issued on gap detection.
    pub naks_sent: u64,
    /// Retransmissions enqueued for this session.
    pub retransmits: u64,
    /// Backpressure parks of the feeding stream.
    pub parks: u64,
    /// Resumes after a backpressure park.
    pub resumes: u64,
    /// High-water mark of buffered bytes.
    pub max_buffered: u64,
    /// `(frame, playout instant ns, late)` per playout event, in order —
    /// the delivery fingerprint the equivalence property tests compare.
    pub playout_log: Vec<(u32, u64, bool)>,
}

/// One client's delivery session.
#[derive(Clone, Debug)]
pub struct Session {
    /// Client id (equal to the sys layer's `ClientId`).
    pub id: u32,
    /// Link this session transmits on.
    pub link: u32,
    /// Configuration.
    pub cfg: SessionCfg,
    /// Playout anchor: real time of media time zero under the drain
    /// scale. `None` until the first transmission (and again after a
    /// rebuffer — the next transmission re-anchors).
    pub anchor: Option<Instant>,
    /// Next send ordinal.
    pub next_ord: u32,
    /// Next ordinal to play.
    pub cursor: u32,
    /// Whether a playout event for `cursor` is outstanding.
    pub chain_armed: bool,
    /// Whether a net-initiated park of the feeding stream is in force.
    pub paused: bool,
    /// Arrived-but-unplayed bytes.
    pub buffered: u64,
    /// Frames handed to the network, by ordinal; pruned at playout.
    pub sent: BTreeMap<u32, SentFrame>,
    /// Frame index → ordinal, for delivering group packets; pruned with
    /// `sent`.
    pub ord_of_frame: BTreeMap<u32, u32>,
    /// Group-packet payloads that arrived before this member's own
    /// transition registered the frame (decode still in flight).
    pub early: BTreeSet<u32>,
    /// Ordinals already NAK'd (one NAK per loss).
    pub naked: BTreeSet<u32>,
    /// Whether a resume-retry timer is outstanding.
    pub retry_armed: bool,
    /// Counters.
    pub stats: SessionStats,
}

impl Session {
    /// Creates an idle session on `link`.
    pub fn new(id: u32, link: u32, cfg: SessionCfg) -> Session {
        assert!(cfg.drain_scale > 0.0, "non-positive drain scale");
        assert!(
            cfg.low_watermark <= cfg.high_watermark,
            "watermarks inverted"
        );
        Session {
            id,
            link,
            cfg,
            anchor: None,
            next_ord: 0,
            cursor: 0,
            chain_armed: false,
            paused: false,
            buffered: 0,
            sent: BTreeMap::new(),
            ord_of_frame: BTreeMap::new(),
            early: BTreeSet::new(),
            naked: BTreeSet::new(),
            retry_armed: false,
            stats: SessionStats::default(),
        }
    }

    /// Playout deadline of a frame at media timestamp `ts` under the
    /// current anchor.
    ///
    /// # Panics
    ///
    /// Panics if the session has no anchor yet.
    pub fn deadline(&self, ts: Duration) -> Instant {
        self.anchor.expect("session has no playout anchor") + ts.mul_f64(self.cfg.drain_scale)
    }

    /// Registers a frame handed to the network, assigning the next
    /// ordinal. Sets the anchor on the first registration (and after a
    /// rebuffer) so this frame's playout lands `playout_delay` ahead.
    pub fn register(&mut self, frame: u32, bytes: u64, ts: Duration, now: Instant) -> u32 {
        if self.anchor.is_none() {
            // Anchor so this frame plays `playout_delay` from now. A
            // mid-stream (re-)anchor whose scaled lead exceeds the
            // elapsed sim time clamps at time zero rather than
            // underflowing — the chain simply starts as early as the
            // timeline allows.
            let base = now + self.cfg.playout_delay;
            let lead = ts.mul_f64(self.cfg.drain_scale);
            self.anchor = Some(if base.since(Instant::ZERO) >= lead {
                base - lead
            } else {
                Instant::ZERO
            });
        }
        let ord = self.next_ord;
        self.next_ord += 1;
        self.sent.insert(
            ord,
            SentFrame {
                frame,
                bytes,
                ts,
                arrived: false,
            },
        );
        self.ord_of_frame.insert(frame, ord);
        // Frames below this one can no longer register (sends are in
        // frame order), so any early group-packet payloads for them
        // belong to server-side drops and will never be claimed.
        self.early.retain(|&f| f >= frame);
        ord
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_registration_anchors_playout_delay_ahead() {
        let mut s = Session::new(1, 0, SessionCfg::default());
        let now = Instant::ZERO + Duration::from_secs(3);
        s.register(0, 1000, Duration::ZERO, now);
        assert_eq!(s.deadline(Duration::ZERO), now + Duration::from_millis(500));
        assert_eq!(
            s.deadline(Duration::from_secs(1)),
            now + Duration::from_millis(1500)
        );
    }

    #[test]
    fn drain_scale_stretches_deadlines() {
        let cfg = SessionCfg {
            drain_scale: 2.0,
            ..SessionCfg::default()
        };
        let mut s = Session::new(1, 0, cfg);
        let now = Instant::ZERO;
        s.register(0, 1000, Duration::ZERO, now);
        // Media second 1 plays at real second 2 (plus the delay).
        assert_eq!(
            s.deadline(Duration::from_secs(1)),
            now + Duration::from_millis(500) + Duration::from_secs(2)
        );
    }

    #[test]
    fn mid_stream_anchor_accounts_for_the_first_ts() {
        let mut s = Session::new(1, 0, SessionCfg::default());
        let now = Instant::ZERO + Duration::from_secs(10);
        // First transmission is frame 90 at media ts 3 s (a resume).
        s.register(90, 1000, Duration::from_secs(3), now);
        assert_eq!(
            s.deadline(Duration::from_secs(3)),
            now + Duration::from_millis(500)
        );
    }

    #[test]
    fn anchor_clamps_at_time_zero_instead_of_underflowing() {
        let cfg = SessionCfg {
            drain_scale: 2.0,
            ..SessionCfg::default()
        };
        let mut s = Session::new(1, 0, cfg);
        // A 20 s scaled lead with only 1 s elapsed cannot anchor in
        // negative time.
        let now = Instant::ZERO + Duration::from_secs(1);
        s.register(300, 1000, Duration::from_secs(10), now);
        assert_eq!(s.anchor, Some(Instant::ZERO));
    }

    #[test]
    #[should_panic(expected = "watermarks inverted")]
    fn inverted_watermarks_panic() {
        let cfg = SessionCfg {
            high_watermark: 10,
            low_watermark: 20,
            ..SessionCfg::default()
        };
        Session::new(1, 0, cfg);
    }
}
