//! The delivery state machine: multicast fan-out, NAK/retransmit,
//! playout chains and backpressure, over paced shared links.
//!
//! `NetDelivery` is pure in the same sense as `cras-core`: no engine,
//! no clock. Every entry point takes `now` and appends [`NetEffect`]
//! values describing the timers and control transfers it wants; the
//! caller (normally `cras-sys`, or the mini event pump in the unit
//! tests) owns the event loop. Identical call sequences therefore
//! produce identical effect sequences — the whole subsystem replays
//! bit for bit, which the determinism properties lean on.
//!
//! # Lifecycle of a frame
//!
//! 1. The server decodes a frame for a stream and calls
//!    [`NetDelivery::send_frame`]. The session registers the frame
//!    under the next send ordinal (anchoring its playout clock on the
//!    very first registration).
//! 2. Unless the session is a multicast group member (the leader's
//!    packet carries its copy), a packet is queued on the session's
//!    link, EDF by playout deadline. The link serializes one packet at
//!    a time; a fault injector may drop, duplicate or delay it.
//! 3. Each arrival delivers the frame to every member listed in the
//!    packet. A member seeing a gap below the arrival NAKs the missing
//!    ordinals once; a NAK triggers a unicast retransmission that
//!    competes in the same EDF queue (its earlier deadline usually
//!    wins).
//! 4. A playout chain per session consumes ordinals strictly in order
//!    at their deadlines. A frame that has not arrived by its deadline
//!    is a counted late frame — the stream never stalls, exactly like
//!    a viewer that keeps the clock running over a glitch.
//! 5. Crossing the buffer's high watermark emits [`NetEffect::Park`]
//!    (feeding stream should release its disk share); draining below
//!    the low watermark emits [`NetEffect::Resume`].

use std::collections::{BTreeMap, BTreeSet};

use cras_sim::{Duration, Instant};

use crate::faults::{NetFault, NetFaultInjector, NetFaults};
use crate::link::{LinkParams, PacedLink};
use crate::session::{Session, SessionCfg};

/// A timer or control transfer requested by the delivery machine.
///
/// Timed variants carry the absolute instant they should fire at;
/// `Park`/`Resume` are immediate requests to the stream layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum NetEffect {
    /// The link transmitter finishes serializing at `at`.
    LinkFree {
        /// When the transmitter frees up.
        at: Instant,
        /// Link index.
        link: u32,
    },
    /// A copy of packet `pkt` reaches the clients at `at`.
    Arrive {
        /// Arrival instant.
        at: Instant,
        /// Link index.
        link: u32,
        /// Packet id.
        pkt: u64,
    },
    /// Client `session`'s NAK for ordinal `ord` reaches the server at
    /// `at`.
    Nak {
        /// When the NAK lands server-side.
        at: Instant,
        /// Session (client) id.
        session: u32,
        /// Missing send ordinal.
        ord: u32,
    },
    /// Session `session` plays (or declares late) ordinal `ord` at `at`.
    Playout {
        /// Playout deadline instant.
        at: Instant,
        /// Session (client) id.
        session: u32,
        /// Ordinal to consume.
        ord: u32,
    },
    /// The session's buffer crossed the high watermark: park the
    /// feeding stream.
    Park {
        /// Session (client) id.
        session: u32,
    },
    /// The session's buffer drained below the low watermark: resume the
    /// feeding stream.
    Resume {
        /// Session (client) id.
        session: u32,
    },
}

/// One queued or in-flight transmission.
#[derive(Clone, Debug)]
struct Packet {
    /// Frame index carried.
    frame: u32,
    /// Payload bytes.
    bytes: u64,
    /// Sessions this packet delivers to (the sender first; group
    /// members after, in id order).
    members: Vec<u32>,
    /// Whether this is a NAK-driven retransmission.
    retransmit: bool,
    /// When the packet entered the send queue.
    enqueued_at: Instant,
    /// Copies still in flight (set at transmission).
    remaining_arrivals: u32,
}

/// The NPS-style delivery subsystem: sessions, links, groups, packets.
#[derive(Clone, Debug, Default)]
pub struct NetDelivery {
    links: Vec<PacedLink>,
    sessions: BTreeMap<u32, Session>,
    /// Multicast groups: leader client → member clients (leader not
    /// included).
    groups: BTreeMap<u32, BTreeSet<u32>>,
    /// Reverse map: member client → leader client.
    member_of: BTreeMap<u32, u32>,
    /// Whether joined groups share one transmission per link.
    multicast: bool,
    /// Queued and in-flight packets.
    packets: BTreeMap<u64, Packet>,
    next_pkt: u64,
}

impl NetDelivery {
    /// Creates an empty delivery subsystem (no links, unicast mode).
    pub fn new() -> NetDelivery {
        NetDelivery::default()
    }

    /// Adds a link and returns its index.
    pub fn add_link(&mut self, params: LinkParams) -> u32 {
        self.links.push(PacedLink::new(params));
        (self.links.len() - 1) as u32
    }

    /// Installs (or clears) a deterministic fault injector on a link.
    pub fn set_link_faults(&mut self, link: u32, faults: Option<NetFaults>) {
        self.links[link as usize].faults = faults.map(NetFaultInjector::new);
    }

    /// Enables or disables multicast fan-out for joined groups.
    pub fn set_multicast(&mut self, on: bool) {
        self.multicast = on;
    }

    /// Whether multicast fan-out is enabled.
    pub fn is_multicast(&self) -> bool {
        self.multicast
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Read access to a link.
    pub fn link(&self, link: u32) -> &PacedLink {
        &self.links[link as usize]
    }

    /// Attaches a delivery session for `client` on `link`.
    ///
    /// # Panics
    ///
    /// Panics if the link does not exist or the client already has a
    /// session.
    pub fn attach(&mut self, client: u32, link: u32, cfg: SessionCfg) {
        assert!((link as usize) < self.links.len(), "no such link");
        let prev = self
            .sessions
            .insert(client, Session::new(client, link, cfg));
        assert!(prev.is_none(), "client already attached");
    }

    /// Whether `client` has a delivery session.
    pub fn has_session(&self, client: u32) -> bool {
        self.sessions.contains_key(&client)
    }

    /// Read access to a session.
    pub fn session(&self, client: u32) -> Option<&Session> {
        self.sessions.get(&client)
    }

    /// Iterates sessions in client-id order.
    pub fn sessions(&self) -> impl Iterator<Item = &Session> {
        self.sessions.values()
    }

    /// Aligns `member`'s group membership with the stream layer's view
    /// (`leader` = the client whose stream feeds the joined group, or
    /// `None` when the member plays standalone). Membership only forms
    /// when both sessions exist and share a link — multicast saves
    /// bytes on a shared segment, not across segments.
    pub fn sync_membership(&mut self, member: u32, leader: Option<u32>) {
        let current = self.member_of.get(&member).copied();
        let target = leader.filter(|&l| {
            l != member
                && match (self.sessions.get(&l), self.sessions.get(&member)) {
                    (Some(ls), Some(ms)) => ls.link == ms.link,
                    _ => false,
                }
        });
        if current == target {
            return;
        }
        if let Some(old) = current {
            self.member_of.remove(&member);
            if let Some(g) = self.groups.get_mut(&old) {
                g.remove(&member);
                if g.is_empty() {
                    self.groups.remove(&old);
                }
            }
        }
        if let Some(new) = target {
            self.member_of.insert(member, new);
            self.groups.entry(new).or_default().insert(member);
        }
    }

    /// Hands a decoded frame to the network for `client`.
    ///
    /// In multicast mode a group member's transmission is suppressed —
    /// the leader's packet already lists it as a delivery target — but
    /// the frame still registers on the member's session so its playout
    /// chain and buffer accounting run identically to unicast.
    pub fn send_frame(
        &mut self,
        client: u32,
        frame: u32,
        bytes: u64,
        ts: Duration,
        now: Instant,
        out: &mut Vec<NetEffect>,
    ) {
        if !self.sessions.contains_key(&client) {
            return;
        }
        let suppressed = self.multicast && self.member_of.contains_key(&client);
        let (ord, link_id, claimed_early) = {
            let s = self.sessions.get_mut(&client).expect("checked above");
            let ord = s.register(frame, bytes, ts, now);
            if suppressed {
                s.stats.frames_suppressed += 1;
            } else {
                s.stats.frames_sent += 1;
            }
            (ord, s.link, s.early.remove(&frame))
        };
        if claimed_early {
            // The group packet landed before this member's decode
            // registered the frame; credit the arrival now.
            self.note_arrival(client, ord, now, out);
        }
        if !suppressed {
            let mut members = vec![client];
            if self.multicast {
                if let Some(g) = self.groups.get(&client) {
                    members.extend(g.iter().copied());
                }
            }
            let deadline = self.sessions[&client].deadline(ts);
            if members.len() > 1 {
                self.links[link_id as usize].stats.multicast_saved_bytes +=
                    bytes * (members.len() as u64 - 1);
            }
            let pkt = self.next_pkt;
            self.next_pkt += 1;
            self.packets.insert(
                pkt,
                Packet {
                    frame,
                    bytes,
                    members,
                    retransmit: false,
                    enqueued_at: now,
                    remaining_arrivals: 0,
                },
            );
            self.links[link_id as usize].push(deadline, pkt, bytes);
            self.start_link(link_id, now, out);
        }
        let s = self.sessions.get_mut(&client).expect("checked above");
        arm(s, now, out);
    }

    /// Handles the link transmitter freeing up.
    pub fn on_link_free(&mut self, link: u32, now: Instant, out: &mut Vec<NetEffect>) {
        self.links[link as usize].end_send();
        self.start_link(link, now, out);
    }

    /// Handles one copy of `pkt` arriving at the clients.
    pub fn on_arrive(&mut self, _link: u32, pkt: u64, now: Instant, out: &mut Vec<NetEffect>) {
        let Some(p) = self.packets.get_mut(&pkt) else {
            return;
        };
        p.remaining_arrivals -= 1;
        let frame = p.frame;
        let members = p.members.clone();
        if p.remaining_arrivals == 0 {
            self.packets.remove(&pkt);
        }
        for m in members {
            let ord = {
                let Some(s) = self.sessions.get_mut(&m) else {
                    continue;
                };
                match s.ord_of_frame.get(&frame) {
                    Some(&o) => o,
                    None => {
                        // Decode has not registered the frame on this
                        // member yet (group packets can outrun the CPU).
                        s.early.insert(frame);
                        continue;
                    }
                }
            };
            self.note_arrival(m, ord, now, out);
        }
    }

    /// Handles a NAK for `ord` landing server-side: enqueue a unicast
    /// retransmission unless a copy arrived (or playout passed) in the
    /// meantime.
    pub fn on_nak(&mut self, client: u32, ord: u32, now: Instant, out: &mut Vec<NetEffect>) {
        let (frame, bytes, link_id, deadline) = {
            let Some(s) = self.sessions.get_mut(&client) else {
                return;
            };
            let Some(f) = s.sent.get(&ord) else {
                return;
            };
            if f.arrived {
                return;
            }
            s.stats.retransmits += 1;
            let deadline = s.deadline(f.ts);
            (f.frame, f.bytes, s.link, deadline)
        };
        let pkt = self.next_pkt;
        self.next_pkt += 1;
        self.packets.insert(
            pkt,
            Packet {
                frame,
                bytes,
                members: vec![client],
                retransmit: true,
                enqueued_at: now,
                remaining_arrivals: 0,
            },
        );
        self.links[link_id as usize].push(deadline, pkt, bytes);
        self.start_link(link_id, now, out);
    }

    /// Handles the playout deadline of `ord` on `client`'s session.
    pub fn on_playout(&mut self, client: u32, ord: u32, now: Instant, out: &mut Vec<NetEffect>) {
        let Some(s) = self.sessions.get_mut(&client) else {
            return;
        };
        if !s.chain_armed || ord != s.cursor {
            return; // stale event from a superseded chain
        }
        s.chain_armed = false;
        let f = s.sent.remove(&s.cursor).expect("armed playout lost frame");
        s.naked.remove(&s.cursor);
        let late = !f.arrived;
        if late {
            s.stats.late_frames += 1;
        } else {
            s.buffered -= f.bytes;
            s.stats.frames_played += 1;
            s.stats.bytes_played += f.bytes;
        }
        s.stats.playout_log.push((f.frame, now.as_nanos(), late));
        s.cursor += 1;
        if s.paused && s.buffered <= s.cfg.low_watermark && !s.retry_armed {
            s.retry_armed = true;
            out.push(NetEffect::Resume { session: client });
        }
        arm(s, now, out);
    }

    /// Records that `client`'s feeding stream is running again (resume
    /// succeeded, or something else — a failover, an operator — already
    /// resumed it). Idempotent.
    pub fn mark_resumed(&mut self, client: u32) {
        if let Some(s) = self.sessions.get_mut(&client) {
            s.retry_armed = false;
            if s.paused {
                s.paused = false;
                s.stats.resumes += 1;
            }
        }
    }

    /// Whether `client`'s session currently holds its stream parked.
    pub fn is_parked(&self, client: u32) -> bool {
        self.sessions.get(&client).is_some_and(|s| s.paused)
    }

    /// Total bytes waiting in all link send queues.
    pub fn queued_bytes_total(&self) -> u64 {
        self.links.iter().map(|l| l.queued_bytes()).sum()
    }

    /// Total late frames across sessions.
    pub fn late_frames_total(&self) -> u64 {
        self.sessions.values().map(|s| s.stats.late_frames).sum()
    }

    /// Deterministic JSON rendering of link and session counters
    /// (playout logs excluded — compare those via
    /// [`NetDelivery::session`] directly). Same canonical-form rules as
    /// `Metrics::canonical_json`: fixed key order, `{:?}` floats.
    pub fn canonical_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str(&format!("{{\"multicast\":{},\"links\":[", self.multicast));
        for (i, l) in self.links.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let (drops, dups, delays) = l
                .faults
                .as_ref()
                .map_or((0, 0, 0), |f| (f.drops, f.dups, f.delays));
            s.push_str(&format!(
                "{{\"bytes_sent\":{},\"packets_sent\":{},\"retransmit_bytes\":{},\
                 \"multicast_saved_bytes\":{},\"queued_ns\":{},\"max_queued_bytes\":{},\
                 \"throughput\":{:?},\"drops\":{},\"dups\":{},\"delays\":{}}}",
                l.stats.bytes_sent,
                l.stats.packets_sent,
                l.stats.retransmit_bytes,
                l.stats.multicast_saved_bytes,
                l.stats.queued_ns,
                l.stats.max_queued_bytes,
                l.throughput(),
                drops,
                dups,
                delays,
            ));
        }
        s.push_str("],\"sessions\":[");
        for (i, sess) in self.sessions.values().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let st = &sess.stats;
            s.push_str(&format!(
                "{{\"id\":{},\"link\":{},\"frames_sent\":{},\"frames_suppressed\":{},\
                 \"frames_played\":{},\"bytes_played\":{},\"late_frames\":{},\
                 \"arrived_late\":{},\"lateness_ns\":{},\"discarded_late\":{},\
                 \"dup_arrivals\":{},\"naks_sent\":{},\"retransmits\":{},\"parks\":{},\
                 \"resumes\":{},\"max_buffered\":{}}}",
                sess.id,
                sess.link,
                st.frames_sent,
                st.frames_suppressed,
                st.frames_played,
                st.bytes_played,
                st.late_frames,
                st.arrived_late,
                st.lateness_ns,
                st.discarded_late,
                st.dup_arrivals,
                st.naks_sent,
                st.retransmits,
                st.parks,
                st.resumes,
                st.max_buffered,
            ));
        }
        s.push_str("]}");
        s
    }

    /// Credits an arrival of ordinal `ord` on `client`, running the
    /// dup/lateness/NAK/park bookkeeping.
    fn note_arrival(&mut self, client: u32, ord: u32, now: Instant, out: &mut Vec<NetEffect>) {
        let latency = {
            let s = &self.sessions[&client];
            self.links[s.link as usize].params.latency
        };
        let s = self.sessions.get_mut(&client).expect("caller checked");
        let Some(f) = s.sent.get_mut(&ord) else {
            // Playout already passed this ordinal (a straggler copy or
            // a retransmission that lost the race).
            s.stats.discarded_late += 1;
            return;
        };
        if f.arrived {
            s.stats.dup_arrivals += 1;
            return;
        }
        f.arrived = true;
        let bytes = f.bytes;
        let ts = f.ts;
        s.buffered += bytes;
        s.stats.max_buffered = s.stats.max_buffered.max(s.buffered);
        let deadline = s.deadline(ts);
        if now > deadline {
            s.stats.arrived_late += 1;
            s.stats.lateness_ns += now.since(deadline).as_nanos();
        }
        // An arrival above unarrived ordinals exposes a gap: NAK each
        // missing ordinal once. The NAK takes one propagation delay to
        // reach the server.
        let gaps: Vec<u32> = (s.cursor..ord)
            .filter(|o| s.sent.get(o).is_some_and(|g| !g.arrived) && !s.naked.contains(o))
            .collect();
        for o in gaps {
            s.naked.insert(o);
            s.stats.naks_sent += 1;
            out.push(NetEffect::Nak {
                at: now + latency,
                session: client,
                ord: o,
            });
        }
        if s.buffered > s.cfg.high_watermark && !s.paused {
            s.paused = true;
            s.stats.parks += 1;
            out.push(NetEffect::Park { session: client });
        }
        arm(s, now, out);
    }

    /// Starts the link transmitter on the earliest-deadline queued
    /// packet, if it is idle and work is waiting. Decides the packet's
    /// fault fate at transmission time.
    fn start_link(&mut self, link: u32, now: Instant, out: &mut Vec<NetEffect>) {
        let l = &mut self.links[link as usize];
        if l.is_busy() {
            return;
        }
        let Some(pkt) = l.pop() else {
            return;
        };
        let p = self.packets.get_mut(&pkt).expect("queued packet missing");
        let done = l.begin_send(now, p.bytes, p.enqueued_at);
        if p.retransmit {
            l.stats.retransmit_bytes += p.bytes;
        }
        out.push(NetEffect::LinkFree { at: done, link });
        let fault = match &mut l.faults {
            Some(fi) => fi.decide(),
            None => NetFault {
                arrivals: 1,
                extra_delay: Duration::ZERO,
            },
        };
        if fault.arrivals == 0 {
            self.packets.remove(&pkt);
            return;
        }
        p.remaining_arrivals = fault.arrivals;
        let at = done + l.params.latency + fault.extra_delay;
        for _ in 0..fault.arrivals {
            out.push(NetEffect::Arrive { at, link, pkt });
        }
    }
}

/// Arms the playout chain: exactly one outstanding [`NetEffect::Playout`]
/// per session, for the cursor ordinal, at the later of its deadline
/// and `now` (a late chain catches up immediately). With nothing left
/// to play and an empty buffer the chain goes idle and the anchor
/// clears — the next transmission re-anchors with a fresh startup
/// delay, i.e. the client rebuffers.
fn arm(s: &mut Session, now: Instant, out: &mut Vec<NetEffect>) {
    if s.chain_armed {
        return;
    }
    if let Some(f) = s.sent.get(&s.cursor) {
        let at = now.max(s.deadline(f.ts));
        s.chain_armed = true;
        out.push(NetEffect::Playout {
            at,
            session: s.id,
            ord: s.cursor,
        });
    } else if s.cursor == s.next_ord && s.buffered == 0 {
        s.anchor = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A test event: either a delivery effect or a scheduled
    /// `send_frame` call, so sends interleave with in-flight traffic at
    /// the right instants.
    #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
    enum Ev {
        Fx(NetEffect),
        Send {
            client: u32,
            frame: u32,
            bytes: u64,
            ts: Duration,
        },
        ClearFaults(u32),
    }

    #[derive(Default)]
    struct RunLog {
        parks: Vec<u32>,
        resumes: Vec<u32>,
    }

    /// Mini event pump: processes effects and scheduled sends in time
    /// order (insertion order breaking ties), like the sys executor.
    fn run(nd: &mut NetDelivery, sends: Vec<(Instant, Ev)>) -> RunLog {
        let mut log = RunLog::default();
        let mut q: BTreeSet<(Instant, u64, Ev)> = BTreeSet::new();
        let mut seq = 0u64;
        for (at, ev) in sends {
            q.insert((at, seq, ev));
            seq += 1;
        }
        let mut pending: Vec<NetEffect> = Vec::new();
        let mut now = Instant::ZERO;
        loop {
            for e in pending.drain(..) {
                let at = match e {
                    NetEffect::LinkFree { at, .. }
                    | NetEffect::Arrive { at, .. }
                    | NetEffect::Nak { at, .. }
                    | NetEffect::Playout { at, .. } => at,
                    NetEffect::Park { .. } | NetEffect::Resume { .. } => now,
                };
                q.insert((at, seq, e.into()));
                seq += 1;
            }
            let Some(&(at, sq, ev)) = q.iter().next() else {
                break;
            };
            q.remove(&(at, sq, ev));
            now = at;
            match ev {
                Ev::Send {
                    client,
                    frame,
                    bytes,
                    ts,
                } => nd.send_frame(client, frame, bytes, ts, now, &mut pending),
                Ev::ClearFaults(link) => nd.set_link_faults(link, None),
                Ev::Fx(NetEffect::LinkFree { link, .. }) => {
                    nd.on_link_free(link, now, &mut pending)
                }
                Ev::Fx(NetEffect::Arrive { link, pkt, .. }) => {
                    nd.on_arrive(link, pkt, now, &mut pending)
                }
                Ev::Fx(NetEffect::Nak { session, ord, .. }) => {
                    nd.on_nak(session, ord, now, &mut pending)
                }
                Ev::Fx(NetEffect::Playout { session, ord, .. }) => {
                    nd.on_playout(session, ord, now, &mut pending)
                }
                Ev::Fx(NetEffect::Park { session }) => log.parks.push(session),
                Ev::Fx(NetEffect::Resume { session }) => {
                    log.resumes.push(session);
                    nd.mark_resumed(session);
                }
            }
        }
        log
    }

    impl From<NetEffect> for Ev {
        fn from(e: NetEffect) -> Ev {
            Ev::Fx(e)
        }
    }

    fn at_ms(ms: u64) -> Instant {
        Instant::ZERO + Duration::from_millis(ms)
    }

    fn frame_sends(client: u32, n: u32, bytes: u64, fps_ms: u64) -> Vec<(Instant, Ev)> {
        (0..n)
            .map(|i| {
                (
                    at_ms(i as u64 * fps_ms),
                    Ev::Send {
                        client,
                        frame: i,
                        bytes,
                        ts: Duration::from_millis(i as u64 * fps_ms),
                    },
                )
            })
            .collect()
    }

    #[test]
    fn clean_unicast_plays_every_frame_on_time() {
        let mut nd = NetDelivery::new();
        let link = nd.add_link(LinkParams::fast_lan());
        nd.attach(1, link, SessionCfg::default());
        run(&mut nd, frame_sends(1, 10, 6_250, 33));
        let s = nd.session(1).unwrap();
        assert_eq!(s.stats.frames_sent, 10);
        assert_eq!(s.stats.frames_played, 10);
        assert_eq!(s.stats.late_frames, 0);
        assert_eq!(s.stats.naks_sent, 0);
        assert_eq!(s.stats.playout_log.len(), 10);
        // Playouts land exactly playout_delay after the sends.
        let first = s.stats.playout_log[0];
        assert_eq!(first.1, Duration::from_millis(500).as_nanos());
        assert_eq!(nd.link(link).stats.bytes_sent, 10 * 6_250);
    }

    #[test]
    fn multicast_group_sends_once_and_delivers_to_all() {
        let mut nd = NetDelivery::new();
        let link = nd.add_link(LinkParams::fast_lan());
        nd.set_multicast(true);
        for c in 1..=3 {
            nd.attach(c, link, SessionCfg::default());
        }
        nd.sync_membership(2, Some(1));
        nd.sync_membership(3, Some(1));
        let mut sends = Vec::new();
        for i in 0..5u32 {
            for c in 1..=3 {
                // Decodes serialize on the CPU: members send slightly
                // after the leader within a tick.
                sends.push((
                    at_ms(i as u64 * 33) + Duration::from_micros(500 * (c as u64 - 1)),
                    Ev::Send {
                        client: c,
                        frame: i,
                        bytes: 6_250,
                        ts: Duration::from_millis(i as u64 * 33),
                    },
                ));
            }
        }
        run(&mut nd, sends);
        let leader = nd.session(1).unwrap();
        assert_eq!(leader.stats.frames_sent, 5);
        for c in 2..=3 {
            let m = nd.session(c).unwrap();
            assert_eq!(m.stats.frames_sent, 0);
            assert_eq!(m.stats.frames_suppressed, 5);
            assert_eq!(m.stats.frames_played, 5);
            assert_eq!(m.stats.late_frames, 0);
        }
        let ls = &nd.link(link).stats;
        assert_eq!(ls.bytes_sent, 5 * 6_250);
        assert_eq!(ls.multicast_saved_bytes, 2 * 5 * 6_250);
    }

    #[test]
    fn lost_packet_is_nakked_and_retransmitted_in_time() {
        let mut nd = NetDelivery::new();
        let link = nd.add_link(LinkParams::fast_lan());
        // Drop everything until the injector is cleared at 10 ms, so
        // exactly frame 0's transmission is lost.
        nd.set_link_faults(link, Some(NetFaults::loss(1.0, 3)));
        nd.attach(1, link, SessionCfg::default());
        let mut sends = frame_sends(1, 3, 6_250, 33);
        sends.push((at_ms(10), Ev::ClearFaults(link)));
        run(&mut nd, sends);
        let s = nd.session(1).unwrap();
        // Frame 1's arrival exposed the gap at ordinal 0 → one NAK, one
        // retransmission, and the retransmitted frame 0 still made its
        // 500 ms playout deadline.
        assert_eq!(s.stats.naks_sent, 1);
        assert_eq!(s.stats.retransmits, 1);
        assert_eq!(s.stats.frames_played, 3);
        assert_eq!(s.stats.late_frames, 0);
        assert_eq!(nd.link(link).stats.retransmit_bytes, 6_250);
    }

    #[test]
    fn unrepaired_loss_counts_late_frames_not_stalls() {
        let mut nd = NetDelivery::new();
        let link = nd.add_link(LinkParams::fast_lan());
        nd.set_link_faults(link, Some(NetFaults::loss(1.0, 3)));
        nd.attach(1, link, SessionCfg::default());
        run(&mut nd, frame_sends(1, 4, 6_250, 33));
        let s = nd.session(1).unwrap();
        // Everything drops, so nothing ever arrives to expose a gap —
        // all four frames miss playout, but the chain advances instead
        // of stalling.
        assert_eq!(s.stats.late_frames, 4);
        assert_eq!(s.stats.frames_played, 0);
        assert_eq!(s.cursor, 4);
        assert_eq!(s.stats.naks_sent, 0);
    }

    #[test]
    fn high_watermark_parks_and_drain_resumes() {
        let mut nd = NetDelivery::new();
        let link = nd.add_link(LinkParams::fast_lan());
        let cfg = SessionCfg {
            playout_delay: Duration::from_millis(500),
            high_watermark: 3 * 6_250,
            low_watermark: 6_250,
            drain_scale: 1.0,
        };
        nd.attach(1, link, cfg);
        let log = run(&mut nd, frame_sends(1, 10, 6_250, 33));
        let s = nd.session(1).unwrap();
        // The 500 ms startup buffer accumulates ~15 frame slots of
        // arrivals before the first playout: the gauge crosses 3 frames
        // quickly and parks, then playouts drain it below 1 frame and
        // resume.
        assert_eq!(log.parks, vec![1]);
        assert_eq!(log.resumes, vec![1]);
        assert_eq!(s.stats.parks, 1);
        assert_eq!(s.stats.resumes, 1);
        assert!(s.stats.max_buffered > cfg.high_watermark);
    }

    #[test]
    fn duplicate_arrivals_are_counted_once() {
        let mut nd = NetDelivery::new();
        let link = nd.add_link(LinkParams::fast_lan());
        nd.set_link_faults(
            link,
            Some(NetFaults {
                drop_prob: 0.0,
                dup_prob: 1.0,
                delay_prob: 0.0,
                delay: Duration::ZERO,
                seed: 1,
            }),
        );
        nd.attach(1, link, SessionCfg::default());
        run(&mut nd, frame_sends(1, 5, 6_250, 33));
        let s = nd.session(1).unwrap();
        assert_eq!(s.stats.frames_played, 5);
        assert_eq!(s.stats.dup_arrivals, 5);
        assert_eq!(s.stats.bytes_played, 5 * 6_250);
    }

    #[test]
    fn contended_link_serves_earliest_playout_deadline_first() {
        let mut nd = NetDelivery::new();
        // Slow link: 6 250 B takes 5 ms to serialize.
        let link = nd.add_link(LinkParams {
            bandwidth: 1_250_000.0,
            latency: Duration::from_micros(200),
            per_packet: Duration::ZERO,
        });
        // Session 1 anchors 100 ms earlier than session 2, so its
        // frames carry earlier playout deadlines.
        let c1 = SessionCfg {
            playout_delay: Duration::from_millis(100),
            ..SessionCfg::default()
        };
        nd.attach(1, link, c1);
        nd.attach(2, link, SessionCfg::default());
        // Session 2's frame is enqueued first, then session 1's while
        // the link is still busy with a warmup packet from session 2.
        let sends = vec![
            (
                at_ms(0),
                Ev::Send {
                    client: 2,
                    frame: 0,
                    bytes: 6_250,
                    ts: Duration::ZERO,
                },
            ),
            (
                at_ms(1),
                Ev::Send {
                    client: 2,
                    frame: 1,
                    bytes: 6_250,
                    ts: Duration::from_millis(33),
                },
            ),
            (
                at_ms(2),
                Ev::Send {
                    client: 1,
                    frame: 0,
                    bytes: 6_250,
                    ts: Duration::ZERO,
                },
            ),
        ];
        run(&mut nd, sends);
        let s1 = nd.session(1).unwrap();
        let s2 = nd.session(2).unwrap();
        // Session 1's tighter deadline (102 ms) overtakes session 2's
        // queued frame 1 (533 ms) even though it was pushed later; all
        // frames still play on time.
        assert_eq!(s1.stats.late_frames + s2.stats.late_frames, 0);
        assert_eq!(s1.stats.frames_played, 1);
        assert_eq!(s2.stats.frames_played, 2);
        assert!(nd.link(link).stats.queued_ns > 0);
    }

    #[test]
    fn canonical_json_is_stable_and_complete() {
        let mut nd = NetDelivery::new();
        let link = nd.add_link(LinkParams::fast_lan());
        nd.attach(1, link, SessionCfg::default());
        run(&mut nd, frame_sends(1, 3, 1_000, 33));
        let a = nd.canonical_json();
        let b = nd.canonical_json();
        assert_eq!(a, b);
        assert!(a.contains("\"frames_played\":3"));
        assert!(a.contains("\"multicast\":false"));
    }
}
