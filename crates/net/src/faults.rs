//! Deterministic per-link fault injection: drop, duplicate, delay.
//!
//! Real shared-medium links lose frames to collisions and noise,
//! occasionally deliver a retransmitted frame twice, and jitter
//! arrivals; the NAK/retransmit machinery and the playout buffer exist
//! exactly to absorb those. All decisions come from one seeded PRNG
//! consulted once per transmitted packet, in transmission order, so a
//! faulted run reproduces bit for bit — the same discipline as
//! `cras-disk`'s `FaultInjector`.
//!
//! A zero-probability injector draws the PRNG exactly like a lossy one
//! but changes nothing: the produced packet stream is bit-identical to
//! a run with no injector at all (tested in `tests/net_delivery.rs`).

use cras_sim::{Duration, Rng};

/// Fault probabilities and parameters for one link direction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetFaults {
    /// Probability a transmitted packet is lost (consumes link time,
    /// never arrives).
    pub drop_prob: f64,
    /// Probability a packet is delivered twice (link-layer retransmit
    /// after a lost ack).
    pub dup_prob: f64,
    /// Probability a packet's arrival is delayed by [`NetFaults::delay`].
    pub delay_prob: f64,
    /// Extra arrival delay for a delayed packet.
    pub delay: Duration,
    /// PRNG seed.
    pub seed: u64,
}

impl NetFaults {
    /// A loss-only profile: every fault is a drop.
    pub fn loss(drop_prob: f64, seed: u64) -> NetFaults {
        NetFaults {
            drop_prob,
            dup_prob: 0.0,
            delay_prob: 0.0,
            delay: Duration::ZERO,
            seed,
        }
    }
}

/// What the injector decided for one transmitted packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetFault {
    /// How many copies arrive: 0 (dropped), 1 (clean), or 2 (duplicated).
    pub arrivals: u32,
    /// Extra delay added to every arriving copy.
    pub extra_delay: Duration,
}

/// A deterministic per-link fault injector.
#[derive(Clone, Debug)]
pub struct NetFaultInjector {
    cfg: NetFaults,
    rng: Rng,
    /// Packets decided.
    pub packets_seen: u64,
    /// Packets dropped.
    pub drops: u64,
    /// Packets duplicated.
    pub dups: u64,
    /// Packets delayed.
    pub delays: u64,
}

impl NetFaultInjector {
    /// Creates an injector.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn new(cfg: NetFaults) -> NetFaultInjector {
        for p in [cfg.drop_prob, cfg.dup_prob, cfg.delay_prob] {
            assert!((0.0..=1.0).contains(&p), "bad fault probability");
        }
        NetFaultInjector {
            rng: Rng::new(cfg.seed),
            cfg,
            packets_seen: 0,
            drops: 0,
            dups: 0,
            delays: 0,
        }
    }

    /// Decides the fate of the next transmitted packet. Exactly three
    /// PRNG draws per packet regardless of the probabilities, so a
    /// zero-probability injector perturbs nothing downstream.
    pub fn decide(&mut self) -> NetFault {
        self.packets_seen += 1;
        let dropped = self.rng.chance(self.cfg.drop_prob);
        let duplicated = self.rng.chance(self.cfg.dup_prob);
        let delayed = self.rng.chance(self.cfg.delay_prob);
        if dropped {
            self.drops += 1;
            return NetFault {
                arrivals: 0,
                extra_delay: Duration::ZERO,
            };
        }
        let mut extra = Duration::ZERO;
        if delayed {
            self.delays += 1;
            extra = self.cfg.delay;
        }
        if duplicated {
            self.dups += 1;
            return NetFault {
                arrivals: 2,
                extra_delay: extra,
            };
        }
        NetFault {
            arrivals: 1,
            extra_delay: extra,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_is_always_clean() {
        let mut fi = NetFaultInjector::new(NetFaults::loss(0.0, 7));
        for _ in 0..1000 {
            assert_eq!(
                fi.decide(),
                NetFault {
                    arrivals: 1,
                    extra_delay: Duration::ZERO
                }
            );
        }
        assert_eq!(fi.drops, 0);
        assert_eq!(fi.packets_seen, 1000);
    }

    #[test]
    fn decisions_are_deterministic() {
        let run = || {
            let mut fi = NetFaultInjector::new(NetFaults {
                drop_prob: 0.2,
                dup_prob: 0.1,
                delay_prob: 0.3,
                delay: Duration::from_millis(5),
                seed: 42,
            });
            (0..500).map(|_| fi.decide()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn loss_rate_tracks_probability() {
        let mut fi = NetFaultInjector::new(NetFaults::loss(0.25, 9));
        for _ in 0..10_000 {
            fi.decide();
        }
        let rate = fi.drops as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "loss rate {rate}");
    }

    #[test]
    #[should_panic(expected = "bad fault probability")]
    fn bad_probability_panics() {
        NetFaultInjector::new(NetFaults::loss(1.5, 0));
    }
}
