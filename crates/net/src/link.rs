//! The paced link: a shared transmitter with an EDF send queue.
//!
//! `cras-sys::net::Link` is fire-and-forget — `transmit` charges the
//! FIFO serialization time and returns an arrival instant, with no way
//! to reorder, drop or share fairly. The paced link replaces that for
//! the delivery subsystem: packets wait in a per-link queue ordered by
//! playout deadline (earliest-deadline-first), the transmitter serves
//! one packet at a time, and every dequeue charges the real queueing
//! delay. Sessions sharing a link therefore contend exactly as on a
//! half-duplex segment: an urgent retransmit overtakes bulk frames
//! whose playout is still comfortably ahead.
//!
//! The link itself is a passive structure — [`crate::NetDelivery`]
//! drives the send/free cycle and owns the packet records; the link
//! owns the queue order, the transmitter occupancy, the fault injector
//! and the wire-level counters.

use std::collections::BTreeSet;

use cras_sim::{Duration, Instant};

use crate::faults::NetFaultInjector;

/// Physical parameters of one link direction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkParams {
    /// Bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Propagation delay.
    pub latency: Duration,
    /// Fixed per-packet processing overhead (protocol stack).
    pub per_packet: Duration,
}

impl LinkParams {
    /// A 10 Mbps Ethernet like the paper's evaluation machine, with
    /// mid-90s protocol-stack overhead.
    pub fn ethernet_10mbps() -> LinkParams {
        LinkParams {
            bandwidth: 10_000_000.0 / 8.0,
            latency: Duration::from_micros(200),
            per_packet: Duration::from_micros(400),
        }
    }

    /// A fast switched segment where serialization is negligible — the
    /// uncontended baseline used by the equivalence property tests.
    pub fn fast_lan() -> LinkParams {
        LinkParams {
            bandwidth: 125_000_000.0,
            latency: Duration::from_micros(50),
            per_packet: Duration::from_micros(10),
        }
    }
}

/// Wire-level counters for one link.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Bytes serialized onto the wire (including retransmits and
    /// packets later lost to a fault — loss consumes link time).
    pub bytes_sent: u64,
    /// Packets serialized.
    pub packets_sent: u64,
    /// Bytes of NAK-driven retransmissions (subset of `bytes_sent`).
    pub retransmit_bytes: u64,
    /// Bytes the link did NOT carry because a multicast group packet
    /// replaced per-member unicast copies.
    pub multicast_saved_bytes: u64,
    /// Total time packets waited in the send queue, nanoseconds.
    pub queued_ns: u64,
    /// High-water mark of queued bytes.
    pub max_queued_bytes: u64,
}

/// One shared link direction with an EDF send queue.
#[derive(Clone, Debug)]
pub struct PacedLink {
    /// Physical parameters.
    pub params: LinkParams,
    /// Send queue: `(playout deadline, packet id)` — EDF with the
    /// monotonic packet id as the deterministic tiebreak.
    queue: BTreeSet<(Instant, u64)>,
    /// Bytes currently waiting in the queue.
    queued_bytes: u64,
    /// Whether the transmitter is serializing a packet right now.
    busy: bool,
    /// First instant a packet started serializing (for throughput over
    /// the observed span).
    first_start: Option<Instant>,
    /// End of the last serialization.
    last_done: Instant,
    /// Optional deterministic fault injector.
    pub faults: Option<NetFaultInjector>,
    /// Wire counters.
    pub stats: LinkStats,
}

impl PacedLink {
    /// Creates an idle link.
    ///
    /// # Panics
    ///
    /// Panics if bandwidth is not positive.
    pub fn new(params: LinkParams) -> PacedLink {
        assert!(params.bandwidth > 0.0, "non-positive bandwidth");
        PacedLink {
            params,
            queue: BTreeSet::new(),
            queued_bytes: 0,
            busy: false,
            first_start: None,
            last_done: Instant::ZERO,
            faults: None,
            stats: LinkStats::default(),
        }
    }

    /// Queues packet `id` with its EDF deadline; `bytes` feeds the
    /// backlog gauge.
    pub fn push(&mut self, deadline: Instant, id: u64, bytes: u64) {
        self.queue.insert((deadline, id));
        self.queued_bytes += bytes;
        self.stats.max_queued_bytes = self.stats.max_queued_bytes.max(self.queued_bytes);
    }

    /// Takes the earliest-deadline packet off the queue, if any.
    pub fn pop(&mut self) -> Option<u64> {
        let &(deadline, id) = self.queue.iter().next()?;
        self.queue.remove(&(deadline, id));
        Some(id)
    }

    /// Charges the serialization of `bytes` starting at `now` and marks
    /// the transmitter busy; returns the instant serialization ends.
    pub fn begin_send(&mut self, now: Instant, bytes: u64, queued_since: Instant) -> Instant {
        debug_assert!(!self.busy, "transmitter already busy");
        self.busy = true;
        self.queued_bytes -= bytes;
        self.stats.queued_ns += now.since(queued_since).as_nanos();
        self.stats.bytes_sent += bytes;
        self.stats.packets_sent += 1;
        let ser = Duration::from_secs_f64(bytes as f64 / self.params.bandwidth);
        let done = now + self.params.per_packet + ser;
        if self.first_start.is_none() {
            self.first_start = Some(now);
        }
        self.last_done = done;
        done
    }

    /// Marks the transmitter free again.
    pub fn end_send(&mut self) {
        self.busy = false;
    }

    /// Whether the transmitter is serializing a packet.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Bytes currently waiting in the send queue.
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Achieved throughput in bytes/second over the observed transmit
    /// span (first serialization start to last serialization end);
    /// zero before any packet was sent.
    pub fn throughput(&self) -> f64 {
        let Some(first) = self.first_start else {
            return 0.0;
        };
        let span = self.last_done.since(first);
        if span.is_zero() {
            0.0
        } else {
            self.stats.bytes_sent as f64 / span.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> Instant {
        Instant::ZERO + Duration::from_millis(ms)
    }

    #[test]
    fn pop_is_earliest_deadline_first() {
        let mut l = PacedLink::new(LinkParams::ethernet_10mbps());
        l.push(at(300), 0, 100);
        l.push(at(100), 1, 100);
        l.push(at(200), 2, 100);
        assert_eq!(l.pop(), Some(1));
        assert_eq!(l.pop(), Some(2));
        assert_eq!(l.pop(), Some(0));
        assert_eq!(l.pop(), None);
    }

    #[test]
    fn same_deadline_breaks_ties_by_packet_id() {
        let mut l = PacedLink::new(LinkParams::ethernet_10mbps());
        l.push(at(100), 5, 10);
        l.push(at(100), 3, 10);
        assert_eq!(l.pop(), Some(3));
        assert_eq!(l.pop(), Some(5));
    }

    #[test]
    fn begin_send_charges_overhead_and_serialization() {
        let mut l = PacedLink::new(LinkParams {
            bandwidth: 1_000_000.0,
            latency: Duration::from_millis(1),
            per_packet: Duration::from_millis(2),
        });
        // 10 000 B at 1 MB/s = 10 ms, + 2 ms overhead.
        l.push(at(100), 0, 10_000);
        assert_eq!(l.pop(), Some(0));
        let done = l.begin_send(at(0), 10_000, at(0));
        assert_eq!(done, at(12));
        assert!(l.is_busy());
        l.end_send();
        assert!(!l.is_busy());
    }

    #[test]
    fn queueing_and_backlog_are_tracked() {
        let mut l = PacedLink::new(LinkParams::ethernet_10mbps());
        l.push(at(100), 0, 6_000);
        l.push(at(200), 1, 6_000);
        assert_eq!(l.queued_bytes(), 12_000);
        assert_eq!(l.stats.max_queued_bytes, 12_000);
        l.pop();
        l.begin_send(at(5), 6_000, at(0));
        assert_eq!(l.queued_bytes(), 6_000);
        assert_eq!(l.stats.queued_ns, 5_000_000);
    }

    #[test]
    fn throughput_is_over_the_observed_span() {
        let mut l = PacedLink::new(LinkParams {
            bandwidth: 1_000_000.0,
            latency: Duration::ZERO,
            per_packet: Duration::ZERO,
        });
        assert_eq!(l.throughput(), 0.0);
        l.push(at(100), 0, 10_000);
        assert_eq!(l.pop(), Some(0));
        l.begin_send(at(0), 10_000, at(0));
        l.end_send();
        // 10 000 B over the 10 ms span = the full link rate, however
        // long the run idles afterwards.
        assert!((l.throughput() - 1_000_000.0).abs() < 1.0);
    }
}
