//! `cras-net` — the NPS-style delivery subsystem between the sys layer
//! and the viewers (DESIGN §18).
//!
//! The paper's QtPlay "retrieves movie data through CRAS and transmits
//! it over the network using NPS", the user-level real-time network
//! engine. This crate models that delivery path deterministically:
//!
//! * [`session`] — per-client sessions with bounded playout buffers.
//!   The client consumes by timestamp against a playout anchor; buffer
//!   high/low watermarks generate credit-based backpressure that the
//!   sys layer turns into park/resume of the feeding stream, so a slow
//!   client throttles its own stream instead of bloating server memory.
//! * [`link`] — the paced link scheduler: per-link send queues with
//!   deadline-ordered (EDF by playout time) packet selection, shared
//!   contention across sessions, and queueing/lateness metrics.
//! * [`faults`] — deterministic per-link drop/duplicate/delay fault
//!   injection, same seeded style as `cras-disk`'s injector.
//! * [`delivery`] — [`delivery::NetDelivery`], the pure state machine
//!   tying the above together: multicast fan-out for joined groups
//!   (one transmission per shared link segment with per-member delivery
//!   times), NAK-driven retransmit inside the playout-buffer slack, and
//!   late-frame accounting (a frame that misses its playout deadline is
//!   a counted drop, never a silent one).
//!
//! Like `cras-core`, the crate is I/O- and engine-free: every method
//! takes `now` and pushes [`delivery::NetEffect`] values describing the
//! timers and control transfers it wants. `cras-sys` maps those onto
//! its §14 action/event seam, so crash recovery and the interleaving
//! fuzzer cover network delivery like any other subsystem.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delivery;
pub mod faults;
pub mod link;
pub mod session;

pub use delivery::{NetDelivery, NetEffect};
pub use faults::{NetFaultInjector, NetFaults};
pub use link::{LinkParams, LinkStats, PacedLink};
pub use session::{Session, SessionCfg, SessionStats};
