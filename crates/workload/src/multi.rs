//! Multiple CRAS instances — §2.6's "allows the system to execute
//! multiple CRAS's simultaneously", with the caveat that experiment
//! makes visible: each server's admission test only knows its *own*
//! streams, so two servers can jointly oversubscribe the disk that either
//! alone would have protected.
//!
//! Two servers share the real-time queue of one disk, each running its
//! own interval scheduler (phase-shifted by half an interval). Each
//! admits `streams_per_server` MPEG-1 streams — individually legal. The
//! run measures deadline overruns and late batches against a single
//! server carrying the same total load (which the admission test would
//! have refused).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cras_core::{CrasServer, ReadId, ServerConfig, StreamId};
use cras_disk::calibrate::calibrate;
use cras_disk::{DiskDevice, DiskRequest};
use cras_media::StreamProfile;
use cras_sim::{Duration, Instant, Rng};
use cras_ufs::Extent;

use crate::result::KvTable;

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    Tick(usize),
    DiskDone,
}

/// Outcome of one configuration.
#[derive(Clone, Copy, Debug)]
pub struct MultiOutcome {
    /// Number of servers.
    pub servers: usize,
    /// Streams per server.
    pub streams_per_server: usize,
    /// Whether each server's own admission test accepted its load.
    pub individually_admitted: bool,
    /// Total deadline overruns across servers.
    pub overruns: u64,
    /// Aggregate bytes fetched per second.
    pub throughput: f64,
}

/// Builds `n` synthetic contiguous-extent streams starting at spread-out
/// disk positions.
fn synth_streams(
    srv: &mut CrasServer,
    n: usize,
    base_block: u64,
    secs: f64,
    rng: &mut Rng,
) -> Vec<StreamId> {
    (0..n)
        .map(|i| {
            let table = cras_media::generate_chunks(&StreamProfile::mpeg1(), secs, rng);
            let nblocks = table.total_bytes().div_ceil(512) as u32;
            let extents = vec![Extent {
                file_offset: 0,
                disk_block: base_block + i as u64 * 150_000,
                nblocks,
            }];
            srv.open_unchecked(&format!("s{base_block}-{i}"), table, extents)
        })
        .collect()
}

/// Runs `servers` CRAS instances with `streams_per_server` streams each
/// for `measure`.
pub fn run_config(
    servers: usize,
    streams_per_server: usize,
    measure: Duration,
    seed: u64,
) -> MultiOutcome {
    let mut scratch: DiskDevice<u8> = DiskDevice::st32550n();
    let cal = calibrate(&mut scratch, 64 * 1024);
    let cfg = ServerConfig {
        buffer_budget: 256 << 20,
        ..ServerConfig::default()
    };
    let mut rng = Rng::new(seed);
    let mut disk: DiskDevice<(usize, ReadId)> = DiskDevice::st32550n();
    let mut srvs: Vec<CrasServer> = (0..servers)
        .map(|_| CrasServer::new(cal.params, cfg))
        .collect();
    let secs = measure.as_secs_f64() + 6.0;
    let mut admitted_ok = true;
    for (si, srv) in srvs.iter_mut().enumerate() {
        let ids = synth_streams(
            srv,
            streams_per_server,
            500_000 + si as u64 * 1_500_000,
            secs,
            &mut rng,
        );
        // Check what this server's own admission test would have said.
        admitted_ok &= srv
            .admission()
            .admit(
                cfg.interval.as_secs_f64(),
                &srv.active_params(),
                cfg.buffer_budget,
            )
            .is_ok();
        for id in ids {
            srv.start(id, Instant::ZERO);
        }
    }

    // Event loop: per-server phase-shifted ticks plus disk completions.
    let mut heap: BinaryHeap<Reverse<(Instant, u64, Ev)>> = BinaryHeap::new();
    let mut seq = 0u64;
    for si in 0..servers {
        let phase = cfg.interval.mul_f64(si as f64 / servers as f64);
        heap.push(Reverse((Instant::ZERO + phase, seq, Ev::Tick(si))));
        seq += 1;
    }
    let end = Instant::ZERO + measure;
    let mut bytes = 0u64;
    while let Some(Reverse((at, _, ev))) = heap.pop() {
        if at > end {
            break;
        }
        match ev {
            Ev::Tick(si) => {
                let rep = srvs[si].interval_tick(at);
                for r in &rep.reqs {
                    if let Some(t) =
                        disk.submit(at, DiskRequest::rt_read(r.block, r.nblocks, (si, r.id)))
                    {
                        heap.push(Reverse((t, seq, Ev::DiskDone)));
                        seq += 1;
                    }
                }
                heap.push(Reverse((at + cfg.interval, seq, Ev::Tick(si))));
                seq += 1;
            }
            Ev::DiskDone => {
                let (done, next) = disk.complete(at);
                bytes += done.req.bytes();
                let (si, rid) = done.req.tag;
                srvs[si].io_done(rid, at);
                if let Some(t) = next {
                    heap.push(Reverse((t, seq, Ev::DiskDone)));
                    seq += 1;
                }
            }
        }
    }
    MultiOutcome {
        servers,
        streams_per_server,
        individually_admitted: admitted_ok,
        overruns: srvs.iter().map(|s| s.stats().deadline_misses).sum(),
        throughput: bytes as f64 / measure.as_secs_f64(),
    }
}

/// The two-configuration comparison table.
pub fn run(measure: Duration, seed: u64) -> (KvTable, MultiOutcome, MultiOutcome) {
    // 12 streams per server: individually admitted (capacity ~14), but 24
    // in total is well beyond one disk's real-time capacity at T = 0.5 s.
    let two = run_config(2, 12, measure, seed);
    let one = run_config(1, 12, measure, seed ^ 1);
    let mut t = KvTable::new(
        "multi",
        "§2.6 multiple CRAS instances sharing one disk (12 MPEG1 streams each)",
    );
    for o in [&one, &two] {
        t.row(
            &format!("{} server(s)", o.servers),
            format!(
                "admitted_individually={} overruns={} throughput={:.2}MB/s",
                o.individually_admitted,
                o.overruns,
                o.throughput / 1e6
            ),
            "",
        );
    }
    (t, one, two)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_admission_oversubscribes_the_disk() {
        let (_t, one, two) = run(Duration::from_secs(12), 0x2C25);
        // Each server alone believes it is fine...
        assert!(one.individually_admitted);
        assert!(two.individually_admitted);
        // ...one server meets every deadline...
        assert_eq!(one.overruns, 0, "{one:?}");
        // ...but two of them jointly miss deadlines.
        assert!(two.overruns > 0, "{two:?}");
    }
}
