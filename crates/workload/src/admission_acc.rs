//! Figures 8 and 9 — accuracy of the admission test.
//!
//! For each stream count, the ratio of the *actual* disk I/O time per
//! interval to the *calculated* (admission-test) time is measured —
//! average and maximum, with and without background load. "100% means
//! that the estimation of disk I/O time is perfect, and a lower ratio
//! means that the estimation is more pessimistic."
//!
//! Expected shape: very pessimistic (low ratio) for few low-rate streams
//! — overhead terms dominate and assume worst cases — approaching ~70%
//! for 6 Mbps streams under load.

use cras_media::StreamProfile;
use cras_sim::Duration;
use cras_sys::SchedMode;

use crate::result::Figure;
use crate::runner::{run_scenario, Scenario, Storage};

/// Sweep configuration shared by Figures 8 and 9.
#[derive(Clone, Copy, Debug)]
pub struct AccuracyConfig {
    /// Stream profile (1.5 Mbps for Fig 8, 6 Mbps for Fig 9).
    pub profile: StreamProfile,
    /// Largest stream count (20 for Fig 8, 5 for Fig 9).
    pub max_streams: usize,
    /// Stream-count step.
    pub step: usize,
    /// Measurement window per run.
    pub measure: Duration,
    /// Seed.
    pub seed: u64,
    /// Figure id.
    pub id: &'static str,
}

impl AccuracyConfig {
    /// Figure 8: 1.5 Mbps streams, 1–20.
    pub fn fig8() -> AccuracyConfig {
        AccuracyConfig {
            profile: StreamProfile::mpeg1(),
            max_streams: 20,
            step: 1,
            measure: Duration::from_secs(20),
            seed: 8_1996,
            id: "fig8",
        }
    }

    /// Figure 9: 6 Mbps streams, 1–5.
    pub fn fig9() -> AccuracyConfig {
        AccuracyConfig {
            profile: StreamProfile::mpeg2(),
            max_streams: 5,
            step: 1,
            measure: Duration::from_secs(20),
            seed: 9_1996,
            id: "fig9",
        }
    }
}

fn one(n: usize, load: bool, cfg: &AccuracyConfig) -> (f64, f64) {
    let sc = Scenario {
        storage: Storage::Cras,
        streams: n,
        profile: cfg.profile,
        bg_readers: if load { 2 } else { 0 },
        bg_pause: Duration::ZERO,
        hogs: 0,
        sched: SchedMode::FixedPriority,
        measure: cfg.measure,
        seed: cfg.seed ^ ((n as u64) << 3) ^ load as u64,
        enforce_admission: false,
    };
    run_scenario(sc).ratio_summary
}

/// Runs the sweep: four series (avg/max × no-load/load), ratios in %.
pub fn run(cfg: &AccuracyConfig) -> Figure {
    let rate_label = format!("{:.1}Mbps", cfg.profile.rate * 8.0 / 1e6);
    let mut fig = Figure::new(
        cfg.id,
        &format!("Admission test accuracy ({rate_label} streams)"),
        "streams",
        "actual/calculated (%)",
    );
    let mut n = 1;
    while n <= cfg.max_streams {
        let (avg_nl, max_nl) = one(n, false, cfg);
        let (avg_l, max_l) = one(n, true, cfg);
        fig.series_mut("no-load:avg").push(n as f64, avg_nl * 100.0);
        fig.series_mut("no-load:max").push(n as f64, max_nl * 100.0);
        fig.series_mut("load:avg").push(n as f64, avg_l * 100.0);
        fig.series_mut("load:max").push(n as f64, max_l * 100.0);
        n += cfg.step;
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_rate_few_streams_is_very_pessimistic() {
        let cfg = AccuracyConfig {
            max_streams: 1,
            measure: Duration::from_secs(10),
            ..AccuracyConfig::fig8()
        };
        let fig = run(&cfg);
        let avg = fig.series.iter().find(|s| s.name == "no-load:avg").unwrap();
        // One MPEG1 stream: actual far below calculated (paper: ~20-40%).
        let r = avg.points[0].1;
        assert!((2.0..60.0).contains(&r), "ratio {r}%");
    }

    #[test]
    fn high_rate_under_load_is_more_accurate() {
        let f8 = AccuracyConfig {
            max_streams: 1,
            measure: Duration::from_secs(10),
            ..AccuracyConfig::fig8()
        };
        let f9 = AccuracyConfig {
            max_streams: 5,
            step: 4, // n = 1, 5.
            measure: Duration::from_secs(10),
            ..AccuracyConfig::fig9()
        };
        let fig8 = run(&f8);
        let fig9 = run(&f9);
        let r8 = fig8
            .series
            .iter()
            .find(|s| s.name == "load:avg")
            .unwrap()
            .points[0]
            .1;
        let r9 = fig9
            .series
            .iter()
            .find(|s| s.name == "load:avg")
            .unwrap()
            .last_y()
            .unwrap();
        assert!(
            r9 > r8,
            "6Mbps×5 ratio {r9}% should beat 1.5Mbps×1 ratio {r8}%"
        );
        assert!(r9 > 30.0, "6Mbps load ratio {r9}%");
    }
}
