//! Interval-cache experiment: Zipf-popular titles, staggered starts,
//! trailing streams served from memory.
//!
//! The scenario the cache exists for: a small catalog where a few
//! titles draw most of the audience, and viewers of the same title
//! arrive seconds apart. Without the cache every admitted stream costs
//! spindle time and the disk bound caps the house; with it, a stream
//! that trails another viewing of the same movie within the configured
//! gap is fed from the leader's just-read window and admitted against
//! the cache memory budget instead. The sweep runs the identical
//! arrival sequence at several cache budgets: budget 0 must reproduce
//! the uncached baseline bit-for-bit, and a real budget must admit
//! strictly more streams at the same disk configuration with zero
//! drops.

use cras_media::StreamProfile;
use cras_sim::{Duration, Rng};
use cras_sys::{SysConfig, System};

use crate::result::{Figure, KvTable};

/// Outcome of one cache-budget run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheOutcome {
    /// Cache budget in bytes.
    pub budget: u64,
    /// Streams requested (arrival attempts).
    pub requested: usize,
    /// Streams the (disk or cache) admission accepted.
    pub admitted: usize,
    /// Streams admitted against the cache budget, not the disk bound.
    pub cache_admitted: u64,
    /// Trailing candidates the cache budget could not cover.
    pub cache_rejected: u64,
    /// Stream-intervals fed from cache instead of disk.
    pub cache_served_intervals: u64,
    /// Bytes served to followers from cache frames.
    pub hit_bytes: u64,
    /// Bytes a follower wanted but the cache no longer held.
    pub miss_bytes: u64,
    /// Frames dropped by admitted players (must stay 0).
    pub dropped: u64,
    /// Deadline warnings from the server (must stay 0).
    pub overruns: u64,
}

/// Draws a title index from a Zipf(0.9) distribution by CDF inversion.
fn zipf_pick(rng: &mut Rng, cdf: &[f64]) -> usize {
    let u = rng.f64_range(0.0, 1.0);
    cdf.iter().position(|&c| u <= c).unwrap_or(cdf.len() - 1)
}

/// Runs the identical Zipf arrival sequence at each cache budget:
/// `requested` viewers arrive `stagger` apart over a `titles`-title
/// catalog on one spindle, then play on for `measure`.
pub fn sweep(
    budgets: &[u64],
    requested: usize,
    titles: usize,
    stagger: Duration,
    measure: Duration,
    seed: u64,
) -> (KvTable, Figure, Vec<CacheOutcome>) {
    assert!(titles >= 1 && requested >= 1);
    // Zipf(0.9) CDF over the catalog, hot titles first.
    let weights: Vec<f64> = (1..=titles).map(|k| 1.0 / (k as f64).powf(0.9)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    let cdf: Vec<f64> = weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect();
    let movie_secs = stagger.as_secs_f64() * requested as f64 + measure.as_secs_f64() + 8.0;

    let mut out = Vec::new();
    for &budget in budgets {
        let mut cfg = SysConfig::default();
        cfg.seed = seed;
        cfg.server.volumes = 1;
        cfg.server.buffer_budget = 64 << 20;
        cfg.server.cache_budget = budget;
        let mut sys = System::new(cfg);
        let movies: Vec<_> = (0..titles)
            .map(|t| sys.record_movie(&format!("hot{t}.mov"), StreamProfile::mpeg1(), movie_secs))
            .collect();
        // The arrival sequence is a pure function of the seed, so every
        // budget sees the same viewers in the same order.
        let mut arrivals = Rng::new(seed ^ 0x21FF);
        let mut players = Vec::new();
        for _ in 0..requested {
            let title = zipf_pick(&mut arrivals, &cdf);
            // A rejected viewer walks away; later viewers of a popular
            // title can still trail a running stream into the cache.
            if let Ok(c) = sys.add_cras_player(&movies[title], 1) {
                sys.start_playback(c);
                players.push(c);
            }
            sys.run_for(stagger);
        }
        sys.run_for(measure);
        let dropped = players
            .iter()
            .map(|c| sys.players[&c.0].stats.frames_dropped)
            .sum();
        let stats = *sys.cras.cache().stats();
        out.push(CacheOutcome {
            budget,
            requested,
            admitted: players.len(),
            cache_admitted: stats.cache_admitted_streams,
            cache_rejected: stats.cache_rejected_streams,
            cache_served_intervals: sys.metrics.cache_served_stream_intervals,
            hit_bytes: stats.hit_bytes,
            miss_bytes: stats.miss_bytes,
            dropped,
            overruns: sys.metrics.overruns,
        });
    }
    let mut t = KvTable::new(
        "cache_sharing",
        &format!("Interval cache: {requested} Zipf arrivals over {titles} titles, one spindle"),
    );
    for o in &out {
        t.row(
            &format!("budget={}MB", o.budget >> 20),
            format!(
                "admitted={} cache_admitted={} cache_rejected={} served_ivals={} \
                 hit={:.1}MB miss={:.1}MB drops={} warnings={}",
                o.admitted,
                o.cache_admitted,
                o.cache_rejected,
                o.cache_served_intervals,
                o.hit_bytes as f64 / (1024.0 * 1024.0),
                o.miss_bytes as f64 / (1024.0 * 1024.0),
                o.dropped,
                o.overruns
            ),
            "",
        );
    }
    let mut f = Figure::new(
        "cache_sharing",
        "Admitted streams vs cache budget",
        "cache budget (MB)",
        "streams",
    );
    for o in &out {
        let mb = (o.budget >> 20) as f64;
        f.series_mut("admitted").push(mb, o.admitted as f64);
        f.series_mut("cache-admitted")
            .push(mb, o.cache_admitted as f64);
    }
    (t, f, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> Duration {
        Duration::from_secs(s)
    }

    #[test]
    fn cache_budget_beats_no_cache_baseline() {
        let (_t, _f, outs) = sweep(
            &[0, 64 << 20],
            24,
            10,
            Duration::from_millis(1500),
            secs(10),
            0xCA5E,
        );
        let (base, cached) = (&outs[0], &outs[1]);
        // The uncached run is the disk-bound baseline.
        assert_eq!(base.cache_admitted, 0);
        assert_eq!(base.hit_bytes, 0);
        assert!(base.admitted < base.requested, "disk bound never hit");
        // The cache admits strictly more viewers at the same disk
        // configuration, and nobody pays for it in deadlines.
        assert!(
            cached.admitted > base.admitted,
            "baseline {base:?} vs cached {cached:?}"
        );
        assert!(cached.cache_admitted > 0, "{cached:?}");
        assert!(cached.hit_bytes > 0, "{cached:?}");
        for o in &outs {
            assert_eq!(o.dropped, 0, "dropped frames: {o:?}");
            assert_eq!(o.overruns, 0, "deadline warnings: {o:?}");
        }
    }

    #[test]
    fn admitted_streams_monotone_in_cache_budget() {
        let (_t, _f, outs) = sweep(
            &[0, 16 << 20, 32 << 20, 64 << 20],
            24,
            10,
            Duration::from_millis(1500),
            secs(8),
            0xCA5F,
        );
        for w in outs.windows(2) {
            assert!(
                w[1].admitted >= w[0].admitted && w[1].cache_admitted >= w[0].cache_admitted,
                "not monotone: {outs:?}"
            );
        }
    }

    #[test]
    fn cache_sharing_is_deterministic() {
        let run = || {
            sweep(
                &[0, 32 << 20],
                12,
                6,
                Duration::from_millis(1500),
                secs(6),
                0xCA60,
            )
            .2
        };
        assert_eq!(run(), run(), "same seed must reproduce bit-for-bit");
    }
}
