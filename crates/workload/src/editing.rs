//! Editing while playing: write traffic vs playback.
//!
//! The paper's motivating applications edit and play on the same personal
//! machine. This experiment runs one playback stream while an "editor"
//! appends to a capture file through the delayed-write path (allocation
//! in memory, a syncer flushing dirty blocks to disk every second as
//! normal-class writes). CRAS's real-time queue should shrug the
//! write-back bursts off; the UFS player shares the normal queue with
//! them and jitters.

use cras_media::StreamProfile;
use cras_sim::Duration;
use cras_sys::{SysConfig, System};

use crate::result::KvTable;
use crate::runner::Storage;

/// Outcome for one storage system.
#[derive(Clone, Copy, Debug)]
pub struct EditingOutcome {
    /// Player mean delay (seconds).
    pub mean_delay: f64,
    /// Player max delay (seconds).
    pub max_delay: f64,
    /// Frames dropped.
    pub dropped: u64,
    /// Bytes the editor wrote (memory-side).
    pub written: u64,
    /// Blocks still dirty at the end (the syncer keeps up or not).
    pub dirty_backlog: usize,
}

/// Plays one MPEG-1 stream for `measure` while an editor writes
/// `write_rate` bytes/second.
pub fn run_one(storage: Storage, write_rate: f64, measure: Duration, seed: u64) -> EditingOutcome {
    let mut cfg = SysConfig::default();
    cfg.seed = seed;
    let mut sys = System::new(cfg);
    let movie = sys.record_movie(
        "play.mov",
        StreamProfile::mpeg1(),
        measure.as_secs_f64() + 8.0,
    );
    let client = match storage {
        Storage::Cras => sys.add_cras_player(&movie, 1).expect("one stream fits"),
        Storage::Ufs => sys.add_ufs_player(&movie, 1),
    };
    // The editor: 64 KB writes at the requested rate.
    let write_size = 64 * 1024u64;
    let period = Duration::from_secs_f64(write_size as f64 / write_rate);
    sys.add_bg_writer("capture.mov", write_size, period);
    sys.start_writers();
    let start = sys.start_playback(client);
    sys.run_until(start + measure);

    let p = &sys.players[&client.0];
    let (mean_delay, max_delay) = p.delay_summary();
    EditingOutcome {
        mean_delay,
        max_delay,
        dropped: p.stats.frames_dropped,
        written: sys.writers.values().map(|w| w.bytes_written).sum(),
        dirty_backlog: sys.ufs().dirty_blocks(),
    }
}

/// The CRAS-vs-UFS editing comparison.
pub fn run(measure: Duration, seed: u64) -> (KvTable, EditingOutcome, EditingOutcome) {
    let write_rate = 1.0e6; // A busy 1 MB/s capture/edit session.
    let cras = run_one(Storage::Cras, write_rate, measure, seed);
    let ufs = run_one(Storage::Ufs, write_rate, measure, seed);
    let mut t = KvTable::new(
        "editing",
        "Editing while playing (1 MPEG1 stream + 1 MB/s delayed writes)",
    );
    for (label, o) in [("CRAS", &cras), ("UFS", &ufs)] {
        t.row(
            &format!("{label} player delay"),
            format!(
                "mean {:.2} / max {:.2}",
                o.mean_delay * 1e3,
                o.max_delay * 1e3
            ),
            "ms",
        );
        t.row(
            &format!("{label} dropped frames"),
            format!("{}", o.dropped),
            "",
        );
        t.row(
            &format!("{label} editor wrote"),
            format!("{:.1}", o.written as f64 / 1e6),
            "MB",
        );
        t.row(
            &format!("{label} dirty backlog"),
            format!("{}", o.dirty_backlog),
            "blocks",
        );
    }
    (t, cras, ufs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cras_unaffected_by_write_back_bursts() {
        let (_t, cras, ufs) = run(Duration::from_secs(15), 0xED17);
        assert_eq!(cras.dropped, 0, "{cras:?}");
        assert!(cras.max_delay < 0.01, "{cras:?}");
        // The editor actually generated load.
        assert!(cras.written > 10 << 20, "{cras:?}");
        // UFS playback feels the syncer's bursts.
        assert!(
            ufs.max_delay > 3.0 * cras.max_delay,
            "ufs {ufs:?} vs cras {cras:?}"
        );
    }

    #[test]
    fn syncer_keeps_up_with_the_editor() {
        let (cras, _ufs) = run_pair_for_backlog();
        // Backlog stays bounded (roughly one second of writes).
        assert!(cras.dirty_backlog < 300, "backlog {}", cras.dirty_backlog);
    }

    fn run_pair_for_backlog() -> (EditingOutcome, EditingOutcome) {
        let cras = run_one(Storage::Cras, 1.0e6, Duration::from_secs(10), 5);
        let ufs = run_one(Storage::Ufs, 1.0e6, Duration::from_secs(10), 5);
        (cras, ufs)
    }
}
