//! Common result containers for the experiments, serializable so the
//! harness can emit JSON next to the printed tables.

use cras_sim::json::Json;
use std::collections::BTreeMap;

/// One named series of `(x, y)` points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: &str) -> Series {
        Series {
            name: name.to_string(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Maximum y value (0 when empty).
    pub fn max_y(&self) -> f64 {
        self.points.iter().map(|p| p.1).fold(0.0, f64::max)
    }

    /// Final y value, if any.
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|p| p.1)
    }
}

impl Series {
    fn to_value(&self) -> Json {
        let mut m = BTreeMap::new();
        m.insert("name".to_string(), Json::Str(self.name.clone()));
        m.insert(
            "points".to_string(),
            Json::Arr(
                self.points
                    .iter()
                    .map(|&(x, y)| Json::Arr(vec![Json::Num(x), Json::Num(y)]))
                    .collect(),
            ),
        );
        Json::Obj(m)
    }
}

/// A figure: several series over shared axes.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Figure id, e.g. `"fig6"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis label.
    pub xlabel: String,
    /// Y-axis label.
    pub ylabel: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(id: &str, title: &str, xlabel: &str, ylabel: &str) -> Figure {
        Figure {
            id: id.to_string(),
            title: title.to_string(),
            xlabel: xlabel.to_string(),
            ylabel: ylabel.to_string(),
            series: Vec::new(),
        }
    }

    /// Looks a series up by name, creating it if missing.
    pub fn series_mut(&mut self, name: &str) -> &mut Series {
        if let Some(pos) = self.series.iter().position(|s| s.name == name) {
            return &mut self.series[pos];
        }
        self.series.push(Series::new(name));
        self.series.last_mut().expect("just pushed")
    }

    /// Renders the figure as aligned text: one row per x, one column per
    /// series (the format the bench binaries print).
    pub fn render(&self) -> String {
        use cras_sim::table::Table;
        let mut headers: Vec<&str> = vec![self.xlabel.as_str()];
        headers.extend(self.series.iter().map(|s| s.name.as_str()));
        let mut t = Table::new(&headers);
        // Collect the union of x values in order of first appearance.
        let mut xs: Vec<f64> = Vec::new();
        for s in &self.series {
            for &(x, _) in &s.points {
                if !xs.iter().any(|&v| (v - x).abs() < 1e-12) {
                    xs.push(x);
                }
            }
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN x"));
        for x in xs {
            let mut row = vec![format!("{x:.3}")];
            for s in &self.series {
                let y = s
                    .points
                    .iter()
                    .find(|p| (p.0 - x).abs() < 1e-12)
                    .map(|p| format!("{:.6}", p.1))
                    .unwrap_or_default();
                row.push(y);
            }
            t.row_owned(row);
        }
        format!(
            "# {} — {}\n# y: {}\n{}",
            self.id,
            self.title,
            self.ylabel,
            t.render()
        )
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        let mut m = BTreeMap::new();
        m.insert("id".to_string(), Json::Str(self.id.clone()));
        m.insert("title".to_string(), Json::Str(self.title.clone()));
        m.insert("xlabel".to_string(), Json::Str(self.xlabel.clone()));
        m.insert("ylabel".to_string(), Json::Str(self.ylabel.clone()));
        m.insert(
            "series".to_string(),
            Json::Arr(self.series.iter().map(Series::to_value).collect()),
        );
        Json::Obj(m).pretty()
    }
}

/// A generic key/value result table (Table 3/4 style).
#[derive(Clone, Debug)]
pub struct KvTable {
    /// Table id.
    pub id: String,
    /// Human title.
    pub title: String,
    /// `(name, value, unit)` rows.
    pub rows: Vec<(String, String, String)>,
}

impl KvTable {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str) -> KvTable {
        KvTable {
            id: id.to_string(),
            title: title.to_string(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, name: &str, value: String, unit: &str) {
        self.rows.push((name.to_string(), value, unit.to_string()));
    }

    /// Renders as aligned text.
    pub fn render(&self) -> String {
        use cras_sim::table::Table;
        let mut t = Table::new(&["parameter", "value", "unit"]);
        for (n, v, u) in &self.rows {
            t.row(&[n, v, u]);
        }
        format!("# {} — {}\n{}", self.id, self.title, t.render())
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        let mut m = BTreeMap::new();
        m.insert("id".to_string(), Json::Str(self.id.clone()));
        m.insert("title".to_string(), Json::Str(self.title.clone()));
        m.insert(
            "rows".to_string(),
            Json::Arr(
                self.rows
                    .iter()
                    .map(|(n, v, u)| {
                        Json::Arr(vec![
                            Json::Str(n.clone()),
                            Json::Str(v.clone()),
                            Json::Str(u.clone()),
                        ])
                    })
                    .collect(),
            ),
        );
        Json::Obj(m).pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_render_has_all_series() {
        let mut f = Figure::new("figX", "test", "n", "MB/s");
        f.series_mut("a").push(1.0, 2.0);
        f.series_mut("b").push(1.0, 3.0);
        f.series_mut("a").push(2.0, 4.0);
        let txt = f.render();
        assert!(txt.contains("figX"));
        assert!(txt.contains('a') && txt.contains('b'));
        assert_eq!(f.series.len(), 2);
        assert_eq!(f.series[0].points.len(), 2);
    }

    #[test]
    fn series_mut_is_idempotent() {
        let mut f = Figure::new("f", "t", "x", "y");
        f.series_mut("s").push(1.0, 1.0);
        f.series_mut("s").push(2.0, 2.0);
        assert_eq!(f.series.len(), 1);
        assert_eq!(f.series[0].max_y(), 2.0);
        assert_eq!(f.series[0].last_y(), Some(2.0));
    }

    #[test]
    fn json_roundtrip_shape() {
        let mut f = Figure::new("f", "t", "x", "y");
        f.series_mut("s").push(1.0, 1.5);
        let j = f.to_json();
        assert!(j.contains("\"points\""));
        let v = cras_sim::json::parse(&j).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_str), Some("f"));
    }

    #[test]
    fn kv_table_renders() {
        let mut t = KvTable::new("table4", "Disk parameters");
        t.row("D", "6.5".into(), "MB/s");
        let txt = t.render();
        assert!(txt.contains("6.5"));
        assert!(txt.contains("MB/s"));
    }
}
