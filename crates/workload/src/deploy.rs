//! Deployment-configuration ablation — Figure 5 quantified.
//!
//! The paper's three configurations (CRAS beside the Unix server, beside
//! RTS, or linked into the application) differ, for playback purposes, in
//! the cost of client↔server control interactions. `crs_get` is free of
//! IPC in every mode (shared memory). This table reports the per-session
//! and steady-state overheads of each mode for a standard playback
//! session.

use cras_core::DeployMode;
use cras_sim::Duration;

use crate::result::KvTable;

/// Cost breakdown of one playback session under a deployment mode.
#[derive(Clone, Copy, Debug)]
pub struct DeployCost {
    /// The mode.
    pub mode: DeployMode,
    /// One-time control cost (open + start + stop + close).
    pub session_control: Duration,
    /// Steady-state per-second cost of 30 fps `crs_get` sampling.
    pub get_per_second: Duration,
}

/// Computes the ablation for all three modes at the given frame rate.
pub fn run(fps: f64) -> (KvTable, Vec<DeployCost>) {
    assert!(fps > 0.0, "non-positive frame rate");
    let modes = [DeployMode::UnixServer, DeployMode::Rts, DeployMode::Linked];
    let costs: Vec<DeployCost> = modes
        .iter()
        .map(|&mode| DeployCost {
            mode,
            session_control: mode.control_call_cost() * 4,
            get_per_second: mode.get_cost().mul_f64(fps),
        })
        .collect();
    let mut t = KvTable::new(
        "deploy",
        "Figure 5 deployment configurations (control-path costs)",
    );
    for c in &costs {
        t.row(
            &format!("{} session control", c.mode.label()),
            format!("{:.1}", c.session_control.as_secs_f64() * 1e6),
            "us (open+start+stop+close)",
        );
        t.row(
            &format!("{} crs_get @{fps:.0}fps", c.mode.label()),
            format!("{:.1}", c.get_per_second.as_secs_f64() * 1e6),
            "us/s (shared memory, mode-independent)",
        );
    }
    (t, costs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linked_mode_is_cheapest_and_get_is_flat() {
        let (_t, costs) = run(30.0);
        assert_eq!(costs.len(), 3);
        assert!(costs[2].session_control < costs[1].session_control);
        assert!(costs[1].session_control < costs[0].session_control);
        // crs_get cost identical across modes.
        assert_eq!(costs[0].get_per_second, costs[1].get_per_second);
        assert_eq!(costs[1].get_per_second, costs[2].get_per_second);
    }

    #[test]
    fn control_overhead_is_negligible_vs_stream_time() {
        // Even the heaviest mode costs well under a frame period per
        // session — the user-level design is not the bottleneck.
        let (_t, costs) = run(30.0);
        assert!(costs[0].session_control < Duration::from_millis(1));
    }
}
