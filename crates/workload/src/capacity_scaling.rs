//! Capacity scaling over the volume layer: the §4 "several disk devices"
//! variation quantified.
//!
//! Sweeps the number of volumes N and counts the MPEG1 streams the
//! per-volume admission test accepts under both placement policies:
//!
//! * **round-robin** — each movie whole on one volume. Admission load
//!   lands entirely on that volume, so capacity scales linearly (N
//!   identical disks admit N× the streams of one).
//! * **striped** — each movie spread over every volume in stripe units.
//!   Rates divide by N, but every stream pays the per-stream seek,
//!   rotation and command overhead on *every* spindle it touches, so
//!   striped capacity grows sublinearly — the classic striping tradeoff
//!   (better single-stream bandwidth, worse aggregate admission).
//!
//! The round-robin admitted load is then run end-to-end to confirm the
//! guarantee holds on every volume. At *exactly* the admitted load a
//! layout-dependent handful of frames can still slip: the paper's
//! per-stream admission model charges one command per stream per
//! interval, and a chunk whose extents cross a boundary costs two (the
//! [`crate::ablate`] study) — so validation asserts near-zero drops, not
//! zero.

use cras_core::PlacementPolicy;
use cras_media::StreamProfile;
use cras_sim::{Duration, Instant};
use cras_sys::{SysConfig, System};

use crate::result::Figure;

/// Stripe unit used by the striped series (32 fs blocks).
pub const STRIPE_BYTES: u64 = 256 * 1024;

/// Outcome at one volume count.
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    /// Number of volumes.
    pub volumes: usize,
    /// Streams admitted under round-robin whole-movie placement.
    pub admitted_round_robin: usize,
    /// Streams admitted under striped placement.
    pub admitted_striped: usize,
    /// Dropped frames running the round-robin admitted load.
    pub dropped_at_admitted: u64,
    /// Deadline warnings during that run.
    pub overruns: u64,
}

fn scaling_cfg(volumes: usize, placement: PlacementPolicy, seed: u64) -> SysConfig {
    let mut cfg = SysConfig::default();
    cfg.seed = seed;
    cfg.server.volumes = volumes;
    cfg.server.placement = placement;
    // Disk-bound capacity: a large buffer budget keeps the §2.1 memory
    // check from binding before the per-volume interval test does.
    cfg.server.buffer_budget = 1 << 40;
    cfg
}

/// Counts the streams admitted on `volumes` disks under `placement` by
/// opening MPEG1 streams until the admission test rejects one.
pub fn count_admitted(volumes: usize, placement: PlacementPolicy, seed: u64) -> usize {
    let mut sys = System::new(scaling_cfg(volumes, placement, seed));
    let cap = 16 * volumes + 8;
    let mut admitted = 0;
    for i in 0..cap {
        let m = sys.record_movie(&format!("s{i}.mov"), StreamProfile::mpeg1(), 4.0);
        if sys.add_cras_player(&m, 1).is_err() {
            break;
        }
        admitted += 1;
    }
    admitted
}

/// Runs `streams` round-robin-placed streams for `measure` and returns
/// `(dropped frames, deadline warnings)`.
fn run_admitted(volumes: usize, streams: usize, measure: Duration, seed: u64) -> (u64, u64) {
    let mut sys = System::new(scaling_cfg(volumes, PlacementPolicy::RoundRobin, seed));
    let secs = measure.as_secs_f64() + 8.0;
    let players: Vec<_> = (0..streams)
        .map(|i| {
            let m = sys.record_movie(&format!("v{i}.mov"), StreamProfile::mpeg1(), secs);
            sys.add_cras_player(&m, 1)
                .expect("previously admitted load")
        })
        .collect();
    let mut start = Instant::ZERO;
    for &p in &players {
        start = sys.start_playback(p).max(start);
    }
    sys.run_until(start + measure);
    let dropped = sys.players.values().map(|p| p.stats.frames_dropped).sum();
    (dropped, sys.metrics.overruns)
}

/// Sweeps the volume counts; returns the figure (admitted streams vs N,
/// one series per placement policy) and the raw points.
pub fn run(volume_counts: &[usize], measure: Duration, seed: u64) -> (Figure, Vec<ScalingPoint>) {
    let mut fig = Figure::new(
        "capacity_scaling",
        "Admitted MPEG1 streams vs number of volumes",
        "volumes",
        "admitted streams",
    );
    let mut points = Vec::new();
    for &n in volume_counts {
        let rr = count_admitted(n, PlacementPolicy::RoundRobin, seed);
        let st = count_admitted(
            n,
            PlacementPolicy::Striped {
                stripe_bytes: STRIPE_BYTES,
            },
            seed ^ 7,
        );
        let (dropped, overruns) = run_admitted(n, rr, measure, seed ^ (n as u64) << 8);
        fig.series_mut("round-robin").push(n as f64, rr as f64);
        fig.series_mut("striped").push(n as f64, st as f64);
        points.push(ScalingPoint {
            volumes: n,
            admitted_round_robin: rr,
            admitted_striped: st,
            dropped_at_admitted: dropped,
            overruns,
        });
    }
    (fig, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_scales_with_volumes() {
        let (fig, points) = run(&[1, 2], Duration::from_secs(6), 0xCA9A);
        assert_eq!(points.len(), 2);
        let (one, two) = (points[0], points[1]);
        assert!(
            one.admitted_round_robin >= 10,
            "single volume admits a realistic load, got {}",
            one.admitted_round_robin
        );
        // The headline claim: doubling the disks at least 1.8x's the
        // admitted capacity (round robin doubles it exactly — the disks
        // are independent and identical).
        assert!(
            two.admitted_round_robin as f64 >= 1.8 * one.admitted_round_robin as f64,
            "N=2 admitted {} vs N=1 {}",
            two.admitted_round_robin,
            one.admitted_round_robin
        );
        // The admitted load really plays: at worst a layout-dependent
        // sliver of frame slots is late (see the module docs), never a
        // collapse.
        for p in &points {
            let slots = p.admitted_round_robin as u64 * 6 * 30;
            assert!(
                p.dropped_at_admitted <= slots / 100,
                "admitted load should play nearly loss-free: {p:?}"
            );
            assert!(p.overruns <= 2, "warnings at {p:?}");
        }
        // Striping scales, but sublinearly: per-stream overheads are paid
        // on both spindles.
        assert!(
            two.admitted_striped > one.admitted_striped,
            "striping should gain from a second volume"
        );
        assert!(
            two.admitted_striped <= two.admitted_round_robin,
            "striped {} should not beat round-robin {}",
            two.admitted_striped,
            two.admitted_round_robin
        );
        assert_eq!(fig.series.len(), 2);
    }

    #[test]
    fn one_volume_matches_either_placement() {
        // With one volume, striping degenerates to whole-movie placement:
        // the admission arithmetic must agree exactly.
        let rr = count_admitted(1, PlacementPolicy::RoundRobin, 0x11);
        let st = count_admitted(
            1,
            PlacementPolicy::Striped {
                stripe_bytes: STRIPE_BYTES,
            },
            0x11,
        );
        assert_eq!(rr, st);
    }
}
