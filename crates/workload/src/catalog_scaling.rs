//! Catalog-scaling experiment (DESIGN §16): viewers grow, spindles
//! don't.
//!
//! A fixed two-shard, four-spindle cluster serves a Zipf(1) catalog
//! while the total viewer count is swept over three orders of
//! magnitude at a fixed arrival rate. Every §16 mechanism is on:
//! prefix residency keeps the first seconds of the hot set pinned in
//! memory (new viewers of a hot title are admitted *deferred*, holding
//! zero disk shares until their prefix drains), batched joins coalesce
//! near-simultaneous same-title opens onto one leader's read stream,
//! interval-cache chaining picks up drained prefixes, the gateway
//! routes same-title opens to the replica already holding the prefix,
//! and rejected opens wait in the gateway retry queue instead of
//! bouncing.
//!
//! The claim being demonstrated: **admitted viewers grow with the
//! sweep while the peak number of streams holding disk reservations
//! stays pinned near the fixed spindle bound** — the bound is measured
//! by a cold-title calibration run on one shard, and each sweep point
//! reports the peak disk-charged count so the flat line is data, not
//! assertion. Dropped frames must stay zero throughout: memory-served
//! viewers get the same guarantee as disk-served ones.
//!
//! Viewers watch a whole title and leave (`crs_close`), so the
//! steady-state concurrency is set by the arrival rate and title
//! length, not the sweep size — exactly the regime where a
//! popularity-aware cache turns a spindle-bound server into a
//! memory-bound one.

use std::collections::BTreeSet;

use cras_cluster::{zipf_cdf, zipf_rank, Cluster, ClusterConfig, RetryStats};
use cras_core::EvictPolicy;
use cras_media::StreamProfile;
use cras_sim::{Duration, Rng};
use cras_sys::{SysConfig, System};

use crate::result::{Figure, KvTable};

/// Zipf exponent of the request distribution.
const THETA: f64 = 1.0;

/// How long a rejected open waits in the gateway retry queue.
const RETRY_WINDOW: Duration = Duration::from_secs(2);

/// Fixed experiment shape; the total viewer count is swept separately.
#[derive(Clone, Copy, Debug)]
pub struct CatalogParams {
    /// Number of shards (each a complete system).
    pub shards: usize,
    /// Volumes (spindles) per shard — fixed across the sweep.
    pub volumes: usize,
    /// Catalog size (titles are ranked 0 = hottest).
    pub titles: usize,
    /// Length of every title in media seconds; viewers watch it whole
    /// and then leave.
    pub title_secs: f64,
    /// Gap between viewer arrivals (fixed rate: sweeping the viewer
    /// count stretches the run, it does not raise concurrency).
    pub stagger: Duration,
    /// Run time after the last arrival.
    pub measure: Duration,
    /// Prefix-residency window pinned for each hot title.
    pub prefix_secs: Duration,
    /// Hot-set size for prefix residency (and gateway replication).
    pub hot_set: usize,
    /// Batched-join window for near-simultaneous same-title opens.
    pub join_window: Duration,
    /// Base seed for arrivals and per-shard systems.
    pub seed: u64,
}

impl CatalogParams {
    /// The headline shape: 2 shards × 2 volumes, a 64-title catalog of
    /// 60 s features, one arrival every 50 ms.
    pub fn standard() -> CatalogParams {
        CatalogParams {
            shards: 2,
            volumes: 2,
            titles: 64,
            title_secs: 60.0,
            stagger: Duration::from_millis(50),
            measure: Duration::from_secs(20),
            prefix_secs: Duration::from_secs(20),
            hot_set: 16,
            join_window: Duration::from_secs(1),
            seed: 0xCA7A,
        }
    }
}

/// Outcome of one sweep point.
#[derive(Clone, Debug, PartialEq)]
pub struct CatalogOutcome {
    /// Viewers that arrived.
    pub requested: usize,
    /// Viewers that got a stream (immediately or via the retry queue).
    pub admitted: usize,
    /// Viewers turned away (instant rejection with queueing off, or a
    /// queued open that expired/purged).
    pub rejected: usize,
    /// Peak, over arrival-time samples, of streams holding disk
    /// reservations across live shards — the spindle-bound quantity.
    pub peak_disk_streams: usize,
    /// Cold-title calibration: disk streams one shard admits times the
    /// shard count. The fixed bound `peak_disk_streams` must respect.
    pub spindle_bound: usize,
    /// Streams admitted deferred against a resident prefix.
    pub prefix_admitted: u64,
    /// Deferred streams whose prefix drained (each then re-entered
    /// admission for a disk share or a cache window).
    pub deferred_drained: u64,
    /// Streams that coalesced onto a leader via a batched join.
    pub joined: u64,
    /// Streams admitted against cache windows (interval chaining).
    pub cache_admitted: u64,
    /// Gateway retry-queue counters (including parked-viewer resumes).
    pub retry: RetryStats,
    /// Viewers still parked (paused, waiting for a retry sweep to win
    /// them a feed) when the run ended. These hold no reservations and
    /// drop no frames; a nonzero count means the sweep ended mid-storm.
    pub stalled: usize,
    /// Distinct titles actually requested.
    pub distinct_titles: usize,
    /// Frames shown by all sessions, departed ones included.
    pub frames_shown: u64,
    /// Frames dropped by all sessions (must stay 0).
    pub dropped: u64,
    /// Deadline warnings across shards.
    pub overruns: u64,
}

/// The per-shard configuration: every DESIGN §16 mechanism on, viewer
/// decode modeled as a cheap copy-out to remote set-tops.
fn system_config(p: &CatalogParams) -> SysConfig {
    let mut cfg = SysConfig::default();
    cfg.seed = p.seed;
    cfg.server.volumes = p.volumes;
    // Memory-served viewers still hold interval buffers, so the host
    // budget — not the spindles — is what bounds concurrency.
    cfg.server.buffer_budget = 1 << 30;
    cfg.server.cache_budget = 512 << 20;
    cfg.server.max_cache_gap = Duration::from_secs(30);
    cfg.server.prefix_secs = p.prefix_secs;
    cfg.server.hot_set = p.hot_set;
    cfg.server.join_window = p.join_window;
    cfg.server.cache_evict = EvictPolicy::FollowersPerByte;
    // Remote set-tops: the shard ships frames onto the wire instead of
    // software-decoding them (see cluster_scaling for the arithmetic).
    cfg.costs.decode = Duration::from_micros(5);
    cfg
}

/// The arrival sequence: a pure function of the seed.
fn arrival_ranks(p: &CatalogParams, requested: usize) -> Vec<usize> {
    let cdf = zipf_cdf(p.titles, THETA);
    let mut rng = Rng::new(p.seed ^ 0x7A1F);
    (0..requested)
        .map(|_| zipf_rank(&cdf, rng.f64_range(0.0, 1.0)))
        .collect()
}

fn title_name(rank: usize) -> String {
    format!("t{rank:04}.mov")
}

/// Measures the fixed spindle bound: how many cold distinct titles one
/// shard admits to disk before the admission test refuses, times the
/// shard count. Cold titles never share windows or prefixes, so this
/// is the pure per-spindle capacity of the sweep's hardware.
pub fn spindle_bound(p: &CatalogParams) -> usize {
    let mut sys = System::new(system_config(p));
    let profile = StreamProfile::mpeg1();
    let mut n = 0;
    loop {
        let m = sys.record_movie(&format!("cal{n:04}.mov"), profile, p.title_secs);
        if sys.add_cras_player(&m, 1).is_err() {
            break;
        }
        n += 1;
        assert!(n < 10_000, "calibration never hit the admission bound");
    }
    n * p.shards
}

/// Closes every session whose player finished the title, folding its
/// frame counters into the running totals. Returns how many left.
fn depart_finished(cl: &mut Cluster, shown: &mut u64, dropped: &mut u64) -> usize {
    let finished: Vec<_> = cl
        .sessions()
        .filter(|(_, s)| !s.lost && !s.queued)
        .filter(|(_, s)| {
            cl.shards()[s.shard as usize]
                .sys
                .players
                .get(&s.client.0)
                .is_some_and(|pl| pl.done)
        })
        .map(|(sid, _)| sid)
        .collect();
    for sid in &finished {
        if let Some(st) = cl.session_stats(*sid) {
            *shown += st.frames_shown;
            *dropped += st.frames_dropped;
        }
        cl.close(*sid);
    }
    finished.len()
}

/// Runs one sweep point. Returns the outcome and the per-shard
/// canonical metrics (the deterministic-replay unit).
pub fn run_one(p: &CatalogParams, requested: usize) -> (CatalogOutcome, Vec<String>) {
    let ranks = arrival_ranks(p, requested);
    let distinct: BTreeSet<usize> = ranks.iter().copied().collect();
    let profile = StreamProfile::mpeg1();

    let mut ccfg = ClusterConfig::new(p.shards, system_config(p));
    ccfg.replicas = 2.min(p.shards);
    ccfg.hot_titles = p.hot_set;
    ccfg.retry_window = RETRY_WINDOW;
    let mut cl = Cluster::new(ccfg);
    for &rank in &distinct {
        cl.add_title(&title_name(rank), &profile, p.title_secs, rank);
    }

    let mut opened_ok = 0usize;
    let mut refused = 0usize;
    let mut peak_disk = 0usize;
    let mut shown = 0u64;
    let mut dropped = 0u64;
    for &rank in &ranks {
        depart_finished(&mut cl, &mut shown, &mut dropped);
        match cl.open(&title_name(rank)) {
            Ok(_) => opened_ok += 1,
            Err(_) => refused += 1,
        }
        let disk_now: usize = cl
            .shards()
            .iter()
            .filter(|s| s.is_alive())
            .map(|s| s.sys.cras.disk_charged_streams())
            .sum();
        peak_disk = peak_disk.max(disk_now);
        cl.run_for(p.stagger);
    }
    cl.run_for(p.measure);
    depart_finished(&mut cl, &mut shown, &mut dropped);
    shown += cl.live_frames_shown();
    dropped += cl.live_frames_dropped();

    let retry = cl.retry_stats();
    let still_queued = cl.pending_opens();
    let expired = (retry.expired + retry.purged) as usize;
    let admitted = opened_ok - expired - still_queued;
    let (mut prefix_admitted, mut deferred_drained, mut joined, mut cache_admitted) =
        (0u64, 0u64, 0u64, 0u64);
    for sh in cl.shards().iter().filter(|s| s.is_alive()) {
        let st = sh.sys.cras.cache().stats();
        prefix_admitted += st.prefix_admitted_streams;
        deferred_drained += st.deferred_drained_streams;
        joined += st.joined_streams;
        cache_admitted += st.cache_admitted_streams;
    }
    let stalled: usize = cl
        .shards()
        .iter()
        .filter(|s| s.is_alive())
        .map(|s| {
            s.sys
                .players
                .values()
                .filter(|pl| pl.paused && !pl.done)
                .count()
        })
        .sum();
    let overruns: u64 = cl.shards().iter().map(|s| s.sys.metrics.overruns).sum();
    let canon = cl.canonical_metrics();
    let outcome = CatalogOutcome {
        requested,
        admitted,
        rejected: refused + expired + still_queued,
        peak_disk_streams: peak_disk,
        spindle_bound: spindle_bound(p),
        prefix_admitted,
        deferred_drained,
        joined,
        cache_admitted,
        retry,
        stalled,
        distinct_titles: distinct.len(),
        frames_shown: shown,
        dropped,
        overruns,
    };
    (outcome, canon)
}

/// The sweep shape the bench harness runs: the headline parameters and
/// a 10→10k viewer sweep in full mode, a trimmed catalog over a
/// two-point sweep for `--quick` smoke runs.
pub fn bench_shape(quick: bool) -> (CatalogParams, Vec<usize>) {
    if quick {
        let mut p = CatalogParams::standard();
        p.titles = 24;
        p.title_secs = 20.0;
        p.stagger = Duration::from_millis(250);
        p.measure = Duration::from_secs(10);
        p.prefix_secs = Duration::from_secs(8);
        p.hot_set = 8;
        (p, vec![20, 120])
    } else {
        (CatalogParams::standard(), vec![10, 100, 1000, 10000])
    }
}

/// Hand-rolled JSON payload for the committed
/// `BENCH_catalog_scaling.json` artifact (the repo takes no serde
/// dependency): the measured spindle bound plus one object per sweep
/// point.
pub fn points_json(bound: usize, outs: &[CatalogOutcome]) -> String {
    let mut json = format!("{{\"spindle_bound\":{bound},\"points\":[");
    for (i, o) in outs.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"viewers\":{},\"admitted\":{},\"rejected\":{},\"peak_disk_streams\":{},\
             \"prefix_admitted\":{},\"joined\":{},\"cache_admitted\":{},\
             \"deferred_drained\":{},\"retry_admitted\":{},\"resumed\":{},\
             \"stalled\":{},\"frames_shown\":{},\
             \"dropped\":{},\"overruns\":{}}}",
            o.requested,
            o.admitted,
            o.rejected,
            o.peak_disk_streams,
            o.prefix_admitted,
            o.joined,
            o.cache_admitted,
            o.deferred_drained,
            o.retry.admitted,
            o.retry.resumed,
            o.stalled,
            o.frames_shown,
            o.dropped,
            o.overruns
        ));
    }
    json.push_str("]}");
    json
}

/// Sweeps the viewer count over the fixed hardware shape.
pub fn sweep(p: &CatalogParams, viewer_counts: &[usize]) -> (KvTable, Figure, Vec<CatalogOutcome>) {
    let outs: Vec<CatalogOutcome> = viewer_counts.iter().map(|&n| run_one(p, n).0).collect();
    let mut t = KvTable::new(
        "catalog_scaling",
        &format!(
            "{} shards x {} volumes fixed, {}-title Zipf({THETA}) catalog, \
             prefix residency + batched joins + retry queue on",
            p.shards, p.volumes, p.titles
        ),
    );
    for o in &outs {
        t.row(
            &format!("viewers={}", o.requested),
            format!(
                "admitted={} rejected={} peak_disk={} bound={} prefix={} \
                 joined={} cache={} drained={} queued={} retried={} \
                 resumed={} stalled={} drops={} warnings={}",
                o.admitted,
                o.rejected,
                o.peak_disk_streams,
                o.spindle_bound,
                o.prefix_admitted,
                o.joined,
                o.cache_admitted,
                o.deferred_drained,
                o.retry.queued,
                o.retry.admitted,
                o.retry.resumed,
                o.stalled,
                o.dropped,
                o.overruns
            ),
            "",
        );
    }
    let mut f = Figure::new(
        "catalog_scaling",
        "Admitted viewers vs peak disk-charged streams on fixed spindles",
        "viewers requested",
        "streams",
    );
    for o in &outs {
        let x = o.requested as f64;
        f.series_mut("admitted-viewers").push(x, o.admitted as f64);
        f.series_mut("peak-disk-streams")
            .push(x, o.peak_disk_streams as f64);
        f.series_mut("spindle-bound")
            .push(x, o.spindle_bound as f64);
    }
    (t, f, outs)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small shape that keeps the debug-mode test quick.
    fn small() -> CatalogParams {
        CatalogParams {
            shards: 2,
            volumes: 2,
            titles: 16,
            title_secs: 16.0,
            stagger: Duration::from_millis(400),
            measure: Duration::from_secs(8),
            prefix_secs: Duration::from_secs(6),
            hot_set: 8,
            join_window: Duration::from_secs(1),
            seed: 0xCA7B,
        }
    }

    #[test]
    fn viewers_ride_memory_disk_stays_bounded() {
        let p = small();
        let (o, _) = run_one(&p, 60);
        assert!(o.admitted as f64 >= 0.9 * o.requested as f64, "{o:?}");
        assert!(
            o.peak_disk_streams as f64 <= 1.2 * o.spindle_bound as f64,
            "disk streams past the spindle bound: {o:?}"
        );
        // The §16 mechanisms actually carried load.
        assert!(
            o.prefix_admitted + o.joined + o.cache_admitted > 0,
            "no memory-served streams: {o:?}"
        );
        assert!(o.frames_shown > 0, "{o:?}");
        assert_eq!(o.dropped, 0, "dropped frames: {o:?}");
    }

    #[test]
    fn replay_is_byte_identical_per_shard() {
        let p = small();
        let a = run_one(&p, 40);
        let b = run_one(&p, 40);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1, "per-shard canonical metrics diverged");
    }
}
